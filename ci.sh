#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> chaos sweep (seeded fault plans, 1 and 4 shards)"
for seed in 1 4242 31337; do
  echo "    CHAOS_SEED=$seed"
  CHAOS_SEED=$seed cargo test -q --test chaos
  CHAOS_SEED=$seed cargo test -q --test sharding
  CHAOS_SEED=$seed cargo test -q --test servicing
done

echo "==> stash committed bench baselines for the perf gate"
# The smoke benches below overwrite BENCH_*.json in place; keep the
# committed versions around so the perf gate can diff against them.
mkdir -p target/bench_baseline
for f in BENCH_*.json; do
  git show "HEAD:$f" > "target/bench_baseline/$f" 2>/dev/null \
    || rm -f "target/bench_baseline/$f"   # new bench, no baseline yet
done

echo "==> sharding scaling smoke (writes BENCH_sharding.json)"
cargo run --release -q -p nvmetro-bench --bin scaling_smoke

echo "==> classifier tier ablation (writes BENCH_classifier.json)"
# Asserts the tier-up bars: compiled >= 2x and cache-hit >= 5x the
# interpreter on the partition-offset classifier.
NVMETRO_BENCH_MS="${NVMETRO_BENCH_MS:-100}" \
  cargo run --release -q -p nvmetro-bench --bin classifier_ablation

echo "==> insight smoke (writes BENCH_insight.json + target/insight_trace.json)"
# Asserts the insight bars: >= 99% span coverage on the sharded rig,
# >= 1M events/s assembly, watchdog overhead < 2%, and both export
# formats valid; then double-checks the Chrome trace really is JSON.
NVMETRO_BENCH_MS="${NVMETRO_BENCH_MS:-100}" \
  cargo run --release -q -p nvmetro-bench --bin insight_report
python3 -c "import json; d=json.load(open('target/insight_trace.json')); assert d['traceEvents'], 'empty trace'" \
  || { echo "insight trace failed JSON validation"; exit 1; }

echo "==> fleet smoke (writes BENCH_fleet.json)"
# Asserts the fleet bars: >= 1000 VM queue groups bound and finished
# exactly-once, coalescing >= 1.2x IOPS and >= 20% device-occupancy cut
# on the device-bound hot set, weight-normalized Jain fairness >= 0.5.
NVMETRO_BENCH_MS="${NVMETRO_BENCH_MS:-20}" \
  cargo run --release -q -p nvmetro-bench --bin fleet_report
python3 -c "import json; d=json.load(open('BENCH_fleet.json')); assert d['fleet_exactly_once'] and d['fleet_queue_groups'] >= 1000" \
  || { echo "BENCH_fleet.json failed validation"; exit 1; }

echo "==> servicing smoke (writes BENCH_servicing.json)"
# Asserts the live-servicing bars: quiesce drains under load, the
# snapshot byte format round-trips into a working engine, repeated 2<->4
# reshards under QD-128 replay in-flight requests with zero lost or
# duplicated completions, and the reshard drain p99 stays under 5 ms.
NVMETRO_BENCH_MS="${NVMETRO_BENCH_MS:-20}" \
  cargo run --release -q -p nvmetro-bench --bin servicing_smoke
python3 -c "import json; d=json.load(open('BENCH_servicing.json')); assert d['zero_drop'] and d['quiesce_ns'] > 0 and d['reshard_drain_p99_ns'] > 0 and d['restore_wall_us'] >= 0" \
  || { echo "BENCH_servicing.json failed validation"; exit 1; }

echo "==> adaptive smoke (writes BENCH_adaptive.json)"
# Asserts the adaptive-datapath bars: a governor-run shard parks on idle
# trickle (duty < 5%, an order of magnitude under always-spin), loaded
# p99 within 5% of always-spin, and auto batching reaches at least 95%
# of the best fixed batch with >= 1 retune.
NVMETRO_BENCH_MS="${NVMETRO_BENCH_MS:-40}" \
  cargo run --release -q -p nvmetro-bench --bin adaptive_smoke
python3 -c "
import json
d = json.load(open('BENCH_adaptive.json'))
assert d['idle_parks'] >= 1 and d['idle_wakes'] >= 1, 'no park/wake cycle'
assert d['idle_duty'] < 0.05, 'idle duty above 5%'
assert d['idle_adaptive_cpu_ns'] * 10 <= d['idle_spin_cpu_ns'], 'idle burn not well under spin'
assert d['loaded_p99_ratio'] <= 1.05, 'adaptive loaded p99 above 1.05x spin'
assert d['auto_retunes'] >= 1 and d['auto_vs_best_fixed'] >= 0.95, 'auto batching below bar'
" || { echo "BENCH_adaptive.json failed validation"; exit 1; }

echo "==> blackbox smoke (writes BENCH_blackbox.json)"
# Asserts the flight-recorder bars: recorder overhead < 1% on the loaded
# sharded rig (self-attributed), the manual dump bundle round-trips
# through its byte format and renders an incident report, and fan-out
# link coverage on the coalescing rig is 100%.
NVMETRO_BENCH_MS="${NVMETRO_BENCH_MS:-40}" \
  cargo run --release -q -p nvmetro-bench --bin blackbox_smoke
python3 -c "
import json
d = json.load(open('BENCH_blackbox.json'))
assert d['recorder_overhead']['fraction'] < 0.01, 'recorder overhead above 1%'
assert d['forest']['link_coverage'] == 1.0, 'fan-out link coverage below 100%'
assert d['forensics']['bundle_bytes'] > 0 and d['forensics']['timeline_events'] > 0
" || { echo "BENCH_blackbox.json failed validation"; exit 1; }

echo "==> perf-regression gate (headline metrics vs committed baselines)"
# Direction-aware: each headline metric may only move the wrong way by
# its tolerance (15% for deterministic virtual-time metrics, wider for
# wall-clock ones). Baselines were stashed from HEAD above.
python3 scripts/perf_gate.py target/bench_baseline .

echo "CI OK"
