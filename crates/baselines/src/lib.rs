//! Baseline storage-virtualization stacks (§V-B comparators).
//!
//! Every solution the paper benchmarks against NVMetro, rebuilt over the
//! same guest-queue / device substrates so the workload driver is
//! solution-agnostic:
//!
//! * [`passthrough`] — direct PCIe passthrough: the guest's queues *are*
//!   device queues; completions arrive by forwarded interrupt.
//! * [`mdev`] — MDev-NVMe (Levitsky's mediated device): shadow queues with
//!   active polling and in-module LBA translation — the system NVMetro
//!   extends. Implemented as an NVMetro router with a native translating
//!   classifier and MDev's cost profile (no vbpf interpretation).
//! * [`vhost`] — in-kernel `vhost-scsi`: virtio kick, vhost worker kthread,
//!   SCSI translation, host block layer (optionally under a device-mapper
//!   target for dm-crypt / dm-mirror), interrupt completion.
//! * [`qemu`] — QEMU `virtio-blk` with the io_uring backend: trap + thread
//!   handoff latencies, per-batch amortization, multiple iothreads, and
//!   sequential request merging (why it wins at 16K/QD128, §V-B).
//! * [`spdk`] — SPDK vhost-user: a busy-polling userspace reactor with an
//!   exclusively-owned device.

pub mod mdev;
pub mod passthrough;
pub mod qemu;
pub mod spdk;
pub mod vhost;

pub use mdev::build_mdev_router;
pub use passthrough::bind_passthrough;
pub use qemu::QemuVirtioBlk;
pub use spdk::SpdkVhost;
pub use vhost::VhostScsi;
