//! MDev-NVMe (mediated pass-through with active polling).
//!
//! "NVMetro adds routing on top of the MDev-NVMe storage virtualization
//! system" (§III-B) — so the most faithful model of MDev is NVMetro's own
//! router with (a) MDev's per-command mediation cost instead of
//! router+classifier costs, and (b) a *native* classifier that performs
//! the LBA translation MDev does inside its kernel module, then always
//! takes the fast path. This is also the ablation point for measuring
//! what NVMetro's flexibility costs over raw mediation.

use nvmetro_core::classify::{verdict_bits, NativeClassifier, RequestCtx, Verdict};
use nvmetro_core::engine::RouterBuilder;
use nvmetro_sim::cost::CostModel;

/// The in-module LBA translation MDev performs.
pub struct MdevTranslate {
    /// Partition offset added to every LBA.
    pub lba_offset: u64,
}

impl NativeClassifier for MdevTranslate {
    fn classify(&mut self, ctx: &mut RequestCtx) -> Verdict {
        ctx.set_slba(ctx.slba() + self.lba_offset);
        Verdict(verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
    }
}

/// Builds a [`RouterBuilder`] configured as MDev-NVMe: per-command cost
/// `mdev_cmd`, zero classifier-interpretation cost. Bind VMs with
/// [`RouterBuilder::vm`] using a [`MdevTranslate`] classifier.
pub fn build_mdev_router(cost: &CostModel) -> RouterBuilder {
    let mut mdev_cost = cost.clone();
    mdev_cost.router_cmd = cost.mdev_cmd;
    mdev_cost.classifier_run = 0;
    RouterBuilder::new("mdev").cost(mdev_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_core::classify::{Classifier, HOOK_VSQ};
    use nvmetro_core::router::VmBinding;
    use nvmetro_core::{Partition, VirtualController, VmConfig};
    use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
    use nvmetro_nvme::{CqPair, SqPair, Status, SubmissionEntry};
    use nvmetro_sim::Executor;

    #[test]
    fn translate_classifier_offsets_lbas() {
        let mut t = MdevTranslate { lba_offset: 500 };
        let cmd = SubmissionEntry::read(1, 7, 1, 0, 0);
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let v = t.classify(&mut ctx);
        assert_eq!(ctx.slba(), 507);
        assert_eq!(v.send_mask(), 1);
    }

    #[test]
    fn mdev_serves_partitioned_vm() {
        let cost = CostModel::default();
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 1 << 16,
                ..Default::default()
            },
        );
        let store = ssd.store();
        let partition = Partition {
            lba_offset: 2048,
            lba_count: 1024,
        };
        let mut vc = VirtualController::new(VmConfig {
            mem_bytes: 1 << 24,
            partition,
            ..Default::default()
        });
        let mem = vc.memory();
        let (gsq, gcq) = vc.take_guest_queue(0);
        let (vsqs, vcqs) = vc.take_router_queues();
        let (hsq_p, hsq_c) = SqPair::new(64);
        let (hcq_p, hcq_c) = CqPair::new(64);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        let engine = build_mdev_router(&cost)
            .table_capacity(256)
            .vm(VmBinding {
                vm_id: 0,
                mem: mem.clone(),
                partition,
                vsqs,
                vcqs,
                hsq: hsq_p,
                hcq: hcq_c,
                kernel: None,
                notify: None,
                classifier: Classifier::Native(Box::new(MdevTranslate { lba_offset: 2048 })),
            })
            .build();
        let data = vec![0xCDu8; 512];
        let gpa = mem.alloc(512);
        mem.write(gpa, &data);
        let (p1, p2) = nvmetro_mem::build_prps(&mem, gpa, 512);
        gsq.push(SubmissionEntry::write(1, 10, 1, p1, p2)).unwrap();
        let mut ex = Executor::new();
        engine.run_virtual(&mut ex);
        ex.add(Box::new(ssd));
        ex.run(u64::MAX);
        assert_eq!(gcq.pop().unwrap().status(), Status::SUCCESS);
        assert_eq!(store.read_vec(2058, 1), data, "LBA translated in-module");
    }
}
