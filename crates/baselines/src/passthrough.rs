//! Direct PCIe passthrough.
//!
//! The guest NVMe driver talks straight to hardware: no host software is
//! in the data path at all. Its queue pair is registered on the device in
//! interrupt mode, so completions pay interrupt forwarding into the guest
//! (Fig. 4's +18.2% median read latency) but almost no host CPU.

use nvmetro_core::VirtualController;
use nvmetro_device::{CompletionMode, QueueHandle, SimSsd};

/// Wires all of a controller's queue pairs directly onto the device.
/// Returns the device queue handles.
pub fn bind_passthrough(ssd: &mut SimSsd, vc: &mut VirtualController) -> Vec<QueueHandle> {
    let mem = vc.memory();
    let (sqs, cqs) = vc.take_router_queues();
    sqs.into_iter()
        .zip(cqs)
        .map(|(sq, cq)| ssd.add_queue(sq, cq, mem.clone(), CompletionMode::Interrupt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_core::VmConfig;
    use nvmetro_device::SsdConfig;
    use nvmetro_nvme::{Status, SubmissionEntry};
    use nvmetro_sim::{Actor, Executor};

    #[test]
    fn guest_reaches_hardware_directly() {
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 1 << 16,
                ..Default::default()
            },
        );
        let mut vc = VirtualController::new(VmConfig {
            mem_bytes: 1 << 24,
            ..Default::default()
        });
        let mem = vc.memory();
        let (gsq, gcq) = vc.take_guest_queue(0);
        bind_passthrough(&mut ssd, &mut vc);

        let data = vec![0xABu8; 512];
        let gpa = mem.alloc(512);
        mem.write(gpa, &data);
        let (p1, p2) = nvmetro_mem::build_prps(&mem, gpa, 512);
        gsq.push(SubmissionEntry::write(1, 3, 1, p1, p2)).unwrap();

        let mut ex = Executor::new();
        let store = ssd.store();
        ex.add(Box::new(ssd));
        ex.run(u64::MAX);
        assert_eq!(gcq.pop().unwrap().status(), Status::SUCCESS);
        assert_eq!(store.read_vec(3, 1), data);
    }

    #[test]
    fn completion_pays_interrupt_latency() {
        let cost = nvmetro_sim::cost::CostModel::default();
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 1 << 16,
                move_data: false,
                ..Default::default()
            },
        );
        let mut vc = VirtualController::new(VmConfig {
            mem_bytes: 1 << 24,
            ..Default::default()
        });
        let (gsq, gcq) = vc.take_guest_queue(0);
        bind_passthrough(&mut ssd, &mut vc);
        gsq.push(SubmissionEntry::read(1, 0, 1, 0x1000, 0)).unwrap();
        ssd.poll(0);
        let finish = ssd.next_event().unwrap();
        assert!(
            finish >= cost.ssd_read_lat / 2 + cost.guest_irq_inject,
            "completion at {finish} must include irq injection"
        );
        ssd.poll(finish);
        assert!(gcq.pop().is_some());
    }
}
