//! QEMU `virtio-blk` with the io_uring backend.
//!
//! Virtual I/O traps to KVM, is relayed to a QEMU iothread (a thread
//! handoff each way), and is submitted via io_uring. Two effects the paper
//! observes are modeled explicitly:
//!
//! * per-batch costs amortize at high queue depth and requests spread over
//!   several iothreads — QEMU "regains performance at higher QDs,
//!   potentially due to it redistributing I/O requests across multiple
//!   worker threads" (§V-B);
//! * the host stack *merges* adjacent sequential requests before they hit
//!   the device, amortizing the device's per-command overhead — why QEMU
//!   is 19-32% *faster* than NVMetro at 16K/QD128/1 job.
//!
//! At QD1 every request pays the full trap + two handoffs: the 3.4x/4.1x
//! median latencies of Fig. 4.

use nvmetro_nvme::{
    CompletionEntry, CqConsumer, CqProducer, NvmOpcode, SqConsumer, SqProducer, Status,
    SubmissionEntry,
};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, Station};
use std::collections::HashMap;

/// Maximum bytes the host stack merges into one device command (Linux's
/// default `max_sectors_kb`-ish bound).
const MERGE_LIMIT_BYTES: usize = 128 * 1024;

struct Pending {
    vsq: u16,
    cid: u16,
}

/// A (possibly merged) run of guest requests bound for one device command.
struct Group {
    cmd: SubmissionEntry,
    members: Vec<Pending>,
}

/// The QEMU virtio-blk stack for one VM.
pub struct QemuVirtioBlk {
    name: String,
    cost: CostModel,
    vsqs: Vec<SqConsumer>,
    vcqs: Vec<CqProducer>,
    iothreads: Station<Group>,
    completion: Station<(Vec<Pending>, Status)>,
    dev_sq: SqProducer,
    dev_cq: CqConsumer,
    lba_offset: u64,
    /// Merge adjacent sequential requests (disable when real guest data
    /// must flow, since merged commands reuse the head request's PRPs).
    merge: bool,
    groups: HashMap<u16, Vec<Pending>>,
    next_cid: u16,
    served: u64,
    merged_away: u64,
}

impl QemuVirtioBlk {
    /// Builds the stack over the VM's virtio queues and the backend file's
    /// device queue pair.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        cost: CostModel,
        vsqs: Vec<SqConsumer>,
        vcqs: Vec<CqProducer>,
        dev_sq: SqProducer,
        dev_cq: CqConsumer,
        lba_offset: u64,
        merge: bool,
    ) -> Self {
        let iothreads = Station::new(cost.qemu_iothreads.max(1));
        QemuVirtioBlk {
            name: name.to_string(),
            cost,
            vsqs,
            vcqs,
            iothreads,
            completion: Station::new(1),
            dev_sq,
            dev_cq,
            lba_offset,
            merge,
            groups: HashMap::new(),
            next_cid: 0,
            served: 0,
            merged_away: 0,
        }
    }

    /// Guest requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Guest requests that were absorbed into a merged device command.
    pub fn merged_away(&self) -> u64 {
        self.merged_away
    }

    fn alloc_cid(&mut self) -> u16 {
        loop {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            if !self.groups.contains_key(&cid) {
                return cid;
            }
        }
    }

    fn submit_group(&mut self, head: SubmissionEntry, members: Vec<Pending>) {
        let mut cmd = head;
        cmd.set_slba(head.slba() + self.lba_offset);
        let total_blocks: u32 = head.nlb() * members.len() as u32;
        cmd.cdw12 = (cmd.cdw12 & !0xFFFF) | (total_blocks - 1);
        let cid = self.alloc_cid();
        cmd.cid = cid;
        self.merged_away += members.len() as u64 - 1;
        self.groups.insert(cid, members);
        self.dev_sq.push(cmd).expect("device queue sized");
    }
}

impl Actor for QemuVirtioBlk {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        // Guest traps: drain each ring, merge adjacent sequential requests
        // (the host block layer's plugging/merging on the io_uring path),
        // and relay merged runs into an iothread; a fresh batch pays the
        // fixed io_uring_enter / ring-scan cost.
        for vsq in 0..self.vsqs.len() {
            let mut ready: Vec<SubmissionEntry> = Vec::new();
            while let Some((cmd, _)) = self.vsqs[vsq].pop() {
                ready.push(cmd);
            }
            if ready.is_empty() {
                continue;
            }
            progressed = true;
            let mut i = 0;
            while i < ready.len() {
                let head = ready[i];
                let mut members = vec![Pending {
                    vsq: vsq as u16,
                    cid: head.cid,
                }];
                let mut next_lba = head.slba() + head.nlb() as u64;
                let mut bytes = head.data_len();
                let mergeable = self.merge
                    && matches!(
                        head.nvm_opcode(),
                        Some(NvmOpcode::Read) | Some(NvmOpcode::Write)
                    );
                let mut j = i + 1;
                while mergeable && j < ready.len() {
                    let cand = &ready[j];
                    let same_dir = cand.opcode == head.opcode;
                    let contiguous = cand.slba() == next_lba && cand.nlb() == head.nlb();
                    if same_dir && contiguous && bytes + cand.data_len() <= MERGE_LIMIT_BYTES {
                        members.push(Pending {
                            vsq: vsq as u16,
                            cid: cand.cid,
                        });
                        next_lba += cand.nlb() as u64;
                        bytes += cand.data_len();
                        j += 1;
                    } else {
                        break;
                    }
                }
                i = j;
                let batch_cost = if self.iothreads.is_empty() {
                    self.cost.qemu_batch
                } else {
                    0
                };
                let arrival = now + self.cost.qemu_trap + self.cost.qemu_handoff;
                // Per-request iothread work is still paid per guest request.
                let cost = self.cost.qemu_request * members.len() as u64 + batch_cost;
                self.iothreads
                    .push(Group { cmd: head, members }, cost, arrival);
            }
        }
        // Iothread output: submit merged runs to the device via io_uring.
        while let Some((group, _)) = self.iothreads.pop_done_timed(now) {
            progressed = true;
            self.submit_group(group.cmd, group.members);
        }
        // Backend completions: handoff back + virtio interrupt. A merged
        // run completes all its members in one interrupt (keeping the
        // guest's resubmission bursty, which is what sustains merging).
        while let Some(cqe) = self.dev_cq.pop() {
            progressed = true;
            if let Some(members) = self.groups.remove(&cqe.cid) {
                self.completion.push(
                    (members, cqe.status()),
                    600,
                    now + self.cost.qemu_handoff + self.cost.guest_irq_inject,
                );
            }
        }
        while let Some((members, status)) = self.completion.pop_done(now) {
            progressed = true;
            for m in members {
                self.served += 1;
                let _ = self.vcqs[m.vsq as usize].push(CompletionEntry::new(m.cid, status));
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        [self.iothreads.next_event(), self.completion.next_event()]
            .into_iter()
            .flatten()
            .min()
    }

    fn charged(&self) -> Ns {
        self.iothreads.charged() + self.completion.charged()
    }

    fn cpu_mode(&self) -> CpuMode {
        // QEMU's iothreads poll with a short window, then sleep.
        CpuMode::Adaptive {
            idle_timeout: self.cost.qemu_poll_timeout,
        }
    }
}
