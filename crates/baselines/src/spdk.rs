//! SPDK vhost-user.
//!
//! A userspace reactor owns the device exclusively through a polled-mode
//! driver: no kicks, no interrupts, no kernel. Per-request costs are the
//! lowest of any solution and tail latencies are excellent (Fig. 4's
//! lowest p99 writes), but the reactor burns its core unconditionally —
//! the highest CPU consumer in Fig. 11 (≈ +56% at 512B/QD128/4 jobs).

use nvmetro_nvme::{
    CompletionEntry, CqConsumer, CqProducer, SqConsumer, SqProducer, SubmissionEntry,
};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, Station};
use std::collections::HashMap;

enum ReactorWork {
    Submit {
        vsq: u16,
        cmd: SubmissionEntry,
    },
    Complete {
        vsq: u16,
        cid: u16,
        status: nvmetro_nvme::Status,
    },
}

/// The SPDK vhost-user stack for one VM.
pub struct SpdkVhost {
    name: String,
    cost: CostModel,
    vsqs: Vec<SqConsumer>,
    vcqs: Vec<CqProducer>,
    reactor: Station<ReactorWork>,
    dev_sq: SqProducer,
    dev_cq: CqConsumer,
    in_flight: HashMap<u16, (u16, u16)>,
    next_cid: u16,
    lba_offset: u64,
    served: u64,
}

impl SpdkVhost {
    /// Builds the stack; `(dev_sq, dev_cq)` is the reactor's exclusive
    /// polled queue pair on the device.
    pub fn new(
        name: &str,
        cost: CostModel,
        vsqs: Vec<SqConsumer>,
        vcqs: Vec<CqProducer>,
        dev_sq: SqProducer,
        dev_cq: CqConsumer,
        lba_offset: u64,
    ) -> Self {
        SpdkVhost {
            name: name.to_string(),
            cost,
            vsqs,
            vcqs,
            reactor: Station::new(1), // one reactor core
            dev_sq,
            dev_cq,
            in_flight: HashMap::new(),
            next_cid: 0,
            lba_offset,
            served: 0,
        }
    }

    /// Guest requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn alloc_cid(&mut self) -> u16 {
        loop {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            if !self.in_flight.contains_key(&cid) {
                return cid;
            }
        }
    }
}

impl Actor for SpdkVhost {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        // The reactor polls the virtio rings directly: no kick latency.
        for vsq in 0..self.vsqs.len() {
            while let Some((cmd, _)) = self.vsqs[vsq].pop() {
                self.reactor.push(
                    ReactorWork::Submit {
                        vsq: vsq as u16,
                        cmd,
                    },
                    self.cost.spdk_request,
                    now,
                );
                progressed = true;
            }
        }
        while let Some(cqe) = self.dev_cq.pop() {
            if let Some((vsq, cid)) = self.in_flight.remove(&cqe.cid) {
                self.reactor.push(
                    ReactorWork::Complete {
                        vsq,
                        cid,
                        status: cqe.status(),
                    },
                    self.cost.spdk_request / 2,
                    now,
                );
                progressed = true;
            }
        }
        while let Some(work) = self.reactor.pop_done(now) {
            progressed = true;
            match work {
                ReactorWork::Submit { vsq, cmd } => {
                    let cid = self.alloc_cid();
                    let mut fwd = cmd;
                    fwd.set_slba(cmd.slba() + self.lba_offset);
                    fwd.cid = cid;
                    self.in_flight.insert(cid, (vsq, cmd.cid));
                    self.dev_sq.push(fwd).expect("device queue sized");
                }
                ReactorWork::Complete { vsq, cid, status } => {
                    self.served += 1;
                    let _ = self.vcqs[vsq as usize].push(CompletionEntry::new(cid, status));
                }
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        self.reactor.next_event()
    }

    fn charged(&self) -> Ns {
        self.reactor.charged()
    }

    fn cpu_mode(&self) -> CpuMode {
        // The defining SPDK property: the reactor never sleeps.
        CpuMode::BusyPoll
    }
}
