//! In-kernel `vhost-scsi`.
//!
//! The guest's virtio kick traps to KVM and wakes the vhost worker
//! kthread, which translates the SCSI request and submits it through the
//! host block layer (optionally under a device-mapper target — this is how
//! `dm-crypt+vhost-scsi` and `dm-mirror+vhost-scsi` are built in §V-C/D).
//! Completions are injected back as virtual interrupts. No polling
//! anywhere: cheap on CPU (second only to passthrough in Fig. 11), but
//! every request pays wakeup latencies (+73.6%/+97.6% median latency in
//! Fig. 4).

use nvmetro_kernel::{DmRequest, KernelDm};
use nvmetro_nvme::{CompletionEntry, CqProducer, NvmOpcode, SqConsumer, Status, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, Station};

enum WorkerItem {
    Submit { vsq: u16, cmd: SubmissionEntry },
    Complete { vsq: u16, cid: u16, status: Status },
}

/// The vhost-scsi stack for one VM.
pub struct VhostScsi {
    name: String,
    cost: CostModel,
    vsqs: Vec<SqConsumer>,
    vcqs: Vec<CqProducer>,
    worker: Station<WorkerItem>,
    dm: KernelDm,
    dm_out: Vec<(u64, Status)>,
    served: u64,
}

impl VhostScsi {
    /// Builds the stack over the VM's virtio queues and a kernel DM stack
    /// (use `DmConfig::Linear` for a plain partition, `Crypt`/`Mirror` for
    /// the storage-function baselines).
    pub fn new(
        name: &str,
        cost: CostModel,
        vsqs: Vec<SqConsumer>,
        vcqs: Vec<CqProducer>,
        dm: KernelDm,
    ) -> Self {
        VhostScsi {
            name: name.to_string(),
            cost,
            vsqs,
            vcqs,
            worker: Station::new(1), // one vhost kthread per device
            dm,
            dm_out: Vec::new(),
            served: 0,
        }
    }

    /// Requests fully served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl Actor for VhostScsi {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        // Guest kicks: wake the worker (latency), then per-request work.
        for vsq in 0..self.vsqs.len() {
            while let Some((cmd, _)) = self.vsqs[vsq].pop() {
                let arrival = now + self.cost.virtio_kick + self.cost.vhost_wakeup;
                self.worker.push(
                    WorkerItem::Submit {
                        vsq: vsq as u16,
                        cmd,
                    },
                    self.cost.vhost_request,
                    arrival,
                );
                progressed = true;
            }
        }
        // DM stack progress: its completions re-enter the SAME worker
        // kthread (response ring update + interrupt), which is what caps
        // the vhost pipeline under load.
        self.dm.poll(now);
        self.dm_out.clear();
        self.dm.take_done(&mut self.dm_out);
        let done: Vec<(u64, Status)> = self.dm_out.drain(..).collect();
        for (user, status) in done {
            progressed = true;
            // The guest observes the completion only after the virtual
            // interrupt is injected; fold that latency into the arrival.
            self.worker.push(
                WorkerItem::Complete {
                    vsq: (user >> 16) as u16,
                    cid: (user & 0xFFFF) as u16,
                    status,
                },
                self.cost.vhost_complete,
                now + self.cost.guest_irq_inject,
            );
        }
        // Worker output: submissions feed the block/DM stack; completions
        // are injected into the guest after interrupt-delivery latency
        // (the guest job models the delivery delay via the device path,
        // so here the status lands in the VCQ directly).
        while let Some((item, t)) = self.worker.pop_done_timed(now) {
            progressed = true;
            match item {
                WorkerItem::Submit { vsq, cmd } => match cmd.nvm_opcode() {
                    Some(NvmOpcode::Read) | Some(NvmOpcode::Write) => {
                        let user = ((vsq as u64) << 16) | cmd.cid as u64;
                        self.dm.submit(
                            DmRequest {
                                user,
                                write: cmd.nvm_opcode() == Some(NvmOpcode::Write),
                                slba: cmd.slba(),
                                nlb: cmd.nlb(),
                                prp1: cmd.prp1,
                                prp2: cmd.prp2,
                            },
                            t,
                        );
                    }
                    Some(NvmOpcode::Flush) => {
                        // SYNCHRONIZE CACHE: acknowledge directly.
                        self.served += 1;
                        let _ = self.vcqs[vsq as usize]
                            .push(CompletionEntry::new(cmd.cid, Status::SUCCESS));
                    }
                    _ => {
                        // The SCSI translation layer cannot express it
                        // ("the large software stack complexifies the
                        // implementation of certain I/O commands", §III-B).
                        self.served += 1;
                        let _ = self.vcqs[vsq as usize]
                            .push(CompletionEntry::new(cmd.cid, Status::INVALID_OPCODE));
                    }
                },
                WorkerItem::Complete { vsq, cid, status } => {
                    self.served += 1;
                    let _ = self.vcqs[vsq as usize].push(CompletionEntry::new(cid, status));
                }
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        [self.worker.next_event(), self.dm.next_event()]
            .into_iter()
            .flatten()
            .min()
    }

    fn charged(&self) -> Ns {
        self.worker.charged() + self.dm.charged()
    }

    fn cpu_mode(&self) -> CpuMode {
        // The vhost kthread sleeps between kicks.
        CpuMode::EventDriven
    }
}
