//! Ablation — what does classification cost, and what does the shortcut
//! fast path buy?
//!
//! Three NVMetro configurations on the same workload:
//!
//! * **interpreted** — the deployed setup: verified vbpf classifier,
//!   interpreted on every routing decision;
//! * **native** — the same logic as compiled Rust (what an eBPF JIT would
//!   approach): isolates pure interpretation overhead;
//! * **always-notify** — a classifier that sends *every* request through
//!   the UIF notify path: what the paper's architecture avoids by
//!   "shortcut processing of I/O requests" (§III-B). The gap to the
//!   first two is the value of classification itself.

use nvmetro_bench::{bench_duration, default_opts};
use nvmetro_core::classify::{verdict_bits, Classifier, NativeClassifier, RequestCtx, Verdict};
use nvmetro_core::uif::{Uif, UifDisposition, UifRequest};
use nvmetro_nvme::Status;
use nvmetro_stats::Table;
use nvmetro_workloads::fio::{FioConfig, FioMode};
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

struct NativePassthrough;
impl NativeClassifier for NativePassthrough {
    fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
        Verdict(verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
    }
}

/// A UIF that forwards everything to disk itself (no transformation) —
/// the "no shortcut" strawman.
struct ForwardUif;
impl Uif for ForwardUif {
    fn work(&mut self, req: &mut UifRequest<'_>) -> UifDisposition {
        match req.opcode() {
            Some(op) if op.is_read() || op.is_write() => {
                let (slba, nlb, tag) = (req.cmd.slba(), req.cmd.nlb(), req.tag);
                if op.is_write() {
                    req.io().write(slba, nlb, None, tag as u64);
                } else {
                    req.io().read(slba, nlb, tag as u64);
                }
                UifDisposition::Async
            }
            _ => UifDisposition::Respond(Status::SUCCESS),
        }
    }
}

struct AlwaysNotify;
impl NativeClassifier for AlwaysNotify {
    fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
        Verdict(verdict_bits::SEND_NQ | verdict_bits::WILL_COMPLETE_NQ)
    }
}

fn main() {
    use nvmetro_core::router::NotifyBinding;
    use nvmetro_core::uif::UifRunner;
    use nvmetro_mem::GuestMemory;
    use nvmetro_nvme::{CqPair, SqPair};
    use std::sync::Arc;

    let mut table = Table::new(
        "Ablation: classifier execution mode and shortcut value (512B RR)",
        &[
            "variant",
            "qd=1 kIOPS",
            "qd=128 kIOPS",
            "qd=128 cpu (cores)",
        ],
    );
    let opts = default_opts();

    // Interpreted vbpf (the standard rig).
    let mut row = vec!["vbpf interpreted".to_string()];
    let mut p50 = 0.0;
    for qd in [1u32, 128] {
        let mut cfg = FioConfig::new(512, FioMode::RandRead, qd, 1);
        cfg.duration = bench_duration();
        let r = run_fio(SolutionKind::Nvmetro, &cfg, &opts);
        row.push(format!("{:.1}", r.kiops()));
        p50 = r.cpu_cores;
    }
    row.push(format!("{p50:.2}"));
    table.row(&row);

    // Native (JIT-like) and always-notify need custom rigs: reuse the
    // MDev builder for native (identical data path, native classifier)
    // and hand-build the notify-everything variant.
    let mut row = vec!["native (JIT-like)".to_string()];
    let mut p50 = 0.0;
    for qd in [1u32, 128] {
        let mut cfg = FioConfig::new(512, FioMode::RandRead, qd, 1);
        cfg.duration = bench_duration();
        let r = run_fio(SolutionKind::Mdev, &cfg, &opts);
        row.push(format!("{:.1}", r.kiops()));
        p50 = r.cpu_cores;
    }
    row.push(format!("{p50:.2}"));
    table.row(&row);

    // Always-notify: every I/O detours through a UIF.
    let mut row = vec!["always-notify (no shortcut)".to_string()];
    let mut p50_last = 0.0;
    for qd in [1u32, 128] {
        let mut cfg = FioConfig::new(512, FioMode::RandRead, qd, 1);
        cfg.duration = bench_duration();
        let mut jobs = Vec::new();
        let cost = opts.cost.clone();
        let cfg2 = cfg.clone();
        // Build an NVMetro rig, then swap in the always-notify classifier
        // and a forwarding UIF per VM by constructing it directly.
        let mut uif_bits: Vec<(nvmetro_nvme::SqProducer, nvmetro_nvme::CqConsumer)> = Vec::new();
        let _ = &mut uif_bits;
        let ex = {
            // The standard builder covers the encrypt variant's plumbing;
            // here we assemble manually for full control.
            let mut ex = nvmetro_sim::Executor::new();
            let mut ssd = nvmetro_device::SimSsd::new(
                "ssd",
                nvmetro_device::SsdConfig {
                    capacity_lbas: opts.capacity_lbas,
                    cost: cost.clone(),
                    move_data: false,
                    seed: opts.seed,
                    transport: None,
                    faults: nvmetro_faults::FaultPlan::none(),
                },
            );
            let mut vc = nvmetro_core::VirtualController::new(nvmetro_core::VmConfig {
                id: 0,
                mem_bytes: 1 << 24,
                queue_pairs: 1,
                queue_depth: 1024,
                partition: nvmetro_core::Partition::whole(opts.capacity_lbas),
            });
            let mem = vc.memory();
            let (gsq, gcq) = vc.take_guest_queue(0);
            let (vsqs, vcqs) = vc.take_router_queues();
            let (job, stats) = nvmetro_workloads::fio::FioJob::new(
                "fio",
                cfg2.clone(),
                cost.clone(),
                gsq,
                gcq,
                0,
                opts.capacity_lbas / 2,
                opts.seed,
            );
            jobs.push(stats);
            ex.add(Box::new(job));
            let (hsq_p, hsq_c) = SqPair::new(4096);
            let (hcq_p, hcq_c) = CqPair::new(4096);
            ssd.add_queue(
                hsq_c,
                hcq_p,
                mem.clone(),
                nvmetro_device::CompletionMode::Polled,
            );
            let (nsq_p, nsq_c) = SqPair::new(4096);
            let (ncq_p, ncq_c) = CqPair::new(4096);
            let (bsq_p, bsq_c) = SqPair::new(4096);
            let (bcq_p, bcq_c) = CqPair::new(4096);
            let host_mem = Arc::new(GuestMemory::new(1 << 24));
            ssd.add_queue(
                bsq_c,
                bcq_p,
                host_mem.clone(),
                nvmetro_device::CompletionMode::Polled,
            );
            let runner = UifRunner::new(
                "uif-forward",
                cost.clone(),
                nsq_c,
                ncq_p,
                mem.clone(),
                (bsq_p, bcq_c),
                host_mem,
                Box::new(ForwardUif),
                1,
                false,
            );
            ex.add(Box::new(runner));
            let mut router = nvmetro_core::Router::new("router", cost.clone(), 1, 4096);
            router.bind_vm(nvmetro_core::VmBinding {
                vm_id: 0,
                mem: mem.clone(),
                partition: nvmetro_core::Partition::whole(opts.capacity_lbas),
                vsqs,
                vcqs,
                hsq: hsq_p,
                hcq: hcq_c,
                kernel: None,
                notify: Some(NotifyBinding {
                    nsq: nsq_p,
                    ncq: ncq_c,
                }),
                classifier: Classifier::Native(Box::new(AlwaysNotify)),
            });
            ex.add(Box::new(router));
            ex.add(Box::new(ssd));
            ex
        };
        let mut ex = ex;
        let report = ex.run(u64::MAX);
        let completed: u64 = jobs
            .iter()
            .map(|j| j.completed.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        let kiops = completed as f64 * 1e9 / report.duration.max(1) as f64 / 1e3;
        row.push(format!("{kiops:.1}"));
        p50_last = report.cpu_cores();
    }
    row.push(format!("{p50_last:.2}"));
    table.row(&row);

    let _: Option<Box<dyn NativeClassifier>> = Some(Box::new(NativePassthrough));

    table.print();
    println!(
        "\nReading: interpreted vs native isolates vbpf interpretation cost\n\
         (~{} ns/invocation, invisible against a ~60us device); always-notify\n\
         shows the shortcut's value as the extra CPU of detouring every\n\
         request through a UIF (and would cost throughput on any\n\
         faster-than-flash device).",
        opts.cost.classifier_run
    );
}
