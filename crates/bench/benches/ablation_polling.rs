//! Ablation — adaptive polling and router worker provisioning.
//!
//! Two design choices called out in §III: router workers poll adaptively
//! (spin for a bounded window, then park on OS-assisted waiting), and one
//! worker thread is shared by all VMs. This harness sweeps both:
//!
//! * the idle-timeout window: 0 (park immediately) → paper default
//!   (120 us) → effectively-infinite (pure busy polling), showing the
//!   CPU-vs-none tradeoff the adaptive scheme navigates;
//! * router worker count at saturating load, showing one worker suffices
//!   far beyond the device's throughput.

use nvmetro_bench::{bench_duration, default_opts};
use nvmetro_sim::US;
use nvmetro_stats::Table;
use nvmetro_workloads::fio::{FioConfig, FioMode};
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    // --- idle timeout sweep (QD1: gaps between I/Os dominate) ---
    let mut table = Table::new(
        "Ablation: adaptive-polling idle timeout (NVMetro, 512B RR QD1)",
        &["idle timeout", "kIOPS", "avg busy cores"],
    );
    for (label, timeout) in [
        ("0 (event driven)", 0u64),
        ("5 us", 5 * US),
        ("120 us (paper)", 120 * US),
        ("10 ms (~busy poll)", 10_000 * US),
    ] {
        let mut opts = default_opts();
        opts.cost.adaptive_idle_timeout = timeout;
        let mut cfg = FioConfig::new(512, FioMode::RandRead, 1, 1);
        cfg.duration = bench_duration();
        let r = run_fio(SolutionKind::Nvmetro, &cfg, &opts);
        table.row(&[
            label.to_string(),
            format!("{:.1}", r.kiops()),
            format!("{:.2}", r.cpu_cores),
        ]);
    }
    table.print();
    println!();

    // --- shared worker sufficiency: load the single worker with VMs ---
    let mut table = Table::new(
        "Ablation: one shared router worker under increasing VM count (512B RR QD32)",
        &["VMs", "total kIOPS", "router-limited?"],
    );
    let mut prev = 0.0;
    for vms in [1usize, 2, 4, 8] {
        let mut opts = default_opts();
        opts.vms = vms;
        let mut cfg = FioConfig::new(512, FioMode::RandRead, 32, 1);
        cfg.duration = bench_duration();
        let r = run_fio(SolutionKind::Nvmetro, &cfg, &opts);
        let limited = if vms > 1 && r.kiops() < prev * 1.05 {
            "approaching limit"
        } else {
            "no"
        };
        table.row(&[
            vms.to_string(),
            format!("{:.1}", r.kiops()),
            limited.to_string(),
        ]);
        prev = r.kiops();
    }
    table.print();
}
