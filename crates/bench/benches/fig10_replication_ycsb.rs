//! Figure 10 — disk replication under YCSB.
//!
//! Paper anchors: NVMetro beats dm-mirror in every workload/job count;
//! e.g. workload D: +2% at 1 job growing to +17% at 4 jobs.

use nvmetro_bench::{bench_duration, default_opts};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::ycsb::{run_ycsb, YcsbWorkload};

fn main() {
    let solutions = [SolutionKind::NvmetroReplicate, SolutionKind::DmMirror];
    for jobs in [1usize, 4] {
        let mut header = vec!["workload"];
        for s in solutions {
            header.push(s.label());
        }
        header.push("ratio");
        let mut table = Table::new(
            &format!("Fig. 10: YCSB throughput under replication (Kilo ops/sec), jobs={jobs}"),
            &header,
        );
        let opts = default_opts();
        for w in YcsbWorkload::all() {
            let a = run_ycsb(solutions[0], w, jobs, bench_duration() * 2, &opts);
            let b = run_ycsb(solutions[1], w, jobs, bench_duration() * 2, &opts);
            table.row(&[
                w.label().to_string(),
                format!("{:.1}", a.kops_per_sec),
                format!("{:.1}", b.kops_per_sec),
                nvmetro_bench::ratio(a.kops_per_sec, b.kops_per_sec),
            ]);
        }
        table.print();
        println!();
    }
}
