//! Figure 11 — CPU consumption of fio for the basic evaluation.
//!
//! Total system CPU (VM + host agents) per solution. Paper anchors:
//! passthrough lowest everywhere; vhost-scsi second lowest; MDev, NVMetro
//! and QEMU ≈ +85% over passthrough at 512B/QD1/1job and ≈ +26% at
//! 512B/QD128/4jobs (except 128K/QD1 where QEMU is cheaper); SPDK the most
//! expensive under load (≈ +56% at 512B/QD128/4jobs) from reactor polling.

use nvmetro_bench::{default_opts, function_grid, ratio};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let solutions = SolutionKind::basic_six();
    let mut header = vec!["config".to_string()];
    for s in solutions {
        header.push(format!("{} (cores)", s.label()));
    }
    header.push("NVMetro/Passthrough".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 11: CPU consumption of fio (average busy cores over the run)",
        &header_refs,
    );
    let opts = default_opts();
    for cfg in function_grid() {
        let mut row = vec![cfg.label()];
        let mut nvmetro = 0.0;
        let mut passthrough = 0.0;
        for kind in solutions {
            let r = run_fio(kind, &cfg, &opts);
            row.push(format!("{:.2}", r.cpu_cores));
            if kind == SolutionKind::Nvmetro {
                nvmetro = r.cpu_cores;
            }
            if kind == SolutionKind::Passthrough {
                passthrough = r.cpu_cores;
            }
        }
        row.push(ratio(nvmetro, passthrough));
        table.row(&row);
    }
    table.print();
}
