//! Figure 12 — CPU consumption of fio under disk encryption.
//!
//! Paper anchors: at QD1/1job the NVMetro UIF uses ~2.7x/2.4x/2.1x the
//! CPU of dm-crypt (512B/16K/128K) but at 4 jobs it reaches parity and
//! even dips below dm-crypt for 16K/128K reads; the SGX variant costs
//! ~10-12% more CPU than non-SGX at QD1 for the same performance.

use nvmetro_bench::{default_opts, function_grid, ratio};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let solutions = [
        SolutionKind::NvmetroEncrypt { sgx: false },
        SolutionKind::NvmetroEncrypt { sgx: true },
        SolutionKind::DmCrypt,
    ];
    let mut header = vec!["config".to_string()];
    for s in solutions {
        header.push(format!("{} (cores)", s.label()));
    }
    header.push("Encr/dm-crypt".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 12: CPU consumption of fio with disk encryption (avg busy cores)",
        &header_refs,
    );
    let opts = default_opts();
    for cfg in function_grid() {
        let mut row = vec![cfg.label()];
        let mut cores = Vec::new();
        for kind in solutions {
            let r = run_fio(kind, &cfg, &opts);
            row.push(format!("{:.2}", r.cpu_cores));
            cores.push(r.cpu_cores);
        }
        row.push(ratio(cores[0], cores[2]));
        table.row(&row);
    }
    table.print();
}
