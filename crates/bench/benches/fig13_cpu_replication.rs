//! Figure 13 — CPU consumption of fio under disk replication.
//!
//! Paper anchors: NVMetro pays up to +178%/+36%/+76% CPU over dm-mirror
//! at (512B QD1/1job, 512B QD128/4jobs, 128K QD128/4jobs) — buying far
//! higher throughput (poll-based I/O + efficient routing; at 128K
//! reads/QD128/4jobs, +35% CPU for +291% throughput).

use nvmetro_bench::{default_opts, function_grid, ratio};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let solutions = [SolutionKind::NvmetroReplicate, SolutionKind::DmMirror];
    let mut header = vec!["config".to_string()];
    for s in solutions {
        header.push(format!("{} (cores)", s.label()));
    }
    header.push("cpu ratio".into());
    header.push("throughput ratio".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 13: CPU consumption of fio with disk replication (avg busy cores)",
        &header_refs,
    );
    let opts = default_opts();
    for cfg in function_grid() {
        let a = run_fio(solutions[0], &cfg, &opts);
        let b = run_fio(solutions[1], &cfg, &opts);
        table.row(&[
            cfg.label(),
            format!("{:.2}", a.cpu_cores),
            format!("{:.2}", b.cpu_cores),
            ratio(a.cpu_cores, b.cpu_cores),
            ratio(a.iops, b.iops),
        ]);
    }
    table.print();
}
