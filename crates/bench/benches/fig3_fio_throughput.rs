//! Figure 3 — basic fio throughput for every Table II configuration and
//! every storage virtualization method.
//!
//! Paper anchors: NVMetro ≈ MDev ≈ SPDK ≈ passthrough everywhere; QEMU
//! 2.7x slower at 512B RR QD1/1job but the fastest at 16K/QD128/1job
//! (+19..32% over NVMetro); vhost-scsi trails throughout.

use nvmetro_bench::{default_opts, with_duration};
use nvmetro_stats::Table;
use nvmetro_workloads::fio::table2_configs;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let solutions = SolutionKind::basic_six();
    let mut header = vec!["config"];
    for s in solutions {
        header.push(s.label());
    }
    let mut table = Table::new(
        "Fig. 3: fio throughput (Kilo IOPS) per configuration and solution",
        &header,
    );
    let opts = default_opts();
    for cfg in table2_configs() {
        let cfg = with_duration(cfg);
        let mut row = vec![cfg.label()];
        for kind in solutions {
            let r = run_fio(kind, &cfg, &opts);
            assert_eq!(r.errors, 0, "{} errored on {}", kind.label(), cfg.label());
            row.push(format!("{:.1}", r.kiops()));
        }
        table.row(&row);
    }
    table.print();
}
