//! Figure 4 — request latency at a fixed rate of 10,000 IOPS.
//!
//! Columns are median latency, whiskers p99 in the paper; we print both.
//! Paper anchors: NVMetro ≈ MDev ≈ SPDK (polling); passthrough +18.2%
//! median at 512B RR / +9.1% at RW (interrupt forwarding); vhost
//! +73.6%/+97.6%; QEMU 3.4x/4.1x; SPDK's p99 writes 5.9-18% below
//! NVMetro's.

use nvmetro_bench::{bench_duration, bs_label, default_opts};
use nvmetro_stats::Table;
use nvmetro_workloads::fio::{FioConfig, FioMode};
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let solutions = SolutionKind::basic_six();
    let mut header = vec!["config".to_string()];
    for s in solutions {
        header.push(format!("{} p50/p99 (us)", s.label()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 4: latency at 10k IOPS (median / 99th percentile, microseconds)",
        &header_refs,
    );
    let opts = default_opts();
    for bs in [512usize, 16 * 1024, 128 * 1024] {
        for qd in [1u32, 4, 32, 128] {
            for mode in [FioMode::RandRead, FioMode::RandWrite] {
                let mut cfg = FioConfig::new(bs, mode, qd, 1);
                cfg.rate_iops = Some(10_000);
                cfg.duration = bench_duration() * 8; // need tail samples
                let mut row = vec![format!("{} qd={} {}", bs_label(bs), qd, mode.abbrev())];
                for kind in solutions {
                    let r = run_fio(kind, &cfg, &opts);
                    row.push(format!(
                        "{:.1}/{:.1}",
                        r.median_ns as f64 / 1000.0,
                        r.p99_ns as f64 / 1000.0
                    ));
                }
                table.row(&row);
            }
        }
    }
    table.print();
}
