//! Figure 5 — NVMetro scalability with the number of VMs.
//!
//! Each VM gets a dedicated partition of a shared namespace and 1 job;
//! ONE router worker thread serves all VMs round-robin (§V-B). Paper
//! anchor: system throughput grows as VMs are added, at every queue depth.

use nvmetro_bench::{bench_duration, default_opts};
use nvmetro_stats::Table;
use nvmetro_workloads::fio::{FioConfig, FioMode};
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let vm_counts = [1usize, 2, 4, 8];
    let mut header = vec!["config".to_string()];
    for v in vm_counts {
        header.push(format!("{v} VMs (kIOPS)"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 5: NVMetro total throughput vs VM count (512B, 1 shared router worker)",
        &header_refs,
    );
    for mode in [FioMode::RandRead, FioMode::RandWrite, FioMode::RandRw] {
        for qd in [1u32, 4, 32, 128] {
            let mut row = vec![format!("{} qd={}", mode.abbrev(), qd)];
            let mut prev = 0.0;
            for vms in vm_counts {
                let mut cfg = FioConfig::new(512, mode, qd, 1);
                cfg.duration = bench_duration();
                let mut opts = default_opts();
                opts.vms = vms;
                let r = run_fio(SolutionKind::Nvmetro, &cfg, &opts);
                assert_eq!(r.errors, 0);
                row.push(format!("{:.1}", r.kiops()));
                // Scalability claim: more VMs, more (or equal) throughput.
                let _ = prev;
                prev = r.kiops();
            }
            table.row(&row);
        }
    }
    table.print();
}
