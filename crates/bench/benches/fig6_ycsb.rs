//! Figure 6 — YCSB throughput (workloads A-F) per solution, 1 and 4 jobs.
//!
//! Paper anchors: with 1 job, little variation between solutions (the
//! dataset largely fits the page cache); with 4 parallel jobs the run is
//! I/O-bound and MDev/NVMetro stay within ~3% of passthrough while vhost,
//! SPDK and QEMU fall up to 10%, 31% and 49% behind.

use nvmetro_bench::{bench_duration, default_opts};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::ycsb::{run_ycsb, YcsbWorkload};

fn main() {
    let solutions = SolutionKind::basic_six();
    for jobs in [1usize, 4] {
        let mut header = vec!["workload"];
        for s in solutions {
            header.push(s.label());
        }
        let mut table = Table::new(
            &format!("Fig. 6: YCSB throughput (Kilo ops/sec), jobs={jobs}"),
            &header,
        );
        let opts = default_opts();
        for w in YcsbWorkload::all() {
            let mut row = vec![w.label().to_string()];
            for kind in solutions {
                let r = run_ycsb(kind, w, jobs, bench_duration() * 2, &opts);
                row.push(format!("{:.1}", r.kops_per_sec));
            }
            table.row(&row);
        }
        table.print();
        println!();
    }
}
