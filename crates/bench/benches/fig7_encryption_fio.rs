//! Figure 7 — disk encryption throughput with fio.
//!
//! Paper anchors: the non-SGX UIF beats dm-crypt+vhost-scsi everywhere —
//! 1.6x/1.5x/1.4x at (512B,16K,128K)/QD1/1job, up to 3.2x at 16K reads
//! and 3.7x at 128K under QD128/4jobs. The SGX variant matches non-SGX at
//! low load but loses up to 50%/75% at 16K/128K QD128/4jobs (one crypto
//! worker + EPC pressure).

use nvmetro_bench::ratio;
use nvmetro_bench::{default_opts, function_grid};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let solutions = [
        SolutionKind::NvmetroEncrypt { sgx: false },
        SolutionKind::NvmetroEncrypt { sgx: true },
        SolutionKind::DmCrypt,
    ];
    let mut header = vec!["config".to_string()];
    for s in solutions {
        header.push(format!("{} (kIOPS)", s.label()));
    }
    header.push("Encr/dm-crypt".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Fig. 7: disk encryption, fio throughput", &header_refs);
    let opts = default_opts();
    for cfg in function_grid() {
        let mut row = vec![cfg.label()];
        let mut results = Vec::new();
        for kind in solutions {
            let r = run_fio(kind, &cfg, &opts);
            assert_eq!(r.errors, 0, "{} errored on {}", kind.label(), cfg.label());
            row.push(format!("{:.1}", r.kiops()));
            results.push(r.kiops());
        }
        row.push(ratio(results[0], results[2]));
        table.row(&row);
    }
    table.print();
}
