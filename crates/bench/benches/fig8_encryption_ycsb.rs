//! Figure 8 — disk encryption under YCSB.
//!
//! Paper anchors: non-SGX UIF ≈ dm-crypt under YCSB; the SGX variant is
//! up to 35% slower than non-SGX on workload D at 1 job, recovering to
//! ~-21% at 4 jobs with other workloads roughly at parity.

use nvmetro_bench::{bench_duration, default_opts};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::ycsb::{run_ycsb, YcsbWorkload};

fn main() {
    let solutions = [
        SolutionKind::NvmetroEncrypt { sgx: false },
        SolutionKind::NvmetroEncrypt { sgx: true },
        SolutionKind::DmCrypt,
    ];
    for jobs in [1usize, 4] {
        let mut header = vec!["workload"];
        for s in solutions {
            header.push(s.label());
        }
        let mut table = Table::new(
            &format!("Fig. 8: YCSB throughput under encryption (Kilo ops/sec), jobs={jobs}"),
            &header,
        );
        let opts = default_opts();
        for w in YcsbWorkload::all() {
            let mut row = vec![w.label().to_string()];
            for kind in solutions {
                let r = run_ycsb(kind, w, jobs, bench_duration() * 2, &opts);
                row.push(format!("{:.1}", r.kops_per_sec));
            }
            table.row(&row);
        }
        table.print();
        println!();
    }
}
