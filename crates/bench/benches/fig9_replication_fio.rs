//! Figure 9 — disk replication throughput with fio.
//!
//! Paper anchors: NVMetro's mirroring beats dm-mirror+vhost-scsi at every
//! configuration — +68% at 512B reads/QD1/1job, +220% at 512B
//! reads/QD128/4jobs and +291% at 128K reads/QD128/4jobs, because the
//! classifier passes reads straight to the local fast path while dm-mirror
//! reads still traverse the whole vhost+DM stack.

use nvmetro_bench::{default_opts, function_grid, ratio};
use nvmetro_stats::Table;
use nvmetro_workloads::rig::SolutionKind;
use nvmetro_workloads::runner::run_fio;

fn main() {
    let solutions = [SolutionKind::NvmetroReplicate, SolutionKind::DmMirror];
    let mut header = vec!["config".to_string()];
    for s in solutions {
        header.push(format!("{} (kIOPS)", s.label()));
    }
    header.push("Repl/dm-mirror".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Fig. 9: disk replication, fio throughput", &header_refs);
    let opts = default_opts();
    for cfg in function_grid() {
        let mut row = vec![cfg.label()];
        let mut results = Vec::new();
        for kind in solutions {
            let r = run_fio(kind, &cfg, &opts);
            assert_eq!(r.errors, 0, "{} errored on {}", kind.label(), cfg.label());
            row.push(format!("{:.1}", r.kiops()));
            results.push(r.kiops());
        }
        row.push(ratio(results[0], results[1]));
        table.row(&row);
    }
    table.print();
}
