//! Criterion micro-benchmarks of the crypto substrate: AES block
//! operations and XTS sector throughput (plain and via the simulated SGX
//! enclave interface).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvmetro_crypto::{Aes, SgxEnclave, Xts};

fn bench_aes(c: &mut Criterion) {
    let aes = Aes::new(&[7u8; 32]);
    c.bench_function("aes256/encrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            std::hint::black_box(&block);
        })
    });
}

fn bench_xts(c: &mut Criterion) {
    let xts = Xts::new(&[9u8; 64]);
    let mut g = c.benchmark_group("xts");
    for size in [4096usize, 131072] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("encrypt_{size}"), |b| {
            let mut buf = vec![0u8; size];
            b.iter(|| {
                xts.encrypt_sectors(0, &mut buf);
                std::hint::black_box(&buf);
            })
        });
    }
    g.finish();
}

fn bench_sgx(c: &mut Criterion) {
    let mut enclave = SgxEnclave::create(&[3u8; 64], true);
    c.bench_function("sgx/ecall_encrypt_4k", |b| {
        let mut buf = vec![0u8; 4096];
        b.iter(|| {
            enclave.ecall_encrypt(0, &mut buf);
            std::hint::black_box(&buf);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_aes, bench_xts, bench_sgx
}
criterion_main!(benches);
