//! Criterion micro-benchmarks of the data-path primitives: queue-pair
//! operations, classifier interpretation, verification, PRP walking, and
//! a full router round trip.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvmetro_core::classify::{classifier_verifier_config, Classifier, RequestCtx, HOOK_VSQ};
use nvmetro_core::passthrough_program;
use nvmetro_functions::build_encryptor_classifier;
use nvmetro_mem::{build_prps, prp_segments, GuestMemory};
use nvmetro_nvme::{CompletionEntry, CqPair, SqPair, Status, SubmissionEntry};

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    g.throughput(Throughput::Elements(1));
    let (sq_p, sq_c) = SqPair::new(1024);
    let cmd = SubmissionEntry::read(1, 0, 1, 0, 0);
    g.bench_function("sq_push_pop", |b| {
        b.iter(|| {
            sq_p.push(cmd).unwrap();
            std::hint::black_box(sq_c.pop().unwrap());
        })
    });
    let (cq_p, cq_c) = CqPair::new(1024);
    let cqe = CompletionEntry::new(1, Status::SUCCESS);
    g.bench_function("cq_push_pop", |b| {
        b.iter(|| {
            cq_p.push(cqe).unwrap();
            std::hint::black_box(cq_c.pop().unwrap());
        })
    });
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier");
    g.throughput(Throughput::Elements(1));
    let cmd = SubmissionEntry::read(1, 1000, 8, 0, 0);

    let mut dummy = Classifier::Bpf(passthrough_program());
    g.bench_function("interpret_passthrough", |b| {
        b.iter(|| {
            let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
            std::hint::black_box(dummy.run(&mut ctx, 0))
        })
    });

    let mut encryptor = Classifier::Bpf(build_encryptor_classifier(4096));
    g.bench_function("interpret_encryptor", |b| {
        b.iter(|| {
            let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
            std::hint::black_box(encryptor.run(&mut ctx, 0))
        })
    });
    g.finish();
}

fn bench_verifier(c: &mut Criterion) {
    c.bench_function("verifier/encryptor_classifier", |b| {
        b.iter(|| {
            // Building includes assembly + full verification.
            std::hint::black_box(build_encryptor_classifier(0));
        })
    });
    let _ = classifier_verifier_config();
}

fn bench_prp(c: &mut Criterion) {
    let mem = GuestMemory::new(1 << 26);
    let gpa = mem.alloc(128 * 1024);
    let (p1, p2) = build_prps(&mem, gpa, 128 * 1024);
    c.bench_function("prp/walk_128k", |b| {
        b.iter(|| std::hint::black_box(prp_segments(&mem, p1, p2, 128 * 1024).unwrap()))
    });
}

fn run_router_1000_ios(telemetry: &nvmetro_telemetry::Telemetry) {
    use nvmetro_core::engine::RouterBuilder;
    use nvmetro_core::router::VmBinding;
    use nvmetro_core::{Partition, VirtualController, VmConfig};
    use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
    use nvmetro_sim::cost::CostModel;
    use nvmetro_sim::Executor;

    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker());
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 2048,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(2048);
    let (hcq_p, hcq_c) = CqPair::new(2048);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(2048)
        .telemetry(telemetry)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        })
        .build();
    for i in 0..1000u64 {
        let mut cmd = SubmissionEntry::read(1, i * 8, 8, 0x1000, 0);
        cmd.cid = (i % 2048) as u16;
        gsq.push(cmd).unwrap();
    }
    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.run(u64::MAX);
    let mut n = 0;
    while gcq.pop().is_some() {
        n += 1;
    }
    assert_eq!(n, 1000);
}

fn bench_router_round_trip(c: &mut Criterion) {
    // The acceptance bar for nvmetro-telemetry: the disabled handle must
    // cost no more than a branch per instrumentation point, so these two
    // runs should be within noise of each other. The `telemetry_on` run
    // shows the enabled price (ring pushes + relaxed counters).
    c.bench_function("router/1000_ios_virtual_time", |b| {
        let off = nvmetro_telemetry::Telemetry::disabled();
        b.iter(|| run_router_1000_ios(&off))
    });
    c.bench_function("router/1000_ios_telemetry_on", |b| {
        let on = nvmetro_telemetry::Telemetry::enabled();
        b.iter(|| run_router_1000_ios(&on))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets =
    bench_queues,
    bench_classifier,
    bench_verifier,
    bench_prp,
    bench_router_round_trip

}
criterion_main!(benches);
