//! Criterion micro-benchmarks of the LSM key-value substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lsmkv::{DbConfig, LsmKv, MemStorage};

fn db_with(records: u64) -> LsmKv<MemStorage> {
    let mut db = LsmKv::create(
        MemStorage::new(768 << 20),
        DbConfig {
            memtable_bytes: 256 << 10,
            l0_limit: 4,
            wal_bytes: 8 << 20,
        },
    );
    for i in 0..records {
        db.put(format!("user{:012}", i).as_bytes(), &[7u8; 100]);
    }
    db.flush();
    db
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsmkv");
    g.throughput(Throughput::Elements(1));

    let mut db = db_with(50_000);
    // Preload the put bench's full key space so the store runs at a
    // steady-state size and compaction recycles heap regions.
    for i in 0..100_000u64 {
        db.put(format!("bench{:012}", i).as_bytes(), &[1u8; 100]);
    }
    db.flush();
    let mut i = 0u64;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            let key = format!("user{:012}", i % 50_000);
            i = i.wrapping_add(7919);
            std::hint::black_box(db.get(key.as_bytes()))
        })
    });
    g.bench_function("get_miss_bloom_filtered", |b| {
        b.iter(|| {
            let key = format!("ghost{:012}", i);
            i = i.wrapping_add(7919);
            std::hint::black_box(db.get(key.as_bytes()))
        })
    });
    g.bench_function("put", |b| {
        b.iter(|| {
            // Bounded key space: steady-state overwrites, so compaction
            // recycles space instead of growing the store unboundedly.
            let key = format!("bench{:012}", i % 100_000);
            i = i.wrapping_add(1);
            db.put(key.as_bytes(), &[1u8; 100]);
        })
    });
    g.bench_function("scan_20", |b| {
        b.iter(|| {
            let key = format!("user{:012}", i % 40_000);
            i = i.wrapping_add(7919);
            std::hint::black_box(db.scan(key.as_bytes(), 20))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ops
}
criterion_main!(benches);
