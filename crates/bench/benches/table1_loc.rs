//! Table I — source code sizes of classifier and UIF implementations.
//!
//! The paper reports LoC for each storage-function component (encryptor
//! classifier 32, encryptor UIF 520, SGX UIF 501, replicator classifier
//! 16, replicator UIF 307, framework 1116). We count the reproduction's
//! equivalents the same way: non-blank, non-comment lines of the
//! implementation (tests excluded).

use nvmetro_stats::Table;

/// Counts implementation lines: skips blanks, comments, and everything
/// from the `#[cfg(test)]` module on.
fn loc(src: &str) -> usize {
    let mut n = 0;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)") {
            break;
        }
        if t.is_empty() || t.starts_with("//") || t.starts_with("//!") || t.starts_with("///") {
            continue;
        }
        n += 1;
    }
    n
}

fn main() {
    let rows: [(&str, &str, usize, &str); 6] = [
        (
            "Encryptor",
            "Classifier",
            loc(include_str!("../../functions/src/encryptor/classifier.rs")),
            "32",
        ),
        (
            "Encryptor",
            "Normal UIF",
            loc(include_str!("../../functions/src/encryptor/uif.rs")),
            "520",
        ),
        (
            "Encryptor",
            "SGX UIF + enclave",
            loc(include_str!("../../crypto/src/sgx.rs")),
            "501",
        ),
        (
            "Replicator",
            "Classifier",
            loc(include_str!("../../functions/src/replicator/classifier.rs")),
            "16",
        ),
        (
            "Replicator",
            "UIF",
            loc(include_str!("../../functions/src/replicator/uif.rs")),
            "307",
        ),
        (
            "Framework",
            "-",
            loc(include_str!("../../core/src/uif.rs")),
            "1116",
        ),
    ];
    let mut table = Table::new(
        "Table I: source code sizes of NVMetro classifier and UIF implementations",
        &["Function", "Component", "Lines (ours)", "Lines (paper)"],
    );
    for (f, c, ours, paper) in rows {
        table.row(&[f.into(), c.into(), ours.to_string(), paper.into()]);
    }
    table.print();
    println!(
        "\nNote: the paper's framework is C++ (1116 lines); ours spans the\n\
         UIF framework module above plus queue plumbing shared with the\n\
         router. Classifiers are assembled vbpf rather than C-to-eBPF."
    );
}
