//! Table II — the list of fio benchmark configurations.
//!
//! Enumerated straight from the workload engine so every other figure
//! harness provably runs the same grid the paper defines.

use nvmetro_stats::Table;
use nvmetro_workloads::fio::table2_configs;

fn main() {
    let mut table = Table::new(
        "Table II: fio benchmark configurations",
        &["Block size", "Mode", "QD", "Nr. jobs"],
    );
    for cfg in table2_configs() {
        let bs = if cfg.bs < 1024 {
            format!("{}", cfg.bs)
        } else {
            format!("{}K", cfg.bs / 1024)
        };
        table.row(&[
            bs,
            cfg.mode.abbrev().to_string(),
            cfg.qd.to_string(),
            cfg.jobs.to_string(),
        ]);
    }
    table.print();
    println!("\n{} configurations total", table2_configs().len());
}
