//! Adaptive datapath smoke: the three acceptance bars for the hybrid
//! busy-poll⇄park engine, written to `BENCH_adaptive.json` for CI.
//!
//! * **Idle burn** — under a sparse trickle (one read every 1 ms) a
//!   governor-run shard parks between requests and burns a small
//!   fraction of the CPU an always-spinning shard does (and under 5%
//!   of the wall clock outright).
//! * **Loaded tail** — at a sustained QD-32×4 closed loop the governor
//!   never leaves spin mode, so its read p99 stays within 5% of the
//!   always-spin engine: adaptivity costs nothing when there is work.
//! * **Auto batching** — against a bursty doorbell pattern,
//!   `BatchPolicy::Auto` climbs from the smallest batch and lands
//!   within 5% of the best hand-tuned fixed setting's throughput.
//!
//! ```sh
//! cargo run --release -p nvmetro-bench --bin adaptive_smoke
//! ```

use nvmetro_core::classify::Classifier;
use nvmetro_core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro_core::policy::{BatchPolicy, EnginePolicy, PollPolicy};
use nvmetro_core::{passthrough_program, Partition};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, Executor, Ns, Progress, MS, SEC, US};
use nvmetro_stats::Histogram;
use nvmetro_telemetry::{Metric, Percentiles, Telemetry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const QUEUE_PAIRS: usize = 4;
const QD: usize = 32;
const CAPACITY_LBAS: u64 = 1 << 20;
const TRICKLE_PERIOD: Ns = 1_000 * US;

/// A device fast enough that the router, not the flash, saturates first.
fn fast_device_cost() -> CostModel {
    CostModel {
        ssd_channels: 64,
        ssd_read_lat: 5_000,
        ssd_cmd_overhead: 150,
        ssd_cmd_overhead_write: 300,
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

/// Shared counters one generator exposes to the harness.
#[derive(Default)]
struct LoadStats {
    completed: AtomicU64,
    latency: Mutex<Histogram>,
}

/// Closed-loop read generator over one queue pair until `deadline`.
/// `bursty` submits the doorbell pattern batched guests produce — let
/// half the window drain, then top back up in one go — which is the
/// shape where the SQ drain bound (and thus the batch tuner) matters.
struct Load {
    name: String,
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    bursty: bool,
    outstanding: usize,
    deadline: Ns,
    next_cid: u16,
    lba: u64,
    submit_ts: HashMap<u16, Ns>,
    stats: Arc<LoadStats>,
}

impl Load {
    fn new(
        name: String,
        sq: SqProducer,
        cq: CqConsumer,
        qd: usize,
        bursty: bool,
        deadline: Ns,
    ) -> Self {
        Load {
            name,
            sq,
            cq,
            qd,
            bursty,
            outstanding: 0,
            deadline,
            next_cid: 0,
            lba: 0,
            submit_ts: HashMap::new(),
            stats: Arc::new(LoadStats::default()),
        }
    }
}

impl Actor for Load {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while let Some(cqe) = self.cq.pop() {
            self.outstanding -= 1;
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.submit_ts.remove(&cqe.cid) {
                self.stats.latency.lock().unwrap().record(now - t);
            }
            progressed = true;
        }
        let refill = if self.bursty {
            self.outstanding <= self.qd / 2
        } else {
            true
        };
        if now < self.deadline && refill {
            while self.outstanding < self.qd {
                let mut cmd = SubmissionEntry::read(1, self.lba, 1, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_err() {
                    break;
                }
                self.submit_ts.insert(self.next_cid, now);
                self.next_cid = self.next_cid.wrapping_add(1);
                self.lba = (self.lba + 8) % (CAPACITY_LBAS - 8);
                self.outstanding += 1;
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        None
    }
}

/// Sparse generator: one read every [`TRICKLE_PERIOD`] until `deadline`
/// — long quiet gaps where an adaptive shard should park and an
/// always-spinning one keeps burning its core.
struct Trickle {
    sq: SqProducer,
    cq: CqConsumer,
    deadline: Ns,
    next_submit: Ns,
    next_cid: u16,
    completed: u64,
}

impl Actor for Trickle {
    fn name(&self) -> &str {
        "trickle"
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while self.cq.pop().is_some() {
            self.completed += 1;
            progressed = true;
        }
        if now >= self.next_submit && self.next_submit < self.deadline {
            let mut cmd = SubmissionEntry::read(1, (self.next_cid as u64) * 8, 1, 0x1000, 0);
            cmd.cid = self.next_cid;
            if self.sq.push(cmd).is_ok() {
                self.next_cid = self.next_cid.wrapping_add(1);
                self.next_submit += TRICKLE_PERIOD;
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        (self.next_submit < self.deadline).then_some(self.next_submit)
    }
}

struct Rig {
    ex: Executor,
    telemetry: Telemetry,
}

/// One-shard engine over `queue_pairs` fast-path groups under `policy`,
/// wired into an executor with the given per-queue generator.
fn build_rig(
    policy: EnginePolicy,
    cost: CostModel,
    queue_pairs: usize,
    mut make_load: impl FnMut(usize, SqProducer, CqConsumer) -> Box<dyn Actor>,
) -> Rig {
    let telemetry = Telemetry::enabled();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: CAPACITY_LBAS,
            cost: cost.clone(),
            move_data: false,
            seed: 7,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut ex = Executor::new();
    let mut queues = Vec::new();
    for qp in 0..queue_pairs {
        let (vsq_p, vsq_c) = SqPair::new(256);
        let (vcq_p, vcq_c) = CqPair::new(256);
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        queues.push(QueueBinding {
            vsqs: vec![vsq_c],
            vcqs: vec![vcq_p],
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        });
        ex.add(make_load(qp, vsq_p, vcq_c));
    }
    let engine = RouterBuilder::new("router")
        .cost(cost)
        .policy(policy)
        .table_capacity(4096)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(CAPACITY_LBAS),
            queues,
        })
        .build();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    Rig { ex, telemetry }
}

struct IdleResult {
    router_cpu: Ns,
    duration: Ns,
    parks: u64,
    wakes: u64,
}

/// Router CPU over a sparse-trickle window. The spin baseline models a
/// worker that never parks (idle timeout stretched past every gap); the
/// adaptive run lets the governor walk spin → yield → parked.
fn run_idle(adaptive: bool, window: Ns) -> IdleResult {
    let mut cost = fast_device_cost();
    let policy = if adaptive {
        EnginePolicy::new().poll(PollPolicy::adaptive())
    } else {
        // Always-spin baseline: the legacy idle-timeout model parks after
        // `adaptive_idle_timeout`; stretching it past the window makes the
        // shard burn its core through every gap, i.e. a busy-poll worker.
        cost.adaptive_idle_timeout = window;
        EnginePolicy::new()
    };
    let mut rig = build_rig(policy, cost, 1, |_, sq, cq| {
        Box::new(Trickle {
            sq,
            cq,
            deadline: window,
            next_submit: TRICKLE_PERIOD,
            next_cid: 0,
            completed: 0,
        })
    });
    let report = rig.ex.run(u64::MAX);
    let snap = rig.telemetry.snapshot();
    IdleResult {
        router_cpu: report.cpu_of("router"),
        duration: report.duration.max(1),
        parks: snap.get(Metric::ShardParks),
        wakes: snap.get(Metric::ShardWakes),
    }
}

struct LoadedResult {
    iops: f64,
    p99_ns: u64,
    completed: u64,
    retunes: u64,
}

/// Aggregate IOPS and read p99 for a closed-loop run under `policy`.
fn run_loaded(policy: EnginePolicy, bursty: bool, window: Ns) -> LoadedResult {
    let mut stats = Vec::new();
    let mut rig = build_rig(policy, fast_device_cost(), QUEUE_PAIRS, |qp, sq, cq| {
        let load = Load::new(format!("load-{qp}"), sq, cq, QD, bursty, window);
        stats.push(load.stats.clone());
        Box::new(load)
    });
    let report = rig.ex.run(u64::MAX);
    let mut completed = 0u64;
    let mut hist = Histogram::new();
    for s in &stats {
        completed += s.completed.load(Ordering::Relaxed);
        hist.merge(&s.latency.lock().unwrap());
    }
    let snap = rig.telemetry.snapshot();
    LoadedResult {
        iops: completed as f64 * SEC as f64 / report.duration.max(1) as f64,
        p99_ns: Percentiles::of(&hist).p99,
        completed,
        retunes: snap.get(Metric::BatchRetunes),
    }
}

fn main() {
    let window = std::env::var("NVMETRO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(40)
        * MS;

    // Bar 1: idle burn.
    let spin_idle = run_idle(false, window);
    let adaptive_idle = run_idle(true, window);
    let idle_duty = adaptive_idle.router_cpu as f64 / adaptive_idle.duration as f64;
    println!(
        "idle: spin_cpu={}ns adaptive_cpu={}ns duty={:.4} parks={} wakes={}",
        spin_idle.router_cpu,
        adaptive_idle.router_cpu,
        idle_duty,
        adaptive_idle.parks,
        adaptive_idle.wakes
    );
    assert!(
        adaptive_idle.parks >= 1,
        "the trickle never parked the shard"
    );
    assert!(
        adaptive_idle.wakes >= 1,
        "a parked shard never woke for a doorbell"
    );
    assert!(
        adaptive_idle.router_cpu * 10 <= spin_idle.router_cpu,
        "parked idle burn {}ns not well under spin burn {}ns",
        adaptive_idle.router_cpu,
        spin_idle.router_cpu
    );
    assert!(
        idle_duty < 0.05,
        "idle duty cycle {idle_duty:.4} above the 5% bar"
    );

    // Bar 2: loaded tail.
    let spin_loaded = run_loaded(EnginePolicy::new(), false, window);
    let adaptive_loaded = run_loaded(
        EnginePolicy::new().poll(PollPolicy::adaptive()),
        false,
        window,
    );
    let p99_ratio = adaptive_loaded.p99_ns as f64 / spin_loaded.p99_ns.max(1) as f64;
    println!(
        "loaded: spin p99={}ns adaptive p99={}ns ratio={:.3} ({} / {} reads)",
        spin_loaded.p99_ns,
        adaptive_loaded.p99_ns,
        p99_ratio,
        spin_loaded.completed,
        adaptive_loaded.completed
    );
    assert!(
        p99_ratio <= 1.05,
        "adaptive loaded p99 {p99_ratio:.3}x exceeds the 1.05x bar"
    );

    // Bar 3: auto batching vs the best fixed setting.
    let mut best_fixed = 0.0f64;
    let mut fixed_lines = Vec::new();
    for n in [4usize, 32, 256] {
        let r = run_loaded(
            EnginePolicy::new().batch(BatchPolicy::Fixed(n)),
            true,
            window,
        );
        println!("batch fixed={n}: iops={:.0} p99={}ns", r.iops, r.p99_ns);
        fixed_lines.push(format!("    {{\"batch\": {}, \"iops\": {:.0}}}", n, r.iops));
        best_fixed = best_fixed.max(r.iops);
    }
    let auto = run_loaded(EnginePolicy::new().batch(BatchPolicy::auto()), true, window);
    let auto_ratio = auto.iops / best_fixed.max(1.0);
    println!(
        "batch auto: iops={:.0} retunes={} ratio={:.3}",
        auto.iops, auto.retunes, auto_ratio
    );
    assert!(
        auto.retunes >= 1,
        "the tuner never moved off its starting batch"
    );
    assert!(
        auto_ratio >= 0.95,
        "auto batching {auto_ratio:.3}x below the 0.95x-of-best-fixed bar"
    );

    let json = format!(
        "{{\n  \"duration_ms\": {},\n  \"idle_spin_cpu_ns\": {},\n  \"idle_adaptive_cpu_ns\": {},\n  \"idle_duty\": {:.6},\n  \"idle_parks\": {},\n  \"idle_wakes\": {},\n  \"loaded_spin_p99_ns\": {},\n  \"loaded_adaptive_p99_ns\": {},\n  \"loaded_p99_ratio\": {:.4},\n  \"fixed_batch\": [\n{}\n  ],\n  \"auto_iops\": {:.0},\n  \"auto_retunes\": {},\n  \"auto_vs_best_fixed\": {:.4}\n}}\n",
        window / MS,
        spin_idle.router_cpu,
        adaptive_idle.router_cpu,
        idle_duty,
        adaptive_idle.parks,
        adaptive_idle.wakes,
        spin_loaded.p99_ns,
        adaptive_loaded.p99_ns,
        p99_ratio,
        fixed_lines.join(",\n"),
        auto.iops,
        auto.retunes,
        auto_ratio
    );
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    println!("{json}");
    println!("adaptive smoke OK");
}
