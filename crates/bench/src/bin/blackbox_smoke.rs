//! Blackbox acceptance report: flight-recorder overhead on the loaded
//! sharded rig, dump-bundle round-trip sizes, and causal-forest link
//! coverage on the coalescing rig. Written to `BENCH_blackbox.json` for
//! the CI perf gate.
//!
//! Bars enforced here:
//! * recorder overhead < 1% vs the non-recorder remainder of its own runs
//!   (self-attributed, same method as the watchdog bar in
//!   `insight_report`);
//! * the manual dump round-trips through its byte format and renders a
//!   non-trivial incident report;
//! * 100% fan-out link coverage on the coalescing rig.
//!
//! ```sh
//! cargo run --release -p nvmetro-bench --bin blackbox_smoke
//! ```

use nvmetro_blackbox::{report, Blackbox, DumpBundle, Recorder, RecorderConfig, TriggerReason};
use nvmetro_core::classify::Classifier;
use nvmetro_core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro_core::{passthrough_program, Partition, RecoveryConfig};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro_fleet::CoalesceConfig;
use nvmetro_insight::{validate_json, StallWatchdog, TraceForest, WatchdogConfig};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, Executor, Ns, Progress, SimRng, MS, US};
use nvmetro_telemetry::{Metric, Telemetry, TelemetryConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 4;
const QUEUE_PAIRS: usize = 4;
const QD: usize = 32;
const CAPACITY_LBAS: u64 = 1 << 20;

/// Closed-loop read generator (same shape as `insight_report`), with an
/// optional small hot set for the coalescing leg.
struct Load {
    name: String,
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    outstanding: usize,
    deadline: Ns,
    next_cid: u16,
    rng: SimRng,
    lba_slots: u64,
    completed: Arc<AtomicU64>,
}

impl Actor for Load {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while self.cq.pop().is_some() {
            self.outstanding -= 1;
            self.completed.fetch_add(1, Ordering::Relaxed);
            progressed = true;
        }
        if now < self.deadline {
            while self.outstanding < self.qd {
                let slot = self.rng.below(self.lba_slots);
                let mut cmd = SubmissionEntry::read(1, slot * 8, 8, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_err() {
                    break;
                }
                self.next_cid = self.next_cid.wrapping_add(1);
                self.outstanding += 1;
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        None
    }
}

fn fast_device_cost() -> CostModel {
    CostModel {
        ssd_channels: 64,
        ssd_read_lat: 5_000,
        ssd_cmd_overhead: 150,
        ssd_cmd_overhead_write: 300,
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

fn queue_group(ssd: &mut SimSsd, mem: &Arc<GuestMemory>) -> (QueueBinding, SqProducer, CqConsumer) {
    let (vsq_p, vsq_c) = SqPair::new(256);
    let (vcq_p, vcq_c) = CqPair::new(256);
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let binding = QueueBinding {
        vsqs: vec![vsq_c],
        vcqs: vec![vcq_p],
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify: None,
        classifier: Classifier::Bpf(passthrough_program()),
    };
    (binding, vsq_p, vcq_c)
}

struct LoadedRun {
    completed: u64,
    spent: std::time::Duration,
    bb: Option<Blackbox>,
    telemetry: Telemetry,
    end: Ns,
}

/// The loaded sharded rig from `insight_report`, with the watchdog always
/// riding and the flight recorder optionally riding beside it. The
/// recorder self-attributes its tick time into the shared [`Blackbox`]
/// handle, which survives the executor consuming the actor.
fn run_loaded(duration: Ns, with_recorder: bool) -> LoadedRun {
    let telemetry = Telemetry::with_config(TelemetryConfig {
        trace_capacity: 16384,
    });
    let cost = fast_device_cost();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: CAPACITY_LBAS,
            cost: cost.clone(),
            move_data: false,
            seed: 7,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker_named("ssd"));
    let mem = Arc::new(GuestMemory::new(1 << 20));

    let mut ex = Executor::new();
    let mut queues = Vec::new();
    let completed = Arc::new(AtomicU64::new(0));
    for qp in 0..QUEUE_PAIRS {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem);
        queues.push(binding);
        ex.add(Box::new(Load {
            name: format!("load-{qp}"),
            sq,
            cq,
            qd: QD,
            outstanding: 0,
            deadline: duration,
            next_cid: 0,
            rng: SimRng::new(qp as u64 + 1),
            lba_slots: CAPACITY_LBAS / 8 - 1,
            completed: completed.clone(),
        }));
    }

    RouterBuilder::new("router")
        .cost(cost)
        .shards(SHARDS)
        .table_capacity(4096)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(CAPACITY_LBAS),
            queues,
        })
        .build()
        .run_virtual(&mut ex);
    ex.add(Box::new(ssd));

    let (wd, health) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: 100 * US,
            ..WatchdogConfig::default()
        },
    );
    ex.add(Box::new(wd));

    let bb = with_recorder.then(|| {
        // 4x denser than the always-on default interval, so the bar has
        // margin even for aggressively tuned recorders.
        let cfg = RecorderConfig {
            interval: 250 * US,
            ..RecorderConfig::default()
        };
        let bb = Blackbox::new(&cfg);
        ex.add(Box::new(
            Recorder::new(&telemetry, bb.clone(), cfg).with_health(health),
        ));
        bb
    });

    let run = ex.run(u64::MAX);
    LoadedRun {
        completed: completed.load(Ordering::Relaxed),
        spent: bb
            .as_ref()
            .map(|b| b.spent())
            .unwrap_or(std::time::Duration::ZERO),
        bb,
        telemetry,
        end: run.duration,
    }
}

/// Recorder cost by self-attribution: spent tick time over the
/// non-recorder remainder of the very runs it rode in, interleaved with
/// recorder-free legs so absolute times stay comparable.
fn run_recorder_overhead(duration: Ns) -> (f64, f64, f64) {
    const RUNS: usize = 8;
    run_loaded(duration, false);
    run_loaded(duration, true);
    let mut base_wall = 0.0;
    let mut rec_wall = 0.0;
    let mut spent = 0.0;
    for _ in 0..RUNS {
        let t = Instant::now();
        run_loaded(duration, false);
        base_wall += t.elapsed().as_secs_f64();
        let t = Instant::now();
        spent += run_loaded(duration, true).spent.as_secs_f64();
        rec_wall += t.elapsed().as_secs_f64();
    }
    let overhead = spent / (rec_wall - spent);
    (
        base_wall / RUNS as f64 * 1e3,
        rec_wall / RUNS as f64 * 1e3,
        overhead,
    )
}

/// One loaded run with a manual dump at the end: round-trip the bundle
/// through its byte format and render the incident report.
fn run_forensics(duration: Ns) -> (u64, usize, usize, usize, usize) {
    let run = run_loaded(duration, true);
    let bb = run.bb.expect("recorder leg");
    let bundle = bb.dump_now(&run.telemetry, TriggerReason::Manual, run.end);
    let bytes = bundle.to_bytes();
    let restored = DumpBundle::from_bytes(&bytes).expect("bundle survives its wire format");
    assert_eq!(restored, bundle, "byte round-trip must be lossless");
    validate_json(&restored.to_json()).expect("bundle JSON renders valid");
    let text = report(&restored);
    assert!(
        text.contains("blackbox incident report"),
        "report must render:\n{text}"
    );
    (
        run.completed,
        bytes.len(),
        bundle.timeline.len(),
        bundle.residue.len(),
        text.lines().count(),
    )
}

/// Coalescing rig (8 VMs on a 4-slot hot set): every fan-out link must
/// resolve into its leader's tree.
fn run_forest_coverage(duration: Ns) -> (u64, usize, usize, f64) {
    let telemetry = Telemetry::enabled();
    let cost = CostModel {
        ssd_channels: 8,
        ssd_read_lat: 20_000,
        ssd_cmd_overhead: 500,
        ssd_cmd_overhead_write: 500,
        ssd_jitter: 0.0,
        ..Default::default()
    };
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 16,
            cost: cost.clone(),
            move_data: false,
            seed: 0xB0B,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut ex = Executor::new();
    let completed = Arc::new(AtomicU64::new(0));
    let mut builder = RouterBuilder::new("router")
        .cost(cost)
        .telemetry(&telemetry)
        .recovery(RecoveryConfig {
            cmd_timeout: MS,
            ..Default::default()
        })
        .coalesce(CoalesceConfig::default());
    for vm in 0..8u32 {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem);
        builder = builder.vm(EngineVm {
            vm_id: vm,
            mem: mem.clone(),
            partition: Partition::whole(1 << 16),
            queues: vec![binding],
        });
        ex.add(Box::new(Load {
            name: format!("guest-{vm}"),
            sq,
            cq,
            qd: 8,
            outstanding: 0,
            deadline: duration,
            next_cid: 0,
            rng: SimRng::new(0xB0B ^ ((vm as u64) << 8)),
            lba_slots: 4,
            completed: completed.clone(),
        }));
    }
    builder.build().run_virtual(&mut ex);
    ex.add(Box::new(ssd));

    let (wd, log) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: 200 * US,
            keep_spans: true,
            ..WatchdogConfig::default()
        },
    );
    let shared = wd.shared();
    ex.add(Box::new(shared.clone()));
    let run = ex.run(u64::MAX);
    shared.with(|w| w.flush(run.duration + 1));

    let fanned = telemetry.counter(Metric::CoalesceFanout);
    assert!(fanned > 0, "the hot set never coalesced");
    let forest = TraceForest::build(log.spans());
    assert_eq!(
        forest.stats.links_seen, fanned as usize,
        "every fan-out must emit exactly one link"
    );
    (
        completed.load(Ordering::Relaxed),
        forest.stats.links_seen,
        forest.stats.links_resolved,
        forest.stats.link_coverage(),
    )
}

fn main() {
    let duration = std::env::var("NVMETRO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(40)
        * MS;

    let (base_ms, rec_ms, overhead) = run_recorder_overhead(duration);
    println!(
        "recorder overhead: base {base_ms:.3}ms, with-recorder {rec_ms:.3}ms -> {:.3}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "recorder overhead {:.3}% exceeds the 1% bar",
        overhead * 100.0
    );

    let (completed, bundle_bytes, timeline_events, residue, report_lines) = run_forensics(duration);
    println!(
        "forensics: {completed} requests -> {bundle_bytes}B bundle, {timeline_events} timeline events, {residue} residue spans, {report_lines}-line report"
    );

    let (co_completed, links_seen, links_resolved, coverage) = run_forest_coverage(duration);
    println!(
        "forest: {co_completed} requests, {links_seen} links, {links_resolved} resolved ({:.2}% coverage)",
        coverage * 100.0
    );
    assert!(
        (coverage - 1.0).abs() < 1e-9,
        "fan-out link coverage {:.4} below the 1.0 bar",
        coverage
    );

    let json = format!(
        "{{\n  \"duration_ms\": {},\n  \"recorder_overhead\": {{\"base_ms\": {:.3}, \"with_recorder_ms\": {:.3}, \"fraction\": {:.5}}},\n  \"forensics\": {{\"completed\": {}, \"bundle_bytes\": {}, \"timeline_events\": {}, \"residue_spans\": {}, \"report_lines\": {}}},\n  \"forest\": {{\"completed\": {}, \"links_seen\": {}, \"links_resolved\": {}, \"link_coverage\": {:.4}}}\n}}\n",
        duration / MS,
        base_ms,
        rec_ms,
        overhead,
        completed,
        bundle_bytes,
        timeline_events,
        residue,
        report_lines,
        co_completed,
        links_seen,
        links_resolved,
        coverage,
    );
    validate_json(&json).expect("report JSON is valid");
    std::fs::write("BENCH_blackbox.json", &json).expect("write BENCH_blackbox.json");
    println!("{json}");
    println!("blackbox smoke OK");
}
