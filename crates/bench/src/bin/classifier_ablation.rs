//! Classifier execution-tier ablation: native Rust vs pre-decoded compiled
//! ops vs fetch/decode interpreter vs memoized verdict replay, written to
//! `BENCH_classifier.json` for CI.
//!
//! The workload is the paper's partition-offset mediation classifier:
//! dispatch on the opcode, bounds-check the I/O against the partition
//! length, add the partition base to the starting LBA, write it back, take
//! the fast path. Every tier runs the same verified program against the
//! same context; the harness restores the mutated `slba` bytes before each
//! invocation in *every* tier so the memo tier sees a repeating key and the
//! other tiers pay the identical per-iteration setup.
//!
//! Acceptance bars (enforced here and by ci.sh's `classifier_smoke`):
//! compiled ≥ 2x interpreter ops/s, cache-hit ≥ 5x interpreter ops/s.
//!
//! ```sh
//! cargo run --release -p nvmetro-bench --bin classifier_ablation
//! ```

use nvmetro_core::classify::{partition_offset_program, verdict_bits, RequestCtx, HOOK_VSQ};
use nvmetro_nvme::{NvmOpcode, Status, SubmissionEntry};
use nvmetro_vbpf::{Tier, Vm};
use std::hint::black_box;
use std::time::{Duration, Instant};

const LBA_OFFSET: u64 = 0x10_0000;
const PART_NLB: u64 = 0x8_0000;
const BASE_SLBA: u64 = 0x1234;
const SLBA_OFF: usize = 16;
const BATCH: usize = 4096;

/// Runs `f` in batches until `budget` elapses; returns (iters, ops/s).
fn measure(budget: Duration, mut f: impl FnMut()) -> (u64, f64) {
    // Warm up: populate caches (memo, branch predictors) outside the
    // measured window.
    for _ in 0..BATCH {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        for _ in 0..BATCH {
            f();
        }
        iters += BATCH as u64;
        if start.elapsed() >= budget {
            break;
        }
    }
    (iters, iters as f64 / start.elapsed().as_secs_f64())
}

fn fresh_ctx() -> RequestCtx {
    let cmd = SubmissionEntry::read(1, BASE_SLBA, 8, 0x1000, 0);
    RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0)
}

/// Restores the slba key bytes the classifier mutates, so every iteration
/// classifies the same logical request.
fn reset_slba(ctx: &mut [u8]) {
    ctx[SLBA_OFF..SLBA_OFF + 8].copy_from_slice(&BASE_SLBA.to_le_bytes());
}

fn tier_vm(memo_capacity: usize) -> Vm {
    let mut vm = partition_offset_program(LBA_OFFSET, PART_NLB);
    vm.set_memo_capacity(memo_capacity);
    vm
}

/// Keeps the faster of two `(iters, ops/s)` samples. Tier throughputs
/// are estimated as best-of-N interleaved rounds: on a shared machine
/// transient slowdowns (frequency scaling, co-tenants) only ever
/// subtract speed, so the max over rounds is the robust estimator and
/// interleaving keeps a slow phase from biasing one tier's ratio.
fn keep_best(best: &mut (u64, f64), sample: (u64, f64)) {
    if sample.1 > best.1 {
        *best = sample;
    }
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("NVMETRO_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(60),
    );
    const ROUNDS: usize = 5;
    let expect = verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ;

    let mut native_ctx = fresh_ctx();
    let mut interp_vm = tier_vm(0);
    let mut interp_ctx = fresh_ctx();
    let mut compiled_vm = tier_vm(0);
    assert!(compiled_vm.is_compiled(), "partition program must compile");
    let mut compiled_ctx = fresh_ctx();
    // Cache-hit tier: default memo capacity; the repeating request key
    // replays the verdict and the journaled slba write without
    // executing the program.
    let mut cached_vm = partition_offset_program(LBA_OFFSET, PART_NLB);
    let mut cached_ctx = fresh_ctx();

    let mut native = (0u64, 0f64);
    let mut interp = (0u64, 0f64);
    let mut compiled = (0u64, 0f64);
    let mut cached = (0u64, 0f64);
    for _ in 0..ROUNDS {
        // Native baseline: the same mediation hand-written in Rust.
        let ctx = &mut native_ctx;
        keep_best(
            &mut native,
            measure(budget, || {
                reset_slba(black_box(ctx.bytes_mut()));
                let op = ctx.opcode();
                let v = if op == NvmOpcode::Read as u8 || op == NvmOpcode::Write as u8 {
                    let (slba, nlb) = (ctx.slba(), ctx.nlb() as u64);
                    if slba + nlb > PART_NLB {
                        verdict_bits::COMPLETE | Status::LBA_OUT_OF_RANGE.0 as u64
                    } else {
                        ctx.set_slba(slba + LBA_OFFSET);
                        expect
                    }
                } else {
                    expect
                };
                assert_eq!(black_box(v), expect);
            }),
        );

        // Interpreter tier: fetch/decode loop, memo off.
        let (vm, ctx) = (&mut interp_vm, &mut interp_ctx);
        keep_best(
            &mut interp,
            measure(budget, || {
                reset_slba(ctx.bytes_mut());
                let v = vm.run_interp(ctx.bytes_mut()).expect("interp run");
                assert_eq!(black_box(v), expect);
            }),
        );

        // Compiled tier: pre-decoded op array, memo off.
        let (vm, ctx) = (&mut compiled_vm, &mut compiled_ctx);
        keep_best(
            &mut compiled,
            measure(budget, || {
                reset_slba(ctx.bytes_mut());
                let (v, tier) = vm.run_with_tier(ctx.bytes_mut()).expect("compiled run");
                assert_eq!(black_box(v), expect);
                debug_assert_eq!(tier, Tier::Compiled);
            }),
        );

        // Memoized tier.
        let (vm, ctx) = (&mut cached_vm, &mut cached_ctx);
        keep_best(
            &mut cached,
            measure(budget, || {
                reset_slba(ctx.bytes_mut());
                let (v, _) = vm.run_with_tier(ctx.bytes_mut()).expect("cached run");
                assert_eq!(black_box(v), expect);
            }),
        );
    }
    let (native_iters, native_ops) = native;
    let (interp_iters, interp_ops) = interp;
    let (compiled_iters, compiled_ops) = compiled;
    let (cached_iters, cached_ops) = cached;
    for ctx in [&native_ctx, &interp_ctx, &compiled_ctx, &cached_ctx] {
        assert_eq!(ctx.slba(), BASE_SLBA + LBA_OFFSET);
    }
    let memo = cached_vm.memo_stats();
    assert!(
        memo.hits > memo.misses,
        "memo never engaged: {memo:?} (hits must dominate on a repeating key)"
    );

    let compiled_x = compiled_ops / interp_ops;
    let cached_x = cached_ops / interp_ops;
    println!(
        "native={native_ops:.0} ops/s ({native_iters} iters)\n\
         interp={interp_ops:.0} ops/s ({interp_iters} iters)\n\
         compiled={compiled_ops:.0} ops/s ({compiled_iters} iters, {compiled_x:.2}x interp)\n\
         cache_hit={cached_ops:.0} ops/s ({cached_iters} iters, {cached_x:.2}x interp)"
    );

    let json = format!(
        "{{\n  \"workload\": \"partition_offset_classifier\",\n  \"duration_ms\": {},\n  \"tiers\": {{\n    \"native\": {{\"iters\": {}, \"ops_per_sec\": {:.0}}},\n    \"interp\": {{\"iters\": {}, \"ops_per_sec\": {:.0}}},\n    \"compiled\": {{\"iters\": {}, \"ops_per_sec\": {:.0}}},\n    \"cache_hit\": {{\"iters\": {}, \"ops_per_sec\": {:.0}}}\n  }},\n  \"compiled_vs_interp\": {:.3},\n  \"cache_hit_vs_interp\": {:.3},\n  \"memo\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"invalidations\": {}}}\n}}\n",
        budget.as_millis(),
        native_iters,
        native_ops,
        interp_iters,
        interp_ops,
        compiled_iters,
        compiled_ops,
        cached_iters,
        cached_ops,
        compiled_x,
        cached_x,
        memo.hits,
        memo.misses,
        memo.evictions,
        memo.invalidations,
    );
    std::fs::write("BENCH_classifier.json", &json).expect("write BENCH_classifier.json");
    println!("{json}");

    assert!(
        compiled_x >= 2.0,
        "compiled tier {compiled_x:.2}x below the 2x acceptance bar"
    );
    assert!(
        cached_x >= 5.0,
        "cache-hit tier {cached_x:.2}x below the 5x acceptance bar"
    );
    println!("classifier ablation OK: compiled {compiled_x:.2}x, cache-hit {cached_x:.2}x");
}
