//! Fleet acceptance report: the thousands-of-VMs rig with per-tenant
//! QoS scheduling and cross-VM read coalescing, written to
//! `BENCH_fleet.json` for CI.
//!
//! Three arms on an identical device-bound rig (same seed, same
//! Zipf-skewed bursty offered load):
//!
//! * `coalesce=off` — scheduler only: the baseline the coalescing win is
//!   measured against;
//! * `coalesce=on` — the full fleet datapath;
//! * plus the full-scale (1024 tenants, router-bound) run whose Jain
//!   fairness index and exactly-once verdict are reported.
//!
//! Bars enforced here:
//! * the rig binds >= 1000 VM queue groups and finishes exactly-once
//!   (guest books balanced, span reconstruction agreeing);
//! * coalescing on a device-bound hot set wins >= 1.2x guest IOPS;
//! * coalescing cuts device-queue occupancy (served commands) by
//!   >= 20% at equal offered load;
//! * weight-normalized Jain fairness >= 0.5 across the active fleet.
//!
//! ```sh
//! cargo run --release -p nvmetro-bench --bin fleet_report
//! ```

use nvmetro_sim::{MS, SEC};
use nvmetro_workloads::{run_fleet, FleetOptions, FleetReport};

fn arm_json(label: &str, r: &FleetReport) -> String {
    format!(
        "    {{\"arm\": \"{}\", \"tenants\": {}, \"submitted\": {}, \"completed\": {}, \"iops\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"device_ios\": {}, \"coalesced\": {}, \"fanned_out\": {}, \"throttled\": {}, \"preemptions\": {}, \"feedback_actions\": {}, \"exactly_once\": {}}}",
        label,
        r.tenants,
        r.submitted,
        r.completed,
        r.iops,
        r.p50_ns,
        r.p99_ns,
        r.device_ios,
        r.coalesced,
        r.fanned_out,
        r.throttled,
        r.preemptions,
        r.feedback_actions,
        r.exactly_once,
    )
}

fn main() {
    let duration = std::env::var("NVMETRO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20)
        * MS;

    // Arms 1+2: a device-bound hot-set rig — few channels, most reads on
    // the shared base image — where coalescing must buy throughput, not
    // just occupancy. Modest tenant count keeps the contrast crisp.
    let contended = FleetOptions {
        tenants: 256,
        shards: 4,
        duration,
        total_iops: 1_200_000.0,
        hot_fraction: 0.8,
        hot_slots: 32,
        cap: 8,
        device_channels: 4,
        device_read_lat: 10_000,
        feedback: false, // no throttling: both arms see identical load
        keep_spans: false,
        ..Default::default()
    };
    let off = run_fleet(&FleetOptions {
        coalesce: false,
        ..contended.clone()
    });
    let on = run_fleet(&contended);
    println!(
        "coalesce=off iops={:.0} p99={}ns device_ios={}",
        off.iops, off.p99_ns, off.device_ios
    );
    println!(
        "coalesce=on  iops={:.0} p99={}ns device_ios={} coalesced={}",
        on.iops, on.p99_ns, on.device_ios, on.coalesced
    );
    assert!(off.exactly_once && on.exactly_once, "books must balance");

    let iops_win = on.iops / off.iops.max(1.0);
    // Device-queue occupancy: commands the device had to serve per guest
    // completion — the fan-out directly removes device work.
    let occ_off = off.device_ios as f64 / off.completed.max(1) as f64;
    let occ_on = on.device_ios as f64 / on.completed.max(1) as f64;
    let occupancy_cut = 1.0 - occ_on / occ_off.max(f64::MIN_POSITIVE);

    // Arm 3: the full-scale fleet — >= 1000 VM queue groups, scheduler +
    // coalescing + feedback on, spans kept for the exactly-once proof.
    let fleet = run_fleet(&FleetOptions {
        duration,
        ..Default::default()
    });
    let fairness = fleet.jain_fairness();
    println!(
        "fleet tenants={} iops={:.0} p99={}ns coalesced={} throttled={} jain={:.3} exactly_once={}",
        fleet.tenants,
        fleet.iops,
        fleet.p99_ns,
        fleet.coalesced,
        fleet.throttled,
        fairness,
        fleet.exactly_once
    );

    let json = format!
(
        "{{\n  \"duration_ms\": {},\n  \"offered_iops\": {:.0},\n  \"results\": [\n{},\n{},\n{}\n  ],\n  \"coalesce_iops_win\": {:.3},\n  \"device_occupancy_cut\": {:.3},\n  \"fairness_jain\": {:.4},\n  \"fleet_queue_groups\": {},\n  \"fleet_exactly_once\": {}\n}}\n",
        duration / MS,
        contended.total_iops,
        arm_json("coalesce_off", &off),
        arm_json("coalesce_on", &on),
        arm_json("fleet_full_scale", &fleet),
        iops_win,
        occupancy_cut,
        fairness,
        fleet.tenants,
        fleet.exactly_once,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("{json}");

    assert!(
        fleet.tenants >= 1000,
        "full-scale rig must bind >= 1000 VM queue groups"
    );
    assert!(fleet.exactly_once, "full-scale rig lost or doubled I/O");
    assert!(
        fleet.submitted as f64 > duration as f64 / SEC as f64 * 100_000.0,
        "full-scale rig too idle to mean anything"
    );
    assert!(
        iops_win >= 1.2,
        "coalescing IOPS win {iops_win:.2}x below the 1.2x bar"
    );
    assert!(
        occupancy_cut >= 0.2,
        "device occupancy cut {occupancy_cut:.2} below the 20% bar"
    );
    assert!(
        fairness >= 0.5,
        "Jain fairness {fairness:.3} below the 0.5 bar"
    );
    println!(
        "fleet report OK: {iops_win:.2}x IOPS win, {:.0}% occupancy cut, jain {fairness:.3}",
        occupancy_cut * 100.0
    );
}
