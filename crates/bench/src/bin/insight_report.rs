//! Insight acceptance report: span-reconstruction coverage on a sharded
//! rig, span-assembly throughput, watchdog overhead on the micro datapath,
//! and validity of both export formats. Written to `BENCH_insight.json`
//! for CI; the Chrome trace lands in `target/insight_trace.json`.
//!
//! Bars enforced here:
//! * >= 99% of completed requests reconstructed into complete spans;
//! * span assembly >= 1M events/s;
//! * watchdog overhead < 2% vs the telemetry-enabled baseline;
//! * Chrome trace and Prometheus text parse and are non-empty.
//!
//! ```sh
//! cargo run --release -p nvmetro-bench --bin insight_report
//! ```

use nvmetro_core::classify::Classifier;
use nvmetro_core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro_core::router::VmBinding;
use nvmetro_core::{passthrough_program, Partition, VirtualController, VmConfig};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro_insight::{
    chrome_trace, prometheus_text, validate_json, SpanAssembler, StallWatchdog, TailAttribution,
    WatchdogConfig,
};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, Executor, Ns, Progress, MS, US};
use nvmetro_telemetry::{PathKind, Route, Stage, Telemetry, TelemetryConfig, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 4;
const QUEUE_PAIRS: usize = 4;
const QD: usize = 32;
const CAPACITY_LBAS: u64 = 1 << 20;

/// Closed-loop read generator (same shape as `scaling_smoke`).
struct Load {
    name: String,
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    outstanding: usize,
    deadline: Ns,
    next_cid: u16,
    lba: u64,
    completed: Arc<AtomicU64>,
}

impl Actor for Load {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while self.cq.pop().is_some() {
            self.outstanding -= 1;
            self.completed.fetch_add(1, Ordering::Relaxed);
            progressed = true;
        }
        if now < self.deadline {
            while self.outstanding < self.qd {
                let mut cmd = SubmissionEntry::read(1, self.lba, 1, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_err() {
                    break;
                }
                self.next_cid = self.next_cid.wrapping_add(1);
                self.lba = (self.lba + 8) % (CAPACITY_LBAS - 8);
                self.outstanding += 1;
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        None
    }
}

fn fast_device_cost() -> CostModel {
    CostModel {
        ssd_channels: 64,
        ssd_read_lat: 5_000,
        ssd_cmd_overhead: 150,
        ssd_cmd_overhead_write: 300,
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

struct CoverageResult {
    completed: u64,
    spans_complete: usize,
    coverage: f64,
    orphans: u64,
    drain_missed: u64,
    watchdog_ticks: u64,
    trace_bytes: usize,
    prom_lines: usize,
    p99_dominant: String,
}

/// Sharded rig with the watchdog riding along; returns coverage and the
/// export sizes. The watchdog drains incrementally every tick, so even a
/// run that overflows a snapshot-sized ring keeps full span coverage.
fn run_coverage(duration: Ns) -> CoverageResult {
    let telemetry = Telemetry::with_config(TelemetryConfig {
        trace_capacity: 16384,
    });
    let cost = fast_device_cost();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: CAPACITY_LBAS,
            cost: cost.clone(),
            move_data: false,
            seed: 7,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker_named("ssd"));
    let mem = Arc::new(GuestMemory::new(1 << 20));

    let mut ex = Executor::new();
    let mut queues = Vec::new();
    let completed = Arc::new(AtomicU64::new(0));
    for qp in 0..QUEUE_PAIRS {
        let (vsq_p, vsq_c) = SqPair::new(256);
        let (vcq_p, vcq_c) = CqPair::new(256);
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        queues.push(QueueBinding {
            vsqs: vec![vsq_c],
            vcqs: vec![vcq_p],
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        });
        ex.add(Box::new(Load {
            name: format!("load-{qp}"),
            sq: vsq_p,
            cq: vcq_c,
            qd: QD,
            outstanding: 0,
            deadline: duration,
            next_cid: 0,
            lba: 0,
            completed: completed.clone(),
        }));
    }

    let engine = RouterBuilder::new("router")
        .cost(cost)
        .shards(SHARDS)
        .table_capacity(4096)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(CAPACITY_LBAS),
            queues,
        })
        .build();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));

    let (wd, log) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: 100 * US,
            keep_spans: true,
            ..WatchdogConfig::default()
        },
    );
    let shared = wd.shared();
    ex.add(Box::new(shared.clone()));

    let report = ex.run(u64::MAX);
    shared.with(|w| w.flush(report.duration + 1));

    let spans = log.spans();
    let stats = log.stats();
    let completed = completed.load(Ordering::Relaxed);
    let spans_complete = spans.iter().filter(|s| s.complete).count();
    let coverage = spans_complete as f64 / completed.max(1) as f64;

    // Tail attribution: which segment dominates the p99 on the fast path.
    let attrib = TailAttribution::of(&spans);
    let p99_dominant = attrib
        .route(Route::Fast)
        .map(|r| r.quantiles[1].dominant().name().to_string())
        .unwrap_or_else(|| "-".to_string());

    // Exports: a bounded slice of spans keeps the trace reviewable.
    let trace = chrome_trace(&spans[..spans.len().min(2000)], &telemetry.worker_names());
    validate_json(&trace).expect("chrome trace must be valid JSON");
    assert!(
        trace.contains("\"ph\":\"X\""),
        "chrome trace must contain span events"
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/insight_trace.json", &trace).expect("write chrome trace");

    let prom = prometheus_text(&telemetry.snapshot());
    assert!(
        prom.contains("nvmetro_completed_total"),
        "prometheus text must expose counters"
    );

    CoverageResult {
        completed,
        spans_complete,
        coverage,
        orphans: stats.orphan_events,
        drain_missed: log.drain_missed(),
        watchdog_ticks: telemetry.counters()[nvmetro_telemetry::Metric::WatchdogTicks as usize],
        trace_bytes: trace.len(),
        prom_lines: prom.lines().count(),
        p99_dominant,
    }
}

/// Synthesizes a realistic event stream (5 lifecycle events per request,
/// interleaved across queues and shards, tags reused with rolling
/// generations) and measures raw assembly throughput.
fn run_assembly_throughput() -> (u64, f64) {
    const REQUESTS: u64 = 300_000;
    let mut events: Vec<TraceEvent> = Vec::with_capacity(REQUESTS as usize * 5);
    let mut t = 0u64;
    for i in 0..REQUESTS {
        let vm = (i % 4) as u32;
        let vsq = ((i / 4) % 4) as u16;
        let tag = (i % 256) as u16;
        let gen = ((i / 256) % 255) as u8 + 1;
        let worker = (i % 4) as u16;
        t += 37;
        let mk =
            |ts: u64, stage: Stage, path: PathKind, w: u16, ev_vm: u32, ev_gen: u8| TraceEvent {
                ts_ns: ts,
                vm: ev_vm,
                vsq,
                tag,
                worker: w,
                gen: ev_gen,
                stage,
                path,
                ..TraceEvent::default()
            };
        events.push(mk(t, Stage::VsqFetch, PathKind::None, worker, vm, gen));
        events.push(mk(
            t + 80,
            Stage::Classified,
            PathKind::None,
            worker,
            vm,
            gen,
        ));
        events.push(mk(
            t + 150,
            Stage::Dispatched,
            PathKind::Fast,
            worker,
            vm,
            gen,
        ));
        events.push(mk(
            t + 4000,
            Stage::DeviceService,
            PathKind::Fast,
            4,
            nvmetro_telemetry::VM_ANY,
            0,
        ));
        events.push(mk(
            t + 4200,
            Stage::VcqComplete,
            PathKind::None,
            worker,
            vm,
            gen,
        ));
    }
    let n = events.len() as u64;

    let start = Instant::now();
    let mut assembler = SpanAssembler::new();
    // Feed in drain-sized batches like the watchdog would.
    for chunk in events.chunks(8192) {
        assembler.extend(chunk);
        assembler.retire_settled();
    }
    let report = assembler.finish();
    let secs = start.elapsed().as_secs_f64();
    assert!(
        report.stats.spans_completed >= REQUESTS - 256,
        "assembly lost spans: {} of {REQUESTS}",
        report.stats.spans_completed
    );
    (n, n as f64 / secs)
}

/// One micro-datapath run (the `micro_datapath` bench rig): 1000 reads
/// through a single-shard router into the simulated SSD, with an optional
/// watchdog riding the executor. Returns the watchdog's self-attributed
/// tick time for the run (zero without one).
fn run_micro(telemetry: &Telemetry, watchdog: bool) -> std::time::Duration {
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker_named("ssd"));
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 2048,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(2048);
    let (hcq_p, hcq_c) = CqPair::new(2048);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(2048)
        .telemetry(telemetry)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        })
        .build();
    for i in 0..1000u64 {
        let mut cmd = SubmissionEntry::read(1, i * 8, 8, 0x1000, 0);
        cmd.cid = (i % 2048) as u16;
        gsq.push(cmd).unwrap();
    }
    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    let shared = watchdog.then(|| {
        let (wd, _log) = StallWatchdog::new(telemetry, WatchdogConfig::default());
        let shared = wd.shared();
        ex.add(Box::new(shared.clone()));
        shared
    });
    ex.run(u64::MAX);
    let mut n = 0;
    while gcq.pop().is_some() {
        n += 1;
    }
    assert_eq!(n, 1000);
    shared
        .map(|s| s.with(|w| w.spent()))
        .unwrap_or(std::time::Duration::ZERO)
}

/// Watchdog cost by self-attribution: the watchdog times its own tick
/// work ([`StallWatchdog::spent`]), and overhead is that attributed time
/// over the non-watchdog remainder of the very runs it rode in.
/// Differential wall timing cannot resolve a ~1% effect on a shared
/// machine (run-to-run noise here swings several percent); attribution is
/// stable because numerator and denominator come from the same runs. The
/// executor-wakeup perturbation the attribution misses was bounded
/// separately — a dummy actor ticking at the watchdog's interval is not
/// measurable above noise. Baseline legs still run interleaved so the
/// printed absolute times stay comparable.
fn run_watchdog_overhead() -> (f64, f64, f64) {
    const RUNS: usize = 12;
    // Warm-up.
    run_micro(&Telemetry::enabled(), false);
    run_micro(&Telemetry::enabled(), true);
    let mut base_wall = 0.0;
    let mut wd_wall = 0.0;
    let mut spent = 0.0;
    for _ in 0..RUNS {
        let t = Instant::now();
        run_micro(&Telemetry::enabled(), false);
        base_wall += t.elapsed().as_secs_f64();
        let t = Instant::now();
        spent += run_micro(&Telemetry::enabled(), true).as_secs_f64();
        wd_wall += t.elapsed().as_secs_f64();
    }
    let overhead = spent / (wd_wall - spent);
    (
        base_wall / RUNS as f64 * 1e3,
        wd_wall / RUNS as f64 * 1e3,
        overhead,
    )
}

fn main() {
    let duration = std::env::var("NVMETRO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60)
        * MS;

    let cov = run_coverage(duration);
    println!(
        "coverage: {}/{} complete spans ({:.2}%), orphans={} drain_missed={} ticks={} p99_dominant={}",
        cov.spans_complete,
        cov.completed,
        cov.coverage * 100.0,
        cov.orphans,
        cov.drain_missed,
        cov.watchdog_ticks,
        cov.p99_dominant,
    );
    assert!(
        cov.coverage >= 0.99,
        "span coverage {:.4} below the 0.99 bar",
        cov.coverage
    );

    let (events, events_per_sec) = run_assembly_throughput();
    println!(
        "assembly: {events} events at {:.2}M events/s",
        events_per_sec / 1e6
    );
    assert!(
        events_per_sec >= 1_000_000.0,
        "span assembly {:.0} events/s below the 1M bar",
        events_per_sec
    );

    let (base_ms, wd_ms, overhead) = run_watchdog_overhead();
    println!(
        "watchdog overhead: base {base_ms:.3}ms, with-watchdog {wd_ms:.3}ms -> {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "watchdog overhead {:.2}% exceeds the 2% bar",
        overhead * 100.0
    );

    let json = format!(
        "{{\n  \"duration_ms\": {},\n  \"coverage\": {{\"completed\": {}, \"spans_complete\": {}, \"fraction\": {:.4}, \"orphan_events\": {}, \"drain_missed\": {}, \"watchdog_ticks\": {}, \"p99_dominant_segment\": \"{}\"}},\n  \"assembly\": {{\"events\": {}, \"events_per_sec\": {:.0}}},\n  \"watchdog_overhead\": {{\"base_ms\": {:.3}, \"with_watchdog_ms\": {:.3}, \"fraction\": {:.4}}},\n  \"exports\": {{\"chrome_trace_bytes\": {}, \"prometheus_lines\": {}}}\n}}\n",
        duration / MS,
        cov.completed,
        cov.spans_complete,
        cov.coverage,
        cov.orphans,
        cov.drain_missed,
        cov.watchdog_ticks,
        cov.p99_dominant,
        events,
        events_per_sec,
        base_ms,
        wd_ms,
        overhead,
        cov.trace_bytes,
        cov.prom_lines,
    );
    validate_json(&json).expect("report JSON is valid");
    std::fs::write("BENCH_insight.json", &json).expect("write BENCH_insight.json");
    println!("{json}");
    println!("insight report OK");
}
