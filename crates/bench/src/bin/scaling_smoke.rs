//! Sharding scaling smoke: aggregate throughput and p99 at 1 vs 4 router
//! shards, written to `BENCH_sharding.json` for CI.
//!
//! The rig is deliberately router-bound: the device gets more channels,
//! lower flash latency, and a small per-command overhead than the
//! calibrated 970-EVO model, and the queue pairs are driven by raw
//! closed-loop generators instead of fio guests, so the only serialized
//! resource is the router shard itself. Four shards must then deliver at
//! least 1.5x the aggregate IOPS of one (the acceptance bar; in practice
//! it is close to 4x), and doorbell coalescing must hold: no more than one
//! CQ notify per drained batch per queue.
//!
//! ```sh
//! cargo run --release -p nvmetro-bench --bin scaling_smoke
//! ```

use nvmetro_core::classify::Classifier;
use nvmetro_core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro_core::{passthrough_program, Partition};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, Executor, Ns, Progress, MS, SEC};
use nvmetro_stats::Histogram;
use nvmetro_telemetry::{Metric, Percentiles, Telemetry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const QUEUE_PAIRS: usize = 4;
const QD: usize = 32; // per queue pair; aggregate QD 128 >= the QD 16 bar
const CAPACITY_LBAS: u64 = 1 << 20;

/// Shared counters one generator exposes to the harness.
#[derive(Default)]
struct LoadStats {
    completed: AtomicU64,
    latency: Mutex<Histogram>,
}

/// Closed-loop read generator: keeps `qd` commands outstanding on one
/// virtual queue pair until `deadline`, then lets the pipe drain. No
/// modeled per-I/O guest cost — the router must be the bottleneck.
struct Load {
    name: String,
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    outstanding: usize,
    deadline: Ns,
    next_cid: u16,
    lba: u64,
    submit_ts: HashMap<u16, Ns>,
    stats: Arc<LoadStats>,
}

impl Load {
    fn new(name: String, sq: SqProducer, cq: CqConsumer, qd: usize, deadline: Ns) -> Self {
        Load {
            name,
            sq,
            cq,
            qd,
            outstanding: 0,
            deadline,
            next_cid: 0,
            lba: 0,
            submit_ts: HashMap::new(),
            stats: Arc::new(LoadStats::default()),
        }
    }
}

impl Actor for Load {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while let Some(cqe) = self.cq.pop() {
            self.outstanding -= 1;
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.submit_ts.remove(&cqe.cid) {
                self.stats.latency.lock().unwrap().record(now - t);
            }
            progressed = true;
        }
        if now < self.deadline {
            while self.outstanding < self.qd {
                let mut cmd = SubmissionEntry::read(1, self.lba, 1, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_err() {
                    break;
                }
                self.submit_ts.insert(self.next_cid, now);
                self.next_cid = self.next_cid.wrapping_add(1);
                self.lba = (self.lba + 8) % (CAPACITY_LBAS - 8);
                self.outstanding += 1;
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        None
    }
}

struct RunResult {
    shards: usize,
    iops: f64,
    p99_ns: u64,
    completed: u64,
    cq_batches: u64,
    cq_notifies: u64,
}

/// A device fast enough that the router, not the flash, saturates first.
fn fast_device_cost() -> CostModel {
    CostModel {
        ssd_channels: 64,
        ssd_read_lat: 5_000,
        ssd_cmd_overhead: 150,
        ssd_cmd_overhead_write: 300,
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

fn run_one(shards: usize, duration: Ns) -> RunResult {
    let telemetry = Telemetry::enabled();
    let cost = fast_device_cost();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: CAPACITY_LBAS,
            cost: cost.clone(),
            move_data: false,
            seed: 7,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let partition = Partition::whole(CAPACITY_LBAS);

    let mut ex = Executor::new();
    let mut queues = Vec::new();
    let mut stats = Vec::new();
    for qp in 0..QUEUE_PAIRS {
        let (vsq_p, vsq_c) = SqPair::new(256);
        let (vcq_p, vcq_c) = CqPair::new(256);
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        queues.push(QueueBinding {
            vsqs: vec![vsq_c],
            vcqs: vec![vcq_p],
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        });
        let load = Load::new(format!("load-{qp}"), vsq_p, vcq_c, QD, duration);
        stats.push(load.stats.clone());
        ex.add(Box::new(load));
    }

    let engine = RouterBuilder::new("router")
        .cost(cost)
        .shards(shards)
        .table_capacity(4096)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition,
            queues,
        })
        .build();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));

    let report = ex.run(u64::MAX);
    let mut completed = 0u64;
    let mut hist = Histogram::new();
    for s in &stats {
        completed += s.completed.load(Ordering::Relaxed);
        hist.merge(&s.latency.lock().unwrap());
    }
    let snap = telemetry.snapshot();
    RunResult {
        shards,
        iops: completed as f64 * SEC as f64 / report.duration.max(1) as f64,
        p99_ns: Percentiles::of(&hist).p99,
        completed,
        cq_batches: snap.get(Metric::CqBatches),
        cq_notifies: snap.get(Metric::CqNotifies),
    }
}

fn main() {
    let duration = std::env::var("NVMETRO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60)
        * MS;

    let mut results = Vec::new();
    for shards in [1usize, 4] {
        let r = run_one(shards, duration);
        println!(
            "shards={} iops={:.0} p99={}ns completed={} cq_batches={} cq_notifies={}",
            r.shards, r.iops, r.p99_ns, r.completed, r.cq_batches, r.cq_notifies
        );
        // Doorbell coalescing bar: at most one notify per drained batch
        // per touched queue. Each flush touches at most QUEUE_PAIRS queues
        // on a shard, so globally cq_notifies <= cq_batches * QUEUE_PAIRS.
        assert!(
            r.cq_notifies <= r.cq_batches * QUEUE_PAIRS as u64,
            "coalescing violated: {} notifies for {} batches",
            r.cq_notifies,
            r.cq_batches
        );
        assert!(
            r.cq_notifies <= r.completed,
            "more notifies than completions"
        );
        results.push(r);
    }

    let base = results[0].iops;
    let speedup = results[1].iops / base.max(1.0);
    let json = format!(
        "{{\n  \"queue_pairs\": {},\n  \"qd_per_queue\": {},\n  \"duration_ms\": {},\n  \"results\": [\n{}\n  ],\n  \"speedup_1_to_4\": {:.3}\n}}\n",
        QUEUE_PAIRS,
        QD,
        duration / MS,
        results
            .iter()
            .map(|r| format!(
                "    {{\"shards\": {}, \"iops\": {:.0}, \"p99_ns\": {}, \"completed\": {}, \"cq_batches\": {}, \"cq_notifies\": {}}}",
                r.shards, r.iops, r.p99_ns, r.completed, r.cq_batches, r.cq_notifies
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        speedup
    );
    std::fs::write("BENCH_sharding.json", &json).expect("write BENCH_sharding.json");
    println!("{json}");
    assert!(
        speedup >= 1.5,
        "sharding speedup {speedup:.2}x below the 1.5x acceptance bar"
    );
    println!("scaling smoke OK: {speedup:.2}x");
}
