//! Live-servicing acceptance report: quiesce latency, snapshot/restore
//! cost, and online-reshard drain tails, written to
//! `BENCH_servicing.json` for CI.
//!
//! Three phases on one QD-128 closed-loop rig (4 queue pairs, 2 shards):
//!
//! * **Quiesce** — close admission under full load and measure the
//!   virtual time until every in-flight request has answered its guest;
//! * **Snapshot/restore** — serialize the quiesced engine through the
//!   versioned byte format and assemble a fresh engine from it, measuring
//!   the wall-clock cost of both directions and the state size;
//! * **Reshard** — alternate `shards: 2↔4` mid-flight, repeatedly, and
//!   measure how long each reshard takes to drain the requests that were
//!   outstanding at the cut (quarantine + replay), p50/p99 over cycles.
//!
//! Bars enforced here:
//! * the books balance end to end — every submitted command answered
//!   exactly once across quiesce, restore, and every reshard (zero-drop);
//! * at least one reshard cycle actually replayed in-flight requests;
//! * the reshard drain p99 stays under 5 ms of virtual time.
//!
//! ```sh
//! cargo run --release -p nvmetro-bench --bin servicing_smoke
//! ```

use nvmetro_core::engine::{Engine, EngineVm, QueueBinding, RouterBuilder};
use nvmetro_core::{passthrough_program, Classifier, Partition, ServiceState};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, Ns, MS, US};
use nvmetro_telemetry::{Metric, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const QPS: usize = 4;
const QD: usize = 32; // per queue pair; 128 aggregate

/// Closed-loop reader on one queue pair, driven by hand.
struct Driver {
    sq: SqProducer,
    cq: CqConsumer,
    outstanding: usize,
    next_cid: u16,
    submitted: u64,
    counts: HashMap<u16, u32>,
    lba_base: u64,
}

impl Driver {
    fn new(sq: SqProducer, cq: CqConsumer, lba_base: u64) -> Self {
        Driver {
            sq,
            cq,
            outstanding: 0,
            next_cid: 0,
            submitted: 0,
            counts: HashMap::new(),
            lba_base,
        }
    }

    fn pump(&mut self, open: bool) {
        while let Some(cqe) = self.cq.pop() {
            self.outstanding -= 1;
            *self.counts.entry(cqe.cid).or_insert(0) += 1;
        }
        if !open {
            return;
        }
        while self.outstanding < QD {
            let mut cmd = SubmissionEntry::read(
                1,
                self.lba_base + (self.next_cid as u64 % 256) * 8,
                8,
                0x1000,
                0,
            );
            cmd.cid = self.next_cid;
            if self.sq.push(cmd).is_err() {
                break;
            }
            self.next_cid = self.next_cid.wrapping_add(1);
            self.outstanding += 1;
            self.submitted += 1;
        }
    }

    /// Every cid below `mark` answered (reshard drain criterion).
    fn drained_to(&self, mark: u16) -> bool {
        (0..mark).all(|cid| self.counts.contains_key(&cid))
    }
}

fn percentile(sorted: &[Ns], p: f64) -> Ns {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let duration = std::env::var("NVMETRO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20)
        * MS;
    let telemetry = Telemetry::enabled();
    let cost = CostModel {
        ssd_jitter: 0.0,
        ..Default::default()
    };
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 11,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut queues = Vec::new();
    let mut drivers = Vec::new();
    for qp in 0..QPS {
        let (vsq_p, vsq_c) = SqPair::new(256);
        let (vcq_p, vcq_c) = CqPair::new(256);
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        queues.push(QueueBinding {
            vsqs: vec![vsq_c],
            vcqs: vec![vcq_p],
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        });
        drivers.push(Driver::new(vsq_p, vcq_c, (qp as u64) << 14));
    }
    let mut engine = RouterBuilder::new("router")
        .cost(cost)
        .shards(2)
        .table_capacity(2048)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            queues,
        })
        .build();

    let step = 2 * US;
    let mut now: Ns = 0;
    let warmup = duration / 4;
    while now < warmup {
        engine.poll_all(now);
        ssd.poll(now);
        for d in drivers.iter_mut() {
            d.pump(true);
        }
        now += step;
    }

    // Phase 1: quiesce latency under full QD-128 load.
    engine.begin_quiesce();
    let quiesce_start = now;
    while !engine.quiesced() {
        engine.poll_all(now);
        ssd.poll(now);
        for d in drivers.iter_mut() {
            d.pump(false);
        }
        now += step;
        assert!(now < quiesce_start + 100 * MS, "quiesce never drained");
    }
    let quiesce_ns = now - quiesce_start;

    // Phase 2: snapshot → bytes → parse → restore, wall-clock timed.
    let t0 = Instant::now();
    let (state, parts) = engine.snapshot(now);
    let bytes = state.to_bytes();
    let snapshot_us = t0.elapsed().as_micros() as u64;
    let snapshot_bytes = bytes.len();
    let t1 = Instant::now();
    let decoded = ServiceState::from_bytes(&bytes).expect("snapshot must parse");
    let mut engine = Engine::restore(parts, &decoded, now).expect("restore");
    let restore_us = t1.elapsed().as_micros() as u64;

    // Phase 3: alternate 2↔4 shards mid-flight; measure each cycle's
    // drain — virtual time until every request outstanding at the cut
    // (quarantined + replayed on its new shard) has answered its guest —
    // while the load keeps running.
    let cycles = 12usize;
    let mut drains: Vec<Ns> = Vec::new();
    let window = (duration / 2 / cycles as u64).max(200 * US);
    for c in 0..cycles {
        let until = now + window;
        while now < until {
            engine.poll_all(now);
            ssd.poll(now);
            for d in drivers.iter_mut() {
                d.pump(true);
            }
            now += step;
        }
        let marks: Vec<u16> = drivers.iter().map(|d| d.next_cid).collect();
        let to = if c % 2 == 0 { 4 } else { 2 };
        engine = engine.reshard(to, now).expect("reshard");
        let cut = now;
        while !drivers.iter().zip(&marks).all(|(d, &m)| d.drained_to(m)) {
            engine.poll_all(now);
            ssd.poll(now);
            for d in drivers.iter_mut() {
                d.pump(true);
            }
            now += step;
            assert!(now < cut + 100 * MS, "reshard {c} never drained");
        }
        drains.push(now - cut);
    }

    // Wind down: stop submitting, drain everything, settle the books.
    while drivers.iter().any(|d| d.outstanding > 0) {
        engine.poll_all(now);
        ssd.poll(now);
        for d in drivers.iter_mut() {
            d.pump(false);
        }
        now += step;
    }

    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut zero_drop = true;
    for d in &drivers {
        submitted += d.submitted;
        completed += d.counts.len() as u64;
        zero_drop &= d.counts.len() as u64 == d.submitted && d.counts.values().all(|&n| n == 1);
    }
    let snap = telemetry.snapshot();
    let replayed = snap.get(Metric::ReplayedRequests);
    let reshards = snap.get(Metric::Reshards);
    drains.sort_unstable();
    let p50 = percentile(&drains, 0.50);
    let p99 = percentile(&drains, 0.99);

    println!(
        "quiesce {quiesce_ns}ns  snapshot {snapshot_bytes}B/{snapshot_us}us  restore {restore_us}us"
    );
    println!(
        "reshards {reshards} replayed {replayed} drain p50 {p50}ns p99 {p99}ns  completed {completed}/{submitted}"
    );

    let json = format!(
        "{{\n  \"duration_ms\": {},\n  \"aggregate_qd\": {},\n  \"quiesce_ns\": {},\n  \"snapshot_bytes\": {},\n  \"snapshot_wall_us\": {},\n  \"restore_wall_us\": {},\n  \"reshard_cycles\": {},\n  \"reshard_drain_p50_ns\": {},\n  \"reshard_drain_p99_ns\": {},\n  \"replayed\": {},\n  \"submitted\": {},\n  \"completed\": {},\n  \"zero_drop\": {}\n}}\n",
        duration / MS,
        QPS * QD,
        quiesce_ns,
        snapshot_bytes,
        snapshot_us,
        restore_us,
        cycles,
        p50,
        p99,
        replayed,
        submitted,
        completed,
        zero_drop,
    );
    std::fs::write("BENCH_servicing.json", &json).expect("write BENCH_servicing.json");
    println!("{json}");

    assert!(zero_drop, "a command was lost or answered twice");
    assert!(
        replayed >= 1,
        "QD-128 reshards must replay in-flight requests"
    );
    assert_eq!(reshards, cycles as u64);
    assert!(quiesce_ns > 0);
    assert!(p99 < 5 * MS, "reshard drain p99 {p99}ns above the 5 ms bar");
    println!("servicing smoke OK: quiesce {quiesce_ns}ns, reshard drain p99 {p99}ns");
}
