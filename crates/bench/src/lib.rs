//! Shared support for the figure/table harnesses.
//!
//! Every table and figure of the paper's evaluation (§V) has a bench
//! target in `benches/` (plain binaries, `harness = false`) that
//! regenerates its rows. `cargo bench` runs them all; the run length is
//! tunable with `NVMETRO_BENCH_MS` (virtual milliseconds per data point,
//! default 60).

use nvmetro_sim::{Ns, MS};
use nvmetro_workloads::fio::{FioConfig, FioMode};
use nvmetro_workloads::rig::RigOptions;

/// Virtual duration of each data point.
pub fn bench_duration() -> Ns {
    std::env::var("NVMETRO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60)
        * MS
}

/// Standard rig options for the figure harnesses.
pub fn default_opts() -> RigOptions {
    RigOptions::default()
}

/// Formats a block size the way the paper labels panels.
pub fn bs_label(bs: usize) -> String {
    if bs < 1024 {
        format!("{}B", bs)
    } else {
        format!("{}KB", bs / 1024)
    }
}

/// The storage-function grid of Figs. 7/9/12/13: three block sizes at
/// (QD1, 1 job) and (QD128, 4 jobs), random modes for 512 B and
/// sequential for the larger sizes.
pub fn function_grid() -> Vec<FioConfig> {
    let mut v = Vec::new();
    for &(qd, jobs) in &[(1u32, 1usize), (128, 4)] {
        for mode in [FioMode::RandRead, FioMode::RandWrite, FioMode::RandRw] {
            v.push(with_duration(FioConfig::new(512, mode, qd, jobs)));
        }
        for bs in [16 * 1024, 128 * 1024] {
            for mode in [FioMode::SeqRead, FioMode::SeqWrite, FioMode::SeqRw] {
                v.push(with_duration(FioConfig::new(bs, mode, qd, jobs)));
            }
        }
    }
    v
}

/// Applies the bench duration to a config.
pub fn with_duration(mut cfg: FioConfig) -> FioConfig {
    cfg.duration = bench_duration();
    cfg
}

/// Pretty ratio column ("1.00x" baseline-relative).
pub fn ratio(v: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "-".into();
    }
    format!("{:.2}x", v / baseline)
}
