//! The postmortem dump bundle: a self-contained, versioned, checksummed
//! record of the recorder's rolling window at the moment a trigger fired.
//!
//! The byte format mirrors the servicing `ServiceState` idiom: a 4-byte
//! magic (`NVBB`), a little-endian version word, the payload, and an
//! FNV-1a-64 trailer over everything before it. [`DumpBundle::to_json`]
//! renders the same content as one JSON object for tooling, and
//! [`report`](crate::report) reconstructs a human-readable incident
//! timeline from the bundle alone — no live engine required.

use nvmetro_insight::{BreakerGauge, EngineGauges, TenantGauge};
use nvmetro_telemetry::{Metric, Ns, PathKind, Route, Stage, TraceEvent};
use std::fmt::Write as _;

/// Magic prefix of every serialized dump bundle.
pub const BUNDLE_MAGIC: [u8; 4] = *b"NVBB";
/// Current bundle layout version.
pub const BUNDLE_VERSION: u16 = 1;

/// Why bundle deserialization failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BundleError {
    /// The blob does not start with [`BUNDLE_MAGIC`].
    BadMagic,
    /// The blob's layout version is not understood.
    BadVersion(u16),
    /// The blob ended before the structure it promised.
    Truncated,
    /// The checksum trailer does not match the payload.
    BadChecksum,
    /// The blob parsed but its contents are inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not a blackbox bundle (bad magic)"),
            BundleError::BadVersion(v) => write!(f, "unknown blackbox bundle version {v}"),
            BundleError::Truncated => write!(f, "blackbox bundle truncated"),
            BundleError::BadChecksum => write!(f, "blackbox bundle checksum mismatch"),
            BundleError::Corrupt(what) => write!(f, "blackbox bundle corrupt: {what}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// Little-endian wire primitives (in-repo; no external deps).
mod wire {
    use super::BundleError;

    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        pub fn new() -> Self {
            Writer { buf: Vec::new() }
        }
        pub fn u8(&mut self, v: u8) {
            self.buf.push(v);
        }
        pub fn u16(&mut self, v: u16) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        pub fn u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        pub fn u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        pub fn bytes(&mut self, v: &[u8]) {
            self.buf.extend_from_slice(v);
        }
        pub fn str(&mut self, s: &str) {
            let b = s.as_bytes();
            self.u16(b.len().min(u16::MAX as usize) as u16);
            self.bytes(&b[..b.len().min(u16::MAX as usize)]);
        }
        pub fn as_slice(&self) -> &[u8] {
            &self.buf
        }
        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }
    }

    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }
        fn take(&mut self, n: usize) -> Result<&'a [u8], BundleError> {
            if self.pos + n > self.buf.len() {
                return Err(BundleError::Truncated);
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }
        pub fn u8(&mut self) -> Result<u8, BundleError> {
            Ok(self.take(1)?[0])
        }
        pub fn u16(&mut self) -> Result<u16, BundleError> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
        }
        pub fn u32(&mut self) -> Result<u32, BundleError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }
        pub fn u64(&mut self) -> Result<u64, BundleError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
        pub fn str(&mut self) -> Result<String, BundleError> {
            let len = self.u16()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| BundleError::Corrupt("non-utf8 string"))
        }
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }
    }
}

/// FNV-1a 64 over the payload; the integrity trailer of the byte format.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A servicing lifecycle operation, derived from counter deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServicingOp {
    /// `SnapshotsTaken` moved.
    Snapshot,
    /// `Restores` moved.
    Restore,
    /// `Reshards` moved.
    Reshard,
    /// `VmAttaches` moved.
    Attach,
    /// `VmDetaches` moved.
    Detach,
}

impl ServicingOp {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ServicingOp::Snapshot => "snapshot",
            ServicingOp::Restore => "restore",
            ServicingOp::Reshard => "reshard",
            ServicingOp::Attach => "vm_attach",
            ServicingOp::Detach => "vm_detach",
        }
    }

    const ALL: [ServicingOp; 5] = [
        ServicingOp::Snapshot,
        ServicingOp::Restore,
        ServicingOp::Reshard,
        ServicingOp::Attach,
        ServicingOp::Detach,
    ];
}

/// What fired a dump.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TriggerReason {
    /// An explicit `Engine::dump()` / `Blackbox::dump_now` call.
    Manual,
    /// A queue stayed stalled for `ticks` consecutive watchdog reports.
    StallPersisted {
        /// Router shard (worker id) owning the stalled queue.
        worker: u16,
        /// Owning VM.
        vm: u32,
        /// Virtual submission queue.
        vsq: u16,
        /// Consecutive stalled reports.
        ticks: u32,
        /// Virtual time the stall streak started.
        since: Ns,
    },
    /// A route burned its SLO budget for `ticks` consecutive reports.
    SloBurnPersisted {
        /// The route over budget.
        route: Route,
        /// Consecutive over-budget reports.
        ticks: u32,
        /// Latest burn rate in permille (1000 = exactly at budget).
        burn_permille: u32,
    },
    /// The circuit breaker opened (`delta` opens since the last tick).
    BreakerOpened {
        /// Opens observed in the window.
        delta: u64,
    },
    /// The span assembler observed duplicate terminal completions — an
    /// exactly-once violation on the datapath.
    DuplicateTerminal {
        /// Violations observed so far.
        count: u64,
    },
}

/// One recorded flight-recorder entry.
#[derive(Clone, Debug, PartialEq)]
pub struct BoxEvent {
    /// Virtual time of the entry.
    pub at: Ns,
    /// What happened.
    pub kind: BoxKind,
}

/// The recorder's event vocabulary: high-signal datapath occurrences only.
#[derive(Clone, Debug, PartialEq)]
pub enum BoxKind {
    /// A rare-stage trace event (abort/retry/failover/replay, shard
    /// park/wake, causal link fan-out) copied from the telemetry rings.
    Trace(TraceEvent),
    /// Watchdog verdict: a queue stalled.
    Stalled {
        /// Router shard (worker id) owning the queue.
        worker: u16,
        /// Owning VM.
        vm: u32,
        /// Virtual submission queue.
        vsq: u16,
        /// In-flight requests on the queue.
        open: u32,
        /// Age of the oldest in-flight request.
        oldest_age_ns: Ns,
    },
    /// Watchdog verdict: a stalled queue recovered.
    Recovered {
        /// Router shard (worker id) owning the queue.
        worker: u16,
        /// Owning VM.
        vm: u32,
        /// Virtual submission queue.
        vsq: u16,
    },
    /// Watchdog verdict: the breaker is flapping.
    BreakerFlap {
        /// Opens in the offending window.
        opens: u64,
    },
    /// Watchdog verdict: a route is over its SLO error budget.
    SloBurn {
        /// The route over budget.
        route: Route,
        /// Burn rate in permille (1000 = exactly at budget).
        burn_permille: u32,
    },
    /// A fleet feedback throttle decision.
    Throttle {
        /// Tenant (VM) id.
        tenant: u32,
        /// New throttle scale in permille (1000 = unthrottled).
        permille: u32,
        /// True for tighten, false for relax.
        tighten: bool,
    },
    /// A servicing lifecycle operation (from counter deltas).
    Servicing {
        /// Which operation.
        op: ServicingOp,
        /// How many this tick.
        count: u64,
    },
    /// Periodic counter checkpoint: only the metrics that moved since the
    /// previous checkpoint, as `(metric, delta)` pairs.
    Checkpoint {
        /// Sparse counter deltas.
        deltas: Vec<(Metric, u64)>,
    },
    /// A dump trigger fired.
    Trigger(TriggerReason),
}

/// The active engine policy, rendered to strings so the bundle stays
/// self-contained (no core types on the wire).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PolicySummary {
    /// Poll policy rendering (e.g. `spin`, `adaptive(idle_spin=…)`).
    pub poll: String,
    /// Batch policy rendering (e.g. `fixed(32)`, `auto(4..256)`).
    pub batch: String,
    /// Placement policy rendering.
    pub placement: String,
    /// Worker threads per shard station.
    pub workers: u32,
}

/// One incomplete span resident at dump time — the requests that were
/// still in flight when the incident fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidueSpan {
    /// Router shard (worker id) that owned the request.
    pub shard: u16,
    /// Owning VM.
    pub vm: u32,
    /// Virtual submission queue.
    pub vsq: u16,
    /// Routing-table tag.
    pub tag: u16,
    /// Router-stamped generation.
    pub gen: u8,
    /// When the span opened.
    pub start_ns: Ns,
    /// Latest event observed on the span.
    pub last_ns: Ns,
    /// The last lifecycle stage the span reached.
    pub last_stage: Stage,
}

/// The self-contained postmortem bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct DumpBundle {
    /// What fired the dump.
    pub reason: TriggerReason,
    /// Virtual time of the dump.
    pub at: Ns,
    /// Rolling-window horizon the timeline was trimmed to.
    pub window_ns: Ns,
    /// Ring entries evicted before this dump (older history lost).
    pub evicted: u64,
    /// Timeline entries inside the window, oldest first.
    pub timeline: Vec<BoxEvent>,
    /// Datapath counters at dump time, indexed by `Metric as usize`.
    pub counters: [u64; Metric::COUNT],
    /// Latest-fed per-shard engine gauges, if any were fed.
    pub gauges: Option<EngineGauges>,
    /// Latest-fed active engine policy, if fed.
    pub policy: Option<PolicySummary>,
    /// Requests still in flight at dump time.
    pub residue: Vec<ResidueSpan>,
}

fn stage_from(v: u8) -> Result<Stage, BundleError> {
    Stage::ALL
        .get(v as usize)
        .copied()
        .ok_or(BundleError::Corrupt("bad stage"))
}

fn path_from(v: u8) -> Result<PathKind, BundleError> {
    match v {
        0 => Ok(PathKind::None),
        1 => Ok(PathKind::Fast),
        2 => Ok(PathKind::Kernel),
        3 => Ok(PathKind::Notify),
        _ => Err(BundleError::Corrupt("bad path kind")),
    }
}

fn route_from(v: u8) -> Result<Route, BundleError> {
    Route::ALL
        .get(v as usize)
        .copied()
        .ok_or(BundleError::Corrupt("bad route"))
}

fn metric_from(v: u8) -> Result<Metric, BundleError> {
    Metric::ALL
        .get(v as usize)
        .copied()
        .ok_or(BundleError::Corrupt("bad metric"))
}

/// Poll-mode gauge names are interned; unknown names round-trip as `"?"`.
fn poll_mode_from(v: u8) -> &'static str {
    match v {
        0 => "spin",
        1 => "yield",
        2 => "parked",
        _ => "?",
    }
}

fn poll_mode_code(name: &str) -> u8 {
    match name {
        "spin" => 0,
        "yield" => 1,
        "parked" => 2,
        _ => 255,
    }
}

fn write_reason(w: &mut wire::Writer, r: &TriggerReason) {
    match r {
        TriggerReason::Manual => w.u8(0),
        TriggerReason::StallPersisted {
            worker,
            vm,
            vsq,
            ticks,
            since,
        } => {
            w.u8(1);
            w.u16(*worker);
            w.u32(*vm);
            w.u16(*vsq);
            w.u32(*ticks);
            w.u64(*since);
        }
        TriggerReason::SloBurnPersisted {
            route,
            ticks,
            burn_permille,
        } => {
            w.u8(2);
            w.u8(*route as u8);
            w.u32(*ticks);
            w.u32(*burn_permille);
        }
        TriggerReason::BreakerOpened { delta } => {
            w.u8(3);
            w.u64(*delta);
        }
        TriggerReason::DuplicateTerminal { count } => {
            w.u8(4);
            w.u64(*count);
        }
    }
}

fn read_reason(r: &mut wire::Reader) -> Result<TriggerReason, BundleError> {
    Ok(match r.u8()? {
        0 => TriggerReason::Manual,
        1 => TriggerReason::StallPersisted {
            worker: r.u16()?,
            vm: r.u32()?,
            vsq: r.u16()?,
            ticks: r.u32()?,
            since: r.u64()?,
        },
        2 => TriggerReason::SloBurnPersisted {
            route: route_from(r.u8()?)?,
            ticks: r.u32()?,
            burn_permille: r.u32()?,
        },
        3 => TriggerReason::BreakerOpened { delta: r.u64()? },
        4 => TriggerReason::DuplicateTerminal { count: r.u64()? },
        _ => return Err(BundleError::Corrupt("bad trigger reason")),
    })
}

fn write_event(w: &mut wire::Writer, e: &BoxEvent) {
    w.u64(e.at);
    match &e.kind {
        BoxKind::Trace(t) => {
            w.u8(0);
            w.u64(t.ts_ns);
            w.u32(t.vm);
            w.u16(t.vsq);
            w.u16(t.tag);
            w.u16(t.worker);
            w.u8(t.gen);
            w.u8(t.stage as u8);
            w.u8(t.path as u8);
            w.u16(t.link_tag);
            w.u8(t.link_gen);
        }
        BoxKind::Stalled {
            worker,
            vm,
            vsq,
            open,
            oldest_age_ns,
        } => {
            w.u8(1);
            w.u16(*worker);
            w.u32(*vm);
            w.u16(*vsq);
            w.u32(*open);
            w.u64(*oldest_age_ns);
        }
        BoxKind::Recovered { worker, vm, vsq } => {
            w.u8(2);
            w.u16(*worker);
            w.u32(*vm);
            w.u16(*vsq);
        }
        BoxKind::BreakerFlap { opens } => {
            w.u8(3);
            w.u64(*opens);
        }
        BoxKind::SloBurn {
            route,
            burn_permille,
        } => {
            w.u8(4);
            w.u8(*route as u8);
            w.u32(*burn_permille);
        }
        BoxKind::Throttle {
            tenant,
            permille,
            tighten,
        } => {
            w.u8(5);
            w.u32(*tenant);
            w.u32(*permille);
            w.u8(*tighten as u8);
        }
        BoxKind::Servicing { op, count } => {
            w.u8(6);
            w.u8(*op as u8);
            w.u64(*count);
        }
        BoxKind::Checkpoint { deltas } => {
            w.u8(7);
            w.u8(deltas.len().min(255) as u8);
            for (m, d) in deltas.iter().take(255) {
                w.u8(*m as u8);
                w.u64(*d);
            }
        }
        BoxKind::Trigger(reason) => {
            w.u8(8);
            write_reason(w, reason);
        }
    }
}

fn read_event(r: &mut wire::Reader) -> Result<BoxEvent, BundleError> {
    let at = r.u64()?;
    let kind = match r.u8()? {
        0 => BoxKind::Trace(TraceEvent {
            ts_ns: r.u64()?,
            vm: r.u32()?,
            vsq: r.u16()?,
            tag: r.u16()?,
            worker: r.u16()?,
            gen: r.u8()?,
            stage: stage_from(r.u8()?)?,
            path: path_from(r.u8()?)?,
            link_tag: r.u16()?,
            link_gen: r.u8()?,
        }),
        1 => BoxKind::Stalled {
            worker: r.u16()?,
            vm: r.u32()?,
            vsq: r.u16()?,
            open: r.u32()?,
            oldest_age_ns: r.u64()?,
        },
        2 => BoxKind::Recovered {
            worker: r.u16()?,
            vm: r.u32()?,
            vsq: r.u16()?,
        },
        3 => BoxKind::BreakerFlap { opens: r.u64()? },
        4 => BoxKind::SloBurn {
            route: route_from(r.u8()?)?,
            burn_permille: r.u32()?,
        },
        5 => BoxKind::Throttle {
            tenant: r.u32()?,
            permille: r.u32()?,
            tighten: r.u8()? != 0,
        },
        6 => BoxKind::Servicing {
            op: *ServicingOp::ALL
                .get(r.u8()? as usize)
                .ok_or(BundleError::Corrupt("bad servicing op"))?,
            count: r.u64()?,
        },
        7 => {
            let n = r.u8()? as usize;
            let mut deltas = Vec::with_capacity(n);
            for _ in 0..n {
                deltas.push((metric_from(r.u8()?)?, r.u64()?));
            }
            BoxKind::Checkpoint { deltas }
        }
        8 => BoxKind::Trigger(read_reason(r)?),
        _ => return Err(BundleError::Corrupt("bad event kind")),
    };
    Ok(BoxEvent { at, kind })
}

impl DumpBundle {
    /// Serializes the bundle: magic, version, payload, FNV-1a-64 trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = wire::Writer::new();
        w.bytes(&BUNDLE_MAGIC);
        w.u16(BUNDLE_VERSION);
        write_reason(&mut w, &self.reason);
        w.u64(self.at);
        w.u64(self.window_ns);
        w.u64(self.evicted);
        w.u16(Metric::COUNT as u16);
        for c in &self.counters {
            w.u64(*c);
        }
        match &self.policy {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                w.str(&p.poll);
                w.str(&p.batch);
                w.str(&p.placement);
                w.u32(p.workers);
            }
        }
        match &self.gauges {
            None => w.u8(0),
            Some(g) => {
                w.u8(1);
                w.u16(g.poll_modes.len() as u16);
                for m in &g.poll_modes {
                    w.u8(poll_mode_code(m));
                }
                w.u16(g.batch_sizes.len() as u16);
                for b in &g.batch_sizes {
                    w.u32(*b as u32);
                }
                w.u16(g.shard_cores.len() as u16);
                for c in &g.shard_cores {
                    w.u32(*c as u32);
                }
                w.u32(g.occupancy as u32);
                w.u32(g.high_water as u32);
                w.u16(g.tenants.len() as u16);
                for t in &g.tenants {
                    w.u16(t.shard as u16);
                    w.u32(t.tenant);
                    w.u32(t.throttle_permille);
                    w.u64(t.deficit);
                    w.u64(t.admitted);
                    w.u64(t.throttled);
                }
                w.u16(g.breakers.len() as u16);
                for b in &g.breakers {
                    w.u16(b.shard as u16);
                    w.u32(b.vm);
                    w.u8(b.open as u8);
                    w.u64(b.opens);
                }
            }
        }
        w.u32(self.timeline.len() as u32);
        for e in &self.timeline {
            write_event(&mut w, e);
        }
        w.u32(self.residue.len() as u32);
        for s in &self.residue {
            w.u16(s.shard);
            w.u32(s.vm);
            w.u16(s.vsq);
            w.u16(s.tag);
            w.u8(s.gen);
            w.u64(s.start_ns);
            w.u64(s.last_ns);
            w.u8(s.last_stage as u8);
        }
        let checksum = fnv1a(w.as_slice());
        w.u64(checksum);
        w.into_bytes()
    }

    /// Parses and verifies a serialized bundle.
    pub fn from_bytes(bytes: &[u8]) -> Result<DumpBundle, BundleError> {
        if bytes.len() < BUNDLE_MAGIC.len() + 2 + 8 {
            return Err(BundleError::Truncated);
        }
        if bytes[..4] != BUNDLE_MAGIC {
            return Err(BundleError::BadMagic);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        if fnv1a(payload) != stored {
            return Err(BundleError::BadChecksum);
        }
        let mut r = wire::Reader::new(&payload[4..]);
        let version = r.u16()?;
        if version != BUNDLE_VERSION {
            return Err(BundleError::BadVersion(version));
        }
        let reason = read_reason(&mut r)?;
        let at = r.u64()?;
        let window_ns = r.u64()?;
        let evicted = r.u64()?;
        let n_counters = r.u16()? as usize;
        if n_counters > Metric::COUNT {
            return Err(BundleError::Corrupt("counter count"));
        }
        let mut counters = [0u64; Metric::COUNT];
        for c in counters.iter_mut().take(n_counters) {
            *c = r.u64()?;
        }
        let policy = match r.u8()? {
            0 => None,
            1 => Some(PolicySummary {
                poll: r.str()?,
                batch: r.str()?,
                placement: r.str()?,
                workers: r.u32()?,
            }),
            _ => return Err(BundleError::Corrupt("policy presence flag")),
        };
        let gauges = match r.u8()? {
            0 => None,
            1 => {
                let n = r.u16()? as usize;
                let mut poll_modes = Vec::with_capacity(n);
                for _ in 0..n {
                    poll_modes.push(poll_mode_from(r.u8()?));
                }
                let n = r.u16()? as usize;
                let mut batch_sizes = Vec::with_capacity(n);
                for _ in 0..n {
                    batch_sizes.push(r.u32()? as usize);
                }
                let n = r.u16()? as usize;
                let mut shard_cores = Vec::with_capacity(n);
                for _ in 0..n {
                    shard_cores.push(r.u32()? as usize);
                }
                let occupancy = r.u32()? as usize;
                let high_water = r.u32()? as usize;
                let n = r.u16()? as usize;
                let mut tenants = Vec::with_capacity(n);
                for _ in 0..n {
                    tenants.push(TenantGauge {
                        shard: r.u16()? as usize,
                        tenant: r.u32()?,
                        throttle_permille: r.u32()?,
                        deficit: r.u64()?,
                        admitted: r.u64()?,
                        throttled: r.u64()?,
                    });
                }
                let n = r.u16()? as usize;
                let mut breakers = Vec::with_capacity(n);
                for _ in 0..n {
                    breakers.push(BreakerGauge {
                        shard: r.u16()? as usize,
                        vm: r.u32()?,
                        open: r.u8()? != 0,
                        opens: r.u64()?,
                    });
                }
                Some(EngineGauges {
                    poll_modes,
                    batch_sizes,
                    shard_cores,
                    occupancy,
                    high_water,
                    tenants,
                    breakers,
                })
            }
            _ => return Err(BundleError::Corrupt("gauges presence flag")),
        };
        let n = r.u32()? as usize;
        let mut timeline = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            timeline.push(read_event(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut residue = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            residue.push(ResidueSpan {
                shard: r.u16()?,
                vm: r.u32()?,
                vsq: r.u16()?,
                tag: r.u16()?,
                gen: r.u8()?,
                start_ns: r.u64()?,
                last_ns: r.u64()?,
                last_stage: stage_from(r.u8()?)?,
            });
        }
        if r.remaining() != 0 {
            return Err(BundleError::Corrupt("trailing payload"));
        }
        Ok(DumpBundle {
            reason,
            at,
            window_ns,
            evicted,
            timeline,
            counters,
            gauges,
            policy,
            residue,
        })
    }

    /// Renders the bundle as one JSON object (hand-rolled, validated by
    /// `insight::export::validate_json` in tests).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(
            out,
            "\"version\":{BUNDLE_VERSION},\"at_ns\":{},\"window_ns\":{},\"evicted\":{},",
            self.at, self.window_ns, self.evicted
        );
        out.push_str("\"reason\":");
        reason_json(&mut out, &self.reason);
        out.push(',');
        out.push_str("\"counters\":{");
        let mut first = true;
        for m in Metric::ALL {
            let v = self.counters[m as usize];
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", m.name());
        }
        out.push_str("},");
        match &self.policy {
            None => out.push_str("\"policy\":null,"),
            Some(p) => {
                let _ = write!(
                    out,
                    "\"policy\":{{\"poll\":\"{}\",\"batch\":\"{}\",\"placement\":\"{}\",\
                     \"workers\":{}}},",
                    esc(&p.poll),
                    esc(&p.batch),
                    esc(&p.placement),
                    p.workers
                );
            }
        }
        match &self.gauges {
            None => out.push_str("\"gauges\":null,"),
            Some(g) => {
                out.push_str("\"gauges\":{\"shards\":[");
                for i in 0..g.poll_modes.len() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"shard\":{i},\"poll_mode\":\"{}\",\"batch\":{},\"core\":{}}}",
                        g.poll_modes[i],
                        g.batch_sizes.get(i).copied().unwrap_or(0),
                        g.shard_cores.get(i).copied().unwrap_or(0)
                    );
                }
                let _ = write!(
                    out,
                    "],\"occupancy\":{},\"high_water\":{},\"tenants\":[",
                    g.occupancy, g.high_water
                );
                for (i, t) in g.tenants.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"shard\":{},\"tenant\":{},\"throttle_permille\":{},\
                         \"admitted\":{},\"throttled\":{}}}",
                        t.shard, t.tenant, t.throttle_permille, t.admitted, t.throttled
                    );
                }
                out.push_str("],\"breakers\":[");
                for (i, b) in g.breakers.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"shard\":{},\"vm\":{},\"open\":{},\"opens\":{}}}",
                        b.shard, b.vm, b.open, b.opens
                    );
                }
                out.push_str("]},");
            }
        }
        out.push_str("\"timeline\":[");
        for (i, e) in self.timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event_json(&mut out, e);
        }
        out.push_str("],\"residue\":[");
        for (i, s) in self.residue.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"vm\":{},\"vsq\":{},\"tag\":{},\"gen\":{},\
                 \"start_ns\":{},\"last_ns\":{},\"last_stage\":\"{}\"}}",
                s.shard,
                s.vm,
                s.vsq,
                s.tag,
                s.gen,
                s.start_ns,
                s.last_ns,
                s.last_stage.name()
            );
        }
        out.push_str("]}");
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn reason_json(out: &mut String, r: &TriggerReason) {
    match r {
        TriggerReason::Manual => out.push_str("{\"kind\":\"manual\"}"),
        TriggerReason::StallPersisted {
            worker,
            vm,
            vsq,
            ticks,
            since,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"stall_persisted\",\"shard\":{worker},\"vm\":{vm},\"vsq\":{vsq},\
                 \"ticks\":{ticks},\"since_ns\":{since}}}"
            );
        }
        TriggerReason::SloBurnPersisted {
            route,
            ticks,
            burn_permille,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"slo_burn_persisted\",\"route\":\"{}\",\"ticks\":{ticks},\
                 \"burn_permille\":{burn_permille}}}",
                route.name()
            );
        }
        TriggerReason::BreakerOpened { delta } => {
            let _ = write!(out, "{{\"kind\":\"breaker_opened\",\"delta\":{delta}}}");
        }
        TriggerReason::DuplicateTerminal { count } => {
            let _ = write!(out, "{{\"kind\":\"duplicate_terminal\",\"count\":{count}}}");
        }
    }
}

fn event_json(out: &mut String, e: &BoxEvent) {
    let _ = write!(out, "{{\"at_ns\":{},", e.at);
    match &e.kind {
        BoxKind::Trace(t) => {
            let _ = write!(
                out,
                "\"kind\":\"trace\",\"stage\":\"{}\",\"vm\":{},\"vsq\":{},\"tag\":{},\
                 \"gen\":{},\"shard\":{},\"path\":\"{}\"",
                t.stage.name(),
                t.vm,
                t.vsq,
                t.tag,
                t.gen,
                t.worker,
                t.path.name()
            );
            if t.link_gen != 0 {
                let _ = write!(
                    out,
                    ",\"link_tag\":{},\"link_gen\":{}",
                    t.link_tag, t.link_gen
                );
            }
        }
        BoxKind::Stalled {
            worker,
            vm,
            vsq,
            open,
            oldest_age_ns,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"stalled\",\"shard\":{worker},\"vm\":{vm},\"vsq\":{vsq},\
                 \"open\":{open},\"oldest_age_ns\":{oldest_age_ns}"
            );
        }
        BoxKind::Recovered { worker, vm, vsq } => {
            let _ = write!(
                out,
                "\"kind\":\"recovered\",\"shard\":{worker},\"vm\":{vm},\"vsq\":{vsq}"
            );
        }
        BoxKind::BreakerFlap { opens } => {
            let _ = write!(out, "\"kind\":\"breaker_flap\",\"opens\":{opens}");
        }
        BoxKind::SloBurn {
            route,
            burn_permille,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"slo_burn\",\"route\":\"{}\",\"burn_permille\":{burn_permille}",
                route.name()
            );
        }
        BoxKind::Throttle {
            tenant,
            permille,
            tighten,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"throttle\",\"tenant\":{tenant},\"permille\":{permille},\
                 \"tighten\":{tighten}"
            );
        }
        BoxKind::Servicing { op, count } => {
            let _ = write!(
                out,
                "\"kind\":\"servicing\",\"op\":\"{}\",\"count\":{count}",
                op.name()
            );
        }
        BoxKind::Checkpoint { deltas } => {
            out.push_str("\"kind\":\"checkpoint\",\"deltas\":{");
            for (i, (m, d)) in deltas.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{d}", m.name());
            }
            out.push('}');
        }
        BoxKind::Trigger(reason) => {
            out.push_str("\"kind\":\"trigger\",\"reason\":");
            reason_json(out, reason);
        }
    }
    out.push('}');
}

fn ms(ns: Ns) -> f64 {
    ns as f64 / 1_000_000.0
}

/// Reconstructs a human-readable incident timeline from a bundle alone:
/// the trigger (with the fault's site and time window when the reason
/// names one), the active policy and per-shard gauges, the counters that
/// moved, the recorded timeline, and the requests left in flight.
pub fn report(bundle: &DumpBundle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== blackbox incident report ==");
    let (site, window_start) = match &bundle.reason {
        TriggerReason::Manual => {
            let _ = writeln!(out, "trigger: explicit dump request");
            (None, None)
        }
        TriggerReason::StallPersisted {
            worker,
            vm,
            vsq,
            ticks,
            since,
        } => {
            let _ = writeln!(
                out,
                "trigger: queue stalled on shard {worker} vm {vm} vsq {vsq} for {ticks} \
                 consecutive watchdog ticks (since {:.3} ms)",
                ms(*since)
            );
            (
                Some(format!("shard {worker} vm {vm} vsq {vsq}")),
                Some(*since),
            )
        }
        TriggerReason::SloBurnPersisted {
            route,
            ticks,
            burn_permille,
        } => {
            let _ = writeln!(
                out,
                "trigger: route {} over SLO budget for {ticks} consecutive ticks \
                 (burn {:.2}x)",
                route.name(),
                *burn_permille as f64 / 1000.0
            );
            (Some(format!("route {}", route.name())), None)
        }
        TriggerReason::BreakerOpened { delta } => {
            let _ = writeln!(out, "trigger: circuit breaker opened ({delta} opens)");
            // The breaker gauges name the open (shard, vm) cell.
            let site = bundle.gauges.as_ref().and_then(|g| {
                g.breakers
                    .iter()
                    .find(|b| b.open)
                    .map(|b| format!("shard {} vm {}", b.shard, b.vm))
            });
            (site, None)
        }
        TriggerReason::DuplicateTerminal { count } => {
            let _ = writeln!(
                out,
                "trigger: {count} duplicate terminal completion(s) — exactly-once violation"
            );
            (None, None)
        }
    };
    let start = window_start.unwrap_or_else(|| bundle.at.saturating_sub(bundle.window_ns));
    let _ = writeln!(
        out,
        "dumped at {:.3} ms; window {:.3}..{:.3} ms ({} timeline entries, {} evicted)",
        ms(bundle.at),
        ms(start),
        ms(bundle.at),
        bundle.timeline.len(),
        bundle.evicted
    );
    if let Some(site) = &site {
        let _ = writeln!(out, "fault site: {site}");
    }

    if let Some(p) = &bundle.policy {
        let _ = writeln!(
            out,
            "policy: poll={} batch={} placement={} workers={}",
            p.poll, p.batch, p.placement, p.workers
        );
    }
    if let Some(g) = &bundle.gauges {
        let _ = writeln!(
            out,
            "gauges: occupancy {} (high water {})",
            g.occupancy, g.high_water
        );
        for i in 0..g.poll_modes.len() {
            let _ = writeln!(
                out,
                "  shard {i}: {} batch={} core={}",
                g.poll_modes[i],
                g.batch_sizes.get(i).copied().unwrap_or(0),
                g.shard_cores.get(i).copied().unwrap_or(0)
            );
        }
        for t in &g.tenants {
            if t.throttle_permille < 1000 || t.throttled > 0 {
                let _ = writeln!(
                    out,
                    "  tenant {} (shard {}): throttle {}‰, {} throttled",
                    t.tenant, t.shard, t.throttle_permille, t.throttled
                );
            }
        }
        for b in &g.breakers {
            if b.open || b.opens > 0 {
                let _ = writeln!(
                    out,
                    "  breaker shard {} vm {}: {} ({} opens)",
                    b.shard,
                    b.vm,
                    if b.open { "OPEN" } else { "closed" },
                    b.opens
                );
            }
        }
    }

    let interesting = [
        Metric::Accepted,
        Metric::Completed,
        Metric::Errors,
        Metric::Retries,
        Metric::Aborts,
        Metric::Failovers,
        Metric::BreakerOpens,
        Metric::StallsDetected,
        Metric::ReplayedRequests,
        Metric::ThrottleApplied,
    ];
    let mut line = String::from("counters:");
    for m in interesting {
        let _ = write!(line, " {}={}", m.name(), bundle.counters[m as usize]);
    }
    let _ = writeln!(out, "{line}");

    let _ = writeln!(out, "timeline:");
    for e in &bundle.timeline {
        let _ = write!(out, "  {:>10.3} ms  ", ms(e.at));
        match &e.kind {
            BoxKind::Trace(t) => {
                let _ = write!(
                    out,
                    "{} vm {} vsq {} tag {} gen {} (shard {})",
                    t.stage.name(),
                    t.vm,
                    t.vsq,
                    t.tag,
                    t.gen,
                    t.worker
                );
                if t.link_gen != 0 {
                    let _ = write!(out, " -> tag {} gen {}", t.link_tag, t.link_gen);
                }
            }
            BoxKind::Stalled {
                worker,
                vm,
                vsq,
                open,
                oldest_age_ns,
            } => {
                let _ = write!(
                    out,
                    "STALL shard {worker} vm {vm} vsq {vsq}: {open} open, oldest {:.3} ms",
                    ms(*oldest_age_ns)
                );
            }
            BoxKind::Recovered { worker, vm, vsq } => {
                let _ = write!(out, "recovered shard {worker} vm {vm} vsq {vsq}");
            }
            BoxKind::BreakerFlap { opens } => {
                let _ = write!(out, "breaker flapping ({opens} opens in window)");
            }
            BoxKind::SloBurn {
                route,
                burn_permille,
            } => {
                let _ = write!(
                    out,
                    "SLO burn on {}: {:.2}x budget",
                    route.name(),
                    *burn_permille as f64 / 1000.0
                );
            }
            BoxKind::Throttle {
                tenant,
                permille,
                tighten,
            } => {
                let _ = write!(
                    out,
                    "{} tenant {tenant} to {permille}‰",
                    if *tighten { "tighten" } else { "relax" }
                );
            }
            BoxKind::Servicing { op, count } => {
                let _ = write!(out, "servicing: {} x{count}", op.name());
            }
            BoxKind::Checkpoint { deltas } => {
                let _ = write!(out, "checkpoint:");
                for (m, d) in deltas {
                    let _ = write!(out, " +{} {d}", m.name());
                }
            }
            BoxKind::Trigger(_) => {
                let _ = write!(out, "TRIGGER fired");
            }
        }
        out.push('\n');
    }

    if bundle.residue.is_empty() {
        let _ = writeln!(out, "residue: none (no requests in flight at dump)");
    } else {
        let _ = writeln!(
            out,
            "residue ({} requests in flight):",
            bundle.residue.len()
        );
        for s in &bundle.residue {
            let _ = writeln!(
                out,
                "  shard {} vm {} vsq {} tag {} gen {}: open since {:.3} ms, \
                 age {:.3} ms, last stage {}",
                s.shard,
                s.vm,
                s.vsq,
                s.tag,
                s.gen,
                ms(s.start_ns),
                ms(bundle.at.saturating_sub(s.start_ns)),
                s.last_stage.name()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DumpBundle {
        let mut counters = [0u64; Metric::COUNT];
        counters[Metric::Accepted as usize] = 100;
        counters[Metric::Completed as usize] = 97;
        counters[Metric::Aborts as usize] = 3;
        DumpBundle {
            reason: TriggerReason::StallPersisted {
                worker: 1,
                vm: 3,
                vsq: 0,
                ticks: 4,
                since: 12_000_000,
            },
            at: 14_000_000,
            window_ns: 10_000_000,
            evicted: 7,
            timeline: vec![
                BoxEvent {
                    at: 12_000_000,
                    kind: BoxKind::Checkpoint {
                        deltas: vec![(Metric::Accepted, 50), (Metric::Completed, 49)],
                    },
                },
                BoxEvent {
                    at: 12_100_000,
                    kind: BoxKind::Trace(TraceEvent {
                        ts_ns: 12_100_000,
                        vm: 3,
                        vsq: 0,
                        tag: 17,
                        gen: 4,
                        worker: 1,
                        stage: Stage::Abort,
                        path: PathKind::None,
                        link_tag: 0,
                        link_gen: 0,
                    }),
                },
                BoxEvent {
                    at: 12_500_000,
                    kind: BoxKind::Stalled {
                        worker: 1,
                        vm: 3,
                        vsq: 0,
                        open: 5,
                        oldest_age_ns: 900_000,
                    },
                },
                BoxEvent {
                    at: 13_000_000,
                    kind: BoxKind::Throttle {
                        tenant: 3,
                        permille: 500,
                        tighten: true,
                    },
                },
                BoxEvent {
                    at: 13_500_000,
                    kind: BoxKind::Servicing {
                        op: ServicingOp::Snapshot,
                        count: 1,
                    },
                },
                BoxEvent {
                    at: 14_000_000,
                    kind: BoxKind::Trigger(TriggerReason::StallPersisted {
                        worker: 1,
                        vm: 3,
                        vsq: 0,
                        ticks: 4,
                        since: 12_000_000,
                    }),
                },
            ],
            counters,
            gauges: Some(EngineGauges {
                poll_modes: vec!["spin", "parked"],
                batch_sizes: vec![8, 32],
                shard_cores: vec![0, 1],
                occupancy: 5,
                high_water: 61,
                tenants: vec![TenantGauge {
                    shard: 1,
                    tenant: 3,
                    throttle_permille: 500,
                    deficit: 2,
                    admitted: 40,
                    throttled: 6,
                }],
                breakers: vec![BreakerGauge {
                    shard: 1,
                    vm: 3,
                    open: true,
                    opens: 2,
                }],
            }),
            policy: Some(PolicySummary {
                poll: "adaptive(idle_spin=5000ns, park_after=50000ns)".into(),
                batch: "auto(4..256)".into(),
                placement: "round_robin".into(),
                workers: 1,
            }),
            residue: vec![ResidueSpan {
                shard: 1,
                vm: 3,
                vsq: 0,
                tag: 17,
                gen: 4,
                start_ns: 11_900_000,
                last_ns: 12_100_000,
                last_stage: Stage::Abort,
            }],
        }
    }

    #[test]
    fn bundle_round_trips_through_bytes() {
        let b = sample();
        let bytes = b.to_bytes();
        assert_eq!(&bytes[..4], b"NVBB");
        let back = DumpBundle::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, b);
    }

    #[test]
    fn corruption_is_detected() {
        let b = sample();
        let bytes = b.to_bytes();
        assert_eq!(
            DumpBundle::from_bytes(&bytes[..10]),
            Err(BundleError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(DumpBundle::from_bytes(&bad), Err(BundleError::BadMagic));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        assert_eq!(
            DumpBundle::from_bytes(&flipped),
            Err(BundleError::BadChecksum)
        );
        // A version we don't understand is refused, not guessed at (the
        // checksum must be re-stamped for the version check to be reached).
        let mut vnext = bytes.clone();
        vnext[4] = 9;
        let n = vnext.len() - 8;
        let sum = fnv1a(&vnext[..n]);
        vnext[n..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            DumpBundle::from_bytes(&vnext),
            Err(BundleError::BadVersion(9))
        );
    }

    #[test]
    fn json_rendering_is_valid() {
        let json = sample().to_json();
        nvmetro_insight::validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"stall_persisted\""));
        assert!(json.contains("\"checkpoint\""));
        assert!(json.contains("\"residue\""));
    }

    #[test]
    fn report_names_fault_site_and_window() {
        let text = report(&sample());
        assert!(text.contains("shard 1 vm 3 vsq 0"));
        assert!(text.contains("fault site: shard 1 vm 3 vsq 0"));
        assert!(text.contains("window 12.000..14.000 ms"));
        assert!(text.contains("STALL"));
        assert!(text.contains("residue"));
        assert!(text.contains("tag 17 gen 4"));
    }
}
