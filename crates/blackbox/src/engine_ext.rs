//! Bridges the live engine into the recorder's neutral data model: the
//! gauge/policy converters and the [`EngineDump`] extension trait behind
//! explicit `Engine::dump()`.
//!
//! The insight crate sits below core in the dependency order, so its
//! [`EngineGauges`] cannot be built there from an `EngineStats`; this
//! module owns that conversion instead.

use crate::bundle::{DumpBundle, PolicySummary, TriggerReason};
use crate::recorder::Blackbox;
use nvmetro_core::{BatchPolicy, Engine, EnginePolicy, EngineStats, PlacementPolicy, PollPolicy};
use nvmetro_insight::{BreakerGauge, EngineGauges, TenantGauge};
use nvmetro_sim::Ns;
use nvmetro_telemetry::Telemetry;

/// Converts a live [`EngineStats`] snapshot into the neutral per-shard
/// gauge set the dump bundle (and Prometheus export) carries.
pub fn engine_gauges(stats: &EngineStats) -> EngineGauges {
    EngineGauges {
        poll_modes: stats.poll_modes.iter().map(|m| m.name()).collect(),
        batch_sizes: stats.batch_sizes.clone(),
        shard_cores: stats.shard_cores.clone(),
        occupancy: stats.occupancy,
        high_water: stats.high_water,
        tenants: stats
            .tenants
            .iter()
            .map(|t| TenantGauge {
                shard: t.shard,
                tenant: t.view.tenant,
                throttle_permille: t.view.throttle_permille,
                deficit: t.view.deficit,
                admitted: t.view.admitted,
                throttled: t.view.throttled,
            })
            .collect(),
        breakers: stats
            .breakers
            .iter()
            .map(|b| BreakerGauge {
                shard: b.shard,
                vm: b.vm_id,
                open: b.open,
                opens: b.opens,
            })
            .collect(),
    }
}

/// Renders the active [`EnginePolicy`] to the bundle's string form.
pub fn policy_summary(p: &EnginePolicy) -> PolicySummary {
    PolicySummary {
        poll: match p.poll {
            PollPolicy::Spin => "spin".to_string(),
            PollPolicy::Adaptive {
                idle_spin,
                park_after,
            } => format!("adaptive(idle_spin={idle_spin}ns, park_after={park_after}ns)"),
        },
        batch: match p.batch {
            BatchPolicy::Fixed(n) => format!("fixed({n})"),
            BatchPolicy::Auto { min, max } => format!("auto({min}..{max})"),
        },
        placement: match &p.placement {
            PlacementPolicy::RoundRobin => "round_robin".to_string(),
            PlacementPolicy::Affine(_) => "affine".to_string(),
        },
        workers: p.workers as u32,
    }
}

/// Explicit postmortem dumps off a live engine: feeds the engine's
/// current gauges and policy into the recorder ring, then produces a
/// [`DumpBundle`] with [`TriggerReason::Manual`].
pub trait EngineDump {
    /// Captures a manual dump bundle at virtual time `now`.
    fn dump(&self, bb: &Blackbox, telemetry: &Telemetry, now: Ns) -> DumpBundle;
}

impl EngineDump for Engine {
    fn dump(&self, bb: &Blackbox, telemetry: &Telemetry, now: Ns) -> DumpBundle {
        bb.feed_gauges(engine_gauges(&self.stats()));
        bb.feed_policy(policy_summary(self.policy()));
        bb.dump_now(telemetry, TriggerReason::Manual, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_summary_renders_each_variant() {
        let p = EnginePolicy::default();
        let s = policy_summary(&p);
        assert_eq!(s.poll, "spin");
        assert_eq!(s.placement, "round_robin");
        assert_eq!(s.workers, 1);

        let p = EnginePolicy {
            poll: PollPolicy::Adaptive {
                idle_spin: 8_000,
                park_after: 64_000,
            },
            batch: BatchPolicy::Auto { min: 4, max: 256 },
            ..EnginePolicy::default()
        };
        let s = policy_summary(&p);
        assert!(s.poll.starts_with("adaptive("));
        assert_eq!(s.batch, "auto(4..256)");
    }
}
