//! # nvmetro-blackbox — flight recorder and postmortem forensics
//!
//! An always-on, bounded, lock-light black-box recorder for the NVMetro
//! datapath, plus trigger-based postmortem dumps and an offline analyzer:
//!
//! - [`Blackbox`] / [`Recorder`] — the rolling ring of high-signal events
//!   (watchdog verdicts, counter checkpoints, servicing lifecycle, poll
//!   transitions, breaker/throttle decisions, causal links) fed by a
//!   simulation actor that mirrors the stall watchdog's tick pattern.
//!   The hot path is never copied: request-rate traffic is summarized by
//!   sparse counter-delta checkpoints, and only rare stages (abort,
//!   retry, failover, replay, park/wake, link fan-out) land verbatim.
//! - [`DumpBundle`] — the self-contained, versioned (`NVBB`), FNV-1a
//!   checksummed postmortem bundle: last-window timeline, counters,
//!   per-shard gauges, active policy, and residue (requests still in
//!   flight at dump time). Triggers: persistent queue stalls, persistent
//!   SLO burn, breaker opens, duplicate terminal completions, or an
//!   explicit [`EngineDump::dump`].
//! - [`report`] — reconstructs a human-readable incident timeline from a
//!   bundle alone: the fault's site and window, the policy and gauges in
//!   force, what moved, and what was left in flight.
//!
//! Layering: telemetry records, insight interprets (spans, watchdog,
//! trace forest), blackbox remembers and explains. This crate sits above
//! core so it can convert live `EngineStats` into the neutral gauge set
//! ([`engine_gauges`]) that insight's exports and the bundle share.

#![warn(missing_docs)]

pub mod bundle;
pub mod engine_ext;
pub mod recorder;

pub use bundle::{
    report, BoxEvent, BoxKind, BundleError, DumpBundle, PolicySummary, ResidueSpan, ServicingOp,
    TriggerReason, BUNDLE_MAGIC, BUNDLE_VERSION,
};
pub use engine_ext::{engine_gauges, policy_summary, EngineDump};
pub use recorder::{Blackbox, Recorder, RecorderConfig, RARE_STAGES};
