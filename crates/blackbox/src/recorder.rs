//! The always-on flight recorder: a bounded, lock-light rolling window of
//! high-signal datapath events plus the trigger machinery that turns an
//! invariant breach into a postmortem [`DumpBundle`].
//!
//! The [`Blackbox`] handle is the shared ring (clone it freely; one clone
//! feeds, others read). The [`Recorder`] is a simulation [`Actor`] that
//! ticks on virtual time, mirroring the stall watchdog's pattern: a
//! stage-filtered drain of the telemetry rings (rare stages only — the
//! hot-path fetch/dispatch/complete traffic is summarized by counter
//! checkpoints, never copied), a tail of the watchdog's [`HealthLog`], a
//! tail of the fleet's [`FeedbackLog`], and trigger evaluation with a
//! cooldown. Its wall-clock cost is self-attributed via
//! [`Blackbox::spent`], which the overhead bench grades against the <1%
//! budget.

use crate::bundle::{
    BoxEvent, BoxKind, DumpBundle, PolicySummary, ResidueSpan, ServicingOp, TriggerReason,
};
use nvmetro_fleet::{FeedbackAction, FeedbackLog};
use nvmetro_insight::span::assemble;
use nvmetro_insight::watchdog::{HealthLog, HealthVerdict};
use nvmetro_insight::EngineGauges;
use nvmetro_sim::{Actor, Ns, Progress};
use nvmetro_telemetry::{Metric, Stage, Telemetry, TraceCursor};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The stages the recorder copies out of the telemetry rings. Everything
/// else (the per-request hot path) is only summarized by checkpoints.
pub const RARE_STAGES: u32 = (1 << Stage::Abort as u32)
    | (1 << Stage::Retry as u32)
    | (1 << Stage::Failover as u32)
    | (1 << Stage::Replayed as u32)
    | (1 << Stage::ShardPark as u32)
    | (1 << Stage::ShardWake as u32)
    | (1 << Stage::LinkFanout as u32);

/// Metrics whose per-tick deltas become [`BoxKind::Servicing`] entries.
const SERVICING_METRICS: [(Metric, ServicingOp); 5] = [
    (Metric::SnapshotsTaken, ServicingOp::Snapshot),
    (Metric::Restores, ServicingOp::Restore),
    (Metric::Reshards, ServicingOp::Reshard),
    (Metric::VmAttaches, ServicingOp::Attach),
    (Metric::VmDetaches, ServicingOp::Detach),
];

/// Metrics summarized by periodic [`BoxKind::Checkpoint`] deltas. The
/// servicing lifecycle metrics get their own dedicated entries and the
/// watchdog's own tick counter is noise, so both are excluded.
fn checkpointed(m: Metric) -> bool {
    !matches!(
        m,
        Metric::SnapshotsTaken
            | Metric::Restores
            | Metric::Reshards
            | Metric::VmAttaches
            | Metric::VmDetaches
            | Metric::WatchdogTicks
    )
}

/// Recorder tuning. The defaults keep the recorder invisible on a loaded
/// rig: millisecond ticks, a few thousand ring slots, and dump cooldown so
/// a flapping fault cannot dump-storm.
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Virtual time between recorder ticks.
    pub interval: Ns,
    /// Timeline horizon a dump is trimmed to.
    pub window_ns: Ns,
    /// Ring capacity in events; the oldest entries are evicted (and
    /// counted) past this.
    pub capacity: usize,
    /// Consecutive stalled watchdog reports before a stall dump fires.
    pub stall_ticks: u32,
    /// Consecutive over-budget SLO reports before a burn dump fires.
    pub slo_ticks: u32,
    /// Dump when the circuit breaker opens.
    pub trigger_on_breaker: bool,
    /// Dump when the span assembler sees a duplicate terminal.
    pub trigger_on_duplicates: bool,
    /// Minimum virtual time between automatic dumps.
    pub cooldown: Ns,
    /// Produce dumps automatically when triggers fire (otherwise triggers
    /// are only recorded in the timeline).
    pub auto_dump: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            interval: 1_000_000,
            window_ns: 50_000_000,
            capacity: 4096,
            stall_ticks: 3,
            slo_ticks: 5,
            trigger_on_breaker: true,
            trigger_on_duplicates: true,
            cooldown: 10_000_000,
            auto_dump: true,
        }
    }
}

struct BoxInner {
    ring: VecDeque<BoxEvent>,
    capacity: usize,
    window_ns: Ns,
    evicted: u64,
    gauges: Option<EngineGauges>,
    policy: Option<PolicySummary>,
    dumps: Vec<DumpBundle>,
    spent: Duration,
}

/// Shared, clonable handle to the flight-recorder ring. One clone feeds
/// (usually via the [`Recorder`] actor), others read or dump.
#[derive(Clone)]
pub struct Blackbox(Arc<Mutex<BoxInner>>);

impl Blackbox {
    /// Builds an empty recorder ring with `config`'s capacity and window.
    pub fn new(config: &RecorderConfig) -> Self {
        Blackbox(Arc::new(Mutex::new(BoxInner {
            ring: VecDeque::with_capacity(config.capacity.min(4096)),
            capacity: config.capacity.max(1),
            window_ns: config.window_ns,
            evicted: 0,
            gauges: None,
            policy: None,
            dumps: Vec::new(),
            spent: Duration::ZERO,
        })))
    }

    fn push_locked(inner: &mut BoxInner, e: BoxEvent) {
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.evicted += 1;
        }
        inner.ring.push_back(e);
    }

    /// Appends one entry, evicting (and counting) the oldest past capacity.
    pub fn record(&self, e: BoxEvent) {
        Self::push_locked(&mut self.0.lock().unwrap(), e);
    }

    /// Appends a batch under one lock acquisition.
    pub fn record_batch(&self, events: impl IntoIterator<Item = BoxEvent>) {
        let mut inner = self.0.lock().unwrap();
        for e in events {
            Self::push_locked(&mut inner, e);
        }
    }

    /// Feeds the latest per-shard engine gauges; the next dump embeds them.
    pub fn feed_gauges(&self, g: EngineGauges) {
        self.0.lock().unwrap().gauges = Some(g);
    }

    /// Feeds the active engine policy; the next dump embeds it.
    pub fn feed_policy(&self, p: PolicySummary) {
        self.0.lock().unwrap().policy = Some(p);
    }

    /// Current ring contents, oldest first.
    pub fn timeline(&self) -> Vec<BoxEvent> {
        self.0.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Entries in the ring right now.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().ring.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().ring.is_empty()
    }

    /// Entries evicted to capacity so far.
    pub fn evicted(&self) -> u64 {
        self.0.lock().unwrap().evicted
    }

    /// All dump bundles produced so far, oldest first.
    pub fn dumps(&self) -> Vec<DumpBundle> {
        self.0.lock().unwrap().dumps.clone()
    }

    /// The most recent dump bundle, if any.
    pub fn last_dump(&self) -> Option<DumpBundle> {
        self.0.lock().unwrap().dumps.last().cloned()
    }

    /// Wall-clock time self-attributed by the recorder's ticks — the
    /// number the overhead bench grades against its <1% budget.
    pub fn spent(&self) -> Duration {
        self.0.lock().unwrap().spent
    }

    fn add_spent(&self, d: Duration) {
        self.0.lock().unwrap().spent += d;
    }

    /// Produces a dump bundle right now: records the trigger in the
    /// timeline, trims the ring to the window, captures counters and
    /// residue (still-in-flight requests) from a one-shot telemetry
    /// snapshot, and stores the bundle (also returned).
    pub fn dump_now(&self, telemetry: &Telemetry, reason: TriggerReason, now: Ns) -> DumpBundle {
        let counters = telemetry.counters();
        let snapshot = telemetry.snapshot();
        let report = assemble(&snapshot);
        let mut residue: Vec<ResidueSpan> = report
            .spans
            .iter()
            .filter(|s| !s.complete)
            .map(|s| {
                let last = s.events.last();
                ResidueSpan {
                    shard: s.shard,
                    vm: s.vm,
                    vsq: s.vsq,
                    tag: s.tag,
                    gen: s.gen,
                    start_ns: s.start_ns,
                    last_ns: last.map_or(s.start_ns, |e| e.ts_ns),
                    last_stage: last.map_or(Stage::VsqFetch, |e| e.stage),
                }
            })
            .collect();
        residue.sort_by_key(|s| s.start_ns);

        let mut inner = self.0.lock().unwrap();
        Self::push_locked(
            &mut inner,
            BoxEvent {
                at: now,
                kind: BoxKind::Trigger(reason),
            },
        );
        let horizon = now.saturating_sub(inner.window_ns);
        let bundle = DumpBundle {
            reason,
            at: now,
            window_ns: inner.window_ns,
            evicted: inner.evicted,
            timeline: inner
                .ring
                .iter()
                .filter(|e| e.at >= horizon)
                .cloned()
                .collect(),
            counters,
            gauges: inner.gauges.clone(),
            policy: inner.policy.clone(),
            residue,
        };
        inner.dumps.push(bundle.clone());
        bundle
    }
}

type QueueKey = (u16, u32, u16);

/// The recorder actor: ticks on virtual time, feeding the [`Blackbox`]
/// ring and firing trigger dumps. Build with [`Recorder::new`], attach
/// the watchdog log with [`Recorder::with_health`] and the fleet feedback
/// log with [`Recorder::with_feedback`], then hand it to the executor.
pub struct Recorder {
    telemetry: Telemetry,
    bb: Blackbox,
    cfg: RecorderConfig,
    health: Option<HealthLog>,
    feedback: Option<FeedbackLog>,
    cursor: TraceCursor,
    last_counters: [u64; Metric::COUNT],
    report_mark: usize,
    feedback_mark: usize,
    next_tick: Ns,
    pending_armed: bool,
    last_dump_at: Option<Ns>,
    stall_streaks: HashMap<QueueKey, (u32, Ns)>,
    slo_streaks: [u32; nvmetro_telemetry::Route::COUNT],
    dup_seen: u64,
    buf: Vec<BoxEvent>,
}

impl Recorder {
    /// Builds a recorder ticking over `telemetry`, feeding `bb`.
    pub fn new(telemetry: &Telemetry, bb: Blackbox, cfg: RecorderConfig) -> Recorder {
        Recorder {
            telemetry: telemetry.clone(),
            bb,
            cursor: telemetry.cursor(),
            last_counters: [0; Metric::COUNT],
            report_mark: 0,
            feedback_mark: 0,
            next_tick: cfg.interval,
            cfg,
            health: None,
            feedback: None,
            pending_armed: false,
            last_dump_at: None,
            stall_streaks: HashMap::new(),
            slo_streaks: [0; nvmetro_telemetry::Route::COUNT],
            dup_seen: 0,
            buf: Vec::new(),
        }
    }

    /// Tails the watchdog's health log: verdicts land in the timeline and
    /// persistent stalls / SLO burns / duplicate terminals become triggers.
    pub fn with_health(mut self, log: HealthLog) -> Recorder {
        self.health = Some(log);
        self
    }

    /// Tails the fleet feedback log: throttle actuations land in the
    /// timeline.
    pub fn with_feedback(mut self, log: FeedbackLog) -> Recorder {
        self.feedback = Some(log);
        self
    }

    /// The shared ring this recorder feeds.
    pub fn blackbox(&self) -> &Blackbox {
        &self.bb
    }

    /// Runs one recorder tick at `now` (called automatically from
    /// [`Actor::poll`]; public for offline/manual use). Wall-clock cost is
    /// accumulated into [`Blackbox::spent`].
    pub fn tick(&mut self, now: Ns) {
        let t0 = std::time::Instant::now();
        self.tick_inner(now);
        self.bb.add_spent(t0.elapsed());
    }

    fn tick_inner(&mut self, now: Ns) {
        self.buf.clear();

        // 1. Rare-stage drain: aborts, retries, failovers, replays, shard
        // park/wake, and causal links get copied verbatim. The stage mask
        // means the hot path costs one byte peek per event, no copy.
        let buf = &mut self.buf;
        self.telemetry
            .drain_stages(&mut self.cursor, RARE_STAGES, |ev| {
                buf.push(BoxEvent {
                    at: ev.ts_ns,
                    kind: BoxKind::Trace(ev),
                });
            });

        // 2. Counter checkpoint: sparse deltas only; servicing lifecycle
        // metrics become dedicated entries.
        let counters = self.telemetry.counters();
        let mut deltas = Vec::new();
        for m in Metric::ALL {
            let d = counters[m as usize].saturating_sub(self.last_counters[m as usize]);
            if d > 0 && checkpointed(m) {
                deltas.push((m, d));
            }
        }
        for (m, op) in SERVICING_METRICS {
            let d = counters[m as usize].saturating_sub(self.last_counters[m as usize]);
            if d > 0 {
                self.buf.push(BoxEvent {
                    at: now,
                    kind: BoxKind::Servicing { op, count: d },
                });
            }
        }
        let breaker_delta = counters[Metric::BreakerOpens as usize]
            .saturating_sub(self.last_counters[Metric::BreakerOpens as usize]);
        self.last_counters = counters;
        if !deltas.is_empty() {
            self.buf.push(BoxEvent {
                at: now,
                kind: BoxKind::Checkpoint { deltas },
            });
        }

        // 3. Watchdog tail: verdicts into the timeline, stall/SLO streak
        // accounting for persistence triggers.
        let mut duplicate_terminals = self.dup_seen;
        if let Some(health) = &self.health {
            let (reports, next) = health.reports_since(self.report_mark);
            self.report_mark = next;
            for report in &reports {
                for v in &report.verdicts {
                    let kind = match v {
                        HealthVerdict::QueueStalled {
                            worker,
                            vm,
                            vsq,
                            open,
                            oldest_age_ns,
                        } => BoxKind::Stalled {
                            worker: *worker,
                            vm: *vm,
                            vsq: *vsq,
                            open: *open as u32,
                            oldest_age_ns: *oldest_age_ns,
                        },
                        HealthVerdict::QueueRecovered { worker, vm, vsq } => BoxKind::Recovered {
                            worker: *worker,
                            vm: *vm,
                            vsq: *vsq,
                        },
                        HealthVerdict::BreakerFlap { opens } => {
                            BoxKind::BreakerFlap { opens: *opens }
                        }
                        HealthVerdict::SloBurn { route, burn } => BoxKind::SloBurn {
                            route: *route,
                            burn_permille: (burn * 1000.0).min(u32::MAX as f64) as u32,
                        },
                    };
                    self.buf.push(BoxEvent {
                        at: report.at,
                        kind,
                    });
                }
                // Streaks come off the per-queue state (present every
                // report), not the edge-triggered verdicts.
                self.stall_streaks.retain(|key, _| {
                    report
                        .queues
                        .iter()
                        .any(|q| (q.worker, q.vm, q.vsq) == *key && q.stalled)
                });
                for q in &report.queues {
                    if q.stalled {
                        self.stall_streaks
                            .entry((q.worker, q.vm, q.vsq))
                            .and_modify(|(n, _)| *n += 1)
                            .or_insert((1, report.at));
                    }
                }
                for route in nvmetro_telemetry::Route::ALL {
                    let burning = report.slo.iter().any(|s| s.route == route && s.burn > 1.0);
                    let streak = &mut self.slo_streaks[route as usize];
                    *streak = if burning { *streak + 1 } else { 0 };
                }
            }
            duplicate_terminals = health.stats().duplicate_terminals;
        }

        // 4. Fleet feedback tail.
        if let Some(feedback) = &self.feedback {
            let actions = feedback.actions();
            for a in actions.iter().skip(self.feedback_mark) {
                let (at, tenant, permille, tighten) = match a {
                    FeedbackAction::Tighten {
                        at,
                        tenant,
                        permille,
                    } => (*at, *tenant, *permille, true),
                    FeedbackAction::Relax {
                        at,
                        tenant,
                        permille,
                    } => (*at, *tenant, *permille, false),
                };
                self.buf.push(BoxEvent {
                    at,
                    kind: BoxKind::Throttle {
                        tenant,
                        permille,
                        tighten,
                    },
                });
            }
            self.feedback_mark = actions.len();
        }

        if !self.buf.is_empty() {
            self.buf.sort_by_key(|e| e.at);
            self.bb.record_batch(self.buf.drain(..));
        }

        // 5. Trigger evaluation, most severe first, under cooldown.
        let reason = if self.cfg.trigger_on_duplicates && duplicate_terminals > self.dup_seen {
            self.dup_seen = duplicate_terminals;
            Some(TriggerReason::DuplicateTerminal {
                count: duplicate_terminals,
            })
        } else if let Some((key, (ticks, since))) = self
            .stall_streaks
            .iter()
            .find(|(_, (n, _))| *n >= self.cfg.stall_ticks)
            .map(|(k, v)| (*k, *v))
        {
            Some(TriggerReason::StallPersisted {
                worker: key.0,
                vm: key.1,
                vsq: key.2,
                ticks,
                since,
            })
        } else if self.cfg.trigger_on_breaker && breaker_delta > 0 {
            Some(TriggerReason::BreakerOpened {
                delta: breaker_delta,
            })
        } else {
            nvmetro_telemetry::Route::ALL
                .iter()
                .find(|r| self.slo_streaks[**r as usize] >= self.cfg.slo_ticks)
                .map(|r| TriggerReason::SloBurnPersisted {
                    route: *r,
                    ticks: self.slo_streaks[*r as usize],
                    burn_permille: 0,
                })
        };
        if let Some(reason) = reason {
            let cooled = self
                .last_dump_at
                .is_none_or(|t| now.saturating_sub(t) >= self.cfg.cooldown);
            if self.cfg.auto_dump && cooled {
                self.last_dump_at = Some(now);
                self.bb.dump_now(&self.telemetry, reason, now);
            }
        }
    }

    fn watching(&self) -> bool {
        self.pending_armed || !self.stall_streaks.is_empty()
    }

    /// Whether events have been published that no tick has drained yet.
    fn pending(&self) -> bool {
        self.telemetry.recorded_total() > self.cursor.consumed()
            || self
                .health
                .as_ref()
                .is_some_and(|h| h.reports().len() > self.report_mark)
    }
}

impl Actor for Recorder {
    fn name(&self) -> &str {
        "blackbox"
    }

    fn poll(&mut self, now: Ns) -> Progress {
        if now < self.next_tick {
            if !self.watching() && self.pending() {
                self.pending_armed = true;
            }
            return Progress::Idle;
        }
        self.pending_armed = false;
        self.tick(now);
        self.next_tick = now + self.cfg.interval;
        Progress::Idle
    }

    fn next_event(&self) -> Option<Ns> {
        // Mirror the watchdog: keep scheduling ticks only while there is
        // something to drain, otherwise an idle simulation never ends.
        if self.watching() {
            Some(self.next_tick)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_telemetry::PathKind;

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let cfg = RecorderConfig {
            capacity: 4,
            ..RecorderConfig::default()
        };
        let bb = Blackbox::new(&cfg);
        for i in 0..10u64 {
            bb.record(BoxEvent {
                at: i,
                kind: BoxKind::BreakerFlap { opens: i },
            });
        }
        assert_eq!(bb.len(), 4);
        assert_eq!(bb.evicted(), 6);
        let timeline = bb.timeline();
        assert_eq!(timeline.first().unwrap().at, 6);
        assert_eq!(timeline.last().unwrap().at, 9);
    }

    #[test]
    fn tick_records_rare_stages_and_checkpoints() {
        let telemetry = Telemetry::enabled();
        let cfg = RecorderConfig::default();
        let bb = Blackbox::new(&cfg);
        let mut rec = Recorder::new(&telemetry, bb.clone(), cfg);

        let h = telemetry.register_worker_named("router0");
        h.count(Metric::Accepted);
        h.count(Metric::Accepted);
        h.count(Metric::Completed);
        h.request_event(100, 1, 0, 7, 1, Stage::VsqFetch, PathKind::None);
        h.request_event(200, 1, 0, 7, 1, Stage::Abort, PathKind::None);

        rec.tick(1_000_000);
        let timeline = bb.timeline();
        let aborts: Vec<&BoxEvent> = timeline
            .iter()
            .filter(|e| matches!(&e.kind, BoxKind::Trace(t) if t.stage == Stage::Abort))
            .collect();
        assert_eq!(aborts.len(), 1, "abort copied into the ring");
        assert!(
            !timeline
                .iter()
                .any(|e| matches!(&e.kind, BoxKind::Trace(t) if t.stage == Stage::VsqFetch)),
            "hot-path stages are not copied"
        );
        let ckpt = timeline
            .iter()
            .find_map(|e| match &e.kind {
                BoxKind::Checkpoint { deltas } => Some(deltas.clone()),
                _ => None,
            })
            .expect("checkpoint recorded");
        assert!(ckpt.contains(&(Metric::Accepted, 2)));
        assert!(ckpt.contains(&(Metric::Completed, 1)));

        // Second tick with no movement: no new checkpoint.
        let before = bb.len();
        rec.tick(2_000_000);
        assert_eq!(bb.len(), before, "quiet tick records nothing");
    }

    #[test]
    fn breaker_open_triggers_a_dump_with_cooldown() {
        let telemetry = Telemetry::enabled();
        let cfg = RecorderConfig {
            cooldown: 5_000_000,
            ..RecorderConfig::default()
        };
        let bb = Blackbox::new(&cfg);
        let mut rec = Recorder::new(&telemetry, bb.clone(), cfg);
        let h = telemetry.register_worker_named("router0");

        h.count(Metric::BreakerOpens);
        rec.tick(1_000_000);
        assert_eq!(bb.dumps().len(), 1);
        assert!(matches!(
            bb.dumps()[0].reason,
            TriggerReason::BreakerOpened { delta: 1 }
        ));

        // A second open inside the cooldown records but does not dump.
        h.count(Metric::BreakerOpens);
        rec.tick(2_000_000);
        assert_eq!(bb.dumps().len(), 1, "cooldown suppresses dump storm");

        // After the cooldown a new open dumps again.
        h.count(Metric::BreakerOpens);
        rec.tick(8_000_000);
        assert_eq!(bb.dumps().len(), 2);
    }

    #[test]
    fn manual_dump_embeds_gauges_policy_and_residue() {
        let telemetry = Telemetry::enabled();
        let cfg = RecorderConfig::default();
        let bb = Blackbox::new(&cfg);
        bb.feed_policy(PolicySummary {
            poll: "spin".into(),
            batch: "fixed(16)".into(),
            placement: "round_robin".into(),
            workers: 1,
        });
        bb.feed_gauges(EngineGauges {
            poll_modes: vec!["spin"],
            batch_sizes: vec![16],
            shard_cores: vec![0],
            occupancy: 1,
            high_water: 3,
            tenants: Vec::new(),
            breakers: Vec::new(),
        });

        // One request left open: it must land in the residue.
        let h = telemetry.register_worker_named("router0");
        h.request_event(500, 2, 1, 9, 1, Stage::VsqFetch, PathKind::None);
        h.request_event(700, 2, 1, 9, 1, Stage::Dispatched, PathKind::Fast);

        let bundle = bb.dump_now(&telemetry, TriggerReason::Manual, 1_000_000);
        assert_eq!(bundle.reason, TriggerReason::Manual);
        assert_eq!(bundle.policy.as_ref().unwrap().batch, "fixed(16)");
        assert_eq!(bundle.gauges.as_ref().unwrap().batch_sizes, vec![16]);
        assert_eq!(bundle.residue.len(), 1);
        let r = &bundle.residue[0];
        assert_eq!((r.vm, r.vsq, r.tag), (2, 1, 9));
        assert_eq!(r.last_stage, Stage::Dispatched);
        // The dump itself is in the timeline (trigger entry).
        assert!(bundle
            .timeline
            .iter()
            .any(|e| matches!(e.kind, BoxKind::Trigger(_))));
        // And the bundle round-trips.
        let back = DumpBundle::from_bytes(&bundle.to_bytes()).unwrap();
        assert_eq!(back, bundle);
    }
}
