//! Self-tuning datapath controllers: the poll governor and the batch
//! auto-tuner.
//!
//! Both are per-shard, allocation-free state machines fed from the
//! router's poll loop; neither reads the global telemetry registry (which
//! may be disabled), they track the same signals — arrival gaps, SQ burst
//! sizes, table occupancy — locally.
//!
//! The **governor** ([`PollGovernor`]) reproduces the paper's adaptive
//! polling (busy-poll ⇄ epoll): a shard spins at full rate for a window
//! after its last work, decays to a duty-cycled yield loop, and finally
//! parks — an event-driven sleep charged at ~0 CPU whose end is a
//! doorbell kick modelled as a wakeup deadline. Arrival EWMAs pull the
//! park point in when the observed inter-arrival gap says the queues have
//! truly gone quiet.
//!
//! The **tuner** ([`BatchTuner`]) hill-climbs the per-shard batch bound:
//! grow while SQ visits keep slamming into the cap, shrink when the batch
//! is mostly head-room, and require two consecutive observation windows
//! to agree before moving (hysteresis) so transient bursts don't wag it.

use nvmetro_sim::{Ns, US};

/// One shard's poll mode, as reported in `EngineStats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollMode {
    /// Full-rate busy polling.
    Spin,
    /// Duty-cycled polling (spin_loop/yield regime): ~1/8 of a core.
    Yield,
    /// Event-driven sleep: ~0 CPU, woken by doorbell/notify.
    Parked,
}

impl PollMode {
    /// Stable lower-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PollMode::Spin => "spin",
            PollMode::Yield => "yield",
            PollMode::Parked => "parked",
        }
    }
}

/// Monotonic governor counters; the router diffs snapshots around a poll
/// to emit telemetry deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorCounters {
    /// Every mode change (Spin→Yield, Yield→Parked, any wake).
    pub transitions: u64,
    /// Entries into Parked.
    pub parks: u64,
    /// Exits from Parked.
    pub wakes: u64,
}

/// CPU fraction of a core the Yield regime burns (1/`YIELD_DUTY`).
const YIELD_DUTY: Ns = 8;

/// Multiple of the arrival-gap EWMA after which a gap counts as "the
/// queue went idle" and the shard may park early.
const PARK_EWMA_FACTOR: Ns = 16;

/// The busy-poll ⇄ park state machine for one shard.
pub struct PollGovernor {
    idle_spin: Ns,
    park_after: Ns,
    wakeup_cost: Ns,
    mode: PollMode,
    /// Timestamp of the last poll that made progress.
    last_busy: Ns,
    /// Idle burn has been accounted up to here (monotonic).
    charged_to: Ns,
    /// Accumulated virtual CPU spent spinning/yielding while idle.
    burn: Ns,
    /// EWMA of the gap between successive busy polls.
    ewma_gap: Ns,
    /// Pending wakeup latency, charged to the first work after a wake.
    wake_debt: Ns,
    counters: GovernorCounters,
}

impl PollGovernor {
    /// A governor in Spin mode at t=0.
    pub fn new(idle_spin: Ns, park_after: Ns, wakeup_cost: Ns) -> Self {
        PollGovernor {
            idle_spin: idle_spin.max(1),
            park_after: park_after.max(idle_spin.max(1)),
            wakeup_cost,
            mode: PollMode::Spin,
            last_busy: 0,
            charged_to: 0,
            burn: 0,
            ewma_gap: 0,
            wake_debt: 0,
            counters: GovernorCounters::default(),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> PollMode {
        self.mode
    }

    /// Virtual CPU burned spinning/yielding while idle, to date.
    pub fn burn(&self) -> Ns {
        self.burn
    }

    /// Counter snapshot.
    pub fn counters(&self) -> GovernorCounters {
        self.counters
    }

    /// Idle span after which the shard parks: the configured `park_after`
    /// bound, pulled in to `PARK_EWMA_FACTOR ×` the arrival EWMA once the
    /// observed rate shows a gap this long means "gone idle" — a loaded
    /// shard keeps spinning through its own jitter, a drained one parks
    /// without waiting out the full bound.
    fn effective_park(&self) -> Ns {
        if self.ewma_gap == 0 {
            // No cadence observed yet: only the configured bound applies.
            return self.park_after;
        }
        self.ewma_gap
            .saturating_mul(PARK_EWMA_FACTOR)
            .clamp(self.idle_spin, self.park_after)
    }

    /// Charges idle burn for the wall-clock since the previous poll,
    /// piecewise by regime: full rate inside the spin window, 1/8 inside
    /// the yield window, nothing while parked. Call at the top of every
    /// poll.
    pub fn begin_poll(&mut self, now: Ns) {
        let start = self.charged_to.max(self.last_busy);
        if now <= start {
            return;
        }
        let spin_end = self.last_busy.saturating_add(self.idle_spin);
        let park_at = self.last_busy.saturating_add(self.effective_park());
        let overlap = |a: Ns, b: Ns| b.min(now).saturating_sub(a.max(start));
        self.burn += overlap(self.last_busy, spin_end);
        self.burn += overlap(spin_end, park_at) / YIELD_DUTY;
        self.charged_to = now;
        // A leaping executor can jump straight from the last busy poll
        // to this one with no idle poll in between: reify the mode
        // transitions the idle span implies, so the parks telemetry
        // observes (and the wake debt a doorbell past the park point
        // owes) match the burn just charged. Only the descent happens
        // here; wakes go through `doorbell_wake` or the progressed arm
        // of `end_poll`.
        let idle = now.saturating_sub(self.last_busy);
        let target = if idle >= self.effective_park() {
            PollMode::Parked
        } else if idle >= self.idle_spin {
            PollMode::Yield
        } else {
            PollMode::Spin
        };
        let rank = |m: PollMode| match m {
            PollMode::Spin => 0,
            PollMode::Yield => 1,
            PollMode::Parked => 2,
        };
        if rank(target) > rank(self.mode) {
            self.counters.transitions += 1;
            if target == PollMode::Parked {
                self.counters.parks += 1;
            }
            self.mode = target;
        }
    }

    /// A doorbell/notify kick observed while parked: wake immediately and
    /// owe the wakeup latency to the first piece of work this poll.
    pub fn doorbell_wake(&mut self, _now: Ns) {
        if self.mode != PollMode::Parked {
            return;
        }
        self.mode = PollMode::Spin;
        self.wake_debt = self.wakeup_cost;
        self.counters.wakes += 1;
        self.counters.transitions += 1;
    }

    /// Consumes the pending wakeup latency (applied by the router to the
    /// first station push after a wake).
    pub fn take_wake_debt(&mut self) -> Ns {
        std::mem::take(&mut self.wake_debt)
    }

    /// Adopts the hottest queue's per-queue arrival-gap EWMA as the
    /// governor's cadence estimate. The router tracks arrivals per queue
    /// group and passes the minimum; it is a cleaner signal than busy-poll
    /// gaps (a poll can be busy reaping completions long after arrivals
    /// stopped).
    pub fn note_queue_gap(&mut self, gap: Ns) {
        if gap > 0 {
            self.ewma_gap = gap;
        }
    }

    /// Ends a poll: progress rewinds to Spin (a park exit here — e.g. a
    /// recovery timer firing — counts as a wake too); an idle poll walks
    /// the Spin → Yield → Parked ladder by time since the last progress.
    pub fn end_poll(&mut self, now: Ns, progressed: bool) {
        if progressed {
            if self.mode == PollMode::Parked {
                self.counters.wakes += 1;
                self.wake_debt = self.wakeup_cost;
            }
            if self.mode != PollMode::Spin {
                self.counters.transitions += 1;
                self.mode = PollMode::Spin;
            }
            let gap = now.saturating_sub(self.last_busy);
            if gap > 0 {
                self.ewma_gap = (self.ewma_gap.saturating_mul(7) + gap) / 8;
            }
            self.last_busy = now;
            return;
        }
        let idle = now.saturating_sub(self.last_busy);
        let next = if idle >= self.effective_park() {
            PollMode::Parked
        } else if idle >= self.idle_spin {
            PollMode::Yield
        } else {
            PollMode::Spin
        };
        if next != self.mode {
            // The ladder only descends here; wakes go through
            // `doorbell_wake` or the progressed arm above.
            self.counters.transitions += 1;
            if next == PollMode::Parked {
                self.counters.parks += 1;
            }
            self.mode = next;
        }
    }

    /// The wakeup deadline a parked shard owes `next_event`: if work is
    /// already visible (`doorbell_pending`), the kick lands one wakeup
    /// latency after the last poll — without this, a manually driven
    /// engine (`next_event_all` loops) would sleep through the doorbell.
    pub fn next_wake(&self, doorbell_pending: bool) -> Option<Ns> {
        if self.mode == PollMode::Parked && doorbell_pending {
            Some(self.charged_to.saturating_add(self.wakeup_cost))
        } else {
            None
        }
    }
}

/// How often the tuner re-evaluates the batch size.
const RETUNE_INTERVAL: Ns = 100 * US;

/// Consecutive agreeing windows required before a move.
const RETUNE_STREAK: u8 = 2;

/// Hill-climbing controller for the per-shard batch bound.
pub struct BatchTuner {
    min: usize,
    max: usize,
    current: usize,
    window_start: Ns,
    visits: u64,
    capped: u64,
    drained: u64,
    last_dir: i8,
    streak: u8,
    retunes: u64,
}

impl BatchTuner {
    /// A tuner starting at `min` (growth is cheap to earn, shrink needs
    /// evidence).
    pub fn new(min: usize, max: usize) -> Self {
        let min = min.max(1);
        let max = max.max(min);
        BatchTuner {
            min,
            max,
            current: min,
            window_start: 0,
            visits: 0,
            capped: 0,
            drained: 0,
            last_dir: 0,
            streak: 0,
            retunes: 0,
        }
    }

    /// The currently selected batch size.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Times the tuner has moved the batch size.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Records one SQ visit: how many entries it drained and whether it
    /// hit the cap (the local equivalent of the SqBurst histogram).
    pub fn record_visit(&mut self, drained: u64, batch: usize) {
        self.visits += 1;
        self.drained += drained;
        if drained as usize >= batch {
            self.capped += 1;
        }
    }

    /// Closes the observation window if due and returns the new batch
    /// size when the hill-climb moves. `occupancy`/`capacity` guard
    /// growth: doubling the drain bound against a near-full routing table
    /// only queues work behind the full table.
    pub fn maybe_retune(&mut self, now: Ns, occupancy: usize, capacity: usize) -> Option<usize> {
        if now.saturating_sub(self.window_start) < RETUNE_INTERVAL {
            return None;
        }
        let (visits, capped, drained) = (self.visits, self.capped, self.drained);
        self.visits = 0;
        self.capped = 0;
        self.drained = 0;
        self.window_start = now;
        if visits == 0 {
            // A window with no SQ visits carries no evidence in either
            // direction: skip it rather than let quiet spells reset the
            // hysteresis streak a bursty workload is building up.
            return None;
        }
        let mut dir: i8 = if capped * 2 > visits && self.current < self.max {
            1
        } else if capped == 0
            && drained * 4 < visits * self.current as u64
            && self.current > self.min
        {
            -1
        } else {
            0
        };
        if dir > 0 && occupancy.saturating_mul(2) >= capacity.max(1) {
            dir = 0;
        }
        if dir != 0 && dir == self.last_dir {
            self.streak += 1;
        } else {
            self.streak = u8::from(dir != 0);
        }
        self.last_dir = dir;
        if dir != 0 && self.streak >= RETUNE_STREAK {
            self.streak = 0;
            let next = if dir > 0 {
                (self.current * 2).min(self.max)
            } else {
                (self.current / 2).max(self.min)
            };
            if next != self.current {
                self.current = next;
                self.retunes += 1;
                return Some(next);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_walks_spin_yield_park_and_burns_accordingly() {
        let mut g = PollGovernor::new(8 * US, 64 * US, 4 * US);
        // Busy at t=0 anchors last_busy.
        g.begin_poll(0);
        g.end_poll(0, true);
        assert_eq!(g.mode(), PollMode::Spin);
        // 4 µs idle: still spinning, full burn.
        g.begin_poll(4 * US);
        g.end_poll(4 * US, false);
        assert_eq!(g.mode(), PollMode::Spin);
        assert_eq!(g.burn(), 4 * US);
        // 20 µs idle: yield regime; burn = 8 full + 12/8 duty-cycled.
        g.begin_poll(20 * US);
        g.end_poll(20 * US, false);
        assert_eq!(g.mode(), PollMode::Yield);
        assert_eq!(g.burn(), 8 * US + 12 * US / 8);
        // 100 µs idle: parked; nothing accrues beyond the park point.
        g.begin_poll(100 * US);
        g.end_poll(100 * US, false);
        assert_eq!(g.mode(), PollMode::Parked);
        let parked_burn = g.burn();
        assert_eq!(parked_burn, 8 * US + 56 * US / 8);
        g.begin_poll(10_000 * US);
        g.end_poll(10_000 * US, false);
        assert_eq!(g.burn(), parked_burn, "parked time is free");
        assert_eq!(g.counters().parks, 1);
        assert_eq!(g.counters().transitions, 2);
    }

    #[test]
    fn doorbell_wake_charges_debt_and_counts() {
        let mut g = PollGovernor::new(US, 2 * US, 4 * US);
        g.end_poll(0, true);
        g.begin_poll(100 * US);
        g.end_poll(100 * US, false);
        assert_eq!(g.mode(), PollMode::Parked);
        assert_eq!(g.next_wake(false), None, "no doorbell, no deadline");
        assert_eq!(g.next_wake(true), Some(100 * US + 4 * US));
        g.doorbell_wake(104 * US);
        assert_eq!(g.mode(), PollMode::Spin);
        assert_eq!(g.take_wake_debt(), 4 * US);
        assert_eq!(g.take_wake_debt(), 0, "debt is consumed once");
        assert_eq!(g.counters().wakes, 1);
    }

    #[test]
    fn ewma_pulls_park_point_in_when_flow_stops() {
        let mut g = PollGovernor::new(8 * US, 64 * US, 4 * US);
        // Arrivals every 2 µs drive the EWMA down.
        for i in 1..=64u64 {
            let t = i * 2 * US;
            g.begin_poll(t);
            g.end_poll(t, true);
        }
        // A 40 µs lull with a 2 µs EWMA: 16×2 = 32 µs ≥ idle_spin, so the
        // shard parks *earlier* than the 64 µs bound once the gap clearly
        // exceeds the typical arrival cadence.
        let base = 64 * 2 * US;
        g.begin_poll(base + 40 * US);
        g.end_poll(base + 40 * US, false);
        assert_eq!(g.mode(), PollMode::Parked);
        // ...but stays up through gaps within the cadence.
        let mut g2 = PollGovernor::new(8 * US, 64 * US, 4 * US);
        for i in 1..=64u64 {
            let t = i * 2 * US;
            g2.begin_poll(t);
            g2.end_poll(t, true);
        }
        g2.begin_poll(base + 6 * US);
        g2.end_poll(base + 6 * US, false);
        assert_eq!(g2.mode(), PollMode::Spin, "6 µs is within spin window");
    }

    #[test]
    fn tuner_grows_under_capped_visits_with_hysteresis() {
        let mut t = BatchTuner::new(4, 64);
        assert_eq!(t.current(), 4);
        // One capped window is not enough (hysteresis).
        for _ in 0..10 {
            t.record_visit(4, 4);
        }
        assert_eq!(t.maybe_retune(RETUNE_INTERVAL, 0, 1024), None);
        for _ in 0..10 {
            t.record_visit(4, 4);
        }
        assert_eq!(t.maybe_retune(2 * RETUNE_INTERVAL, 0, 1024), Some(8));
        assert_eq!(t.current(), 8);
        assert_eq!(t.retunes(), 1);
    }

    #[test]
    fn tuner_shrinks_oversized_batch_and_respects_min() {
        let mut t = BatchTuner::new(4, 64);
        t.current = 64;
        let mut now = 0;
        for _ in 0..4 {
            now += RETUNE_INTERVAL;
            for _ in 0..10 {
                t.record_visit(2, 64); // 2/64 fill, never capped
            }
            t.maybe_retune(now, 0, 1024);
        }
        assert!(t.current() < 64, "sustained under-fill shrinks");
        for _ in 0..20 {
            now += RETUNE_INTERVAL;
            for _ in 0..10 {
                t.record_visit(0, t.current());
            }
            t.maybe_retune(now, 0, 1024);
        }
        assert!(t.current() >= 4, "never below min");
    }

    #[test]
    fn tuner_growth_blocked_by_full_table() {
        let mut t = BatchTuner::new(4, 64);
        let mut now = 0;
        for _ in 0..4 {
            now += RETUNE_INTERVAL;
            for _ in 0..10 {
                t.record_visit(4, 4);
            }
            assert_eq!(t.maybe_retune(now, 600, 1024), None);
        }
        assert_eq!(t.current(), 4, "near-full table blocks growth");
    }
}
