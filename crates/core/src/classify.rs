//! The I/O classifier ABI.
//!
//! A classifier is invoked with a fixed-layout context describing the
//! request and the lifecycle point (`current_hook`), and returns a 64-bit
//! *verdict* combining routing flags with an optional NVMe status — exactly
//! the contract of Listing 1 in the paper (`SEND_HQ | HOOK_HCQ`,
//! `ctx->error | COMPLETE`, ...). Classifiers may also rewrite the
//! writable window of the context (starting LBA, block count, scratch tag):
//! that is *direct mediation*, which the router copies back into the
//! forwarded command.
//!
//! Two classifier kinds exist: verified vbpf bytecode (the paper's eBPF
//! path) and native Rust (`NativeClassifier`, used for tests and ablations
//! comparing interpretation cost).

use nvmetro_nvme::{Status, SubmissionEntry};
use nvmetro_vbpf::{verifier::VerifierConfig, ProgramBuilder, Vm};

/// Size of the classifier context buffer in bytes.
pub const CTX_SIZE: usize = 48;
/// Start of the writable (direct-mediation) window within the context.
pub const CTX_WRITABLE_START: usize = 16;

/// Hook identifiers — the lifecycle points at which a classifier runs.
pub const HOOK_VSQ: u32 = 0;
/// Device (fast-path) completion hook.
pub const HOOK_HCQ: u32 = 1;
/// Notify-path (UIF) completion hook.
pub const HOOK_NCQ: u32 = 2;
/// Kernel-path completion hook.
pub const HOOK_KCQ: u32 = 3;

// Context field offsets (kept in sync with `RequestCtx` accessors).
const OFF_HOOK: usize = 0;
const OFF_VM: usize = 4;
const OFF_OPCODE: usize = 8;
const OFF_CID: usize = 10;
const OFF_NSID: usize = 12;
const OFF_SLBA: usize = 16;
const OFF_NLB: usize = 24;
const OFF_ERROR: usize = 28;
const OFF_QID: usize = 30;
const OFF_TAG: usize = 32;

/// Routing verdict bit assignments (bits 0..16 carry an NVMe status).
pub mod verdict_bits {
    /// Forward to the fast path (device HSQ).
    pub const SEND_HQ: u64 = 1 << 16;
    /// Forward to the kernel path.
    pub const SEND_KQ: u64 = 1 << 17;
    /// Forward to the notify path (UIF NSQ).
    pub const SEND_NQ: u64 = 1 << 18;
    /// Re-invoke the classifier when the fast path completes.
    pub const HOOK_HCQ: u64 = 1 << 19;
    /// Re-invoke the classifier when the kernel path completes.
    pub const HOOK_KCQ: u64 = 1 << 20;
    /// Re-invoke the classifier when the notify path completes.
    pub const HOOK_NCQ: u64 = 1 << 21;
    /// Complete the request to the VM when the fast path finishes.
    pub const WILL_COMPLETE_HQ: u64 = 1 << 22;
    /// Complete the request to the VM when the kernel path finishes.
    pub const WILL_COMPLETE_KQ: u64 = 1 << 23;
    /// Complete the request to the VM when the notify path finishes.
    pub const WILL_COMPLETE_NQ: u64 = 1 << 24;
    /// Complete immediately with the status in bits 0..16.
    pub const COMPLETE: u64 = 1 << 25;
}

/// A decoded routing verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict(pub u64);

impl Verdict {
    /// The embedded NVMe status (meaningful with [`Verdict::complete`]).
    pub fn status(self) -> Status {
        Status((self.0 & 0xFFFF) as u16)
    }

    /// True if the request should be completed immediately.
    pub fn complete(self) -> bool {
        self.0 & verdict_bits::COMPLETE != 0
    }

    /// Bitmask of paths to forward to (bit 0 = HQ, 1 = KQ, 2 = NQ).
    pub fn send_mask(self) -> u8 {
        (((self.0 & verdict_bits::SEND_HQ) >> 16)
            | ((self.0 & verdict_bits::SEND_KQ) >> 16)
            | ((self.0 & verdict_bits::SEND_NQ) >> 16)) as u8
    }

    /// Bitmask of paths whose completion re-invokes the classifier.
    pub fn hook_mask(self) -> u8 {
        ((self.0 >> 19) & 0x7) as u8
    }

    /// Bitmask of paths whose completion finishes the request.
    pub fn will_complete_mask(self) -> u8 {
        ((self.0 >> 22) & 0x7) as u8
    }
}

/// Path bit positions within the masks above.
pub mod path_bits {
    /// Fast path (device).
    pub const HQ: u8 = 1 << 0;
    /// Kernel path.
    pub const KQ: u8 = 1 << 1;
    /// Notify path (UIF).
    pub const NQ: u8 = 1 << 2;
}

/// A typed view over the classifier context buffer.
pub struct RequestCtx {
    buf: [u8; CTX_SIZE],
}

impl RequestCtx {
    /// An all-zero context, suitable as a reusable per-shard scratch buffer
    /// to be populated with [`RequestCtx::fill`] before each invocation.
    pub fn empty() -> Self {
        RequestCtx {
            buf: [0u8; CTX_SIZE],
        }
    }

    /// Builds a context for a fresh request arriving on a VSQ.
    pub fn new(
        hook: u32,
        vm: u32,
        qid: u16,
        cmd: &SubmissionEntry,
        error: Status,
        user_tag: u64,
    ) -> Self {
        let mut ctx = RequestCtx::empty();
        ctx.fill(hook, vm, qid, cmd, error, user_tag);
        ctx
    }

    /// Re-populates this context in place (zero-copy reuse of a scratch
    /// buffer). Every field is overwritten, including the spare tail bytes,
    /// so a reused buffer is indistinguishable from a fresh one.
    pub fn fill(
        &mut self,
        hook: u32,
        vm: u32,
        qid: u16,
        cmd: &SubmissionEntry,
        error: Status,
        user_tag: u64,
    ) {
        let buf = &mut self.buf;
        buf[OFF_HOOK..OFF_HOOK + 4].copy_from_slice(&hook.to_le_bytes());
        buf[OFF_VM..OFF_VM + 4].copy_from_slice(&vm.to_le_bytes());
        buf[OFF_OPCODE] = cmd.opcode;
        buf[OFF_OPCODE + 1] = cmd.flags;
        buf[OFF_CID..OFF_CID + 2].copy_from_slice(&cmd.cid.to_le_bytes());
        buf[OFF_NSID..OFF_NSID + 4].copy_from_slice(&cmd.nsid.to_le_bytes());
        buf[OFF_SLBA..OFF_SLBA + 8].copy_from_slice(&cmd.slba().to_le_bytes());
        buf[OFF_NLB..OFF_NLB + 4].copy_from_slice(&cmd.nlb().to_le_bytes());
        buf[OFF_ERROR..OFF_ERROR + 2].copy_from_slice(&error.0.to_le_bytes());
        buf[OFF_QID..OFF_QID + 2].copy_from_slice(&qid.to_le_bytes());
        buf[OFF_TAG..OFF_TAG + 8].copy_from_slice(&user_tag.to_le_bytes());
        buf[OFF_TAG + 8..CTX_SIZE].fill(0);
    }

    /// The raw context bytes (what a vbpf classifier sees).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Lifecycle hook this invocation runs at.
    pub fn current_hook(&self) -> u32 {
        u32::from_le_bytes(self.buf[OFF_HOOK..OFF_HOOK + 4].try_into().unwrap())
    }

    /// The VM the request came from.
    pub fn vm(&self) -> u32 {
        u32::from_le_bytes(self.buf[OFF_VM..OFF_VM + 4].try_into().unwrap())
    }

    /// NVMe opcode of the request.
    pub fn opcode(&self) -> u8 {
        self.buf[OFF_OPCODE]
    }

    /// Guest command identifier.
    pub fn cid(&self) -> u16 {
        u16::from_le_bytes(self.buf[OFF_CID..OFF_CID + 2].try_into().unwrap())
    }

    /// Namespace the request targets.
    pub fn nsid(&self) -> u32 {
        u32::from_le_bytes(self.buf[OFF_NSID..OFF_NSID + 4].try_into().unwrap())
    }

    /// Starting LBA (writable: direct mediation).
    pub fn slba(&self) -> u64 {
        u64::from_le_bytes(self.buf[OFF_SLBA..OFF_SLBA + 8].try_into().unwrap())
    }

    /// Rewrites the starting LBA.
    pub fn set_slba(&mut self, v: u64) {
        self.buf[OFF_SLBA..OFF_SLBA + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of logical blocks (writable).
    pub fn nlb(&self) -> u32 {
        u32::from_le_bytes(self.buf[OFF_NLB..OFF_NLB + 4].try_into().unwrap())
    }

    /// Rewrites the block count.
    pub fn set_nlb(&mut self, v: u32) {
        self.buf[OFF_NLB..OFF_NLB + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Status delivered by the path that just completed (hook invocations).
    pub fn error(&self) -> Status {
        Status(u16::from_le_bytes(
            self.buf[OFF_ERROR..OFF_ERROR + 2].try_into().unwrap(),
        ))
    }

    /// Queue the request arrived on.
    pub fn qid(&self) -> u16 {
        u16::from_le_bytes(self.buf[OFF_QID..OFF_QID + 2].try_into().unwrap())
    }

    /// Classifier scratch value, persisted across hooks of one request.
    pub fn user_tag(&self) -> u64 {
        u64::from_le_bytes(self.buf[OFF_TAG..OFF_TAG + 8].try_into().unwrap())
    }

    /// Sets the scratch value.
    pub fn set_user_tag(&mut self, v: u64) {
        self.buf[OFF_TAG..OFF_TAG + 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// Context field offsets for classifier authors (vbpf `ldx`/`stx`).
pub mod ctx_offsets {
    /// `current_hook: u32`.
    pub const HOOK: i16 = 0;
    /// `vm_id: u32`.
    pub const VM: i16 = 4;
    /// `opcode: u8`.
    pub const OPCODE: i16 = 8;
    /// `cid: u16`.
    pub const CID: i16 = 10;
    /// `nsid: u32`.
    pub const NSID: i16 = 12;
    /// `slba: u64` (writable).
    pub const SLBA: i16 = 16;
    /// `nlb: u32` (writable).
    pub const NLB: i16 = 24;
    /// `error: u16`.
    pub const ERROR: i16 = 28;
    /// `qid: u16`.
    pub const QID: i16 = 30;
    /// `user_tag: u64` (writable).
    pub const USER_TAG: i16 = 32;
}

/// The verifier contract classifiers are checked against: full context
/// readable, mediation window writable.
pub fn classifier_verifier_config() -> VerifierConfig {
    VerifierConfig {
        ctx_size: CTX_SIZE,
        ctx_writable: CTX_WRITABLE_START..CTX_SIZE,
    }
}

/// A classifier implemented in Rust instead of vbpf (tests, ablations).
pub trait NativeClassifier: Send {
    /// Returns the routing verdict for this invocation; may mutate the
    /// context's writable fields for direct mediation.
    fn classify(&mut self, ctx: &mut RequestCtx) -> Verdict;
}

/// Bitmask of direct-mediation context fields a classifier may have
/// written, derived from the verifier's context write-set. The router only
/// copies the flagged fields back into the forwarded command, so a
/// classifier that never touches (say) the block count costs nothing on
/// the NLB write-back path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MediatedFields(u8);

impl MediatedFields {
    /// No mediated field was written.
    pub const NONE: MediatedFields = MediatedFields(0);
    /// The starting LBA (`slba`, bytes 16..24).
    pub const SLBA: MediatedFields = MediatedFields(1 << 0);
    /// The block count (`nlb`, bytes 24..28).
    pub const NLB: MediatedFields = MediatedFields(1 << 1);
    /// The scratch tag (`user_tag`, bytes 32..40).
    pub const USER_TAG: MediatedFields = MediatedFields(1 << 2);

    /// Every mediated field — the conservative answer for native
    /// classifiers, whose writes the verifier cannot see.
    pub fn all() -> MediatedFields {
        MediatedFields(MediatedFields::SLBA.0 | MediatedFields::NLB.0 | MediatedFields::USER_TAG.0)
    }

    /// Whether `field` is set in this mask.
    pub fn contains(self, field: MediatedFields) -> bool {
        self.0 & field.0 == field.0
    }

    /// Union of two masks.
    pub fn union(self, other: MediatedFields) -> MediatedFields {
        MediatedFields(self.0 | other.0)
    }

    /// The dirty mask implied by a verifier context write-set: a field is
    /// dirty iff some verified store overlaps its byte range.
    pub fn from_ctx_writes(writes: &[(usize, usize)]) -> MediatedFields {
        const FIELDS: [(usize, usize, MediatedFields); 3] = [
            (OFF_SLBA, OFF_SLBA + 8, MediatedFields::SLBA),
            (OFF_NLB, OFF_NLB + 4, MediatedFields::NLB),
            (OFF_TAG, OFF_TAG + 8, MediatedFields::USER_TAG),
        ];
        let mut dirty = MediatedFields::NONE;
        for &(start, end) in writes {
            for (lo, hi, field) in FIELDS {
                if start < hi && end > lo {
                    dirty = dirty.union(field);
                }
            }
        }
        dirty
    }
}

/// Everything one classifier invocation produced: the routing verdict, the
/// vbpf execution tier that answered it (`None` for native classifiers),
/// and which mediated fields the router must copy back.
#[derive(Clone, Copy, Debug)]
pub struct ClassifyOutcome {
    /// The routing verdict.
    pub verdict: Verdict,
    /// Which vbpf tier ran (interpreter / compiled / memo hit), or `None`
    /// for a native classifier.
    pub tier: Option<nvmetro_vbpf::Tier>,
    /// Mediated fields the classifier may have rewritten.
    pub dirty: MediatedFields,
}

/// An installed classifier.
// One Classifier lives in each VM binding for the life of the VM and is
// only ever moved at install time; boxing the (large, hot) `Vm` variant
// would buy nothing but a pointer chase on every classify call.
#[allow(clippy::large_enum_variant)]
pub enum Classifier {
    /// Verified vbpf bytecode (the paper's deployed configuration),
    /// executed by the fastest eligible tier: memo cache, pre-decoded
    /// compiled ops, or the fetch/decode interpreter.
    Bpf(Vm),
    /// Native Rust (zero interpretation cost; ablation baseline).
    Native(Box<dyn NativeClassifier>),
}

impl Classifier {
    /// Runs the classifier at virtual time `now`.
    pub fn run(&mut self, ctx: &mut RequestCtx, now: u64) -> Verdict {
        self.run_tiered(ctx, now).verdict
    }

    /// Runs the classifier and reports the execution tier and dirty-field
    /// mask alongside the verdict — the router's hot-path entry point.
    pub fn run_tiered(&mut self, ctx: &mut RequestCtx, now: u64) -> ClassifyOutcome {
        match self {
            Classifier::Bpf(vm) => {
                vm.set_time(now);
                let (r, tier) = vm
                    .run_with_tier(ctx.bytes_mut())
                    .expect("verified classifier must not trap");
                ClassifyOutcome {
                    verdict: Verdict(r),
                    tier: Some(tier),
                    dirty: MediatedFields::from_ctx_writes(vm.program().ctx_writes()),
                }
            }
            Classifier::Native(n) => ClassifyOutcome {
                verdict: n.classify(ctx),
                tier: None,
                dirty: MediatedFields::all(),
            },
        }
    }

    /// Host-side access to a vbpf classifier's map (configuration).
    pub fn bpf_vm_mut(&mut self) -> Option<&mut Vm> {
        match self {
            Classifier::Bpf(vm) => Some(vm),
            Classifier::Native(_) => None,
        }
    }
}

/// Builds the "dummy" classifier of the basic evaluation (§V-B): every
/// command goes straight to the device and completes from there —
/// `return SEND_HQ | WILL_COMPLETE_HQ;` — as real verified bytecode.
pub fn passthrough_program() -> Vm {
    let mut b = ProgramBuilder::new();
    b.lddw(
        nvmetro_vbpf::isa::R0,
        verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ,
    )
    .exit();
    let (insns, maps) = b.build();
    Vm::new(
        nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config())
            .expect("passthrough classifier verifies"),
    )
}

/// Builds a classifier that translates LBAs by a constant partition offset
/// then takes the fast path — the per-VM classifier of the scalability
/// evaluation (Fig. 5), where each VM owns a partition of a shared
/// namespace.
pub fn offset_program(lba_offset: u64) -> Vm {
    use nvmetro_vbpf::isa::*;
    let mut b = ProgramBuilder::new();
    b.ldx(SIZE_DW, R2, R1, ctx_offsets::SLBA)
        .lddw(R3, lba_offset)
        .alu64(ALU_ADD, R2, R3)
        .stx(SIZE_DW, R1, ctx_offsets::SLBA, R2)
        .lddw(R0, verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
        .exit();
    let (insns, maps) = b.build();
    Vm::new(
        nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config())
            .expect("offset classifier verifies"),
    )
}

/// The paper's full partition-offset mediation classifier (§III-C): I/O
/// commands get their starting LBA bounds-checked against the partition
/// length and translated by the partition base; everything past the
/// partition completes immediately with `LBA_OUT_OF_RANGE`; non-I/O
/// commands pass through untouched. This is the representative
/// direct-mediation workload (`classifier_ablation` benches it across
/// execution tiers).
pub fn partition_offset_program(lba_offset: u64, part_nlb: u64) -> Vm {
    use nvmetro_vbpf::isa::*;
    let mut b = ProgramBuilder::new();
    let io = b.new_label();
    let reject = b.new_label();
    let ok = verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ;
    b.ldx(SIZE_B, R2, R1, ctx_offsets::OPCODE)
        .jmp_imm(JMP_JEQ, R2, nvmetro_nvme::NvmOpcode::Read as i32, io)
        .jmp_imm(JMP_JEQ, R2, nvmetro_nvme::NvmOpcode::Write as i32, io)
        // Non-I/O (flush, admin passthrough): fast path, no mediation.
        .lddw(R0, ok)
        .exit();
    b.bind(io);
    b.ldx(SIZE_DW, R3, R1, ctx_offsets::SLBA)
        .ldx(SIZE_W, R4, R1, ctx_offsets::NLB)
        .mov64(R5, R3)
        .alu64(ALU_ADD, R5, R4)
        .lddw(R6, part_nlb)
        .jmp_reg(JMP_JGT, R5, R6, reject)
        .lddw(R7, lba_offset)
        .alu64(ALU_ADD, R3, R7)
        .stx(SIZE_DW, R1, ctx_offsets::SLBA, R3)
        .lddw(R0, ok)
        .exit();
    b.bind(reject);
    b.lddw(
        R0,
        verdict_bits::COMPLETE | Status::LBA_OUT_OF_RANGE.0 as u64,
    )
    .exit();
    let (insns, maps) = b.build();
    Vm::new(
        nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config())
            .expect("partition-offset classifier verifies"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_program_translates() {
        let mut cls = Classifier::Bpf(offset_program(12345));
        let cmd = SubmissionEntry::read(1, 10, 1, 0, 0);
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let v = cls.run(&mut ctx, 0);
        assert_eq!(ctx.slba(), 12355);
        assert_eq!(v.send_mask(), path_bits::HQ);
    }

    #[test]
    fn partition_program_translates_in_bounds_io() {
        let mut cls = Classifier::Bpf(partition_offset_program(0x1000, 0x8000));
        let cmd = SubmissionEntry::write(1, 10, 8, 0, 0);
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let v = cls.run(&mut ctx, 0);
        assert_eq!(ctx.slba(), 0x1000 + 10);
        assert_eq!(v.send_mask(), path_bits::HQ);
        assert!(!v.complete());
    }

    #[test]
    fn partition_program_rejects_out_of_range() {
        // end = 10 + 8 = 18 > partition length 16.
        let mut cls = Classifier::Bpf(partition_offset_program(0x1000, 16));
        let cmd = SubmissionEntry::read(1, 10, 8, 0, 0);
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let v = cls.run(&mut ctx, 0);
        assert!(v.complete());
        assert_eq!(v.status(), Status::LBA_OUT_OF_RANGE);
        assert_eq!(ctx.slba(), 10, "rejected command must not be mediated");
    }

    #[test]
    fn partition_program_passes_non_io_untouched() {
        let mut cls = Classifier::Bpf(partition_offset_program(0x1000, 0x8000));
        let cmd = SubmissionEntry::flush(1);
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let before = ctx.bytes_mut().to_vec();
        let v = cls.run(&mut ctx, 0);
        assert_eq!(v.send_mask(), path_bits::HQ);
        assert_eq!(ctx.bytes_mut(), &before[..]);
    }

    fn sample_cmd() -> SubmissionEntry {
        SubmissionEntry::read(1, 0x1234, 8, 0x1000, 0)
    }

    #[test]
    fn ctx_round_trips_command_fields() {
        let cmd = sample_cmd();
        let ctx = RequestCtx::new(HOOK_VSQ, 3, 2, &cmd, Status::SUCCESS, 99);
        assert_eq!(ctx.current_hook(), HOOK_VSQ);
        assert_eq!(ctx.vm(), 3);
        assert_eq!(ctx.qid(), 2);
        assert_eq!(ctx.opcode(), 0x02);
        assert_eq!(ctx.nsid(), 1);
        assert_eq!(ctx.slba(), 0x1234);
        assert_eq!(ctx.nlb(), 8);
        assert_eq!(ctx.user_tag(), 99);
        assert!(!ctx.error().is_error());
    }

    #[test]
    fn mediation_fields_are_writable() {
        let cmd = sample_cmd();
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        ctx.set_slba(777);
        ctx.set_nlb(2);
        ctx.set_user_tag(0xAB);
        assert_eq!(ctx.slba(), 777);
        assert_eq!(ctx.nlb(), 2);
        assert_eq!(ctx.user_tag(), 0xAB);
    }

    #[test]
    fn verdict_decodes_masks() {
        use verdict_bits::*;
        let v = Verdict(SEND_HQ | SEND_NQ | HOOK_HCQ | WILL_COMPLETE_NQ);
        assert_eq!(v.send_mask(), path_bits::HQ | path_bits::NQ);
        assert_eq!(v.hook_mask(), path_bits::HQ);
        assert_eq!(v.will_complete_mask(), path_bits::NQ);
        assert!(!v.complete());
    }

    #[test]
    fn verdict_complete_carries_status() {
        let v = Verdict(Status::LBA_OUT_OF_RANGE.0 as u64 | verdict_bits::COMPLETE);
        assert!(v.complete());
        assert_eq!(v.status(), Status::LBA_OUT_OF_RANGE);
    }

    #[test]
    fn passthrough_program_verifies_and_routes_to_device() {
        let mut vm = passthrough_program();
        let cmd = sample_cmd();
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let verdict = Verdict(vm.run(ctx.bytes_mut()).unwrap());
        assert_eq!(verdict.send_mask(), path_bits::HQ);
        assert_eq!(verdict.will_complete_mask(), path_bits::HQ);
        assert!(!verdict.complete());
    }

    #[test]
    fn bpf_classifier_reads_ctx_through_abi_offsets() {
        // A classifier that returns the opcode it observed — proving the
        // byte layout matches the documented offsets.
        let mut b = ProgramBuilder::new();
        b.ldx(
            nvmetro_vbpf::isa::SIZE_B,
            nvmetro_vbpf::isa::R0,
            nvmetro_vbpf::isa::R1,
            ctx_offsets::OPCODE,
        )
        .exit();
        let (insns, maps) = b.build();
        let vm = Vm::new(nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config()).unwrap());
        let mut cls = Classifier::Bpf(vm);
        let cmd = sample_cmd();
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let verdict = cls.run(&mut ctx, 0);
        assert_eq!(verdict.0, 0x02);
    }

    #[test]
    fn bpf_classifier_can_mediate_slba() {
        // Rewrite slba += 1000 via the writable window (LBA translation).
        use nvmetro_vbpf::isa::*;
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_DW, R2, R1, ctx_offsets::SLBA)
            .add64_imm(R2, 1000)
            .stx(SIZE_DW, R1, ctx_offsets::SLBA, R2)
            .lddw(R0, verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
            .exit();
        let (insns, maps) = b.build();
        let vm = Vm::new(nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config()).unwrap());
        let mut cls = Classifier::Bpf(vm);
        let cmd = sample_cmd();
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        cls.run(&mut ctx, 0);
        assert_eq!(ctx.slba(), 0x1234 + 1000);
    }

    #[test]
    fn classifier_cannot_write_readonly_ctx_fields() {
        // Attempting to overwrite the opcode (outside the writable window)
        // must be rejected at verification time.
        use nvmetro_vbpf::isa::*;
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0)
            .st_imm(SIZE_B, R1, ctx_offsets::OPCODE, 0x01)
            .exit();
        let (insns, maps) = b.build();
        assert!(nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config()).is_err());
    }

    #[test]
    fn fill_reuses_scratch_without_leaking_prior_state() {
        let cmd_a = SubmissionEntry::read(1, 0x1234, 8, 0x1000, 0);
        let cmd_b = SubmissionEntry::read(2, 0x9, 1, 0x2000, 0);
        let mut scratch = RequestCtx::empty();
        scratch.fill(HOOK_VSQ, 3, 2, &cmd_a, Status::SUCCESS, 0xDEAD_BEEF);
        scratch.set_user_tag(u64::MAX);
        scratch.set_slba(u64::MAX);
        scratch.fill(HOOK_HCQ, 1, 0, &cmd_b, Status::LBA_OUT_OF_RANGE, 7);
        let fresh = RequestCtx::new(HOOK_HCQ, 1, 0, &cmd_b, Status::LBA_OUT_OF_RANGE, 7);
        assert_eq!(scratch.buf, fresh.buf);
    }

    #[test]
    fn mediated_fields_derive_from_write_set() {
        // slba-only store → only SLBA is dirty.
        let w = MediatedFields::from_ctx_writes(&[(16, 24)]);
        assert!(w.contains(MediatedFields::SLBA));
        assert!(!w.contains(MediatedFields::NLB));
        assert!(!w.contains(MediatedFields::USER_TAG));
        // A single byte poked into the middle of nlb still dirties it.
        let w = MediatedFields::from_ctx_writes(&[(26, 27)]);
        assert!(w.contains(MediatedFields::NLB));
        // A store spanning slba+nlb dirties both.
        let w = MediatedFields::from_ctx_writes(&[(20, 26)]);
        assert!(w.contains(MediatedFields::SLBA) && w.contains(MediatedFields::NLB));
        // Writes to error/qid (28..32) touch no mediated field.
        assert_eq!(
            MediatedFields::from_ctx_writes(&[(28, 32)]),
            MediatedFields::NONE
        );
    }

    #[test]
    fn run_tiered_reports_tier_and_dirty_fields() {
        let mut cls = Classifier::Bpf(offset_program(1000));
        let cmd = sample_cmd();
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let out = cls.run_tiered(&mut ctx, 0);
        assert_eq!(out.tier, Some(nvmetro_vbpf::Tier::Compiled));
        assert!(out.dirty.contains(MediatedFields::SLBA));
        assert!(!out.dirty.contains(MediatedFields::NLB));
        assert!(!out.dirty.contains(MediatedFields::USER_TAG));
        assert_eq!(ctx.slba(), 0x1234 + 1000);
        // Same command again (fresh ctx, same key bytes) → memo hit with
        // the identical mediated result.
        let mut ctx2 = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let out2 = cls.run_tiered(&mut ctx2, 0);
        assert_eq!(out2.tier, Some(nvmetro_vbpf::Tier::CacheHit));
        assert_eq!(out2.verdict, out.verdict);
        assert_eq!(ctx2.slba(), ctx.slba());
    }

    #[test]
    fn passthrough_marks_nothing_dirty() {
        let mut cls = Classifier::Bpf(passthrough_program());
        let cmd = sample_cmd();
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        let out = cls.run_tiered(&mut ctx, 0);
        assert_eq!(out.dirty, MediatedFields::NONE);
    }

    #[test]
    fn native_classifier_runs() {
        struct Always(u64);
        impl NativeClassifier for Always {
            fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
                Verdict(self.0)
            }
        }
        let mut c = Classifier::Native(Box::new(Always(verdict_bits::COMPLETE)));
        let cmd = sample_cmd();
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        assert!(c.run(&mut ctx, 0).complete());
        assert!(c.bpf_vm_mut().is_none());
    }
}
