//! The virtual NVMe controller NVMetro exposes to each VM.
//!
//! "Our solution operates in the hypervisor, and presents itself as a
//! virtual NVMe controller in each concerned VM ... in accordance with the
//! NVMe protocol, i.e. all VMs supporting NVMe work with NVMetro by default
//! without guest modifications" (§III-A). The controller owns the VM's
//! virtual queue pairs (VSQ/VCQ), serves the admin command set the guest
//! driver needs for bring-up, and records the namespace partition this VM
//! is attached to.

use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{
    AdminOpcode, CompletionEntry, CqConsumer, CqProducer, QueuePair, SqConsumer, SqProducer,
    Status, SubmissionEntry,
};
use nvmetro_telemetry::{Metric, TelemetryHandle};
use std::sync::Arc;

/// A contiguous LBA range of the backing namespace assigned to one VM.
/// The router enforces it on every fast-path command regardless of what the
/// classifier did (isolation, §III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First LBA of the partition on the physical namespace.
    pub lba_offset: u64,
    /// Length in LBAs.
    pub lba_count: u64,
}

impl Partition {
    /// A partition covering a whole device of `capacity` LBAs.
    pub fn whole(capacity: u64) -> Self {
        Partition {
            lba_offset: 0,
            lba_count: capacity,
        }
    }

    /// True if `slba..slba+nlb` (in *physical* LBAs) stays inside.
    pub fn contains(&self, slba: u64, nlb: u32) -> bool {
        slba >= self.lba_offset
            && slba
                .checked_add(nlb as u64)
                .is_some_and(|end| end <= self.lba_offset + self.lba_count)
    }
}

/// Static configuration of one VM's virtual controller.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// VM identifier (used in classifier contexts and reports).
    pub id: u32,
    /// Guest memory size in bytes.
    pub mem_bytes: u64,
    /// Number of I/O queue pairs (NVMe parallelism is preserved, §III-A).
    pub queue_pairs: usize,
    /// Depth of each queue.
    pub queue_depth: usize,
    /// Backing partition on the physical namespace.
    pub partition: Partition,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            id: 0,
            mem_bytes: 6 << 30, // the paper's 6 GB VMs
            queue_pairs: 1,
            queue_depth: 1024,
            partition: Partition::whole(1 << 31),
        }
    }
}

struct GuestEnd {
    sq: Option<SqProducer>,
    cq: Option<CqConsumer>,
}

struct RouterEnd {
    sq: Option<SqConsumer>,
    cq: Option<CqProducer>,
}

/// One VM's virtual NVMe controller.
pub struct VirtualController {
    cfg: VmConfig,
    mem: Arc<GuestMemory>,
    guest_ends: Vec<GuestEnd>,
    router_ends: Vec<RouterEnd>,
    telemetry: TelemetryHandle,
}

impl VirtualController {
    /// Creates the controller, its guest memory, and all queue pairs.
    pub fn new(cfg: VmConfig) -> Self {
        let mem = Arc::new(GuestMemory::new(cfg.mem_bytes));
        let mut guest_ends = Vec::with_capacity(cfg.queue_pairs);
        let mut router_ends = Vec::with_capacity(cfg.queue_pairs);
        for _ in 0..cfg.queue_pairs {
            let qp = QueuePair::new(cfg.queue_depth);
            guest_ends.push(GuestEnd {
                sq: Some(qp.sq_prod),
                cq: Some(qp.cq_cons),
            });
            router_ends.push(RouterEnd {
                sq: Some(qp.sq_cons),
                cq: Some(qp.cq_prod),
            });
        }
        VirtualController {
            cfg,
            mem,
            guest_ends,
            router_ends,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry worker handle (see `nvmetro-telemetry`).
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// The VM's configuration.
    pub fn config(&self) -> &VmConfig {
        &self.cfg
    }

    /// The VM's guest-physical memory.
    pub fn memory(&self) -> Arc<GuestMemory> {
        self.mem.clone()
    }

    /// Takes the guest-side ends of queue pair `i` (what the guest NVMe
    /// driver holds). Panics if taken twice.
    pub fn take_guest_queue(&mut self, i: usize) -> (SqProducer, CqConsumer) {
        let end = &mut self.guest_ends[i];
        (
            end.sq.take().expect("guest SQ already taken"),
            end.cq.take().expect("guest CQ already taken"),
        )
    }

    /// Takes the router-side ends of all queue pairs (consumed when the VM
    /// is bound to a router).
    pub fn take_router_queues(&mut self) -> (Vec<SqConsumer>, Vec<CqProducer>) {
        let mut sqs = Vec::new();
        let mut cqs = Vec::new();
        for end in &mut self.router_ends {
            sqs.push(end.sq.take().expect("router SQ already taken"));
            cqs.push(end.cq.take().expect("router CQ already taken"));
        }
        (sqs, cqs)
    }

    /// Serves one admin command synchronously (admin queues are far off the
    /// data path; the paper's router only mediates I/O queues).
    pub fn handle_admin(&self, cmd: &SubmissionEntry) -> CompletionEntry {
        self.telemetry.count(Metric::AdminCmds);
        let op = match AdminOpcode::from_u8(cmd.opcode) {
            Some(op) => op,
            None => return CompletionEntry::new(cmd.cid, Status::INVALID_OPCODE),
        };
        match op {
            AdminOpcode::Identify => {
                // CNS in CDW10: 0 = namespace, 1 = controller.
                let cns = cmd.cdw10 & 0xFF;
                let mut data = vec![0u8; 4096];
                match cns {
                    0 => {
                        // Identify Namespace: NSZE/NCAP/NUSE = partition size.
                        let sz = self.cfg.partition.lba_count;
                        data[0..8].copy_from_slice(&sz.to_le_bytes());
                        data[8..16].copy_from_slice(&sz.to_le_bytes());
                        data[16..24].copy_from_slice(&sz.to_le_bytes());
                        // LBA format 0: 512-byte blocks (LBADS = 9).
                        data[128 + 2] = 9;
                    }
                    1 => {
                        data[4..12].copy_from_slice(b"NVMETRO0"); // serial
                        data[24..31].copy_from_slice(b"NVMetro"); // model
                        data[72..74].copy_from_slice(&1u16.to_le_bytes()); // 1 ns
                    }
                    _ => {
                        return CompletionEntry::new(cmd.cid, Status::INVALID_FIELD);
                    }
                }
                if cmd.prp1 == 0 {
                    return CompletionEntry::new(cmd.cid, Status::INVALID_FIELD);
                }
                self.mem.write(cmd.prp1, &data);
                CompletionEntry::new(cmd.cid, Status::SUCCESS)
            }
            AdminOpcode::CreateSq | AdminOpcode::CreateCq => {
                // Queue pairs are provisioned at attach time; accept
                // creation of any provisioned qid, reject beyond.
                let qid = (cmd.cdw10 & 0xFFFF) as usize;
                if qid >= 1 && qid <= self.cfg.queue_pairs {
                    CompletionEntry::new(cmd.cid, Status::SUCCESS)
                } else {
                    CompletionEntry::new(cmd.cid, Status::INVALID_FIELD)
                }
            }
            AdminOpcode::DeleteSq | AdminOpcode::DeleteCq => {
                CompletionEntry::new(cmd.cid, Status::SUCCESS)
            }
            AdminOpcode::SetFeatures | AdminOpcode::GetFeatures => {
                // Feature 0x07: number of queues.
                let fid = cmd.cdw10 & 0xFF;
                if fid == 0x07 {
                    let mut cqe = CompletionEntry::new(cmd.cid, Status::SUCCESS);
                    let n = (self.cfg.queue_pairs as u32 - 1) & 0xFFFF;
                    cqe.result = n | (n << 16);
                    cqe
                } else {
                    CompletionEntry::new(cmd.cid, Status::SUCCESS)
                }
            }
            AdminOpcode::GetLogPage => CompletionEntry::new(cmd.cid, Status::SUCCESS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> VmConfig {
        VmConfig {
            id: 1,
            mem_bytes: 1 << 24,
            queue_pairs: 2,
            queue_depth: 64,
            partition: Partition {
                lba_offset: 1000,
                lba_count: 5000,
            },
        }
    }

    #[test]
    fn partition_containment() {
        let p = Partition {
            lba_offset: 100,
            lba_count: 50,
        };
        assert!(p.contains(100, 50));
        assert!(p.contains(120, 10));
        assert!(!p.contains(99, 1));
        assert!(!p.contains(149, 2));
        assert!(!p.contains(u64::MAX, 1));
    }

    #[test]
    fn queue_ends_connect_guest_to_router() {
        let mut vc = VirtualController::new(small_cfg());
        let (gsq, gcq) = vc.take_guest_queue(0);
        let (rsqs, rcqs) = vc.take_router_queues();
        gsq.push(SubmissionEntry::flush(1)).unwrap();
        let (cmd, _) = rsqs[0].pop().unwrap();
        assert_eq!(cmd.opcode, 0);
        rcqs[0]
            .push(CompletionEntry::new(cmd.cid, Status::SUCCESS))
            .unwrap();
        assert!(gcq.pop().is_some());
        // Queue pair 1 is independent.
        assert!(rsqs[1].pop().is_none());
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_panics() {
        let mut vc = VirtualController::new(small_cfg());
        let _ = vc.take_guest_queue(0);
        let _ = vc.take_guest_queue(0);
    }

    #[test]
    fn identify_namespace_reports_partition_size() {
        let vc = VirtualController::new(small_cfg());
        let mem = vc.memory();
        let buf = mem.alloc(4096);
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::Identify as u8,
            cid: 9,
            cdw10: 0, // CNS 0: namespace
            prp1: buf,
            ..Default::default()
        };
        let cqe = vc.handle_admin(&cmd);
        assert_eq!(cqe.status(), Status::SUCCESS);
        assert_eq!(cqe.cid, 9);
        let nsze = u64::from_le_bytes(mem.read_vec(buf, 8).try_into().unwrap());
        assert_eq!(nsze, 5000, "guest sees only its partition");
    }

    #[test]
    fn identify_controller_reports_model() {
        let vc = VirtualController::new(small_cfg());
        let mem = vc.memory();
        let buf = mem.alloc(4096);
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::Identify as u8,
            cdw10: 1,
            prp1: buf,
            ..Default::default()
        };
        let cqe = vc.handle_admin(&cmd);
        assert_eq!(cqe.status(), Status::SUCCESS);
        let id = mem.read_vec(buf, 4096);
        assert_eq!(&id[4..12], b"NVMETRO0");
    }

    #[test]
    fn create_queue_validates_qid() {
        let vc = VirtualController::new(small_cfg());
        let mut cmd = SubmissionEntry {
            opcode: AdminOpcode::CreateSq as u8,
            cdw10: 1,
            ..Default::default()
        };
        assert_eq!(vc.handle_admin(&cmd).status(), Status::SUCCESS);
        cmd.cdw10 = 99;
        assert_eq!(vc.handle_admin(&cmd).status(), Status::INVALID_FIELD);
    }

    #[test]
    fn set_features_num_queues_reflects_config() {
        let vc = VirtualController::new(small_cfg());
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::SetFeatures as u8,
            cdw10: 0x07,
            ..Default::default()
        };
        let cqe = vc.handle_admin(&cmd);
        assert_eq!(cqe.status(), Status::SUCCESS);
        // 2 queue pairs -> 0-based count 1 in both halves.
        assert_eq!(cqe.result, 1 | (1 << 16));
    }

    #[test]
    fn unknown_admin_opcode_rejected() {
        let vc = VirtualController::new(small_cfg());
        let cmd = SubmissionEntry {
            opcode: 0xEE,
            ..Default::default()
        };
        assert_eq!(vc.handle_admin(&cmd).status(), Status::INVALID_OPCODE);
    }
}
