//! The sharded datapath engine and its builder.
//!
//! The paper sizes the router as "worker threads" (plural): a production
//! deployment gives each VM one VSQ/VCQ pair per vCPU and spreads the queue
//! pairs over a pool of router shards, each pinned to its own core. This
//! module is that deployment's front door:
//!
//! * [`RouterBuilder`] is the one typed, ordered construction path for the
//!   datapath: shards, batch, recovery, telemetry, classifier memoization,
//!   and VM bindings in a single fluent chain (the old `Router` setter
//!   sprawl is gone);
//! * [`EngineVm`] describes a VM as a set of [`QueueBinding`] queue groups
//!   (per-vCPU queues); groups are partitioned round-robin across shards in
//!   bind order, so `group g → shard g % shards` — deterministic, and a
//!   single-group VM on a single-shard engine reproduces the legacy
//!   one-router layout bit for bit;
//! * [`Engine`] owns the shards and offers the two deployment modes as one
//!   decision point: [`Engine::run_virtual`] hands every shard to the
//!   discrete-event executor, [`Engine::spawn_threads`] puts each shard on
//!   its own OS thread behind a [`Pool`];
//! * [`EngineStats`] merges per-shard counters and breaker states so
//!   callers stop reaching into shard internals.
//!
//! Shards share nothing on the hot path: each has its own routing table,
//! classifier instances, circuit breakers, retry/timer state, and telemetry
//! worker cell — the scaling claim of the sharded design.

use crate::classify::Classifier;
use crate::controller::Partition;
use crate::recovery::RecoveryConfig;
use crate::router::{KernelPath, NotifyBinding, Router, RouterStats, VmBinding, DEFAULT_BATCH};
use crate::threading::Pool;
use nvmetro_fleet::{CoalesceConfig, FleetConfig, TenantView};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqConsumer, CqProducer, SqConsumer, SqProducer};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::Executor;
use nvmetro_telemetry::Telemetry;
use std::sync::Arc;

/// One shard-assignable queue group of a VM: a set of virtual queues plus
/// the group's private path endpoints and classifier instance. A VM with
/// per-vCPU queues binds one group per vCPU; each group lands on exactly
/// one shard, so nothing in it is ever shared across threads.
pub struct QueueBinding {
    /// Router-side ends of the group's virtual submission queues.
    pub vsqs: Vec<SqConsumer>,
    /// Router-side ends of the group's virtual completion queues.
    pub vcqs: Vec<CqProducer>,
    /// Fast path: producer end of the group's host submission queue.
    pub hsq: SqProducer,
    /// Fast path: consumer end of the group's host completion queue.
    pub hcq: CqConsumer,
    /// Optional kernel path.
    pub kernel: Option<Box<dyn KernelPath>>,
    /// Optional notify path (UIF).
    pub notify: Option<NotifyBinding>,
    /// The group's classifier instance (per-shard: no cross-shard state).
    pub classifier: Classifier,
}

/// A VM as the engine sees it: identity, memory, partition bounds, and one
/// or more queue groups to spread across shards.
pub struct EngineVm {
    /// VM identifier (classifier context field).
    pub vm_id: u32,
    /// The VM's guest memory.
    pub mem: Arc<GuestMemory>,
    /// Partition bounds enforced on every fast-path send.
    pub partition: Partition,
    /// The VM's queue groups, in queue-pair order.
    pub queues: Vec<QueueBinding>,
}

/// A legacy single-queue-group binding is a VM with one group — the whole
/// VM lands on one shard, exactly the pre-sharding layout.
impl From<VmBinding> for EngineVm {
    fn from(b: VmBinding) -> Self {
        EngineVm {
            vm_id: b.vm_id,
            mem: b.mem,
            partition: b.partition,
            queues: vec![QueueBinding {
                vsqs: b.vsqs,
                vcqs: b.vcqs,
                hsq: b.hsq,
                hcq: b.hcq,
                kernel: b.kernel,
                notify: b.notify,
                classifier: b.classifier,
            }],
        }
    }
}

/// Where one queue group ended up: which shard, and at which VM slot
/// within that shard (the index `Router::breaker`/`classifier_mut` take).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Owning VM id.
    pub vm_id: u32,
    /// Index of the queue group within its VM, in bind order.
    pub queue_group: usize,
    /// Shard the group was assigned to.
    pub shard: usize,
    /// VM slot within that shard.
    pub slot: usize,
}

/// Typed construction path for the sharded datapath.
///
/// ```ignore
/// let engine = RouterBuilder::new("router")
///     .cost(cost)
///     .shards(4)
///     .table_capacity(4096)
///     .recovery(RecoveryConfig::default())
///     .telemetry(&telemetry)
///     .vm(binding)
///     .build();
/// ```
pub struct RouterBuilder {
    name: String,
    cost: CostModel,
    shards: usize,
    workers: usize,
    batch: usize,
    table_capacity: usize,
    recovery: Option<RecoveryConfig>,
    telemetry: Telemetry,
    memo_capacity: Option<usize>,
    fleet: Option<FleetConfig>,
    coalesce: Option<CoalesceConfig>,
    vms: Vec<EngineVm>,
}

impl RouterBuilder {
    /// Starts a builder with the defaults: one shard, one worker per
    /// shard, default cost model, batch of [`DEFAULT_BATCH`], a 1024-entry
    /// routing table, no recovery, disabled telemetry.
    pub fn new(name: &str) -> Self {
        RouterBuilder {
            name: name.to_string(),
            cost: CostModel::default(),
            shards: 1,
            workers: 1,
            batch: DEFAULT_BATCH,
            table_capacity: 1024,
            recovery: None,
            telemetry: Telemetry::disabled(),
            memo_capacity: None,
            fleet: None,
            coalesce: None,
            vms: Vec::new(),
        }
    }

    /// Calibration constants for the shards' station costs.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Number of router shards (≥ 1). Queue groups are partitioned across
    /// them round-robin in bind order.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Worker threads modeled *inside* each shard's station (the paper's
    /// scalability evaluation uses one).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Entries drained per SQ visit and the unit of CQ doorbell
    /// coalescing.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Per-shard routing-table capacity (bounds concurrent in-flight
    /// requests per shard).
    pub fn table_capacity(mut self, capacity: usize) -> Self {
        self.table_capacity = capacity;
        self
    }

    /// Turns the recovery engine on for every shard (deadline abort,
    /// bounded retry, per-VM circuit breakers).
    pub fn recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Registers one telemetry worker per shard from this registry. A
    /// disabled registry (the default) costs one branch per probe.
    pub fn telemetry(mut self, registry: &Telemetry) -> Self {
        self.telemetry = registry.clone();
        self
    }

    /// Verdict-memo slots for every bound vbpf classifier (0 disables
    /// memoization engine-wide). Unset, classifiers keep the vbpf default.
    /// The cache only engages for programs the verifier proved pure; each
    /// queue group's classifier has its own cache, so shards share nothing.
    pub fn classifier_memo(mut self, capacity: usize) -> Self {
        self.memo_capacity = Some(capacity);
        self
    }

    /// Turns the fleet scheduler on for every shard: the VSQ drain
    /// switches from FIFO visit order to weighted deficit-round-robin
    /// over tenants with token-bucket admission. All shards share the
    /// config's [`TenantGovernor`](nvmetro_fleet::TenantGovernor), so one
    /// control plane sees (and throttles) every shard.
    pub fn fleet(mut self, cfg: FleetConfig) -> Self {
        self.fleet = Some(cfg);
        self
    }

    /// Turns cross-VM read coalescing on for every shard: concurrent
    /// duplicate fast-path reads (same post-mediation LBA range) issue one
    /// device command and fan the completion out. Note coalescing works
    /// *within* a shard — requests meet in its routing table — so tenants
    /// sharing a dataset coalesce best when their queue groups land on the
    /// same shard.
    pub fn coalesce(mut self, cfg: CoalesceConfig) -> Self {
        self.coalesce = Some(cfg);
        self
    }

    /// Adds a VM. Accepts a full [`EngineVm`] (multi-queue) or a legacy
    /// [`VmBinding`] (one queue group).
    pub fn vm(mut self, vm: impl Into<EngineVm>) -> Self {
        self.vms.push(vm.into());
        self
    }

    /// Builds the shards and partitions every queue group across them.
    pub fn build(self) -> Engine {
        let shard_count = self.shards;
        let mut shards: Vec<Router> = (0..shard_count)
            .map(|i| {
                // A single-shard engine keeps the bare name so CPU reports
                // and existing expectations (`cpu_of("router")`) line up.
                let name = if shard_count == 1 {
                    self.name.clone()
                } else {
                    format!("{}.{}", self.name, i)
                };
                let mut r =
                    Router::new(&name, self.cost.clone(), self.workers, self.table_capacity);
                r.configure_batch(self.batch);
                // Named registration: the worker id stamped into this
                // shard's trace events maps back to the shard name in
                // snapshots and trace exports (one Chrome "process" per
                // shard).
                r.configure_telemetry(self.telemetry.register_worker_named(&name));
                if let Some(cfg) = self.recovery {
                    r.configure_recovery(cfg);
                }
                if let Some(cfg) = &self.fleet {
                    r.configure_fleet(cfg);
                }
                if let Some(cfg) = self.coalesce {
                    r.configure_coalesce(cfg);
                }
                r
            })
            .collect();
        let mut placements = Vec::new();
        let mut group = 0usize;
        for vm in self.vms {
            let EngineVm {
                vm_id,
                mem,
                partition,
                queues,
            } = vm;
            for (queue_group, mut q) in queues.into_iter().enumerate() {
                let shard = group % shard_count;
                if let Some(capacity) = self.memo_capacity {
                    if let Some(vm) = q.classifier.bpf_vm_mut() {
                        vm.set_memo_capacity(capacity);
                    }
                }
                let slot = shards[shard].bind_vm(VmBinding {
                    vm_id,
                    mem: mem.clone(),
                    partition,
                    vsqs: q.vsqs,
                    vcqs: q.vcqs,
                    hsq: q.hsq,
                    hcq: q.hcq,
                    kernel: q.kernel,
                    notify: q.notify,
                    classifier: q.classifier,
                });
                placements.push(Placement {
                    vm_id,
                    queue_group,
                    shard,
                    slot,
                });
                group += 1;
            }
        }
        Engine { shards, placements }
    }
}

/// Per-VM breaker state as seen from outside the shards.
#[derive(Clone, Copy, Debug)]
pub struct BreakerState {
    /// Shard the breaker lives on.
    pub shard: usize,
    /// Owning VM id.
    pub vm_id: u32,
    /// Whether the breaker is currently open (fast path denied).
    pub open: bool,
    /// Times the breaker has opened so far.
    pub opens: u64,
}

/// One tenant's fleet-scheduler state on one shard, as surfaced by
/// [`EngineStats`]: who is being limited, and why (tokens gone, deficit
/// spent, or a feedback throttle in force).
#[derive(Clone, Copy, Debug)]
pub struct TenantState {
    /// Shard the scheduler slot lives on.
    pub shard: usize,
    /// Scheduler view: tenant id, weight, deficit, tokens remaining,
    /// configured rate, throttle scale, and admission counters.
    pub view: TenantView,
}

/// Aggregated view over every shard: merged counters, per-shard
/// breakdowns, breaker states, per-tenant scheduler state, and table
/// high-water marks.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Field-wise sum of every shard's counters.
    pub total: RouterStats,
    /// Each shard's own counters, in shard order.
    pub per_shard: Vec<RouterStats>,
    /// Every (shard, VM) circuit breaker, in shard-then-slot order (empty
    /// when recovery is off).
    pub breakers: Vec<BreakerState>,
    /// Every (shard, tenant) fleet-scheduler slot, in shard-then-tenant
    /// order (empty when fleet mode is off).
    pub tenants: Vec<TenantState>,
    /// Highest routing-table occupancy any shard reached.
    pub high_water: usize,
}

impl EngineStats {
    /// Whether any shard's breaker for `vm_id` is currently open.
    pub fn breaker_open(&self, vm_id: u32) -> bool {
        self.breakers.iter().any(|b| b.vm_id == vm_id && b.open)
    }

    /// Total breaker opens for `vm_id` across shards.
    pub fn breaker_opens(&self, vm_id: u32) -> u64 {
        self.breakers
            .iter()
            .filter(|b| b.vm_id == vm_id)
            .map(|b| b.opens)
            .sum()
    }

    /// Whether any shard's scheduler currently has `vm_id` throttled
    /// below full rate.
    pub fn tenant_throttled(&self, vm_id: u32) -> bool {
        self.tenants
            .iter()
            .any(|t| t.view.tenant == vm_id && t.view.throttle_permille < nvmetro_fleet::FULL_RATE)
    }

    /// Requests admitted for `vm_id` across all shards.
    pub fn tenant_admitted(&self, vm_id: u32) -> u64 {
        self.tenants
            .iter()
            .filter(|t| t.view.tenant == vm_id)
            .map(|t| t.view.admitted)
            .sum()
    }

    /// Renders the per-tenant scheduler table (one row per shard×tenant):
    /// weight, deficit, tokens, throttle, and admission counters — the
    /// snapshot view of who is being limited and why.
    pub fn tenant_table(&self) -> String {
        let mut out = String::from(
            "shard tenant weight deficit tokens throttle admitted throttled preempted\n",
        );
        for t in &self.tenants {
            let tokens = if t.view.tokens == u64::MAX {
                "-".to_string()
            } else {
                t.view.tokens.to_string()
            };
            out.push_str(&format!(
                "{:>5} {:>6} {:>6} {:>7} {:>6} {:>7}‰ {:>8} {:>9} {:>9}\n",
                t.shard,
                t.view.tenant,
                t.view.weight,
                t.view.deficit,
                tokens,
                t.view.throttle_permille,
                t.view.admitted,
                t.view.throttled,
                t.view.preempted,
            ));
        }
        out
    }
}

/// The sharded datapath: a pool of [`Router`] shards plus the record of
/// where every queue group landed.
pub struct Engine {
    shards: Vec<Router>,
    placements: Vec<Placement>,
}

impl Engine {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard.
    pub fn shard(&self, i: usize) -> &Router {
        &self.shards[i]
    }

    /// Mutable access to one shard (classifier map updates, ...).
    pub fn shard_mut(&mut self, i: usize) -> &mut Router {
        &mut self.shards[i]
    }

    /// Where every queue group landed, in bind order.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Aggregated counters, breaker states, and high-water marks.
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let s = shard.stats();
            stats.total.merge(&s);
            stats.per_shard.push(s);
            stats.high_water = stats.high_water.max(shard.high_water());
            if shard.recovery_enabled() {
                for (vm_id, breaker) in shard.breaker_view() {
                    stats.breakers.push(BreakerState {
                        shard: i,
                        vm_id,
                        open: breaker.is_open(),
                        opens: breaker.opens(),
                    });
                }
            }
            for view in shard.fleet_view() {
                stats.tenants.push(TenantState { shard: i, view });
            }
        }
        stats
    }

    /// Virtual-time deployment: hands every shard to the discrete-event
    /// executor. The executor owns them for the rest of the run.
    pub fn run_virtual(self, ex: &mut Executor) {
        for shard in self.shards {
            ex.add(Box::new(shard));
        }
    }

    /// Real-thread deployment: each shard gets its own OS thread. The
    /// returned [`Pool`] accepts companion actors (device, UIF runners)
    /// and stops the whole deployment as one unit.
    pub fn spawn_threads(self, time_scale: f64) -> Pool {
        let mut pool = Pool::new(time_scale);
        for shard in self.shards {
            pool.spawn(shard);
        }
        pool
    }

    /// Dissolves the engine into its shards (tests that drive a shard's
    /// poll loop by hand).
    pub fn into_shards(self) -> Vec<Router> {
        self.shards
    }
}
