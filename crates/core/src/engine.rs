//! The sharded datapath engine and its builder.
//!
//! The paper sizes the router as "worker threads" (plural): a production
//! deployment gives each VM one VSQ/VCQ pair per vCPU and spreads the queue
//! pairs over a pool of router shards, each pinned to its own core. This
//! module is that deployment's front door:
//!
//! * [`RouterBuilder`] is the one typed, ordered construction path for the
//!   datapath: shards, batch, recovery, telemetry, classifier memoization,
//!   and VM bindings in a single fluent chain (the old `Router` setter
//!   sprawl is gone);
//! * [`EngineVm`] describes a VM as a set of [`QueueBinding`] queue groups
//!   (per-vCPU queues); groups are partitioned round-robin across shards in
//!   bind order, so `group g → shard g % shards` — deterministic, and a
//!   single-group VM on a single-shard engine reproduces the legacy
//!   one-router layout bit for bit;
//! * [`Engine`] owns the shards and offers the two deployment modes as one
//!   decision point: [`Engine::run_virtual`] hands every shard to the
//!   discrete-event executor, [`Engine::spawn_threads`] puts each shard on
//!   its own OS thread behind a [`Pool`];
//! * [`EngineStats`] merges per-shard counters and breaker states so
//!   callers stop reaching into shard internals.
//!
//! Shards share nothing on the hot path: each has its own routing table,
//! classifier instances, circuit breakers, retry/timer state, and telemetry
//! worker cell — the scaling claim of the sharded design.

use crate::adaptive::PollMode;
use crate::classify::Classifier;
use crate::controller::Partition;
use crate::policy::EnginePolicy;
use crate::recovery::RecoveryConfig;
use crate::router::{KernelPath, NotifyBinding, Router, RouterStats, VmBinding};
use crate::servicing::{
    SavedBreaker, SavedCqe, SavedGroup, SavedRequest, SavedRetry, SavedTenant, ServiceError,
    ServiceState,
};
use crate::threading::Pool;
use nvmetro_fleet::{CoalesceConfig, FleetConfig, TenantView};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CompletionEntry, CqConsumer, CqProducer, SqConsumer, SqProducer, Status};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, Executor, Ns, Progress};
use nvmetro_telemetry::{Metric, Telemetry, TelemetryHandle};
use std::collections::HashMap;
use std::sync::Arc;

/// One shard-assignable queue group of a VM: a set of virtual queues plus
/// the group's private path endpoints and classifier instance. A VM with
/// per-vCPU queues binds one group per vCPU; each group lands on exactly
/// one shard, so nothing in it is ever shared across threads.
pub struct QueueBinding {
    /// Router-side ends of the group's virtual submission queues.
    pub vsqs: Vec<SqConsumer>,
    /// Router-side ends of the group's virtual completion queues.
    pub vcqs: Vec<CqProducer>,
    /// Fast path: producer end of the group's host submission queue.
    pub hsq: SqProducer,
    /// Fast path: consumer end of the group's host completion queue.
    pub hcq: CqConsumer,
    /// Optional kernel path.
    pub kernel: Option<Box<dyn KernelPath>>,
    /// Optional notify path (UIF).
    pub notify: Option<NotifyBinding>,
    /// The group's classifier instance (per-shard: no cross-shard state).
    pub classifier: Classifier,
}

/// A VM as the engine sees it: identity, memory, partition bounds, and one
/// or more queue groups to spread across shards.
pub struct EngineVm {
    /// VM identifier (classifier context field).
    pub vm_id: u32,
    /// The VM's guest memory.
    pub mem: Arc<GuestMemory>,
    /// Partition bounds enforced on every fast-path send.
    pub partition: Partition,
    /// The VM's queue groups, in queue-pair order.
    pub queues: Vec<QueueBinding>,
}

/// A legacy single-queue-group binding is a VM with one group — the whole
/// VM lands on one shard, exactly the pre-sharding layout.
impl From<VmBinding> for EngineVm {
    fn from(b: VmBinding) -> Self {
        EngineVm {
            vm_id: b.vm_id,
            mem: b.mem,
            partition: b.partition,
            queues: vec![QueueBinding {
                vsqs: b.vsqs,
                vcqs: b.vcqs,
                hsq: b.hsq,
                hcq: b.hcq,
                kernel: b.kernel,
                notify: b.notify,
                classifier: b.classifier,
            }],
        }
    }
}

/// Where one queue group ended up: which shard, and at which VM slot
/// within that shard (the index `Router::breaker`/`classifier_mut` take).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Owning VM id.
    pub vm_id: u32,
    /// Index of the queue group within its VM, in bind order.
    pub queue_group: usize,
    /// Shard the group was assigned to.
    pub shard: usize,
    /// VM slot within that shard.
    pub slot: usize,
}

/// Typed construction path for the sharded datapath.
///
/// ```ignore
/// let engine = RouterBuilder::new("router")
///     .cost(cost)
///     .shards(4)
///     .table_capacity(4096)
///     .recovery(RecoveryConfig::default())
///     .telemetry(&telemetry)
///     .vm(binding)
///     .build();
/// ```
pub struct RouterBuilder {
    name: String,
    cost: CostModel,
    shards: usize,
    policy: EnginePolicy,
    table_capacity: usize,
    recovery: Option<RecoveryConfig>,
    telemetry: Telemetry,
    memo_capacity: Option<usize>,
    fleet: Option<FleetConfig>,
    coalesce: Option<CoalesceConfig>,
    vms: Vec<EngineVm>,
}

impl RouterBuilder {
    /// Starts a builder with the defaults: one shard, the default
    /// [`EnginePolicy`] (always-spin polling, fixed batch, round-robin
    /// placement, one worker), a 1024-entry routing table, no recovery,
    /// disabled telemetry.
    pub fn new(name: &str) -> Self {
        RouterBuilder {
            name: name.to_string(),
            cost: CostModel::default(),
            shards: 1,
            policy: EnginePolicy::default(),
            table_capacity: 1024,
            recovery: None,
            telemetry: Telemetry::disabled(),
            memo_capacity: None,
            fleet: None,
            coalesce: None,
            vms: Vec::new(),
        }
    }

    /// Calibration constants for the shards' station costs.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Number of router shards (≥ 1). Queue groups are partitioned across
    /// them round-robin in bind order.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The engine's datapath policy in one typed value: poll governor,
    /// batch sizing, shard placement, and per-shard workers. Replaces the
    /// old scalar `workers`/`batch` knobs; the policy survives servicing
    /// snapshot/restore and reshard.
    pub fn policy(mut self, policy: EnginePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Per-shard routing-table capacity (bounds concurrent in-flight
    /// requests per shard).
    pub fn table_capacity(mut self, capacity: usize) -> Self {
        self.table_capacity = capacity;
        self
    }

    /// Turns the recovery engine on for every shard (deadline abort,
    /// bounded retry, per-VM circuit breakers).
    pub fn recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Registers one telemetry worker per shard from this registry. A
    /// disabled registry (the default) costs one branch per probe.
    pub fn telemetry(mut self, registry: &Telemetry) -> Self {
        self.telemetry = registry.clone();
        self
    }

    /// Verdict-memo slots for every bound vbpf classifier (0 disables
    /// memoization engine-wide). Unset, classifiers keep the vbpf default.
    /// The cache only engages for programs the verifier proved pure; each
    /// queue group's classifier has its own cache, so shards share nothing.
    pub fn classifier_memo(mut self, capacity: usize) -> Self {
        self.memo_capacity = Some(capacity);
        self
    }

    /// Turns the fleet scheduler on for every shard: the VSQ drain
    /// switches from FIFO visit order to weighted deficit-round-robin
    /// over tenants with token-bucket admission. All shards share the
    /// config's [`TenantGovernor`](nvmetro_fleet::TenantGovernor), so one
    /// control plane sees (and throttles) every shard.
    pub fn fleet(mut self, cfg: FleetConfig) -> Self {
        self.fleet = Some(cfg);
        self
    }

    /// Turns cross-VM read coalescing on for every shard: concurrent
    /// duplicate fast-path reads (same post-mediation LBA range) issue one
    /// device command and fan the completion out. Note coalescing works
    /// *within* a shard — requests meet in its routing table — so tenants
    /// sharing a dataset coalesce best when their queue groups land on the
    /// same shard.
    pub fn coalesce(mut self, cfg: CoalesceConfig) -> Self {
        self.coalesce = Some(cfg);
        self
    }

    /// Adds a VM. Accepts a full [`EngineVm`] (multi-queue) or a legacy
    /// [`VmBinding`] (one queue group).
    pub fn vm(mut self, vm: impl Into<EngineVm>) -> Self {
        self.vms.push(vm.into());
        self
    }

    /// Builds the shards and partitions every queue group across them.
    pub fn build(self) -> Engine {
        let spec = EngineSpec {
            name: self.name,
            cost: self.cost,
            shards: self.shards,
            policy: self.policy,
            table_capacity: self.table_capacity,
            recovery: self.recovery,
            telemetry: self.telemetry,
            memo_capacity: self.memo_capacity,
            fleet: self.fleet,
            coalesce: self.coalesce,
        };
        Engine::assemble(spec, self.vms, 1)
    }
}

/// Everything needed to build the engine's shards again from scratch —
/// the builder's knobs, minus the (unclonable) VM bindings. A servicing
/// restore re-runs shard construction from this, possibly with a
/// different shard count.
#[derive(Clone)]
pub(crate) struct EngineSpec {
    name: String,
    cost: CostModel,
    shards: usize,
    pub(crate) policy: EnginePolicy,
    table_capacity: usize,
    recovery: Option<RecoveryConfig>,
    telemetry: Telemetry,
    memo_capacity: Option<usize>,
    fleet: Option<FleetConfig>,
    coalesce: Option<CoalesceConfig>,
}

/// Per-VM breaker state as seen from outside the shards.
#[derive(Clone, Copy, Debug)]
pub struct BreakerState {
    /// Shard the breaker lives on.
    pub shard: usize,
    /// Owning VM id.
    pub vm_id: u32,
    /// Whether the breaker is currently open (fast path denied).
    pub open: bool,
    /// Times the breaker has opened so far.
    pub opens: u64,
}

/// One tenant's fleet-scheduler state on one shard, as surfaced by
/// [`EngineStats`]: who is being limited, and why (tokens gone, deficit
/// spent, or a feedback throttle in force).
#[derive(Clone, Copy, Debug)]
pub struct TenantState {
    /// Shard the scheduler slot lives on.
    pub shard: usize,
    /// Scheduler view: tenant id, weight, deficit, tokens remaining,
    /// configured rate, throttle scale, and admission counters.
    pub view: TenantView,
}

/// Aggregated view over every shard: merged counters, per-shard
/// breakdowns, breaker states, per-tenant scheduler state, and table
/// high-water marks.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Field-wise sum of every shard's counters.
    pub total: RouterStats,
    /// Each shard's own counters, in shard order.
    pub per_shard: Vec<RouterStats>,
    /// Every (shard, VM) circuit breaker, in shard-then-slot order (empty
    /// when recovery is off).
    pub breakers: Vec<BreakerState>,
    /// Every (shard, tenant) fleet-scheduler slot, in shard-then-tenant
    /// order (empty when fleet mode is off).
    pub tenants: Vec<TenantState>,
    /// Highest routing-table occupancy any shard reached (across restores:
    /// includes the pre-snapshot peak carried by servicing).
    pub high_water: usize,
    /// Requests currently occupying routing-table slots across all shards
    /// (incl. quarantined tags), read in the same pass as the counters and
    /// breaker states.
    pub occupancy: usize,
    /// Each shard's poll-governor mode at snapshot time, in shard order
    /// ([`PollMode::Spin`] everywhere when the poll policy is `Spin`).
    pub poll_modes: Vec<PollMode>,
    /// Each shard's batch bound currently in force, in shard order (moves
    /// under [`BatchPolicy::Auto`], constant under `Fixed`).
    pub batch_sizes: Vec<usize>,
    /// Core each shard is pinned to by the placement policy, in shard
    /// order.
    pub shard_cores: Vec<usize>,
}

impl EngineStats {
    /// Whether any shard's breaker for `vm_id` is currently open.
    pub fn breaker_open(&self, vm_id: u32) -> bool {
        self.breakers.iter().any(|b| b.vm_id == vm_id && b.open)
    }

    /// Total breaker opens for `vm_id` across shards.
    pub fn breaker_opens(&self, vm_id: u32) -> u64 {
        self.breakers
            .iter()
            .filter(|b| b.vm_id == vm_id)
            .map(|b| b.opens)
            .sum()
    }

    /// Whether any shard's scheduler currently has `vm_id` throttled
    /// below full rate.
    pub fn tenant_throttled(&self, vm_id: u32) -> bool {
        self.tenants
            .iter()
            .any(|t| t.view.tenant == vm_id && t.view.throttle_permille < nvmetro_fleet::FULL_RATE)
    }

    /// Requests admitted for `vm_id` across all shards.
    pub fn tenant_admitted(&self, vm_id: u32) -> u64 {
        self.tenants
            .iter()
            .filter(|t| t.view.tenant == vm_id)
            .map(|t| t.view.admitted)
            .sum()
    }

    /// Renders the per-tenant scheduler table (one row per shard×tenant):
    /// weight, deficit, tokens, throttle, and admission counters — the
    /// snapshot view of who is being limited and why.
    pub fn tenant_table(&self) -> String {
        let mut out = String::from(
            "shard tenant weight deficit tokens throttle admitted throttled preempted\n",
        );
        for t in &self.tenants {
            let tokens = if t.view.tokens == u64::MAX {
                "-".to_string()
            } else {
                t.view.tokens.to_string()
            };
            out.push_str(&format!(
                "{:>5} {:>6} {:>6} {:>7} {:>6} {:>7}‰ {:>8} {:>9} {:>9}\n",
                t.shard,
                t.view.tenant,
                t.view.weight,
                t.view.deficit,
                tokens,
                t.view.throttle_permille,
                t.view.admitted,
                t.view.throttled,
                t.view.preempted,
            ));
        }
        out
    }
}

/// The sharded datapath: a pool of [`Router`] shards plus the record of
/// where every queue group landed, the spec to rebuild the shards from
/// (servicing), and the counters carried over from pre-restore epochs.
pub struct Engine {
    shards: Vec<Router>,
    /// Core each shard is pinned to, per the placement policy (identity
    /// order for [`PlacementPolicy::RoundRobin`](crate::policy::PlacementPolicy)).
    shard_cores: Vec<usize>,
    placements: Vec<Placement>,
    spec: EngineSpec,
    /// Global queue-group counter: hot attach continues the round-robin
    /// where the last bind left off instead of restarting at shard 0.
    next_group: usize,
    /// Engine generation (starts at 1; restore/reshard bump it).
    generation: u32,
    /// Lifetime counters accumulated by pre-restore epochs; `stats()`
    /// reports these plus what the current shards have seen.
    carried: RouterStats,
    /// Peak table occupancy across pre-restore epochs.
    carried_high_water: usize,
    /// Telemetry worker for engine-level servicing events (snapshots,
    /// restores, reshards, attach/detach).
    svc: TelemetryHandle,
}

/// The non-serializable remains of a snapshotted engine: the construction
/// spec plus the live queue endpoints, one [`VmBinding`] per queue group
/// in the snapshot's group order. Hand them to [`Engine::restore`] (or
/// [`Engine::restore_with_shards`]) together with the [`ServiceState`].
pub struct EngineParts {
    spec: EngineSpec,
    bindings: Vec<VmBinding>,
}

impl EngineParts {
    /// Queue groups held, in the snapshot's group order.
    pub fn group_count(&self) -> usize {
        self.bindings.len()
    }
}

impl Engine {
    /// Builds shards from `spec` and binds `vms` round-robin — the single
    /// construction path shared by [`RouterBuilder::build`] and the
    /// servicing restore.
    fn assemble(spec: EngineSpec, vms: Vec<EngineVm>, generation: u32) -> Engine {
        let shard_count = spec.shards;
        // Placement decides both where each shard runs (core pinning,
        // surfaced via `shard_cores`) and what it costs it to field device
        // completions from there (cross-NUMA penalty folded into the
        // shard's completion cost).
        let (shard_cores, penalties) = spec.policy.placement.place(shard_count);
        let shards: Vec<Router> = (0..shard_count)
            .map(|i| {
                // A single-shard engine keeps the bare name so CPU reports
                // and existing expectations (`cpu_of("router")`) line up.
                let name = if shard_count == 1 {
                    spec.name.clone()
                } else {
                    format!("{}.{}", spec.name, i)
                };
                let mut r = Router::new(
                    &name,
                    spec.cost.clone(),
                    spec.policy.workers,
                    spec.table_capacity,
                );
                r.configure_policy(&spec.policy, penalties[i]);
                // Named registration: the worker id stamped into this
                // shard's trace events maps back to the shard name in
                // snapshots and trace exports (one Chrome "process" per
                // shard).
                r.configure_telemetry(spec.telemetry.register_worker_named(&name));
                if let Some(cfg) = spec.recovery {
                    r.configure_recovery(cfg);
                }
                if let Some(cfg) = &spec.fleet {
                    r.configure_fleet(cfg);
                }
                if let Some(cfg) = spec.coalesce {
                    r.configure_coalesce(cfg);
                }
                r.set_generation(generation);
                r
            })
            .collect();
        let svc = spec.telemetry.register_worker_named("servicing");
        let mut engine = Engine {
            shards,
            shard_cores,
            placements: Vec::new(),
            spec,
            next_group: 0,
            generation,
            carried: RouterStats::default(),
            carried_high_water: 0,
            svc,
        };
        for vm in vms {
            engine.bind_engine_vm(vm);
        }
        engine
    }

    /// Binds every queue group of `vm`, continuing the engine's global
    /// round-robin. Returns how many groups were bound.
    fn bind_engine_vm(&mut self, vm: EngineVm) -> usize {
        let EngineVm {
            vm_id,
            mem,
            partition,
            queues,
        } = vm;
        let shard_count = self.shards.len();
        let mut bound = 0;
        for (queue_group, mut q) in queues.into_iter().enumerate() {
            let shard = self.next_group % shard_count;
            self.next_group += 1;
            if let Some(capacity) = self.spec.memo_capacity {
                if let Some(vm) = q.classifier.bpf_vm_mut() {
                    vm.set_memo_capacity(capacity);
                }
            }
            let slot = self.shards[shard].bind_vm(VmBinding {
                vm_id,
                mem: mem.clone(),
                partition,
                vsqs: q.vsqs,
                vcqs: q.vcqs,
                hsq: q.hsq,
                hcq: q.hcq,
                kernel: q.kernel,
                notify: q.notify,
                classifier: q.classifier,
            });
            self.placements.push(Placement {
                vm_id,
                queue_group,
                shard,
                slot,
            });
            bound += 1;
        }
        bound
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard.
    pub fn shard(&self, i: usize) -> &Router {
        &self.shards[i]
    }

    /// Mutable access to one shard (classifier map updates, ...).
    pub fn shard_mut(&mut self, i: usize) -> &mut Router {
        &mut self.shards[i]
    }

    /// Where every queue group landed, in bind order.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Aggregated counters, breaker states, occupancy, and high-water
    /// marks. Each shard contributes one [`ShardSnapshot`] taken in a
    /// single pass, so a shard's counters, its table marks, and its
    /// breaker states all describe the same instant — the old
    /// field-by-field reads could pair counters with breaker state from a
    /// different poll.
    ///
    /// [`ShardSnapshot`]: crate::router::ShardSnapshot
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats::default();
        stats.total.merge(&self.carried);
        stats.high_water = self.carried_high_water;
        for (i, shard) in self.shards.iter().enumerate() {
            let snap = shard.stats_snapshot();
            stats.total.merge(&snap.stats);
            stats.per_shard.push(snap.stats);
            stats.high_water = stats.high_water.max(snap.high_water);
            stats.occupancy += snap.in_flight;
            for (vm_id, open, opens) in snap.breakers {
                stats.breakers.push(BreakerState {
                    shard: i,
                    vm_id,
                    open,
                    opens,
                });
            }
            for view in snap.tenants {
                stats.tenants.push(TenantState { shard: i, view });
            }
            stats.poll_modes.push(snap.poll_mode);
            stats.batch_sizes.push(snap.batch);
        }
        stats.shard_cores = self.shard_cores.clone();
        stats
    }

    /// The datapath policy the engine was built with (survives servicing:
    /// a restored or resharded engine reports the snapshot's policy).
    pub fn policy(&self) -> &EnginePolicy {
        &self.spec.policy
    }

    /// Core each shard is pinned to, per the placement policy.
    pub fn shard_cores(&self) -> &[usize] {
        &self.shard_cores
    }

    /// Virtual-time deployment: hands every shard to the discrete-event
    /// executor. The executor owns them for the rest of the run.
    pub fn run_virtual(self, ex: &mut Executor) {
        for shard in self.shards {
            ex.add(Box::new(shard));
        }
    }

    /// Real-thread deployment: each shard gets its own OS thread. The
    /// returned [`Pool`] accepts companion actors (device, UIF runners)
    /// and stops the whole deployment as one unit.
    pub fn spawn_threads(self, time_scale: f64) -> Pool {
        let mut pool = Pool::new(time_scale);
        for shard in self.shards {
            pool.spawn(shard);
        }
        pool
    }

    /// Dissolves the engine into its shards (tests that drive a shard's
    /// poll loop by hand).
    pub fn into_shards(self) -> Vec<Router> {
        self.shards
    }

    // ------------------------------------------------------------------
    // Live servicing: quiesce / snapshot / restore, hot attach/detach,
    // online resharding.
    // ------------------------------------------------------------------

    /// Current engine generation (starts at 1; every restore or reshard
    /// bumps it — requests admitted under older generations can never be
    /// satisfied by their stale completions).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Closes every shard's admission gate: no new guest command is
    /// drained, while completions, recovery timers, and retries keep
    /// running so in-flight work converges. The quiesce protocol's first
    /// step; drive the rig until [`Engine::quiesced`] or a deadline, then
    /// [`Engine::snapshot`] — anything still in flight is quarantined and
    /// replayed by the restore.
    pub fn begin_quiesce(&mut self) {
        for s in &mut self.shards {
            s.set_admitting(false);
        }
    }

    /// Reopens admission on every shard (a quiesce that decided not to
    /// snapshot after all).
    pub fn resume_admission(&mut self) {
        for s in &mut self.shards {
            s.set_admitting(true);
        }
    }

    /// True once every shard has drained: all admitted requests have
    /// answered their guests and no internal work is queued. Quarantined
    /// zombie tags don't block this — they are serialized by the snapshot.
    pub fn quiesced(&self) -> bool {
        self.shards.iter().all(|s| s.is_drained())
    }

    /// Live (guest-answer-owing) requests across all shards.
    pub fn live_in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.live_in_flight()).sum()
    }

    /// Polls every shard once at `now`; true if any made progress
    /// (manual-drive harnesses: quiesce loops, servicing tests).
    pub fn poll_all(&mut self, now: Ns) -> bool {
        let mut any = false;
        for s in &mut self.shards {
            any |= matches!(s.poll(now), Progress::Busy);
        }
        any
    }

    /// Earliest future event any shard has scheduled, in one pass:
    /// station completions, recovery timers/retries, fleet scheduler
    /// rechecks, **and parked-shard wakeup deadlines** — a shard that the
    /// poll governor parked while guest work is visible on its doorbells
    /// reports `park_instant + wakeup_cost` from its own `next_event`, so
    /// a manual-drive loop sleeping until `next_event_all` can never sleep
    /// through a doorbell.
    pub fn next_event_all(&self) -> Option<Ns> {
        self.shards.iter().filter_map(|s| s.next_event()).min()
    }

    /// Consumes the (ideally quiesced) engine into a serializable
    /// [`ServiceState`] plus the non-serializable [`EngineParts`]. Station
    /// work still queued inside a shard is force-applied first, so every
    /// accepted command is either serialized as in-flight or as an
    /// undelivered CQE — nothing is lost. In-flight requests are
    /// serialized with their tags and dispatch masks; the restore pins
    /// quarantines at the old tags and replays the requests under a new
    /// generation, which is what makes a mid-flight snapshot safe.
    pub fn snapshot(self, _now: Ns) -> (ServiceState, EngineParts) {
        self.svc.count(Metric::SnapshotsTaken);
        // Group ordinal = index into `placements` (bind order). Map each
        // shard's VM slots back to ordinals; slots without a placement are
        // detached tombstones and contribute nothing.
        let mut slot_to_group: Vec<HashMap<usize, usize>> = vec![HashMap::new(); self.shards.len()];
        for (g, p) in self.placements.iter().enumerate() {
            slot_to_group[p.shard].insert(p.slot, g);
        }
        let groups: Vec<SavedGroup> = self
            .placements
            .iter()
            .map(|p| SavedGroup {
                vm_id: p.vm_id,
                queue_group: p.queue_group as u32,
            })
            .collect();
        let tenants: Vec<SavedTenant> = self
            .spec
            .fleet
            .as_ref()
            .map(|f| {
                f.governor
                    .snapshot()
                    .into_iter()
                    .map(|v| SavedTenant {
                        tenant: v.tenant,
                        throttle_permille: v.throttle_permille,
                        admitted: v.admitted,
                        throttled: v.throttled,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let recovery_on = self.spec.recovery.is_some();
        let mut carried = self.carried;
        let mut carried_high_water = self.carried_high_water;
        let mut next_seq = 0u64;
        let mut requests = Vec::new();
        let mut retries = Vec::new();
        let mut cqes = Vec::new();
        let mut breakers = Vec::new();
        let mut bindings: Vec<Option<VmBinding>> = Vec::new();
        bindings.resize_with(groups.len(), || None);
        for (shard_idx, shard) in self.shards.into_iter().enumerate() {
            let (export, vms) = shard.into_service();
            carried.merge(&export.stats);
            carried_high_water = carried_high_water.max(export.high_water);
            next_seq = next_seq.max(export.next_seq);
            // Tag → owning slot, for attributing retry entries to groups.
            let mut tag_slot: HashMap<u16, usize> = HashMap::new();
            for (slot, tag, state) in export.entries {
                let Some(&g) = slot_to_group[shard_idx].get(&slot) else {
                    continue; // lingering quarantine of a detached VM
                };
                tag_slot.insert(tag, slot);
                requests.push(SavedRequest {
                    group: g as u32,
                    tag,
                    state,
                });
            }
            for (tag, at) in export.retries {
                let Some(&g) = tag_slot
                    .get(&tag)
                    .and_then(|slot| slot_to_group[shard_idx].get(slot))
                else {
                    continue;
                };
                retries.push(SavedRetry {
                    group: g as u32,
                    tag,
                    at,
                });
            }
            for (slot, vsq, cqe) in export.cqes {
                let Some(&g) = slot_to_group[shard_idx].get(&slot) else {
                    continue;
                };
                cqes.push(SavedCqe {
                    group: g as u32,
                    vsq,
                    cid: cqe.cid,
                    status: cqe.status().0,
                });
            }
            if recovery_on {
                for (slot, snap) in export.breakers.into_iter().enumerate() {
                    let Some(&g) = slot_to_group[shard_idx].get(&slot) else {
                        continue;
                    };
                    breakers.push(SavedBreaker {
                        group: g as u32,
                        snap,
                    });
                }
            }
            for (slot, binding) in vms.into_iter().enumerate() {
                let (Some(binding), Some(&g)) = (binding, slot_to_group[shard_idx].get(&slot))
                else {
                    continue;
                };
                bindings[g] = Some(binding);
            }
        }
        let state = ServiceState {
            generation: self.generation,
            shards: self.spec.shards as u32,
            policy: self.spec.policy,
            next_seq,
            carried,
            carried_high_water: carried_high_water as u64,
            groups,
            requests,
            retries,
            cqes,
            breakers,
            tenants,
        };
        let parts = EngineParts {
            spec: self.spec,
            bindings: bindings
                .into_iter()
                .map(|b| b.expect("every placement has a live binding"))
                .collect(),
        };
        (state, parts)
    }

    /// Restores a fresh engine from a snapshot at the snapshot's shard
    /// count. See [`Engine::restore_with_shards`].
    pub fn restore(
        parts: EngineParts,
        state: &ServiceState,
        now: Ns,
    ) -> Result<Engine, ServiceError> {
        let shards = parts.spec.shards;
        Self::restore_with_shards(parts, state, shards, now)
    }

    /// Restores a fresh engine from a snapshot onto `shards` shards
    /// (online resharding when it differs from the snapshot's count).
    ///
    /// Queue groups are rebound round-robin in their saved order. The new
    /// engine runs at `state.generation + 1`; for every saved request
    /// with legs still in flight, the old tag is pinned as an
    /// old-generation quarantine on the group's **new** owner shard (that
    /// shard now polls the group's completion queues, so the stale legs
    /// arrive there), and every request whose guest was not yet answered
    /// is replayed as a fresh attempt. Exactly-once: the stale leg can
    /// only hit the quarantine (dropped as epoch-late), the guest's
    /// answer can only come from the replay.
    pub fn restore_with_shards(
        mut parts: EngineParts,
        state: &ServiceState,
        shards: usize,
        now: Ns,
    ) -> Result<Engine, ServiceError> {
        if parts.bindings.len() != state.groups.len() {
            return Err(ServiceError::Mismatch("queue-group count"));
        }
        for (b, g) in parts.bindings.iter().zip(&state.groups) {
            if b.vm_id != g.vm_id {
                return Err(ServiceError::Mismatch("queue-group vm identity"));
            }
        }
        parts.spec.shards = shards.max(1);
        // The snapshot's policy is authoritative: a restore on a different
        // host (or after a reshard) keeps the poll/batch/placement policy
        // the tenant was admitted under.
        parts.spec.policy = state.policy;
        let generation = state.generation.wrapping_add(1).max(1);
        let mut engine = Engine::assemble(parts.spec, Vec::new(), generation);
        // Rebind each group round-robin, preserving its saved identity.
        let shard_count = engine.shards.len();
        for (g, binding) in parts.bindings.into_iter().enumerate() {
            let shard = engine.next_group % shard_count;
            engine.next_group += 1;
            let vm_id = binding.vm_id;
            let slot = engine.shards[shard].bind_vm(binding);
            engine.placements.push(Placement {
                vm_id,
                queue_group: state.groups[g].queue_group as usize,
                shard,
                slot,
            });
        }
        engine.carried = state.carried;
        engine.carried_high_water = state.carried_high_water as usize;
        for s in &mut engine.shards {
            s.set_next_seq(state.next_seq);
        }
        // Per-tenant governor cells (throttle knob + admission counters)
        // carry over; a fresh governor instance starts where the old one
        // stopped, a shared instance sees idempotent writes.
        if let Some(f) = &engine.spec.fleet {
            for t in &state.tenants {
                f.governor
                    .restore_cell(t.tenant, t.throttle_permille, t.admitted, t.throttled);
            }
        }
        for b in &state.breakers {
            if let Some(p) = engine.placements.get(b.group as usize).copied() {
                engine.shards[p.shard].restore_breaker(p.slot, &b.snap);
            }
        }
        // Quarantines first: they pin exact tags, so they must win every
        // slot they need before replays allocate freely around them.
        for q in &state.requests {
            let p = engine.placements[q.group as usize];
            if q.state.pending | q.state.orphaned != 0 {
                engine.shards[p.shard].inject_quarantine(q.tag, &q.state, now);
            }
        }
        let retry_at: HashMap<(u32, u16), u64> = state
            .retries
            .iter()
            .map(|r| ((r.group, r.tag), r.at))
            .collect();
        for q in &state.requests {
            if q.state.zombie {
                continue; // guest was answered before the snapshot
            }
            let p = engine.placements[q.group as usize];
            let at = retry_at.get(&(q.group, q.tag)).copied();
            engine.shards[p.shard].inject_replay(p.slot, &q.state, q.tag, at, now);
        }
        for c in &state.cqes {
            let p = engine.placements[c.group as usize];
            engine.shards[p.shard].requeue_vcq(
                p.slot,
                c.vsq,
                CompletionEntry::new(c.cid, Status(c.status)),
            );
        }
        engine.svc.count(Metric::Restores);
        Ok(engine)
    }

    /// Online resharding: snapshot + restore onto `shards` shards in one
    /// step. Every queue group is rebound round-robin; every outstanding
    /// tag either completed on its old shard before the snapshot or is
    /// replayed on its new one — never both (the old tag is quarantined
    /// under the old generation).
    pub fn reshard(self, shards: usize, now: Ns) -> Result<Engine, ServiceError> {
        let (state, parts) = self.snapshot(now);
        let engine = Self::restore_with_shards(parts, &state, shards, now)?;
        engine.svc.count(Metric::Reshards);
        Ok(engine)
    }

    /// Hot-attaches a VM to the running engine: its queue groups continue
    /// the engine's global round-robin placement; no existing binding
    /// moves and no other tenant's queues are touched. Returns the new
    /// placements.
    pub fn attach_vm(&mut self, vm: impl Into<EngineVm>) -> Vec<Placement> {
        let start = self.placements.len();
        self.bind_engine_vm(vm.into());
        self.svc.count(Metric::VmAttaches);
        self.placements[start..].to_vec()
    }

    /// Closes admission for one VM's queue groups only (hot detach step
    /// 1); every other tenant keeps flowing. `Err` if the VM is unknown.
    pub fn pause_vm(&mut self, vm_id: u32) -> Result<(), ServiceError> {
        self.set_vm_admission(vm_id, false)
    }

    /// Reopens admission for one VM's queue groups.
    pub fn resume_vm(&mut self, vm_id: u32) -> Result<(), ServiceError> {
        self.set_vm_admission(vm_id, true)
    }

    fn set_vm_admission(&mut self, vm_id: u32, on: bool) -> Result<(), ServiceError> {
        let mut found = false;
        for p in &self.placements {
            if p.vm_id == vm_id {
                self.shards[p.shard].set_vm_admitting(p.slot, on);
                found = true;
            }
        }
        if found {
            Ok(())
        } else {
            Err(ServiceError::UnknownVm(vm_id))
        }
    }

    /// Whether every admitted request of `vm_id` has answered its guest
    /// and no work for it is queued inside any shard (detach safety).
    pub fn vm_quiesced(&self, vm_id: u32) -> bool {
        self.placements
            .iter()
            .filter(|p| p.vm_id == vm_id)
            .all(|p| self.shards[p.shard].vm_quiesced(p.slot))
    }

    /// Hot-detaches a quiesced VM, returning its queue groups (in
    /// queue-group order) for migration or teardown. The VM's slots stay
    /// behind as inert tombstones so no other binding's slot index moves;
    /// lingering zombie quarantines of the departed VM are reaped by
    /// their timers. Call [`Engine::pause_vm`] and drain first — a VM
    /// with work in flight is refused with [`ServiceError::VmBusy`].
    pub fn detach_vm(&mut self, vm_id: u32) -> Result<EngineVm, ServiceError> {
        let mut placs: Vec<Placement> = self
            .placements
            .iter()
            .copied()
            .filter(|p| p.vm_id == vm_id)
            .collect();
        if placs.is_empty() {
            return Err(ServiceError::UnknownVm(vm_id));
        }
        if !self.vm_quiesced(vm_id) {
            return Err(ServiceError::VmBusy(vm_id));
        }
        placs.sort_by_key(|p| p.queue_group);
        let mut queues = Vec::new();
        let mut identity: Option<(Arc<GuestMemory>, Partition)> = None;
        for p in &placs {
            let b = self.shards[p.shard].detach_slot(p.slot);
            identity.get_or_insert_with(|| (b.mem.clone(), b.partition));
            queues.push(QueueBinding {
                vsqs: b.vsqs,
                vcqs: b.vcqs,
                hsq: b.hsq,
                hcq: b.hcq,
                kernel: b.kernel,
                notify: b.notify,
                classifier: b.classifier,
            });
        }
        self.placements.retain(|p| p.vm_id != vm_id);
        self.svc.count(Metric::VmDetaches);
        let (mem, partition) = identity.expect("at least one placement");
        Ok(EngineVm {
            vm_id,
            mem,
            partition,
            queues,
        })
    }
}
