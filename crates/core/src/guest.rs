//! A minimal guest-side NVMe driver.
//!
//! NVMetro's compatibility claim is that "all VMs supporting NVMe work
//! with NVMetro by default without guest modifications" (§III-A). This
//! module is the guest half of that contract: the initialization sequence
//! a real NVMe driver performs against the virtual controller — identify
//! the controller, negotiate queue counts, read the namespace geometry,
//! create I/O queues — plus a simple synchronous I/O API on top.
//!
//! Examples and tests use it to prove a stock driver bring-up works
//! against [`VirtualController`](crate::controller::VirtualController)
//! end to end.

use crate::controller::VirtualController;
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{AdminOpcode, CqConsumer, SqProducer, Status, SubmissionEntry, LBA_SIZE};
use std::sync::Arc;

/// Controller/namespace facts learned during bring-up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuestInfo {
    /// Controller serial number (trimmed).
    pub serial: String,
    /// Namespace size in logical blocks.
    pub nsze: u64,
    /// Logical block size in bytes (from the LBA format descriptor).
    pub lba_size: usize,
    /// I/O queue pairs granted by Set Features.
    pub queue_pairs: usize,
}

/// Errors during bring-up or I/O.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuestError {
    /// An admin command failed with the given status.
    Admin(Status),
    /// An I/O command failed with the given status.
    Io(Status),
}

impl std::fmt::Display for GuestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for GuestError {}

/// The guest driver: performs bring-up, then offers synchronous
/// read/write/flush over one I/O queue pair.
pub struct GuestDriver {
    mem: Arc<GuestMemory>,
    info: GuestInfo,
    sq: SqProducer,
    cq: CqConsumer,
    next_cid: u16,
}

impl GuestDriver {
    /// Runs the standard initialization sequence against `vc` and takes
    /// ownership of I/O queue pair 0.
    pub fn initialize(vc: &mut VirtualController) -> Result<Self, GuestError> {
        let mem = vc.memory();
        let admin = |vc: &VirtualController, cmd: &SubmissionEntry| -> Result<u32, GuestError> {
            let cqe = vc.handle_admin(cmd);
            if cqe.status().is_error() {
                return Err(GuestError::Admin(cqe.status()));
            }
            Ok(cqe.result)
        };

        // 1. Identify Controller (CNS 1).
        let idbuf = mem.alloc(4096);
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::Identify as u8,
            cdw10: 1,
            prp1: idbuf,
            ..Default::default()
        };
        admin(vc, &cmd)?;
        let id = mem.read_vec(idbuf, 4096);
        let serial = String::from_utf8_lossy(&id[4..24])
            .trim_end_matches(['\0', ' '])
            .to_string();

        // 2. Set Features: number of queues (feature 0x07).
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::SetFeatures as u8,
            cdw10: 0x07,
            ..Default::default()
        };
        let granted = admin(vc, &cmd)?;
        let queue_pairs = ((granted & 0xFFFF) + 1) as usize;

        // 3. Identify Namespace (CNS 0).
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::Identify as u8,
            cdw10: 0,
            prp1: idbuf,
            nsid: 1,
            ..Default::default()
        };
        admin(vc, &cmd)?;
        let ns = mem.read_vec(idbuf, 4096);
        let nsze = u64::from_le_bytes(ns[0..8].try_into().unwrap());
        let lbads = ns[128 + 2];
        let lba_size = 1usize << lbads;

        // 4. Create CQ then SQ for queue pair 1 (qid 1).
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::CreateCq as u8,
            cdw10: 1,
            ..Default::default()
        };
        admin(vc, &cmd)?;
        let cmd = SubmissionEntry {
            opcode: AdminOpcode::CreateSq as u8,
            cdw10: 1,
            ..Default::default()
        };
        admin(vc, &cmd)?;

        // 5. Take the guest ends of the created pair.
        let (sq, cq) = vc.take_guest_queue(0);
        Ok(GuestDriver {
            mem,
            info: GuestInfo {
                serial,
                nsze,
                lba_size,
                queue_pairs,
            },
            sq,
            cq,
            next_cid: 0,
        })
    }

    /// Facts learned during bring-up.
    pub fn info(&self) -> &GuestInfo {
        &self.info
    }

    /// The VM memory (to share with the serving stack).
    pub fn memory(&self) -> Arc<GuestMemory> {
        self.mem.clone()
    }

    fn submit(&mut self, mut cmd: SubmissionEntry) -> u16 {
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        cmd.cid = cid;
        self.sq.push(cmd).expect("guest SQ full");
        cid
    }

    /// Polls for one completion, calling `advance` between polls to drive
    /// whatever executes the stack (virtual-time executor step or a
    /// yield in real-thread mode).
    pub fn wait(&mut self, cid: u16, mut advance: impl FnMut()) -> Result<(), GuestError> {
        for _ in 0..10_000_000u64 {
            if let Some(cqe) = self.cq.pop() {
                assert_eq!(cqe.cid, cid, "out-of-order completion at QD1");
                if cqe.status().is_error() {
                    return Err(GuestError::Io(cqe.status()));
                }
                return Ok(());
            }
            advance();
        }
        panic!("I/O never completed");
    }

    /// Synchronous write of whole blocks at `slba`.
    pub fn write(
        &mut self,
        slba: u64,
        data: &[u8],
        advance: impl FnMut(),
    ) -> Result<(), GuestError> {
        assert_eq!(data.len() % LBA_SIZE, 0);
        let gpa = self.mem.alloc(data.len());
        self.mem.write(gpa, data);
        let (p1, p2) = nvmetro_mem::build_prps(&self.mem, gpa, data.len());
        let cmd = SubmissionEntry::write(1, slba, (data.len() / LBA_SIZE) as u32, p1, p2);
        let cid = self.submit(cmd);
        self.wait(cid, advance)
    }

    /// Synchronous read of `nlb` blocks at `slba`.
    pub fn read(
        &mut self,
        slba: u64,
        nlb: u32,
        advance: impl FnMut(),
    ) -> Result<Vec<u8>, GuestError> {
        let len = nlb as usize * LBA_SIZE;
        let gpa = self.mem.alloc(len);
        let (p1, p2) = nvmetro_mem::build_prps(&self.mem, gpa, len);
        let cmd = SubmissionEntry::read(1, slba, nlb, p1, p2);
        let cid = self.submit(cmd);
        self.wait(cid, advance)?;
        Ok(self.mem.read_vec(gpa, len))
    }

    /// Synchronous flush.
    pub fn flush(&mut self, advance: impl FnMut()) -> Result<(), GuestError> {
        let cid = self.submit(SubmissionEntry::flush(1));
        self.wait(cid, advance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::controller::{Partition, VmConfig};
    use crate::passthrough_program;
    use crate::router::{Router, VmBinding};
    use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
    use nvmetro_nvme::{CqPair, SqPair};
    use nvmetro_sim::cost::CostModel;
    use nvmetro_sim::{Actor, Ns};

    #[test]
    fn stock_bring_up_sequence_succeeds() {
        let mut vc = VirtualController::new(VmConfig {
            mem_bytes: 1 << 24,
            queue_pairs: 2,
            partition: Partition {
                lba_offset: 0,
                lba_count: 12_345,
            },
            ..Default::default()
        });
        let driver = GuestDriver::initialize(&mut vc).expect("bring-up");
        let info = driver.info();
        assert_eq!(info.serial, "NVMETRO0");
        assert_eq!(info.nsze, 12_345, "geometry reflects the partition");
        assert_eq!(info.lba_size, 512);
        assert_eq!(info.queue_pairs, 2);
    }

    #[test]
    fn driver_io_through_the_full_stack() {
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 1 << 16,
                ..Default::default()
            },
        );
        let mut vc = VirtualController::new(VmConfig {
            mem_bytes: 1 << 24,
            ..Default::default()
        });
        let mut driver = GuestDriver::initialize(&mut vc).expect("bring-up");
        let mem = driver.memory();
        let (vsqs, vcqs) = vc.take_router_queues();
        let (hsq_p, hsq_c) = SqPair::new(64);
        let (hcq_p, hcq_c) = CqPair::new(64);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        let mut router = Router::new("router", CostModel::default(), 1, 64);
        router.bind_vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 16),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        });
        // Step the stack manually as the driver's `advance` closure.
        let mut clock: Ns = 0;
        let mut actors: Vec<Box<dyn Actor>> = vec![Box::new(router), Box::new(ssd)];
        let mut advance = move || {
            for a in actors.iter_mut() {
                a.poll(clock);
            }
            let next = actors.iter().filter_map(|a| a.next_event()).min();
            if let Some(t) = next {
                if t > clock {
                    clock = t;
                }
            } else {
                clock += 1_000;
            }
        };
        let payload = vec![0xC3u8; 1024];
        driver.write(40, &payload, &mut advance).expect("write");
        let got = driver.read(40, 2, &mut advance).expect("read");
        assert_eq!(got, payload);
        driver.flush(&mut advance).expect("flush");
    }

    #[test]
    fn io_errors_surface_as_guest_errors() {
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 100,
                ..Default::default()
            },
        );
        let mut vc = VirtualController::new(VmConfig {
            mem_bytes: 1 << 24,
            ..Default::default()
        });
        let mut driver = GuestDriver::initialize(&mut vc).unwrap();
        let mem = driver.memory();
        let (vsqs, vcqs) = vc.take_router_queues();
        let (hsq_p, hsq_c) = SqPair::new(64);
        let (hcq_p, hcq_c) = CqPair::new(64);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        let mut router = Router::new("router", CostModel::default(), 1, 64);
        router.bind_vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 30),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        });
        let mut clock: Ns = 0;
        let mut actors: Vec<Box<dyn Actor>> = vec![Box::new(router), Box::new(ssd)];
        let mut advance = move || {
            for a in actors.iter_mut() {
                a.poll(clock);
            }
            if let Some(t) = actors.iter().filter_map(|a| a.next_event()).min() {
                clock = clock.max(t);
            } else {
                clock += 1_000;
            }
        };
        // Read far beyond the 100-LBA device.
        let err = driver.read(1 << 20, 1, &mut advance).unwrap_err();
        assert_eq!(err, GuestError::Io(Status::LBA_OUT_OF_RANGE));
    }
}
