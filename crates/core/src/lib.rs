//! NVMetro core — the paper's primary contribution.
//!
//! NVMetro presents itself to each VM as a virtual NVMe controller and
//! routes every guest I/O request over one of three paths (§III):
//!
//! * the **fast path** straight to the physical device's host queues
//!   (HSQ/HCQ),
//! * the **kernel path** through the host's block/device-mapper stack, and
//! * the **notify path** to a userspace I/O function (UIF) over notify
//!   queues (NSQ/NCQ).
//!
//! Path selection is made per request — possibly several times during the
//! request's lifetime — by a sandboxed [classifier](classify) (eBPF in the
//! paper, [`nvmetro-vbpf`](nvmetro_vbpf) here) invoked by the
//! [I/O router](router) at hook points. The router tracks each in-flight
//! request in a [routing table](routing), supports multicast to several
//! targets, and performs direct mediation (classifier-driven command
//! rewriting such as LBA translation) with partition bounds enforced by the
//! router itself.
//!
//! The [`uif`] module is the userspace-I/O-function framework of §III-D:
//! notify-queue polling with adaptive backoff, NVMe command parsing, guest
//! data-page access, and an io_uring-style asynchronous backend for UIFs
//! that issue their own disk I/O.
//!
//! Components are poll-driven [`nvmetro_sim::Actor`]s: the same router and
//! UIF run under the virtual-time executor (benchmarks) and on real OS
//! threads ([`threading`], used by the examples).

pub mod adaptive;
pub mod classify;
pub mod controller;
pub mod engine;
pub mod guest;
pub mod policy;
pub mod recovery;
pub mod router;
pub mod routing;
pub mod servicing;
pub mod threading;
pub mod uif;

pub use adaptive::{BatchTuner, GovernorCounters, PollGovernor, PollMode};
pub use classify::{
    offset_program, partition_offset_program, passthrough_program, Classifier, ClassifyOutcome,
    MediatedFields, NativeClassifier, RequestCtx, Verdict, CTX_SIZE, HOOK_HCQ, HOOK_KCQ, HOOK_NCQ,
    HOOK_VSQ,
};
pub use controller::{Partition, VirtualController, VmConfig};
pub use engine::{
    BreakerState, Engine, EngineParts, EngineStats, EngineVm, Placement, QueueBinding,
    RouterBuilder, TenantState,
};
pub use guest::{GuestDriver, GuestError, GuestInfo};
pub use policy::{BatchPolicy, EnginePolicy, PlacementPolicy, PollPolicy};
pub use recovery::{BreakerSnap, CircuitBreaker, Gate, RecoveryConfig};
pub use router::{KernelPath, Router, RouterStats, ShardSnapshot, VmBinding};
pub use routing::RoutingTable;
pub use servicing::{
    SavedBreaker, SavedCqe, SavedGroup, SavedRequest, SavedRetry, SavedTenant, ServiceError,
    ServiceState, SERVICE_MAGIC, SERVICE_VERSION,
};
pub use uif::{Uif, UifDisposition, UifIoHandle, UifRequest, UifRunner};
