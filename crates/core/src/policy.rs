//! The typed datapath policy surface.
//!
//! `RouterBuilder` grew one scalar knob per PR (`shards`, `workers`,
//! `batch`, ...) and the flat integers can't express the adaptive
//! behaviours the paper's UIF framework actually ships: busy-poll ⇄ park
//! hybrids, self-tuned batching, placement-aware shards. [`EnginePolicy`]
//! replaces the scalars with three typed axes:
//!
//! * [`PollPolicy`] — how a shard spends idle cycles. `Spin` is the
//!   legacy unconditional busy-poll; `Adaptive` runs the poll governor
//!   (Spin → Yield → Parked as the shard goes idle, doorbell-kicked back).
//! * [`BatchPolicy`] — the per-SQ-visit drain bound and CQ-coalescing
//!   unit. `Fixed(n)` is the old `batch(n)` knob; `Auto` hill-climbs the
//!   size per shard from observed SQ burst/occupancy signals.
//! * [`PlacementPolicy`] — where shards run. `RoundRobin` numbers cores
//!   1:1 with shards (no NUMA model); `Affine` consults a
//!   [`Topology`] so off-node shards pay a cross-node completion penalty
//!   and `reshard()` re-places.
//!
//! Policies are plain `Copy` data: they travel through `EngineSpec` into
//! every shard, survive `ServiceState` snapshot/restore/reshard, and the
//! old `RouterBuilder::{batch, workers}` knobs remain one release as
//! `#[deprecated]` shims mapping onto these types.

use crate::router::DEFAULT_BATCH;
use nvmetro_sim::{Ns, Topology, US};

/// How a shard spends cycles when its queues go quiet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PollPolicy {
    /// Unconditional busy-poll (the pre-policy behaviour, and the
    /// default): lowest latency, idle shards keep burning their core.
    #[default]
    Spin,
    /// The poll governor: spin for `idle_spin` after the last arrival,
    /// then duty-cycle (yield) until `park_after`, then park — an
    /// event-driven sleep that costs ~0 CPU and is ended by the next
    /// doorbell/notify kick (modelled as a wakeup deadline in
    /// `next_event`). Per-queue arrival EWMAs pull the park point earlier
    /// when the observed rate says the queue has truly gone idle.
    Adaptive {
        /// Full-rate spin window after the last observed work.
        idle_spin: Ns,
        /// Upper bound on time-to-park after the last observed work.
        park_after: Ns,
    },
}

impl PollPolicy {
    /// The adaptive preset: spin 8 µs, park by 64 µs.
    pub fn adaptive() -> Self {
        PollPolicy::Adaptive {
            idle_spin: 8 * US,
            park_after: 64 * US,
        }
    }
}

/// Entries drained per SQ visit / CQEs coalesced per doorbell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchPolicy {
    /// A hand-tuned constant (the old `batch(n)` knob).
    Fixed(usize),
    /// Per-shard hill-climb between `min` and `max`, driven by the same
    /// SQ-burst/table-occupancy signals the telemetry histograms record:
    /// grow while visits keep hitting the cap, shrink when the batch is
    /// padded air, two agreeing observation windows before any move.
    Auto {
        /// Smallest batch the tuner may select (≥ 1).
        min: usize,
        /// Largest batch the tuner may select.
        max: usize,
    },
}

impl BatchPolicy {
    /// The auto preset: walk between 4 and 256.
    pub fn auto() -> Self {
        BatchPolicy::Auto { min: 4, max: 256 }
    }

    /// The batch size a fresh shard starts at.
    pub(crate) fn initial(&self) -> usize {
        match *self {
            BatchPolicy::Fixed(n) => n.max(1),
            BatchPolicy::Auto { min, max } => min.clamp(1, max.max(1)),
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::Fixed(DEFAULT_BATCH)
    }
}

/// Shard → core pinning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Shard *i* runs on core *i* — the flat pre-NUMA model, no
    /// completion penalties anywhere.
    #[default]
    RoundRobin,
    /// Place shards onto the topology's cores (heaviest-first, device
    /// node preferred); shards landing off the device node pay the
    /// topology's cross-node completion penalty per reaped device CQE.
    Affine(Topology),
}

impl PlacementPolicy {
    /// Computes the core per shard and that core's per-completion
    /// penalty, in shard order.
    pub fn place(&self, shards: usize) -> (Vec<usize>, Vec<Ns>) {
        match self {
            PlacementPolicy::RoundRobin => ((0..shards).collect(), vec![0; shards]),
            PlacementPolicy::Affine(t) => {
                let cores = t.place(&vec![1u64; shards]);
                let penalties = cores.iter().map(|&c| t.completion_penalty(c)).collect();
                (cores, penalties)
            }
        }
    }
}

/// The engine's complete datapath policy: one value, threaded through
/// `RouterBuilder::policy`, `EngineSpec`, and `ServiceState`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnginePolicy {
    /// Idle-cycle behaviour per shard.
    pub poll: PollPolicy,
    /// SQ drain / CQ coalescing bound per shard.
    pub batch: BatchPolicy,
    /// Shard → core pinning.
    pub placement: PlacementPolicy,
    /// Worker threads modelled inside each shard's station (the paper's
    /// scalability evaluation uses one).
    pub workers: usize,
}

impl Default for EnginePolicy {
    fn default() -> Self {
        EnginePolicy {
            poll: PollPolicy::default(),
            batch: BatchPolicy::default(),
            placement: PlacementPolicy::default(),
            workers: 1,
        }
    }
}

impl EnginePolicy {
    /// The defaults: spin, fixed [`DEFAULT_BATCH`], round-robin cores,
    /// one worker — bit-for-bit the pre-policy engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fully adaptive preset: governor polling, auto batch, affine
    /// placement on the default topology.
    pub fn adaptive() -> Self {
        EnginePolicy {
            poll: PollPolicy::adaptive(),
            batch: BatchPolicy::auto(),
            placement: PlacementPolicy::Affine(Topology::default()),
            workers: 1,
        }
    }

    /// Sets the poll policy.
    pub fn poll(mut self, poll: PollPolicy) -> Self {
        self.poll = poll;
        self
    }

    /// Sets the batch policy.
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the modelled worker count per shard (≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_legacy_knobs() {
        let p = EnginePolicy::default();
        assert_eq!(p.poll, PollPolicy::Spin);
        assert_eq!(p.batch.initial(), DEFAULT_BATCH);
        assert_eq!(p.workers, 1);
        let (cores, penalties) = p.placement.place(3);
        assert_eq!(cores, vec![0, 1, 2]);
        assert!(penalties.iter().all(|&p| p == 0));
    }

    #[test]
    fn affine_placement_charges_remote_shards() {
        let topo = Topology {
            nodes: 2,
            cores_per_node: 2,
            device_node: 0,
            cross_penalty: 500,
        };
        let (cores, penalties) = PlacementPolicy::Affine(topo).place(4);
        assert_eq!(cores.len(), 4);
        // Two shards fit on the device node, two pay the penalty.
        assert_eq!(penalties.iter().filter(|&&p| p == 0).count(), 2);
        assert_eq!(penalties.iter().filter(|&&p| p == 500).count(), 2);
    }

    #[test]
    fn auto_batch_starts_at_min() {
        assert_eq!(BatchPolicy::auto().initial(), 4);
        assert_eq!(BatchPolicy::Fixed(0).initial(), 1);
    }
}
