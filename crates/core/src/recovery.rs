//! Router-side recovery policy: command deadlines, bounded retry with
//! exponential backoff, and a per-VM circuit breaker for the fast path.
//!
//! The recovery engine is opt-in (`RouterBuilder::recovery`); without it the
//! router behaves exactly as before — faults surface to the guest verbatim
//! and a lost completion wedges its tag. With it, every dispatched command
//! carries a deadline; on expiry the router aborts the attempt NVMe-style
//! (the guest sees `ABORTED` only after retries are exhausted), retryable
//! statuses are re-dispatched with exponential backoff (the DNR bit always
//! wins), and consecutive fast-path faults trip a breaker that fails new
//! fast-path sends over to the kernel path until a half-open probe
//! succeeds.

use nvmetro_sim::{Ns, MS, US};

/// Tunables for the router's recovery engine. Constructing one and handing
/// it to `RouterBuilder::recovery` turns recovery on.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// Per-dispatch deadline; a command whose paths have not all reported
    /// by then is aborted. 0 disables deadlines (retry/breaker still run).
    pub cmd_timeout: Ns,
    /// Maximum re-dispatches per request before the fault surfaces.
    pub max_retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Ns,
    /// Backoff ceiling.
    pub backoff_max: Ns,
    /// Consecutive fast-path faults that trip the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-open probing.
    pub breaker_cooldown: Ns,
    /// How long an aborted request's tag is quarantined waiting for late
    /// completions before the slot is reclaimed.
    pub zombie_linger: Ns,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            cmd_timeout: 10 * MS,
            max_retries: 3,
            backoff_base: 50 * US,
            backoff_max: 2 * MS,
            breaker_threshold: 4,
            breaker_cooldown: 20 * MS,
            zombie_linger: 50 * MS,
        }
    }
}

impl RecoveryConfig {
    /// Backoff before retry number `attempt` (1-based): base doubled per
    /// attempt, clamped to the ceiling.
    pub fn backoff(&self, attempt: u32) -> Ns {
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1 << shift)
            .min(self.backoff_max)
    }
}

/// What the breaker says about a fast-path send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Breaker closed: send normally.
    Pass,
    /// Half-open: this one command probes the path.
    Probe,
    /// Open (or a probe is already in flight): fail over.
    Deny,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: Ns },
    HalfOpen { probing: bool },
}

/// Per-VM fast-path circuit breaker: Closed → (N consecutive faults) →
/// Open → (cooldown) → HalfOpen → one probe → Closed on success, Open
/// again on failure.
#[derive(Clone, Copy, Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Ns,
    consecutive_failures: u32,
    state: BreakerState,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given trip threshold and open cooldown.
    pub fn new(threshold: u32, cooldown: Ns) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opens: 0,
        }
    }

    /// Consults the breaker for one fast-path send at time `now`.
    pub fn gate(&mut self, now: Ns) -> Gate {
        match self.state {
            BreakerState::Closed => Gate::Pass,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen { probing: true };
                Gate::Probe
            }
            BreakerState::Open { .. } => Gate::Deny,
            BreakerState::HalfOpen { probing: false } => {
                self.state = BreakerState::HalfOpen { probing: true };
                Gate::Probe
            }
            BreakerState::HalfOpen { probing: true } => Gate::Deny,
        }
    }

    /// A fast-path command completed cleanly: reset to Closed.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// A fast-path command faulted (error status or deadline abort).
    pub fn on_failure(&mut self, now: Ns) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen { .. } => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                until: now + self.cooldown,
            };
            self.opens += 1;
        }
    }

    /// Whether the breaker is currently diverting traffic.
    pub fn is_open(&self) -> bool {
        !matches!(self.state, BreakerState::Closed)
    }

    /// Times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Serializable view of the breaker's full state (live servicing).
    pub fn save(&self) -> BreakerSnap {
        let (state, until) = match self.state {
            BreakerState::Closed => (BreakerSnap::CLOSED, 0),
            BreakerState::Open { until } => (BreakerSnap::OPEN, until),
            // An in-flight probe does not survive a snapshot (its command
            // is quarantined and replayed like any other leg), so a
            // restored half-open breaker is always ready to probe again.
            BreakerState::HalfOpen { .. } => (BreakerSnap::HALF_OPEN, 0),
        };
        BreakerSnap {
            state,
            until,
            consecutive_failures: self.consecutive_failures,
            opens: self.opens,
        }
    }

    /// Rebuilds a breaker from a [`BreakerSnap`] taken by [`save`].
    ///
    /// [`save`]: CircuitBreaker::save
    pub fn restore(&mut self, snap: &BreakerSnap) {
        self.consecutive_failures = snap.consecutive_failures;
        self.opens = snap.opens;
        self.state = match snap.state {
            BreakerSnap::OPEN => BreakerState::Open { until: snap.until },
            BreakerSnap::HALF_OPEN => BreakerState::HalfOpen { probing: false },
            _ => BreakerState::Closed,
        };
    }
}

/// Wire-friendly breaker state: the private state machine flattened to a
/// tag byte plus the open deadline. Produced by [`CircuitBreaker::save`],
/// consumed by [`CircuitBreaker::restore`] on the restored engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakerSnap {
    /// State tag: one of [`BreakerSnap::CLOSED`] / [`BreakerSnap::OPEN`] /
    /// [`BreakerSnap::HALF_OPEN`].
    pub state: u8,
    /// Absolute end of the cooldown when `state == OPEN` (0 otherwise).
    pub until: Ns,
    /// Consecutive fast-path failures observed so far.
    pub consecutive_failures: u32,
    /// Times the breaker has tripped open.
    pub opens: u64,
}

impl BreakerSnap {
    /// Closed: fast path flows normally.
    pub const CLOSED: u8 = 0;
    /// Open: fast path denied until `until`.
    pub const OPEN: u8 = 1;
    /// Half-open: the next send probes the path.
    pub const HALF_OPEN: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_clamps() {
        let cfg = RecoveryConfig {
            backoff_base: 100,
            backoff_max: 450,
            ..Default::default()
        };
        assert_eq!(cfg.backoff(1), 100);
        assert_eq!(cfg.backoff(2), 200);
        assert_eq!(cfg.backoff(3), 400);
        assert_eq!(cfg.backoff(4), 450, "must clamp to the ceiling");
        assert_eq!(cfg.backoff(60), 450, "huge attempts must not overflow");
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 1000);
        assert_eq!(b.gate(0), Gate::Pass);
        b.on_failure(0);
        b.on_failure(1);
        assert_eq!(b.gate(2), Gate::Pass, "under threshold stays closed");
        b.on_failure(2);
        assert!(b.is_open());
        assert_eq!(b.gate(3), Gate::Deny);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(3, 1000);
        b.on_failure(0);
        b.on_failure(1);
        b.on_success();
        b.on_failure(2);
        b.on_failure(3);
        assert_eq!(b.gate(4), Gate::Pass, "streak must reset on success");
    }

    #[test]
    fn half_open_probes_once_then_closes_on_success() {
        let mut b = CircuitBreaker::new(1, 1000);
        b.on_failure(0);
        assert_eq!(b.gate(500), Gate::Deny, "still cooling down");
        assert_eq!(b.gate(1000), Gate::Probe, "cooldown over: one probe");
        assert_eq!(b.gate(1001), Gate::Deny, "only one probe in flight");
        b.on_success();
        assert_eq!(b.gate(1002), Gate::Pass);
        assert!(!b.is_open());
    }

    #[test]
    fn breaker_save_restore_round_trips_every_state() {
        // Open mid-cooldown: the restored breaker must still deny, then
        // probe once the saved deadline passes.
        let mut b = CircuitBreaker::new(2, 1000);
        b.on_failure(0);
        b.on_failure(10);
        assert!(b.is_open());
        let snap = b.save();
        let mut r = CircuitBreaker::new(2, 1000);
        r.restore(&snap);
        assert!(r.is_open());
        assert_eq!(r.opens(), 1);
        assert_eq!(r.gate(500), Gate::Deny, "cooldown must survive restore");
        assert_eq!(r.gate(1010), Gate::Probe);

        // Half-open with a probe in flight: the probe is lost to the
        // snapshot, so the restored breaker re-probes.
        let snap = b.save(); // b's gate was never consulted: still Open
        let mut hb = CircuitBreaker::new(2, 1000);
        hb.on_failure(0);
        hb.on_failure(1);
        assert_eq!(hb.gate(5000), Gate::Probe, "enter half-open");
        let hsnap = hb.save();
        let mut hr = CircuitBreaker::new(2, 1000);
        hr.restore(&hsnap);
        assert_eq!(hr.gate(5001), Gate::Probe, "restored half-open re-probes");

        // Closed round-trips to closed.
        let mut c = CircuitBreaker::new(2, 1000);
        c.on_failure(0);
        c.on_success();
        let csnap = c.save();
        let mut cr = CircuitBreaker::new(2, 1000);
        cr.restore(&csnap);
        assert!(!cr.is_open());
        assert_eq!(cr.gate(0), Gate::Pass);
        assert_eq!(
            csnap.consecutive_failures, 0,
            "success resets the streak before the save"
        );
        let _ = snap;
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let mut b = CircuitBreaker::new(1, 1000);
        b.on_failure(0);
        assert_eq!(b.gate(1000), Gate::Probe);
        b.on_failure(1100);
        assert_eq!(b.gate(1500), Gate::Deny, "reopened after failed probe");
        assert_eq!(b.gate(2100), Gate::Probe, "new cooldown elapsed");
        assert_eq!(b.opens(), 2);
    }
}
