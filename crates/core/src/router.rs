//! The NVMetro I/O router.
//!
//! The router shadows each VM's virtual queues (VSQ/VCQ), invokes the VM's
//! classifier at every decision point, and forwards commands over the fast
//! path (device HSQ/HCQ), the kernel path, or the notify path (UIF
//! NSQ/NCQ). It implements the paper's §III-C mechanics:
//!
//! * **iterative routing** — hooks re-invoke the classifier when a chosen
//!   path completes, forming a per-request state machine;
//! * **multicast** — a verdict may name several paths; the request then
//!   completes only when all of them have finished (used by mirroring);
//! * **direct mediation** — classifier writes to the context's writable
//!   window are copied back into the forwarded command (LBA translation);
//! * **isolation** — the router re-checks the VM's partition bounds on
//!   every fast-path send, whatever the classifier did;
//! * **shared worker** — one router serves many VMs round-robin and tracks
//!   per-VM activity (its CPU mode is adaptive polling).
//!
//! Only the 64-byte command block moves between queues; data pages stay in
//! guest memory.

use crate::adaptive::{BatchTuner, GovernorCounters, PollGovernor, PollMode};
use crate::classify::{
    path_bits, verdict_bits, Classifier, MediatedFields, NativeClassifier, RequestCtx, Verdict,
    HOOK_HCQ, HOOK_KCQ, HOOK_NCQ, HOOK_VSQ,
};
use crate::controller::Partition;
use crate::policy::{BatchPolicy, EnginePolicy, PollPolicy};
use crate::recovery::{BreakerSnap, CircuitBreaker, Gate, RecoveryConfig};
use crate::routing::{RequestState, RoutingTable};
use nvmetro_fleet::{
    Admit, CoalesceConfig, CoalesceStats, CoalesceWindow, FleetConfig, Join, TenantScheduler,
    TenantView,
};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{
    CompletionEntry, CqConsumer, CqPair, CqProducer, SqConsumer, SqPair, SqProducer, Status,
    SubmissionEntry,
};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, Station, MS, US};
use nvmetro_telemetry::{Depth, Metric, PathKind, Route, Segment, Stage, TelemetryHandle, Tier};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The kernel path a VM's requests may be routed through (implemented by
/// `nvmetro-kernel` as a block-layer + device-mapper stack).
pub trait KernelPath: Send {
    /// Submits a translated request tagged `tag` at virtual time `now`.
    fn submit(&mut self, tag: u16, cmd: SubmissionEntry, now: Ns);
    /// Drains finished requests into `out` as `(tag, status)` pairs.
    fn poll(&mut self, now: Ns, out: &mut Vec<(u16, Status)>);
    /// Earliest future completion, if any work is in flight.
    fn next_event(&self) -> Option<Ns>;
    /// Host CPU consumed by this path so far.
    fn charged(&self) -> Ns;
}

/// The notify path's router-side queue ends.
pub struct NotifyBinding {
    /// Notify submission queue toward the UIF.
    pub nsq: SqProducer,
    /// Notify completion queue back from the UIF.
    pub ncq: CqConsumer,
}

/// Everything the router needs to serve one VM.
pub struct VmBinding {
    /// VM identifier (classifier context field).
    pub vm_id: u32,
    /// The VM's guest memory (not touched by the router itself; recorded
    /// for diagnostics and symmetry with real IOMMU bindings).
    pub mem: Arc<GuestMemory>,
    /// Partition bounds enforced on every fast-path send.
    pub partition: Partition,
    /// Router-side ends of the VM's virtual queues.
    pub vsqs: Vec<SqConsumer>,
    /// Router-side ends of the VM's virtual completion queues.
    pub vcqs: Vec<CqProducer>,
    /// Fast path: producer end of this VM's host submission queue.
    pub hsq: SqProducer,
    /// Fast path: consumer end of this VM's host completion queue.
    pub hcq: CqConsumer,
    /// Optional kernel path.
    pub kernel: Option<Box<dyn KernelPath>>,
    /// Optional notify path (UIF).
    pub notify: Option<NotifyBinding>,
    /// The VM's installed I/O classifier.
    pub classifier: Classifier,
}

/// Router counters exposed for tests and reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    /// Commands accepted from VSQs.
    pub accepted: u64,
    /// Classifier invocations (all hooks).
    pub classifier_runs: u64,
    /// Commands forwarded to the fast path.
    pub sent_hq: u64,
    /// Commands forwarded to the kernel path.
    pub sent_kq: u64,
    /// Commands forwarded to the notify path.
    pub sent_nq: u64,
    /// Requests sent to more than one target at once.
    pub multicasts: u64,
    /// Completions delivered to VCQs.
    pub completed: u64,
    /// Requests finished with an error status.
    pub errors: u64,
    /// Completions that no longer matched a tracked request.
    pub spurious: u64,
    /// Re-dispatches after a retryable failure (recovery engine).
    pub retries: u64,
    /// Deadline-expired attempts aborted NVMe-style.
    pub aborts: u64,
    /// Fast-path sends the circuit breaker diverted to the kernel path.
    pub failovers: u64,
    /// Completions dropped from the bounded VCQ retry buffer.
    pub vcq_retry_drops: u64,
    /// Completions that arrived after their attempt was aborted.
    pub late_completions: u64,
    /// Guest doorbell notifies issued for coalesced VCQ flushes: one per
    /// (vm, vsq) group per flush, however many CQEs the flush carried.
    pub cq_notifies: u64,
    /// Coalesced VCQ flushes (at most one per poll).
    pub cq_batches: u64,
    /// Cross-VM duplicate reads parked as coalescing followers instead of
    /// being dispatched (fleet coalescing window).
    pub coalesced_reads: u64,
    /// Follower completions fanned out from coalescing leaders' terminal
    /// completions.
    pub coalesce_fanout: u64,
    /// Admissions denied by a tenant's token bucket (fleet scheduler).
    pub sched_throttled: u64,
    /// Tenant drain visits cut short by DRR deficit exhaustion (fleet
    /// scheduler).
    pub sched_preemptions: u64,
    /// Requests re-admitted by a servicing restore/reshard and dispatched
    /// as a fresh attempt (new tag, new generation).
    pub replayed: u64,
    /// Completions dropped because their slot carried an older engine
    /// generation than the router's — pre-snapshot legs answering a
    /// post-restore engine (never delivered to the guest).
    pub epoch_late_drops: u64,
}

impl RouterStats {
    /// Adds another shard's counters into this one (used by the engine's
    /// aggregated view).
    pub fn merge(&mut self, other: &RouterStats) {
        self.accepted += other.accepted;
        self.classifier_runs += other.classifier_runs;
        self.sent_hq += other.sent_hq;
        self.sent_kq += other.sent_kq;
        self.sent_nq += other.sent_nq;
        self.multicasts += other.multicasts;
        self.completed += other.completed;
        self.errors += other.errors;
        self.spurious += other.spurious;
        self.retries += other.retries;
        self.aborts += other.aborts;
        self.failovers += other.failovers;
        self.vcq_retry_drops += other.vcq_retry_drops;
        self.late_completions += other.late_completions;
        self.cq_notifies += other.cq_notifies;
        self.cq_batches += other.cq_batches;
        self.coalesced_reads += other.coalesced_reads;
        self.coalesce_fanout += other.coalesce_fanout;
        self.sched_throttled += other.sched_throttled;
        self.sched_preemptions += other.sched_preemptions;
        self.replayed += other.replayed;
        self.epoch_late_drops += other.epoch_late_drops;
    }
}

enum Work {
    Ingress {
        vm: usize,
        vsq: u16,
        cmd: SubmissionEntry,
    },
    PathDone {
        vm: usize,
        path: u8,
        tag: u16,
        status: Status,
    },
}

/// Recovery timer kinds, ordered within the shared timer heap.
const TIMER_DEADLINE: u8 = 0;
const TIMER_REAP: u8 = 1;

/// A recovery timer: fires at `.0` for request `(tag, seq)` of VM `.3`.
type Timer = (Ns, u16, u64, u16, u8);
/// A pending re-dispatch: at `.0`, replay request `(tag, seq)` of VM `.3`.
type RetryEntry = (Ns, u16, u64, u16);

/// Default per-queue batch: entries drained per SQ visit and the unit of
/// CQ doorbell coalescing (the paper's "process multiple requests per
/// poll" discipline).
pub const DEFAULT_BATCH: usize = 32;

/// The I/O router actor. One router instance is one worker thread in the
/// paper's deployment; several VMs share it round-robin.
pub struct Router {
    name: String,
    cost: CostModel,
    vms: Vec<VmBinding>,
    table: RoutingTable,
    station: Station<Work>,
    kernel_out: Vec<(u16, Status)>,
    batch: usize,
    cq_batch: Vec<(usize, u16, CompletionEntry)>,
    vcq_retry: Vec<(usize, u16, CompletionEntry)>,
    vcq_retry_cap: usize,
    last_poll: Ns,
    stats: RouterStats,
    scratch: RequestCtx,
    telemetry: TelemetryHandle,
    recovery: Option<RecoveryConfig>,
    breakers: Vec<CircuitBreaker>,
    timers: BinaryHeap<Reverse<Timer>>,
    retryq: BinaryHeap<Reverse<RetryEntry>>,
    next_seq: u64,
    /// Fleet-mode per-tenant admission scheduler (None = FIFO drain).
    fleet: Option<TenantScheduler>,
    /// VM-binding index → scheduler slot, parallel to `vms`.
    fleet_slots: Vec<usize>,
    /// Rotating start index for the scheduled VSQ drain, so tenant visit
    /// order itself is fair across rounds.
    drain_cursor: usize,
    /// Earliest time deferred (throttled/preempted) backlog should be
    /// re-examined; merged into `next_event`.
    sched_recheck: Option<Ns>,
    /// Cross-VM read coalescing window (None = no coalescing).
    coalesce: Option<CoalesceWindow>,
    /// Engine generation this shard admits under. Bumped by every
    /// restore/reshard; a completion landing on a slot with an older
    /// generation is an epoch-late straggler and is quarantined.
    generation: u32,
    /// Shard-wide admission gate (live servicing quiesce): while false, no
    /// VSQ is drained but completions, timers, and retries keep running so
    /// in-flight work converges.
    admitting: bool,
    /// Per-VM-slot liveness, parallel to `vms`. A detached slot holds an
    /// inert tombstone binding and is skipped by ingest and views.
    vm_active: Vec<bool>,
    /// Per-VM-slot admission gate (hot detach pauses one tenant's VSQs
    /// without disturbing anyone else's).
    vm_admitting: Vec<bool>,
    /// Station work items queued per VM slot (parallel to `vms`): lets
    /// `vm_quiesced` answer per-tenant without requiring the whole
    /// station to be empty.
    vm_work: Vec<usize>,
    /// Poll governor (None = unconditional busy-poll, the legacy mode).
    governor: Option<PollGovernor>,
    /// Batch auto-tuner (None = the batch bound is fixed).
    tuner: Option<BatchTuner>,
    /// Per-VM-slot arrival tracking, parallel to `vms`: timestamp of the
    /// last VSQ drain that produced work and the EWMA of the gaps between
    /// them. The hottest queue's EWMA feeds the governor's park decision.
    arrivals: Vec<(Ns, Ns)>,
    /// Wakeup latency owed to the first station push after a park exit.
    pending_wake_debt: Ns,
    /// Extra cost per reaped device completion when this shard is pinned
    /// off the device's NUMA node (PlacementPolicy::Affine).
    completion_penalty: Ns,
    /// Stage-coverage audit (debug builds only): sequence numbers that
    /// already emitted their terminal `VcqComplete`, to debug-assert that
    /// no request terminates twice.
    #[cfg(debug_assertions)]
    finished_seqs: std::collections::HashSet<u64>,
}

impl Router {
    /// Creates an empty router. `workers` models the number of worker
    /// threads sharing the routing work (the paper's scalability evaluation
    /// uses one); `table_capacity` bounds concurrent in-flight requests.
    pub fn new(name: &str, cost: CostModel, workers: usize, table_capacity: usize) -> Self {
        Router {
            name: name.to_string(),
            cost,
            vms: Vec::new(),
            table: RoutingTable::new(table_capacity),
            station: Station::new(workers.max(1)),
            kernel_out: Vec::new(),
            batch: DEFAULT_BATCH,
            cq_batch: Vec::new(),
            vcq_retry: Vec::new(),
            vcq_retry_cap: 2 * table_capacity,
            last_poll: 0,
            stats: RouterStats::default(),
            scratch: RequestCtx::empty(),
            telemetry: TelemetryHandle::disabled(),
            recovery: None,
            breakers: Vec::new(),
            timers: BinaryHeap::new(),
            retryq: BinaryHeap::new(),
            next_seq: 0,
            fleet: None,
            fleet_slots: Vec::new(),
            drain_cursor: 0,
            sched_recheck: None,
            coalesce: None,
            generation: 1,
            admitting: true,
            vm_active: Vec::new(),
            vm_admitting: Vec::new(),
            vm_work: Vec::new(),
            governor: None,
            tuner: None,
            arrivals: Vec::new(),
            pending_wake_debt: 0,
            completion_penalty: 0,
            #[cfg(debug_assertions)]
            finished_seqs: std::collections::HashSet::new(),
        }
    }

    /// Trace-event generation for a request sequence number: nonzero (0
    /// is reserved for "unknown"), wrapping, distinct for any 255
    /// consecutive reuses of a routing-table slot.
    #[inline]
    fn gen_of(seq: u64) -> u8 {
        (seq % 255) as u8 + 1
    }

    /// Turns the recovery engine on: per-command deadlines with NVMe-style
    /// abort, bounded retry with exponential backoff for retryable
    /// statuses, and a per-VM circuit breaker that fails fast-path sends
    /// over to the kernel path (configured via `RouterBuilder::recovery`).
    /// Without it the router surfaces every fault to the guest verbatim.
    pub(crate) fn configure_recovery(&mut self, cfg: RecoveryConfig) {
        self.breakers = self
            .vms
            .iter()
            .map(|_| CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown))
            .collect();
        self.recovery = Some(cfg);
    }

    /// The VM's fast-path circuit breaker, when recovery is on.
    pub fn breaker(&self, vm: usize) -> Option<&CircuitBreaker> {
        self.breakers.get(vm)
    }

    /// `(vm_id, breaker)` for every live bound VM, in bind order (used by
    /// the engine's aggregated stats). Detached tombstone slots are
    /// skipped.
    pub(crate) fn breaker_view(&self) -> impl Iterator<Item = (u32, &CircuitBreaker)> {
        self.vms
            .iter()
            .map(|v| v.vm_id)
            .zip(self.breakers.iter())
            .zip(self.vm_active.iter())
            .filter(|&(_, &active)| active)
            .map(|(pair, _)| pair)
    }

    /// Feeds one failure to a VM's breaker, counting the Closed→Open
    /// transition (the watchdog's flap detector consumes that counter).
    fn breaker_failure(&mut self, vm: usize, t: Ns) {
        let was_open = self.breakers[vm].is_open();
        self.breakers[vm].on_failure(t);
        if !was_open && self.breakers[vm].is_open() {
            self.telemetry.count(Metric::BreakerOpens);
        }
    }

    /// Whether the recovery engine is configured.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Attaches a telemetry handle (from `Telemetry::register_worker`, via
    /// `RouterBuilder::telemetry`). The default is a disabled handle, which
    /// costs one branch per instrumentation point.
    pub(crate) fn configure_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// Applies the engine's typed policy to this shard: poll governor on
    /// or off, batch fixed or auto-tuned, and the placement's per-device-
    /// completion penalty for a shard pinned off the device's NUMA node
    /// (configured via `RouterBuilder::policy`).
    pub(crate) fn configure_policy(&mut self, policy: &EnginePolicy, completion_penalty: Ns) {
        self.batch = policy.batch.initial();
        self.tuner = match policy.batch {
            BatchPolicy::Auto { min, max } => Some(BatchTuner::new(min, max)),
            BatchPolicy::Fixed(_) => None,
        };
        self.governor = match policy.poll {
            PollPolicy::Spin => None,
            PollPolicy::Adaptive {
                idle_spin,
                park_after,
            } => Some(PollGovernor::new(
                idle_spin,
                park_after,
                self.cost.adaptive_wakeup,
            )),
        };
        self.completion_penalty = completion_penalty;
    }

    /// The shard's current poll mode (Spin without a governor).
    pub fn poll_mode(&self) -> PollMode {
        self.governor.as_ref().map_or(PollMode::Spin, |g| g.mode())
    }

    /// Virtual CPU the governor has burned spinning/yielding while idle
    /// (0 without a governor: the executor accounts idle burn instead).
    pub fn governor_burn(&self) -> Ns {
        self.governor.as_ref().map_or(0, |g| g.burn())
    }

    /// Batch-size moves the auto-tuner has made (0 with a fixed batch).
    pub fn batch_retunes(&self) -> u64 {
        self.tuner.as_ref().map_or(0, |t| t.retunes())
    }

    /// Whether any guest-visible work is already waiting in this shard's
    /// queues: device/notify completions to reap, or (gates permitting)
    /// undrained VSQ entries. This is the doorbell a parked shard must
    /// not sleep through.
    fn doorbell_pending(&self) -> bool {
        for (i, vm) in self.vms.iter().enumerate() {
            if !self.vm_active[i] {
                continue;
            }
            if !vm.hcq.is_empty() {
                return true;
            }
            if vm.notify.as_ref().is_some_and(|n| !n.ncq.is_empty()) {
                return true;
            }
            if self.admitting && self.vm_admitting[i] && vm.vsqs.iter().any(|q| !q.is_empty()) {
                return true;
            }
        }
        false
    }

    /// Consumes the wakeup latency owed by the last park exit (applied to
    /// the first station push of the waking poll).
    fn take_wake_debt(&mut self) -> Ns {
        std::mem::take(&mut self.pending_wake_debt)
    }

    /// Folds a produced-work observation into the slot's arrival EWMA.
    fn note_arrival(&mut self, vm: usize, now: Ns) {
        let (last, gap) = &mut self.arrivals[vm];
        let g = now.saturating_sub(*last);
        if *last != 0 && g > 0 {
            *gap = if *gap == 0 { g } else { (*gap * 7 + g) / 8 };
        }
        *last = now;
    }

    /// The hottest live queue's arrival-gap EWMA (None before any queue
    /// has two observations).
    fn min_arrival_gap(&self) -> Option<Ns> {
        self.arrivals
            .iter()
            .zip(&self.vm_active)
            .filter(|&(&(_, gap), &active)| active && gap > 0)
            .map(|(&(_, gap), _)| gap)
            .min()
    }

    /// Turns the fleet scheduler on: the VSQ drain switches from
    /// unconditional FIFO visit order to weighted deficit-round-robin over
    /// tenants with token-bucket admission (configured via
    /// `RouterBuilder::fleet`). Completion drains are never scheduled —
    /// throttling a tenant's completions would only hold table slots
    /// hostage.
    pub(crate) fn configure_fleet(&mut self, cfg: &FleetConfig) {
        let mut sched = TenantScheduler::new(cfg);
        self.fleet_slots = self.vms.iter().map(|v| sched.slot(v.vm_id)).collect();
        self.fleet = Some(sched);
    }

    /// Turns cross-VM read coalescing on (configured via
    /// `RouterBuilder::coalesce`).
    pub(crate) fn configure_coalesce(&mut self, cfg: CoalesceConfig) {
        self.coalesce = Some(CoalesceWindow::new(cfg));
    }

    /// Per-tenant scheduler state on this shard (empty without fleet
    /// mode), sorted by tenant id.
    pub fn fleet_view(&self) -> Vec<TenantView> {
        self.fleet.as_ref().map(|f| f.view()).unwrap_or_default()
    }

    /// Coalescing-window counters, when coalescing is on.
    pub fn coalesce_stats(&self) -> Option<CoalesceStats> {
        self.coalesce.as_ref().map(|w| w.stats())
    }

    /// The configured per-queue batch bound.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Binds a VM; returns its index.
    pub fn bind_vm(&mut self, binding: VmBinding) -> usize {
        if let Some(f) = self.fleet.as_mut() {
            self.fleet_slots.push(f.slot(binding.vm_id));
        }
        self.vms.push(binding);
        let cfg = self.recovery.unwrap_or_default();
        self.breakers.push(CircuitBreaker::new(
            cfg.breaker_threshold,
            cfg.breaker_cooldown,
        ));
        self.vm_active.push(true);
        self.vm_admitting.push(true);
        self.vm_work.push(0);
        self.arrivals.push((0, 0));
        self.vms.len() - 1
    }

    /// Router counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Peak concurrent in-flight requests.
    pub fn high_water(&self) -> usize {
        self.table.high_water()
    }

    /// Access to a bound VM's classifier (host-side configuration of
    /// classifier maps, on-the-fly classifier replacement).
    pub fn classifier_mut(&mut self, vm: usize) -> &mut Classifier {
        &mut self.vms[vm].classifier
    }

    fn ingest(&mut self, now: Ns) -> bool {
        let mut any = false;
        let batch = self.batch;
        for vm in 0..self.vms.len() {
            if !self.vm_active[vm] {
                continue; // detached tombstone: nothing to drain
            }
            // Fast-path completions (bounded: leftovers keep the poll Busy,
            // so the next visit continues where this one stopped).
            for _ in 0..batch {
                let Some(cqe) = self.vms[vm].hcq.pop() else {
                    break;
                };
                let tag = cqe.cid;
                let cost = self.completion_cost(tag, path_bits::HQ) + self.take_wake_debt();
                self.vm_work[vm] += 1;
                self.station.push(
                    Work::PathDone {
                        vm,
                        path: path_bits::HQ,
                        tag,
                        status: cqe.status(),
                    },
                    cost,
                    now,
                );
                any = true;
            }
            // Kernel-path completions.
            if let Some(kernel) = self.vms[vm].kernel.as_mut() {
                self.kernel_out.clear();
                kernel.poll(now, &mut self.kernel_out);
                let done: Vec<(u16, Status)> = self.kernel_out.drain(..).collect();
                for (tag, status) in done {
                    let cost = self.completion_cost(tag, path_bits::KQ) + self.take_wake_debt();
                    self.vm_work[vm] += 1;
                    self.station.push(
                        Work::PathDone {
                            vm,
                            path: path_bits::KQ,
                            tag,
                            status,
                        },
                        cost,
                        now,
                    );
                    any = true;
                }
            }
            // Notify-path completions.
            for _ in 0..batch {
                let Some(cqe) = self.vms[vm].notify.as_ref().and_then(|n| n.ncq.pop()) else {
                    break;
                };
                let tag = cqe.cid;
                let cost = self.completion_cost(tag, path_bits::NQ) + self.take_wake_debt();
                self.vm_work[vm] += 1;
                self.station.push(
                    Work::PathDone {
                        vm,
                        path: path_bits::NQ,
                        tag,
                        status: cqe.status(),
                    },
                    cost,
                    now,
                );
                any = true;
            }
            // New guest commands (after completions: frees table slots).
            // Each SQ visit drains at most `batch` entries, so one flooding
            // queue cannot starve its neighbours: the round-robin moves on
            // and returns once every other queue has had its turn. In
            // fleet mode admission is the scheduler's call instead — see
            // `drain_vsqs_scheduled`. Quiesce (shard-wide or per-VM) stops
            // exactly here: completions above keep draining.
            if self.fleet.is_none() && self.admitting && self.vm_admitting[vm] {
                let mut vm_drained = 0u64;
                for vsq in 0..self.vms[vm].vsqs.len() {
                    let mut drained = 0u64;
                    for _ in 0..batch {
                        let Some((cmd, _)) = self.vms[vm].vsqs[vsq].pop() else {
                            break;
                        };
                        let cost =
                            self.cost.router_cmd + self.cost.classifier_run + self.take_wake_debt();
                        self.vm_work[vm] += 1;
                        self.station.push(
                            Work::Ingress {
                                vm,
                                vsq: vsq as u16,
                                cmd,
                            },
                            cost,
                            now,
                        );
                        drained += 1;
                        any = true;
                    }
                    if drained > 0 {
                        self.telemetry.depth(Depth::SqBurst, drained);
                        if let Some(t) = &mut self.tuner {
                            t.record_visit(drained, batch);
                        }
                        vm_drained += drained;
                    }
                }
                if vm_drained > 0 {
                    self.note_arrival(vm, now);
                }
            }
        }
        if self.fleet.is_some() && self.admitting {
            any |= self.drain_vsqs_scheduled(now);
        }
        if any && self.telemetry.enabled() {
            self.telemetry
                .depth(Depth::TableOccupancy, self.table.in_flight() as u64);
        }
        any
    }

    /// Fleet-mode VSQ drain: one DRR round over all tenants, visit order
    /// rotating round to round. Admission of each command is gated by the
    /// tenant's deficit (weighted share of the round) and token bucket
    /// (rate + burst, scaled by the governor's throttle knob); a denial
    /// skips the tenant's remaining queues for this round. Deferred
    /// backlog arms `sched_recheck` so `next_event` keeps virtual time
    /// moving even when every other actor has gone quiet.
    fn drain_vsqs_scheduled(&mut self, now: Ns) -> bool {
        let n = self.vms.len();
        if n == 0 {
            return false;
        }
        let batch = self.batch;
        let mut any = false;
        let start = self.drain_cursor % n;
        self.drain_cursor = self.drain_cursor.wrapping_add(1);
        self.sched_recheck = None;
        let mut sched = self.fleet.take().expect("fleet mode");
        sched.new_round();
        for k in 0..n {
            let vm = (start + k) % n;
            if !self.vm_active[vm] || !self.vm_admitting[vm] {
                continue; // detached or individually quiesced tenant
            }
            let slot = self.fleet_slots[vm];
            let mut served = 0u64;
            let mut denied = false;
            'vm_queues: for vsq in 0..self.vms[vm].vsqs.len() {
                let mut drained = 0u64;
                for _ in 0..batch {
                    if self.vms[vm].vsqs[vsq].is_empty() {
                        break;
                    }
                    match sched.admit(slot, now) {
                        Admit::Granted => {}
                        Admit::Throttled => {
                            self.stats.sched_throttled += 1;
                            self.telemetry.count(Metric::ThrottleApplied);
                            let at = sched.next_token_at(slot, now);
                            self.sched_recheck = Some(self.sched_recheck.map_or(at, |r| r.min(at)));
                            denied = true;
                            break 'vm_queues;
                        }
                        Admit::Exhausted => {
                            self.stats.sched_preemptions += 1;
                            self.telemetry.count(Metric::SchedulerPreemptions);
                            // The next DRR round happens on the next poll;
                            // schedule one in case the rig is otherwise
                            // idle.
                            let at = now + US;
                            self.sched_recheck = Some(self.sched_recheck.map_or(at, |r| r.min(at)));
                            denied = true;
                            break 'vm_queues;
                        }
                    }
                    let (cmd, _) = self.vms[vm].vsqs[vsq].pop().expect("checked non-empty");
                    let cost =
                        self.cost.router_cmd + self.cost.classifier_run + self.take_wake_debt();
                    self.vm_work[vm] += 1;
                    self.station.push(
                        Work::Ingress {
                            vm,
                            vsq: vsq as u16,
                            cmd,
                        },
                        cost,
                        now,
                    );
                    drained += 1;
                    served += 1;
                    any = true;
                }
                if drained > 0 {
                    self.telemetry.depth(Depth::SqBurst, drained);
                    if let Some(t) = &mut self.tuner {
                        t.record_visit(drained, batch);
                    }
                }
            }
            let backlog_empty = !denied && self.vms[vm].vsqs.iter().all(|q| q.is_empty());
            sched.end_visit(slot, backlog_empty);
            if served > 0 {
                self.telemetry.depth(Depth::TenantServed, served);
                self.note_arrival(vm, now);
            }
        }
        self.fleet = Some(sched);
        any
    }

    fn completion_cost(&self, tag: u16, path: u8) -> Ns {
        let classify = self
            .table
            .get(tag)
            .map(|s| s.hooks & path != 0)
            .unwrap_or(false);
        // A shard pinned off the device's NUMA node pays the cross-node
        // penalty to reap a device CQE (remote cacheline + doorbell).
        let affinity = if path == path_bits::HQ {
            self.completion_penalty
        } else {
            0
        };
        self.cost.router_cmd
            + affinity
            + if classify {
                self.cost.classifier_run
            } else {
                0
            }
    }

    fn apply(&mut self, work: Work, t: Ns) {
        let (Work::Ingress { vm, .. } | Work::PathDone { vm, .. }) = work;
        self.vm_work[vm] = self.vm_work[vm].saturating_sub(1);
        match work {
            Work::Ingress { vm, vsq, cmd } => self.apply_ingress(vm, vsq, cmd, t),
            Work::PathDone {
                vm,
                path,
                tag,
                status,
            } => self.apply_path_done(vm, path, tag, status, t),
        }
    }

    fn apply_ingress(&mut self, vm: usize, vsq: u16, cmd: SubmissionEntry, t: Ns) {
        self.stats.accepted += 1;
        self.telemetry.count(Metric::Accepted);
        self.next_seq += 1;
        let state = RequestState {
            vm: self.vms[vm].vm_id,
            slot: vm as u16,
            vsq,
            guest_cid: cmd.cid,
            cmd,
            pending: 0,
            hooks: 0,
            will_complete: 0,
            status: Status::SUCCESS,
            user_tag: 0,
            accepted_at: t,
            sent_paths: 0,
            dispatched_at: 0,
            serviced_at: 0,
            seq: self.next_seq,
            retries: 0,
            deadline: 0,
            dispatch_send: 0,
            dispatch_hooks: 0,
            dispatch_wc: 0,
            orphaned: 0,
            zombie: false,
            first_fault_at: 0,
            generation: self.generation,
        };
        let tag = match self.table.insert(state) {
            Some(tag) => tag,
            None => {
                // Routing table exhausted: fail the request (the guest sees
                // a transient internal error, like a controller under
                // resource pressure).
                let cqe = CompletionEntry::new(cmd.cid, Status::INTERNAL);
                // post_vcq counts the error; counting it here too used to
                // double-book `stats.errors` for table-full rejections.
                self.post_vcq(vm, vsq, cqe, t);
                return;
            }
        };
        self.telemetry.request_event(
            t,
            self.vms[vm].vm_id,
            vsq,
            tag,
            Self::gen_of(self.next_seq),
            Stage::VsqFetch,
            PathKind::None,
        );
        let verdict = self.run_classifier(vm, tag, HOOK_VSQ, Status::SUCCESS, t);
        self.route(vm, tag, verdict, t);
    }

    fn apply_path_done(&mut self, vm: usize, path: u8, tag: u16, status: Status, t: Ns) {
        // Epoch fence (servicing): a slot admitted under an older engine
        // generation is a pre-snapshot attempt whose guest answer comes
        // (or came) from the replay. Its legs are dropped here however the
        // shard is configured — recovery on or off — so a stale completion
        // can never satisfy, or corrupt, a post-restore command.
        if let Some(state) = self.table.get(tag) {
            if state.generation != self.generation {
                let state = self.table.get_mut(tag).expect("present");
                state.orphaned &= !path;
                let drained = state.pending == 0 && state.orphaned == 0;
                self.stats.late_completions += 1;
                self.stats.epoch_late_drops += 1;
                self.telemetry.count(Metric::LateCompletions);
                self.telemetry.count(Metric::EpochLateDrops);
                if drained {
                    self.table.remove(tag);
                }
                return;
            }
        }
        if self.recovery.is_some() {
            let Some(state) = self.table.get(tag) else {
                self.stats.spurious += 1;
                self.telemetry.count(Metric::Spurious);
                return;
            };
            if state.zombie || state.orphaned & path != 0 {
                // A leg abandoned by an abort finally reported in. Drop it
                // as late — the guest already has its answer — and reclaim
                // the quarantined slot once every leg is accounted for.
                let state = self.table.get_mut(tag).expect("present");
                state.orphaned &= !path;
                let drained = state.zombie && state.pending == 0 && state.orphaned == 0;
                self.stats.late_completions += 1;
                self.telemetry.count(Metric::LateCompletions);
                if drained {
                    self.table.remove(tag);
                }
                return;
            }
            if state.pending & path == 0 {
                // Duplicate completion for a live request (e.g. the same
                // path answering twice): ignore it rather than double-
                // finishing the request.
                self.stats.spurious += 1;
                self.telemetry.count(Metric::Spurious);
                return;
            }
            // Feed the fast-path breaker from real device outcomes.
            if path == path_bits::HQ {
                if status.is_error() {
                    self.breaker_failure(vm, t);
                } else {
                    self.breakers[vm].on_success();
                }
            }
        }
        let (hooked, vm_id, vsq, seq) = {
            let Some(state) = self.table.get_mut(tag) else {
                self.stats.spurious += 1;
                self.telemetry.count(Metric::Spurious);
                return;
            };
            state.pending &= !path;
            state.serviced_at = t;
            if status.is_error() {
                if !state.status.is_error() {
                    state.status = status;
                }
                if state.first_fault_at == 0 {
                    state.first_fault_at = t;
                }
            }
            (state.hooks & path != 0, state.vm, state.vsq, state.seq)
        };
        if hooked {
            // One-shot hook: consume it, then let the classifier decide the
            // next leg of the state machine.
            self.table.get_mut(tag).expect("still present").hooks &= !path;
            self.telemetry.count(Metric::HookReentries);
            self.telemetry.request_event(
                t,
                vm_id,
                vsq,
                tag,
                Self::gen_of(seq),
                Stage::HookReentry,
                Self::path_kind(path),
            );
            let hook_id = match path {
                path_bits::HQ => HOOK_HCQ,
                path_bits::KQ => HOOK_KCQ,
                _ => HOOK_NCQ,
            };
            let verdict = self.run_classifier(vm, tag, hook_id, status, t);
            self.route(vm, tag, verdict, t);
            return;
        }
        let state = self.table.get_mut(tag).expect("still present");
        let wc = state.will_complete & path != 0;
        if state.pending == 0 && (wc || state.will_complete == 0) {
            let final_status = state.status;
            self.finish(vm, tag, final_status, t);
        }
        // Otherwise: a multicast leg finished but others are outstanding —
        // wait for them.
    }

    /// Telemetry path annotation for a path bit.
    fn path_kind(path: u8) -> PathKind {
        match path {
            path_bits::HQ => PathKind::Fast,
            path_bits::KQ => PathKind::Kernel,
            path_bits::NQ => PathKind::Notify,
            _ => PathKind::None,
        }
    }

    fn run_classifier(&mut self, vm: usize, tag: u16, hook: u32, error: Status, t: Ns) -> Verdict {
        self.stats.classifier_runs += 1;
        self.telemetry.count(Metric::ClassifierRuns);
        let state = self.table.get(tag).expect("request tracked");
        let (vm_id, vsq, seq) = (state.vm, state.vsq, state.seq);
        // Zero-copy marshalling: refill the router's scratch context in
        // place instead of constructing a fresh buffer per invocation.
        self.scratch.fill(
            hook,
            self.vms[vm].vm_id,
            state.vsq,
            &state.cmd,
            error,
            state.user_tag,
        );
        let started = self.telemetry.enabled().then(std::time::Instant::now);
        let outcome = self.vms[vm].classifier.run_tiered(&mut self.scratch, t);
        if let Some(tier) = outcome.tier {
            let (metric, tier) = match tier {
                nvmetro_vbpf::Tier::Interp => (Metric::ClassifierInterp, Tier::Interp),
                nvmetro_vbpf::Tier::Compiled => (Metric::ClassifierCompiled, Tier::Compiled),
                nvmetro_vbpf::Tier::CacheHit => (Metric::ClassifierCacheHit, Tier::CacheHit),
            };
            self.telemetry.count(metric);
            if let Some(started) = started {
                self.telemetry
                    .tier_latency(tier, started.elapsed().as_nanos() as u64);
            }
        }
        self.telemetry.request_event(
            t,
            vm_id,
            vsq,
            tag,
            Self::gen_of(seq),
            Stage::Classified,
            PathKind::None,
        );
        // Direct mediation: copy back only the fields the verifier proved
        // the classifier can write (everything, for native classifiers).
        let dirty = outcome.dirty;
        if dirty != MediatedFields::NONE {
            let state = self.table.get_mut(tag).expect("request tracked");
            if dirty.contains(MediatedFields::SLBA) {
                state.cmd.set_slba(self.scratch.slba());
            }
            if dirty.contains(MediatedFields::NLB) {
                let nlb = self.scratch.nlb().clamp(1, 0x1_0000);
                state.cmd.cdw12 = (state.cmd.cdw12 & !0xFFFF) | (nlb - 1);
            }
            if dirty.contains(MediatedFields::USER_TAG) {
                state.user_tag = self.scratch.user_tag();
            }
        }
        outcome.verdict
    }

    fn route(&mut self, vm: usize, tag: u16, verdict: Verdict, t: Ns) {
        if verdict.complete() {
            self.finish(vm, tag, verdict.status(), t);
            return;
        }
        let send = verdict.send_mask();
        if send == 0 {
            // A verdict that neither completes nor routes is a classifier
            // bug; fail closed.
            self.finish(vm, tag, Status::PATH_ERROR, t);
            return;
        }
        if self.coalesce.is_some() && self.try_coalesce(vm, tag, verdict) {
            // Parked as a follower of an in-flight duplicate read: no
            // dispatch; the leader's terminal completion fans out to it.
            return;
        }
        self.dispatch(
            vm,
            tag,
            send,
            verdict.hook_mask(),
            verdict.will_complete_mask(),
            t,
        );
    }

    /// Offers a request to the cross-VM coalescing window. Only pristine
    /// single-fast-path reads are eligible: no hooks, no multicast, no
    /// prior dispatch or retry — anything else keeps its own device
    /// command and its own fault-handling state machine. Returns true if
    /// the request was parked as a follower (it must not be dispatched).
    fn try_coalesce(&mut self, vm: usize, tag: u16, verdict: Verdict) -> bool {
        const NVM_READ: u8 = 0x02;
        let state = self.table.get(tag).expect("tracked");
        if state.cmd.opcode != NVM_READ
            || verdict.send_mask() != path_bits::HQ
            || verdict.hook_mask() != 0
            || verdict.will_complete_mask() != path_bits::HQ
            || state.sent_paths != 0
            || state.pending != 0
            || state.retries != 0
        {
            return false;
        }
        // The key is the post-mediation (physical) range, so two VMs whose
        // classifiers translate different guest LBAs to the same physical
        // blocks do coalesce, and identical guest LBAs in disjoint
        // partitions do not.
        let (slba, nlb) = (state.cmd.slba(), state.cmd.nlb());
        // Followers skip dispatch() and with it the fast-path isolation
        // check; re-check partition bounds here so a request can only ever
        // coalesce onto data its own VM is allowed to read.
        if !self.vms[vm].partition.contains(slba, nlb) {
            return false; // dispatch() rejects it with LBA_OUT_OF_RANGE
        }
        let win = self.coalesce.as_mut().expect("coalesce checked by caller");
        match win.try_join(slba, nlb, vm, tag) {
            Join::Follower(_leader) => {
                self.stats.coalesced_reads += 1;
                self.telemetry.count(Metric::CoalescedReads);
                true
            }
            // Leaders dispatch normally; the window watches their tag.
            // Bypass (window bounds hit) degrades to plain dispatch.
            Join::Leader | Join::Bypass => false,
        }
    }

    /// Fans a coalescing leader's terminal status out to its parked
    /// followers: each gets its own guest CQE with the leader's status,
    /// exactly once (`resolve` retires the key and is idempotent, and
    /// followers were never dispatched, so no path completion, retry, or
    /// timer can ever touch them again).
    fn resolve_coalesced(&mut self, tag: u16, status: Status, t: Ns) {
        let followers = match self.coalesce.as_mut() {
            Some(win) => win.resolve(tag),
            None => return,
        };
        if followers.is_empty() {
            return;
        }
        self.stats.coalesce_fanout += followers.len() as u64;
        self.telemetry
            .add(Metric::CoalesceFanout, followers.len() as u64);
        // The leader's slot is still resident (`finish` removes it after
        // this fan-out), so its generation is readable for the causal link.
        let leader_gen = self.table.get(tag).map_or(0, |s| Self::gen_of(s.seq));
        for w in followers {
            // Stamp the follower with its leader before the follower's own
            // terminal event, so the link lands on the still-open span.
            if let Some(f) = self.table.get(w.tag) {
                self.telemetry.link_event(
                    t,
                    f.vm,
                    f.vsq,
                    w.tag,
                    Self::gen_of(f.seq),
                    Stage::LinkFanout,
                    tag,
                    leader_gen,
                );
            }
            self.finish(w.vm, w.tag, status, t);
        }
    }

    /// Sends a request down a set of paths. Retries replay this with the
    /// masks of the latest dispatch, so a re-dispatched command re-arms
    /// exactly the state machine the classifier asked for.
    fn dispatch(&mut self, vm: usize, tag: u16, send: u8, hooks: u8, wc: u8, t: Ns) {
        let (mut send, mut hooks, mut wc) = (send, hooks, wc);
        // Circuit breaker: consecutive device faults divert fast-path
        // sends to the kernel path (when the VM has one) until a
        // half-open probe restores the device.
        if self.recovery.is_some()
            && send & path_bits::HQ != 0
            && self.vms[vm].kernel.is_some()
            && self.breakers[vm].gate(t) == Gate::Deny
        {
            send = (send & !path_bits::HQ) | path_bits::KQ;
            if hooks & path_bits::HQ != 0 {
                hooks = (hooks & !path_bits::HQ) | path_bits::KQ;
            }
            if wc & path_bits::HQ != 0 {
                wc = (wc & !path_bits::HQ) | path_bits::KQ;
            }
            self.stats.failovers += 1;
            self.telemetry.count(Metric::Failovers);
            let state = self.table.get(tag).expect("tracked");
            self.telemetry.request_event(
                t,
                state.vm,
                state.vsq,
                tag,
                Self::gen_of(state.seq),
                Stage::Failover,
                PathKind::Kernel,
            );
        }
        if send.count_ones() > 1 {
            self.stats.multicasts += 1;
            self.telemetry.count(Metric::Multicasts);
        }
        // Isolation: the fast path reaches real hardware, so partition
        // bounds are enforced here, not trusted to the classifier.
        if send & path_bits::HQ != 0 {
            let state = self.table.get(tag).expect("tracked");
            let (slba, nlb) = (state.cmd.slba(), state.cmd.nlb());
            let has_lba = state.cmd.has_data() || matches!(state.cmd.opcode, 0x08 | 0x09);
            if has_lba && !self.vms[vm].partition.contains(slba, nlb) {
                self.finish(vm, tag, Status::LBA_OUT_OF_RANGE, t);
                return;
            }
        }
        let state = self.table.get_mut(tag).expect("tracked");
        state.hooks |= hooks;
        state.will_complete |= wc;
        state.sent_paths |= send;
        state.dispatch_send = send;
        state.dispatch_hooks = hooks;
        state.dispatch_wc = wc;
        // A retry reclaims any path it re-dispatches on: the next
        // completion on that path is attributed to the new attempt.
        state.orphaned &= !send;
        if state.dispatched_at == 0 {
            state.dispatched_at = t;
        }
        let (vm_id, vsq, gen) = (state.vm, state.vsq, Self::gen_of(state.seq));
        let mut fwd = state.cmd;
        fwd.cid = tag;
        if send & path_bits::HQ != 0 {
            self.table.get_mut(tag).expect("tracked").pending |= path_bits::HQ;
            self.stats.sent_hq += 1;
            self.telemetry.count(Metric::SentFast);
            self.telemetry.request_event(
                t,
                vm_id,
                vsq,
                tag,
                gen,
                Stage::Dispatched,
                PathKind::Fast,
            );
            if self.vms[vm].hsq.push(fwd).is_err() {
                self.path_unavailable(vm, tag, path_bits::HQ, t);
                return;
            }
        }
        if send & path_bits::KQ != 0 {
            self.table.get_mut(tag).expect("tracked").pending |= path_bits::KQ;
            self.stats.sent_kq += 1;
            self.telemetry.count(Metric::SentKernel);
            self.telemetry.request_event(
                t,
                vm_id,
                vsq,
                tag,
                gen,
                Stage::Dispatched,
                PathKind::Kernel,
            );
            match self.vms[vm].kernel.as_mut() {
                Some(k) => k.submit(tag, fwd, t),
                None => {
                    self.path_unavailable(vm, tag, path_bits::KQ, t);
                    return;
                }
            }
        }
        if send & path_bits::NQ != 0 {
            self.table.get_mut(tag).expect("tracked").pending |= path_bits::NQ;
            self.stats.sent_nq += 1;
            self.telemetry.count(Metric::SentNotify);
            self.telemetry.request_event(
                t,
                vm_id,
                vsq,
                tag,
                gen,
                Stage::Dispatched,
                PathKind::Notify,
            );
            let pushed = match self.vms[vm].notify.as_mut() {
                Some(n) => n.nsq.push(fwd).is_ok(),
                None => false,
            };
            if !pushed {
                self.path_unavailable(vm, tag, path_bits::NQ, t);
            }
        }
        // Arm the per-dispatch deadline: if any leg is still out when it
        // fires, the attempt is aborted NVMe-style.
        if let Some(cfg) = self.recovery {
            if cfg.cmd_timeout > 0 {
                if let Some(state) = self.table.get_mut(tag) {
                    if state.pending != 0 && !state.zombie {
                        let deadline = t + cfg.cmd_timeout;
                        state.deadline = deadline;
                        self.timers.push(Reverse((
                            deadline,
                            tag,
                            state.seq,
                            vm as u16,
                            TIMER_DEADLINE,
                        )));
                    }
                }
            }
        }
    }

    /// A target queue was missing or full: fail the request. Outstanding
    /// legs on other paths will be dropped as spurious when they return.
    fn path_unavailable(&mut self, vm: usize, tag: u16, path: u8, t: Ns) {
        let state = self.table.get_mut(tag).expect("tracked");
        state.pending &= !path;
        self.finish(vm, tag, Status::PATH_ERROR, t);
    }

    /// Schedules a re-dispatch when the failure is worth retrying. Returns
    /// whether the retry was taken (the request stays tracked).
    fn try_retry(&mut self, vm: usize, tag: u16, status: Status, t: Ns) -> bool {
        let cfg = match self.recovery {
            Some(cfg) => cfg,
            None => return false,
        };
        let Some(state) = self.table.get(tag) else {
            return false;
        };
        if state.zombie
            || !status.is_retryable()
            || state.dispatch_send == 0
            || state.pending != 0
            || state.retries >= cfg.max_retries
        {
            return false;
        }
        let state = self.table.get_mut(tag).expect("present");
        state.retries += 1;
        if state.first_fault_at == 0 {
            state.first_fault_at = t;
        }
        // Fresh attempt: forget the latched error and the old deadline.
        state.status = Status::SUCCESS;
        state.deadline = 0;
        let (vm_id, vsq, seq, attempt) = (state.vm, state.vsq, state.seq, state.retries);
        let at = t + cfg.backoff(attempt);
        self.retryq.push(Reverse((at, tag, seq, vm as u16)));
        self.stats.retries += 1;
        self.telemetry.count(Metric::Retries);
        self.telemetry.request_event(
            t,
            vm_id,
            vsq,
            tag,
            Self::gen_of(seq),
            Stage::Retry,
            PathKind::None,
        );
        true
    }

    fn finish(&mut self, vm: usize, tag: u16, status: Status, t: Ns) {
        if self.try_retry(vm, tag, status, t) {
            return;
        }
        // This is a *terminal* answer (retries are exhausted or not
        // applicable): if the tag led a coalesced read, its parked
        // followers inherit exactly the status this guest is about to see
        // — including aborts and post-failover statuses.
        if self.coalesce.is_some() {
            self.resolve_coalesced(tag, status, t);
        }
        if let Some(cfg) = self.recovery {
            if let Some(state) = self.table.get(tag) {
                if state.zombie {
                    // The guest already has this request's CQE; the slot
                    // only lingers to quarantine the tag.
                    return;
                }
                if state.pending | state.orphaned != 0 {
                    // Legs are still in flight (abort, or a path failure
                    // mid-multicast). Answer the guest now but quarantine
                    // the tag until every leg drains or the reaper fires,
                    // so a late completion can never be misattributed to a
                    // reused slot.
                    let snapshot = state.clone();
                    let state = self.table.get_mut(tag).expect("present");
                    state.zombie = true;
                    state.orphaned |= state.pending;
                    state.pending = 0;
                    state.hooks = 0;
                    state.deadline = 0;
                    self.emit_finish_telemetry(&snapshot, tag, t);
                    self.timers.push(Reverse((
                        t + cfg.zombie_linger,
                        tag,
                        snapshot.seq,
                        vm as u16,
                        TIMER_REAP,
                    )));
                    let cqe = CompletionEntry::new(snapshot.guest_cid, status);
                    self.post_vcq(vm, snapshot.vsq, cqe, t);
                    return;
                }
            }
        }
        let state = match self.table.remove(tag) {
            Some(s) => s,
            None => {
                self.stats.spurious += 1;
                self.telemetry.count(Metric::Spurious);
                return;
            }
        };
        self.emit_finish_telemetry(&state, tag, t);
        let cqe = CompletionEntry::new(state.guest_cid, status);
        self.post_vcq(vm, state.vsq, cqe, t);
    }

    fn emit_finish_telemetry(&mut self, state: &RequestState, tag: u16, t: Ns) {
        // Stage-coverage audit: every request that was observed at
        // VsqFetch must reach its terminal VcqComplete exactly once (a
        // retry re-uses the same seq — it is the same request).
        #[cfg(debug_assertions)]
        debug_assert!(
            self.finished_seqs.insert(state.seq),
            "request seq {} (vm {} vsq {} tag {}) emitted a second terminal event",
            state.seq,
            state.vm,
            state.vsq,
            tag
        );
        if self.telemetry.enabled() {
            self.telemetry.request_event(
                t,
                state.vm,
                state.vsq,
                tag,
                Self::gen_of(state.seq),
                Stage::VcqComplete,
                PathKind::None,
            );
            // Attribute latency to the heaviest path the request touched
            // (notify > kernel > fast); requests the router completed
            // without dispatching have no route.
            let route = if state.sent_paths & path_bits::NQ != 0 {
                Some(Route::Notify)
            } else if state.sent_paths & path_bits::KQ != 0 {
                Some(Route::Kernel)
            } else if state.sent_paths & path_bits::HQ != 0 {
                Some(Route::Fast)
            } else {
                None
            };
            if let Some(route) = route {
                self.telemetry
                    .route_latency(route, t.saturating_sub(state.accepted_at));
            }
            if state.dispatched_at != 0 {
                self.telemetry.segment(
                    Segment::IngressToDispatch,
                    state.dispatched_at.saturating_sub(state.accepted_at),
                );
                if state.serviced_at != 0 {
                    self.telemetry.segment(
                        Segment::DispatchToService,
                        state.serviced_at.saturating_sub(state.dispatched_at),
                    );
                    self.telemetry.segment(
                        Segment::ServiceToComplete,
                        t.saturating_sub(state.serviced_at),
                    );
                }
            }
            if state.first_fault_at != 0 {
                // Recovery latency: first observed fault to final answer.
                self.telemetry.segment(
                    Segment::FaultToRecovery,
                    t.saturating_sub(state.first_fault_at),
                );
            }
        }
    }

    /// Queues a guest CQE for the end-of-poll coalesced flush. Everything a
    /// poll completes is posted in one ring write per (vm, vsq) with a
    /// single doorbell notify per group — the paper's interrupt-coalescing
    /// discipline — instead of one notify per CQE.
    fn post_vcq(&mut self, vm: usize, vsq: u16, cqe: CompletionEntry, _t: Ns) {
        self.stats.completed += 1;
        self.telemetry.count(Metric::Completed);
        if cqe.status().is_error() {
            self.stats.errors += 1;
            self.telemetry.count(Metric::Errors);
        }
        self.cq_batch.push((vm, vsq, cqe));
    }

    /// Flushes the poll's batched CQEs into the guest VCQs: entries stay in
    /// completion order, a full or already-backlogged (vm, vsq) parks the
    /// rest of its entries in the retry buffer (never overtaking), and each
    /// group that received entries gets exactly one notify.
    fn flush_cq_batch(&mut self) -> bool {
        if self.cq_batch.is_empty() {
            return false;
        }
        let entries: Vec<(usize, u16, CompletionEntry)> = self.cq_batch.drain(..).collect();
        self.stats.cq_batches += 1;
        self.telemetry.count(Metric::CqBatches);
        self.telemetry.depth(Depth::CqBatch, entries.len() as u64);
        let mut notified: Vec<(usize, u16)> = Vec::new();
        let mut blocked: Vec<(usize, u16)> = Vec::new();
        for (vm, vsq, cqe) in entries {
            // Never overtake completions already parked for this (vm, vsq):
            // pushing directly while earlier CQEs wait would reorder them.
            if blocked.contains(&(vm, vsq))
                || self.vcq_retry.iter().any(|&(v, q, _)| v == vm && q == vsq)
            {
                self.buffer_vcq_retry(vm, vsq, cqe);
                continue;
            }
            match self.vms[vm].vcqs[vsq as usize].push(cqe) {
                Ok(()) => {
                    if !notified.contains(&(vm, vsq)) {
                        notified.push((vm, vsq));
                    }
                }
                Err(cqe) => {
                    // VCQ full: retry on a later poll (the guest is
                    // reaping).
                    blocked.push((vm, vsq));
                    self.buffer_vcq_retry(vm, vsq, cqe);
                }
            }
        }
        self.stats.cq_notifies += notified.len() as u64;
        self.telemetry
            .add(Metric::CqNotifies, notified.len() as u64);
        true
    }

    fn buffer_vcq_retry(&mut self, vm: usize, vsq: u16, cqe: CompletionEntry) {
        if self.vcq_retry.len() >= self.vcq_retry_cap {
            // A guest that never reaps can otherwise grow this without
            // bound; drop (counted) rather than leak.
            self.stats.vcq_retry_drops += 1;
            self.telemetry.count(Metric::VcqRetryDrops);
            return;
        }
        self.vcq_retry.push((vm, vsq, cqe));
    }

    /// Fires due recovery timers: deadline expiries abort the attempt
    /// (retry may then resurrect it), reap timers reclaim quarantined
    /// zombie slots whose legs never reported back.
    fn fire_timers(&mut self, now: Ns) -> bool {
        let mut progressed = false;
        while let Some(&Reverse((at, ..))) = self.timers.peek() {
            if at > now {
                break;
            }
            let Reverse((_, tag, seq, vm, kind)) = self.timers.pop().expect("peeked");
            let vm = vm as usize;
            let Some(state) = self.table.get(tag) else {
                continue;
            };
            if state.seq != seq {
                continue; // slot was reused; stale timer
            }
            match kind {
                TIMER_DEADLINE => {
                    if state.zombie || state.deadline == 0 || state.deadline > now {
                        continue; // superseded by a retry or later dispatch
                    }
                    if state.pending == 0 {
                        continue; // everything reported in time
                    }
                    self.stats.aborts += 1;
                    self.telemetry.count(Metric::Aborts);
                    let state = self.table.get_mut(tag).expect("present");
                    let hq_was_pending = state.pending & path_bits::HQ != 0;
                    if state.first_fault_at == 0 {
                        state.first_fault_at = now;
                    }
                    // Abandon the in-flight legs; their completions (if
                    // they ever arrive) are dropped as late.
                    state.orphaned |= state.pending;
                    state.pending = 0;
                    state.hooks = 0;
                    state.deadline = 0;
                    let (vm_id, vsq) = (state.vm, state.vsq);
                    self.telemetry.request_event(
                        now,
                        vm_id,
                        vsq,
                        tag,
                        Self::gen_of(seq),
                        Stage::Abort,
                        PathKind::None,
                    );
                    if hq_was_pending {
                        self.breaker_failure(vm, now);
                    }
                    // ABORTED is retryable, so finish() re-dispatches the
                    // command unless retries are exhausted.
                    self.finish(vm, tag, Status::ABORTED, now);
                    progressed = true;
                }
                _ => {
                    // TIMER_REAP: reclaim a zombie slot whose abandoned
                    // legs never completed (e.g. dropped completions).
                    if state.zombie {
                        self.table.remove(tag);
                        progressed = true;
                    }
                }
            }
        }
        progressed
    }

    /// Re-dispatches requests whose retry backoff has elapsed.
    fn fire_retries(&mut self, now: Ns) -> bool {
        let mut progressed = false;
        while let Some(&Reverse((at, ..))) = self.retryq.peek() {
            if at > now {
                break;
            }
            let Reverse((_, tag, seq, vm)) = self.retryq.pop().expect("peeked");
            let vm = vm as usize;
            let Some(state) = self.table.get(tag) else {
                continue;
            };
            if state.seq != seq || state.zombie || state.pending != 0 {
                continue;
            }
            let (send, hooks, wc) = (state.dispatch_send, state.dispatch_hooks, state.dispatch_wc);
            self.dispatch(vm, tag, send, hooks, wc, now);
            progressed = true;
        }
        progressed
    }
}

/// Quarantine linger for restored tags on shards without a recovery
/// config (with one, its `zombie_linger` is used instead).
const DEFAULT_ZOMBIE_LINGER: Ns = 50 * MS;

/// A detached slot's placeholder classifier: a stray invocation (which
/// should never happen — detached slots are skipped by ingest) completes
/// immediately with an internal error instead of routing anywhere.
struct TombstoneClassifier;

impl NativeClassifier for TombstoneClassifier {
    fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
        Verdict(verdict_bits::COMPLETE | Status::INTERNAL.0 as u64)
    }
}

/// One-pass snapshot of a shard's observable state: counters, table
/// marks, breaker states, and tenant views collected together, so an
/// aggregated view can never pair counters from one instant with breaker
/// state from another.
pub struct ShardSnapshot {
    /// The shard's counters.
    pub stats: RouterStats,
    /// Peak routing-table occupancy.
    pub high_water: usize,
    /// Current routing-table occupancy (incl. quarantined tags).
    pub in_flight: usize,
    /// `(vm_id, open, opens)` per live VM slot (empty when recovery is
    /// off).
    pub breakers: Vec<(u32, bool, u64)>,
    /// Per-tenant scheduler views (empty without fleet mode).
    pub tenants: Vec<TenantView>,
    /// The shard's poll mode at the snapshot instant (Spin without a
    /// governor).
    pub poll_mode: PollMode,
    /// The batch bound in force (auto-tuned shards move this at runtime).
    pub batch: usize,
}

/// Everything one shard contributes to a servicing snapshot, extracted by
/// [`Router::into_service`].
pub struct RouterExport {
    /// Highest request sequence number this shard issued.
    pub next_seq: u64,
    /// The shard's lifetime counters.
    pub stats: RouterStats,
    /// Peak routing-table occupancy.
    pub high_water: usize,
    /// `(vm_slot, tag, state)` for every live routing-table entry.
    pub entries: Vec<(usize, u16, RequestState)>,
    /// `(tag, at)` for every still-valid retry-backoff entry.
    pub retries: Vec<(u16, Ns)>,
    /// Undelivered guest CQEs as `(vm_slot, vsq, cqe)`, oldest first.
    pub cqes: Vec<(usize, u16, CompletionEntry)>,
    /// Breaker snapshot per VM slot (parallel to the shard's bind order).
    pub breakers: Vec<BreakerSnap>,
}

/// Live-servicing surface: quiesce gates, drain predicates, snapshot
/// extraction, and restore injection. The engine drives these; they are
/// exposed on the shard so manual-poll rigs can exercise them too.
impl Router {
    /// Engine generation this shard admits under.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    pub(crate) fn set_generation(&mut self, generation: u32) {
        self.generation = generation;
    }

    /// Raises the sequence floor so replayed requests never reuse a
    /// pre-snapshot sequence number.
    pub(crate) fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Opens/closes the shard-wide admission gate. Closed, the shard
    /// drains no VSQ but keeps processing completions, timers, and
    /// retries — the quiesce protocol's "stop admitting, keep converging".
    pub fn set_admitting(&mut self, on: bool) {
        self.admitting = on;
    }

    /// Whether the shard-wide admission gate is open.
    pub fn admitting(&self) -> bool {
        self.admitting
    }

    /// Gates one VM slot's admission (hot detach quiesces a single tenant
    /// without touching anyone else's queues).
    pub(crate) fn set_vm_admitting(&mut self, slot: usize, on: bool) {
        self.vm_admitting[slot] = on;
    }

    /// In-flight requests that still owe their guest an answer
    /// (quarantined zombie tags excluded — their guests were answered).
    pub fn live_in_flight(&self) -> usize {
        self.table.iter().filter(|(_, s)| !s.zombie).count()
    }

    /// True once every admitted request has answered its guest and no
    /// work is parked inside the shard. Quarantined tags and undelivered
    /// VCQ retries do not block a drain: both are serialized by the
    /// snapshot.
    pub fn is_drained(&self) -> bool {
        self.live_in_flight() == 0 && self.station.is_empty() && self.cq_batch.is_empty()
    }

    /// Whether `slot` has fully drained: no station work queued for it
    /// and no live table entry admitted through it (detach safety; other
    /// tenants' backlogs don't matter here).
    pub(crate) fn vm_quiesced(&self, slot: usize) -> bool {
        self.vm_work[slot] == 0
            && !self
                .table
                .iter()
                .any(|(_, s)| s.slot as usize == slot && !s.zombie)
    }

    /// One-pass observable snapshot (see [`ShardSnapshot`]).
    pub fn stats_snapshot(&self) -> ShardSnapshot {
        let breakers = if self.recovery.is_some() {
            self.breaker_view()
                .map(|(vm_id, b)| (vm_id, b.is_open(), b.opens()))
                .collect()
        } else {
            Vec::new()
        };
        ShardSnapshot {
            stats: self.stats,
            high_water: self.table.high_water(),
            in_flight: self.table.in_flight(),
            breakers,
            tenants: self.fleet_view(),
            poll_mode: self.poll_mode(),
            batch: self.batch,
        }
    }

    /// Consumes the shard into its serializable remains plus the VM
    /// bindings to rebind (`None` marks a detached tombstone slot).
    ///
    /// Station work still queued is force-applied first — accepted
    /// commands either dispatch (and serialize as in-flight) or complete
    /// (and serialize as undelivered CQEs); nothing is lost to the
    /// snapshot.
    pub(crate) fn into_service(mut self) -> (RouterExport, Vec<Option<VmBinding>>) {
        while let Some((work, t)) = self.station.pop_done_timed(Ns::MAX) {
            self.apply(work, t);
        }
        self.flush_cq_batch();
        let entries: Vec<(usize, u16, RequestState)> = self
            .table
            .iter()
            .map(|(tag, s)| (s.slot as usize, tag, s.clone()))
            .collect();
        // The retry heap keeps stale entries by design (seq-checked on
        // fire); only entries that still name a live, waiting request are
        // worth carrying.
        let retries: Vec<(u16, Ns)> = self
            .retryq
            .iter()
            .filter_map(|&Reverse((at, tag, seq, _))| {
                let s = self.table.get(tag)?;
                (s.seq == seq && !s.zombie && s.pending == 0).then_some((tag, at))
            })
            .collect();
        let cqes: Vec<(usize, u16, CompletionEntry)> = self.vcq_retry.drain(..).collect();
        let export = RouterExport {
            next_seq: self.next_seq,
            stats: self.stats,
            high_water: self.table.high_water(),
            entries,
            retries,
            cqes,
            breakers: self.breakers.iter().map(|b| b.save()).collect(),
        };
        let active = self.vm_active;
        let vms = self
            .vms
            .into_iter()
            .zip(active)
            .map(|(v, live)| live.then_some(v))
            .collect();
        (export, vms)
    }

    /// Pins a pre-snapshot request at its old tag as a quarantined zombie
    /// carrying its **old** generation. The guest's answer comes from the
    /// replayed attempt (or already came, for snapshot-time zombies); this
    /// slot exists so the old engine's in-flight legs — which carry this
    /// CID — land on an old-generation entry and are dropped as epoch-late
    /// stragglers instead of touching whatever reuses the tag. A reap
    /// timer bounds the quarantine. Fails (false) if the tag is taken.
    pub(crate) fn inject_quarantine(&mut self, tag: u16, saved: &RequestState, now: Ns) -> bool {
        let linger = self
            .recovery
            .map(|c| c.zombie_linger)
            .unwrap_or(DEFAULT_ZOMBIE_LINGER);
        if let Some(existing) = self.table.get_mut(tag) {
            // Resharding down can land two old shards' quarantines on the
            // same tag of one new shard. Both groups' stale legs will
            // arrive here carrying this CID; merging the orphan masks
            // keeps the tag pinned until every leg is accounted for.
            if existing.zombie && existing.generation != self.generation {
                existing.orphaned |= saved.pending | saved.orphaned;
                return true;
            }
            return false;
        }
        let mut state = saved.clone();
        state.orphaned |= state.pending;
        state.pending = 0;
        state.hooks = 0;
        state.will_complete = 0;
        state.deadline = 0;
        state.zombie = true;
        let seq = state.seq;
        if !self.table.insert_at(tag, state) {
            return false;
        }
        self.timers
            .push(Reverse((now + linger, tag, seq, 0, TIMER_REAP)));
        true
    }

    /// Re-admits a snapshotted request as a fresh attempt: new tag, new
    /// sequence, **current** generation. The replay re-dispatches the
    /// masks of the request's latest dispatch (or a plain fast-path read
    /// for a parked coalesce follower that never dispatched); a saved
    /// backoff (`retry_at`) is honoured instead of dispatching at once.
    /// Exactly-once holds because the pre-snapshot attempt's legs land on
    /// the quarantined old tag, never here.
    pub(crate) fn inject_replay(
        &mut self,
        slot: usize,
        saved: &RequestState,
        old_tag: u16,
        retry_at: Option<Ns>,
        now: Ns,
    ) {
        let (send, hooks, wc) = if saved.dispatch_send != 0 {
            (saved.dispatch_send, saved.dispatch_hooks, saved.dispatch_wc)
        } else {
            (path_bits::HQ, 0, path_bits::HQ)
        };
        self.next_seq += 1;
        let seq = self.next_seq;
        let state = RequestState {
            vm: self.vms[slot].vm_id,
            slot: slot as u16,
            vsq: saved.vsq,
            guest_cid: saved.guest_cid,
            cmd: saved.cmd,
            pending: 0,
            hooks: 0,
            will_complete: 0,
            status: Status::SUCCESS,
            user_tag: saved.user_tag,
            accepted_at: now,
            sent_paths: 0,
            dispatched_at: 0,
            serviced_at: 0,
            seq,
            retries: saved.retries,
            deadline: 0,
            dispatch_send: 0,
            dispatch_hooks: 0,
            dispatch_wc: 0,
            orphaned: 0,
            zombie: false,
            first_fault_at: 0,
            generation: self.generation,
        };
        let vsq = saved.vsq;
        let tag = match self.table.insert(state) {
            Some(tag) => tag,
            None => {
                // Table exhausted on the restore target (e.g. resharding
                // down concentrated too many groups): surface a transient
                // internal error rather than silently dropping the guest's
                // command.
                let cqe = CompletionEntry::new(saved.guest_cid, Status::INTERNAL);
                self.post_vcq(slot, vsq, cqe, now);
                return;
            }
        };
        self.stats.replayed += 1;
        self.telemetry.count(Metric::ReplayedRequests);
        let (vm_id, gen) = (self.vms[slot].vm_id, Self::gen_of(seq));
        // A replay opens a *new* span: VsqFetch starts it (the old span's
        // trace lives in the pre-snapshot engine), Replayed marks why and
        // names the pre-snapshot attempt (old tag + generation) so the
        // trace forest can stitch both attempts into one tree.
        self.telemetry
            .request_event(now, vm_id, vsq, tag, gen, Stage::VsqFetch, PathKind::None);
        self.telemetry.link_event(
            now,
            vm_id,
            vsq,
            tag,
            gen,
            Stage::Replayed,
            old_tag,
            Self::gen_of(saved.seq),
        );
        match retry_at {
            Some(at) if at > now => {
                let state = self.table.get_mut(tag).expect("just inserted");
                state.dispatch_send = send;
                state.dispatch_hooks = hooks;
                state.dispatch_wc = wc;
                self.retryq.push(Reverse((at, tag, seq, slot as u16)));
            }
            _ => self.dispatch(slot, tag, send, hooks, wc, now),
        }
    }

    /// Re-buffers an undelivered pre-snapshot guest CQE; the poll loop's
    /// retry path delivers it in order. Not re-counted — its request was
    /// counted completed before the snapshot.
    pub(crate) fn requeue_vcq(&mut self, slot: usize, vsq: u16, cqe: CompletionEntry) {
        self.vcq_retry.push((slot, vsq, cqe));
    }

    /// Restores one VM slot's circuit breaker from a snapshot.
    pub(crate) fn restore_breaker(&mut self, slot: usize, snap: &BreakerSnap) {
        if let Some(b) = self.breakers.get_mut(slot) {
            b.restore(snap);
        }
    }

    /// Swaps `slot`'s binding for an inert tombstone and returns the real
    /// binding. The caller guarantees the slot is quiesced
    /// ([`Router::vm_quiesced`]). The tombstone keeps every other
    /// binding's slot index stable, so no other tenant's queues move.
    /// Quarantined zombie tags of the departed VM are left to their reap
    /// timers — the reap path never touches the binding.
    pub(crate) fn detach_slot(&mut self, slot: usize) -> VmBinding {
        self.vm_active[slot] = false;
        self.vm_admitting[slot] = false;
        // Parked completions for the departing binding are undeliverable
        // once its queues leave; drop them, counted.
        let before = self.vcq_retry.len();
        self.vcq_retry.retain(|&(v, _, _)| v != slot);
        let dropped = (before - self.vcq_retry.len()) as u64;
        self.stats.vcq_retry_drops += dropped;
        let old = &self.vms[slot];
        let tombstone = VmBinding {
            vm_id: u32::MAX,
            mem: old.mem.clone(),
            partition: old.partition,
            vsqs: Vec::new(),
            vcqs: Vec::new(),
            hsq: SqPair::new(2).0,
            hcq: CqPair::new(2).1,
            kernel: None,
            notify: None,
            classifier: Classifier::Native(Box::new(TombstoneClassifier)),
        };
        std::mem::replace(&mut self.vms[slot], tombstone)
    }
}

impl Actor for Router {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        self.last_poll = now;
        // Governor prologue: account idle burn since the previous poll
        // and, if parked with work already visible, take the doorbell
        // kick now so this very poll drains it (the wakeup latency rides
        // on the first station push as wake debt).
        let doorbell = self.governor.is_some() && self.doorbell_pending();
        let mut gov_debt = 0;
        let gov_before: Option<GovernorCounters> = self.governor.as_mut().map(|g| {
            let before = g.counters();
            g.begin_poll(now);
            if doorbell {
                g.doorbell_wake(now);
            }
            gov_debt = g.take_wake_debt();
            before
        });
        self.pending_wake_debt += gov_debt;
        let mut progressed = false;
        // Retry any VCQ posts that found the queue full — in submission
        // order per (vm, vsq): once a queue refuses an entry, later
        // entries for the same queue stay parked behind it, so the guest
        // never sees completions reordered by VCQ pressure.
        if !self.vcq_retry.is_empty() {
            let retries: Vec<_> = self.vcq_retry.drain(..).collect();
            let mut blocked: Vec<(usize, u16)> = Vec::new();
            let mut notified: Vec<(usize, u16)> = Vec::new();
            for (vm, vsq, cqe) in retries {
                if blocked.contains(&(vm, vsq)) {
                    self.vcq_retry.push((vm, vsq, cqe));
                    continue;
                }
                if let Err(cqe) = self.vms[vm].vcqs[vsq as usize].push(cqe) {
                    blocked.push((vm, vsq));
                    self.vcq_retry.push((vm, vsq, cqe));
                } else {
                    if !notified.contains(&(vm, vsq)) {
                        notified.push((vm, vsq));
                    }
                    progressed = true;
                }
            }
            // A replay round is one coalesced ring write per queue too.
            self.stats.cq_notifies += notified.len() as u64;
            self.telemetry
                .add(Metric::CqNotifies, notified.len() as u64);
        }
        // Timers and retries run unconditionally: even with recovery off, a
        // servicing restore can arm quarantine reap timers and carried-over
        // retry backoffs on this shard.
        progressed |= self.fire_timers(now);
        progressed |= self.fire_retries(now);
        progressed |= self.ingest(now);
        while let Some((work, t)) = self.station.pop_done_timed(now) {
            self.apply(work, t);
            progressed = true;
        }
        // Doorbell coalescing: everything this poll completed goes out in
        // one flush, one notify per touched (vm, vsq).
        progressed |= self.flush_cq_batch();
        // Governor epilogue: walk the Spin → Yield → Parked ladder (or
        // rewind to Spin on progress) and surface what changed.
        if let Some(before) = gov_before {
            let queue_gap = self.min_arrival_gap();
            let g = self.governor.as_mut().expect("checked");
            if let Some(gap) = queue_gap {
                g.note_queue_gap(gap);
            }
            g.end_poll(now, progressed);
            // A non-doorbell wake (recovery timer, internal event) owes
            // its debt to the next poll's first work.
            self.pending_wake_debt += self.governor.as_mut().expect("checked").take_wake_debt();
            let after = self.governor.as_ref().expect("checked").counters();
            let transitions = after.transitions - before.transitions;
            if transitions > 0 {
                self.telemetry.add(Metric::PollModeTransitions, transitions);
            }
            if after.parks > before.parks {
                self.telemetry
                    .add(Metric::ShardParks, after.parks - before.parks);
                self.telemetry
                    .tag_event(now, 0, Stage::ShardPark, PathKind::None);
            }
            if after.wakes > before.wakes {
                self.telemetry
                    .add(Metric::ShardWakes, after.wakes - before.wakes);
                self.telemetry
                    .tag_event(now, 0, Stage::ShardWake, PathKind::None);
            }
        }
        // Batch auto-tune: close the observation window if due and adopt
        // the hill-climb's pick.
        let occupancy = self.table.in_flight();
        let capacity = self.table.capacity();
        if let Some(t) = &mut self.tuner {
            if let Some(next) = t.maybe_retune(now, occupancy, capacity) {
                self.batch = next;
                self.telemetry.count(Metric::BatchRetunes);
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        let mut next = self.station.next_event();
        for vm in &self.vms {
            if let Some(k) = vm.kernel.as_ref().and_then(|k| k.next_event()) {
                next = Some(next.map_or(k, |n| n.min(k)));
            }
        }
        if !self.vcq_retry.is_empty() {
            let retry = self.last_poll + US;
            next = Some(next.map_or(retry, |n| n.min(retry)));
        }
        // Recovery wake-ups: deadlines/reaps and backoff expiries must
        // advance virtual time even when every other actor is idle (a
        // dropped completion leaves nothing else scheduled).
        if let Some(&Reverse((at, ..))) = self.timers.peek() {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        if let Some(&Reverse((at, ..))) = self.retryq.peek() {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        // Fleet-scheduler wake-up: backlog deferred by a token bucket or
        // deficit preemption must be revisited even if every guest is
        // quietly waiting on its completions.
        if let Some(at) = self.sched_recheck {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        // Parked-shard wakeup deadline: with work already visible in a
        // queue, the doorbell kick lands one wakeup latency after the
        // last poll. Without this a manually driven engine
        // (`next_event_all` loops, thread-drain on stop) would sleep
        // through the doorbell.
        if let Some(g) = &self.governor {
            if let Some(at) = g.next_wake(self.doorbell_pending()) {
                next = Some(next.map_or(at, |n| n.min(at)));
            }
        }
        next
    }

    fn charged(&self) -> Ns {
        let kernel: Ns = self
            .vms
            .iter()
            .filter_map(|v| v.kernel.as_ref().map(|k| k.charged()))
            .sum();
        let governor: Ns = self.governor.as_ref().map_or(0, |g| g.burn());
        self.station.charged() + kernel + governor
    }

    fn cpu_mode(&self) -> CpuMode {
        if self.governor.is_some() {
            // The governor self-charges its spin/yield burn into
            // `charged` and parked time is free, so the executor should
            // add nothing of its own.
            CpuMode::EventDriven
        } else {
            CpuMode::Adaptive {
                idle_timeout: self.cost.adaptive_idle_timeout,
            }
        }
    }
}
