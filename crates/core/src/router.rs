//! The NVMetro I/O router.
//!
//! The router shadows each VM's virtual queues (VSQ/VCQ), invokes the VM's
//! classifier at every decision point, and forwards commands over the fast
//! path (device HSQ/HCQ), the kernel path, or the notify path (UIF
//! NSQ/NCQ). It implements the paper's §III-C mechanics:
//!
//! * **iterative routing** — hooks re-invoke the classifier when a chosen
//!   path completes, forming a per-request state machine;
//! * **multicast** — a verdict may name several paths; the request then
//!   completes only when all of them have finished (used by mirroring);
//! * **direct mediation** — classifier writes to the context's writable
//!   window are copied back into the forwarded command (LBA translation);
//! * **isolation** — the router re-checks the VM's partition bounds on
//!   every fast-path send, whatever the classifier did;
//! * **shared worker** — one router serves many VMs round-robin and tracks
//!   per-VM activity (its CPU mode is adaptive polling).
//!
//! Only the 64-byte command block moves between queues; data pages stay in
//! guest memory.

use crate::classify::{
    path_bits, Classifier, RequestCtx, Verdict, HOOK_HCQ, HOOK_KCQ, HOOK_NCQ, HOOK_VSQ,
};
use crate::controller::Partition;
use crate::routing::{RequestState, RoutingTable};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{
    CompletionEntry, CqConsumer, CqProducer, SqConsumer, SqProducer, Status, SubmissionEntry,
};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, Station, US};
use nvmetro_telemetry::{Metric, PathKind, Route, Segment, Stage, TelemetryHandle};
use std::sync::Arc;

/// The kernel path a VM's requests may be routed through (implemented by
/// `nvmetro-kernel` as a block-layer + device-mapper stack).
pub trait KernelPath: Send {
    /// Submits a translated request tagged `tag` at virtual time `now`.
    fn submit(&mut self, tag: u16, cmd: SubmissionEntry, now: Ns);
    /// Drains finished requests into `out` as `(tag, status)` pairs.
    fn poll(&mut self, now: Ns, out: &mut Vec<(u16, Status)>);
    /// Earliest future completion, if any work is in flight.
    fn next_event(&self) -> Option<Ns>;
    /// Host CPU consumed by this path so far.
    fn charged(&self) -> Ns;
}

/// The notify path's router-side queue ends.
pub struct NotifyBinding {
    /// Notify submission queue toward the UIF.
    pub nsq: SqProducer,
    /// Notify completion queue back from the UIF.
    pub ncq: CqConsumer,
}

/// Everything the router needs to serve one VM.
pub struct VmBinding {
    /// VM identifier (classifier context field).
    pub vm_id: u32,
    /// The VM's guest memory (not touched by the router itself; recorded
    /// for diagnostics and symmetry with real IOMMU bindings).
    pub mem: Arc<GuestMemory>,
    /// Partition bounds enforced on every fast-path send.
    pub partition: Partition,
    /// Router-side ends of the VM's virtual queues.
    pub vsqs: Vec<SqConsumer>,
    /// Router-side ends of the VM's virtual completion queues.
    pub vcqs: Vec<CqProducer>,
    /// Fast path: producer end of this VM's host submission queue.
    pub hsq: SqProducer,
    /// Fast path: consumer end of this VM's host completion queue.
    pub hcq: CqConsumer,
    /// Optional kernel path.
    pub kernel: Option<Box<dyn KernelPath>>,
    /// Optional notify path (UIF).
    pub notify: Option<NotifyBinding>,
    /// The VM's installed I/O classifier.
    pub classifier: Classifier,
}

/// Router counters exposed for tests and reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    /// Commands accepted from VSQs.
    pub accepted: u64,
    /// Classifier invocations (all hooks).
    pub classifier_runs: u64,
    /// Commands forwarded to the fast path.
    pub sent_hq: u64,
    /// Commands forwarded to the kernel path.
    pub sent_kq: u64,
    /// Commands forwarded to the notify path.
    pub sent_nq: u64,
    /// Requests sent to more than one target at once.
    pub multicasts: u64,
    /// Completions delivered to VCQs.
    pub completed: u64,
    /// Requests finished with an error status.
    pub errors: u64,
    /// Completions that no longer matched a tracked request.
    pub spurious: u64,
}

enum Work {
    Ingress {
        vm: usize,
        vsq: u16,
        cmd: SubmissionEntry,
    },
    PathDone {
        vm: usize,
        path: u8,
        tag: u16,
        status: Status,
    },
}

/// The I/O router actor. One router instance is one worker thread in the
/// paper's deployment; several VMs share it round-robin.
pub struct Router {
    name: String,
    cost: CostModel,
    vms: Vec<VmBinding>,
    table: RoutingTable,
    station: Station<Work>,
    kernel_out: Vec<(u16, Status)>,
    vcq_retry: Vec<(usize, u16, CompletionEntry)>,
    last_poll: Ns,
    stats: RouterStats,
    telemetry: TelemetryHandle,
}

impl Router {
    /// Creates an empty router. `workers` models the number of worker
    /// threads sharing the routing work (the paper's scalability evaluation
    /// uses one); `table_capacity` bounds concurrent in-flight requests.
    pub fn new(name: &str, cost: CostModel, workers: usize, table_capacity: usize) -> Self {
        Router {
            name: name.to_string(),
            cost,
            vms: Vec::new(),
            table: RoutingTable::new(table_capacity),
            station: Station::new(workers.max(1)),
            kernel_out: Vec::new(),
            vcq_retry: Vec::new(),
            last_poll: 0,
            stats: RouterStats::default(),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry handle (from `Telemetry::register_worker`).
    /// The default is a disabled handle, which costs one branch per
    /// instrumentation point.
    pub fn set_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// Binds a VM; returns its index.
    pub fn bind_vm(&mut self, binding: VmBinding) -> usize {
        self.vms.push(binding);
        self.vms.len() - 1
    }

    /// Router counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Peak concurrent in-flight requests.
    pub fn high_water(&self) -> usize {
        self.table.high_water()
    }

    /// Access to a bound VM's classifier (host-side configuration of
    /// classifier maps, on-the-fly classifier replacement).
    pub fn classifier_mut(&mut self, vm: usize) -> &mut Classifier {
        &mut self.vms[vm].classifier
    }

    /// Replaces a VM's classifier at runtime ("storage administrators can
    /// install, migrate and remove storage functions on the fly", §III-B).
    pub fn install_classifier(&mut self, vm: usize, classifier: Classifier) -> Classifier {
        std::mem::replace(&mut self.vms[vm].classifier, classifier)
    }

    fn ingest(&mut self, now: Ns) -> bool {
        let mut any = false;
        for vm in 0..self.vms.len() {
            // Fast-path completions.
            while let Some(cqe) = self.vms[vm].hcq.pop() {
                let tag = cqe.cid;
                let cost = self.completion_cost(tag, path_bits::HQ);
                self.station.push(
                    Work::PathDone {
                        vm,
                        path: path_bits::HQ,
                        tag,
                        status: cqe.status(),
                    },
                    cost,
                    now,
                );
                any = true;
            }
            // Kernel-path completions.
            if let Some(kernel) = self.vms[vm].kernel.as_mut() {
                self.kernel_out.clear();
                kernel.poll(now, &mut self.kernel_out);
                let done: Vec<(u16, Status)> = self.kernel_out.drain(..).collect();
                for (tag, status) in done {
                    let cost = self.completion_cost(tag, path_bits::KQ);
                    self.station.push(
                        Work::PathDone {
                            vm,
                            path: path_bits::KQ,
                            tag,
                            status,
                        },
                        cost,
                        now,
                    );
                    any = true;
                }
            }
            // Notify-path completions.
            while let Some(cqe) = self.vms[vm].notify.as_ref().and_then(|n| n.ncq.pop()) {
                let tag = cqe.cid;
                let cost = self.completion_cost(tag, path_bits::NQ);
                self.station.push(
                    Work::PathDone {
                        vm,
                        path: path_bits::NQ,
                        tag,
                        status: cqe.status(),
                    },
                    cost,
                    now,
                );
                any = true;
            }
            // New guest commands (after completions: frees table slots).
            for vsq in 0..self.vms[vm].vsqs.len() {
                while let Some((cmd, _)) = self.vms[vm].vsqs[vsq].pop() {
                    self.station.push(
                        Work::Ingress {
                            vm,
                            vsq: vsq as u16,
                            cmd,
                        },
                        self.cost.router_cmd + self.cost.classifier_run,
                        now,
                    );
                    any = true;
                }
            }
        }
        any
    }

    fn completion_cost(&self, tag: u16, path: u8) -> Ns {
        let classify = self
            .table
            .get(tag)
            .map(|s| s.hooks & path != 0)
            .unwrap_or(false);
        self.cost.router_cmd
            + if classify {
                self.cost.classifier_run
            } else {
                0
            }
    }

    fn apply(&mut self, work: Work, t: Ns) {
        match work {
            Work::Ingress { vm, vsq, cmd } => self.apply_ingress(vm, vsq, cmd, t),
            Work::PathDone {
                vm,
                path,
                tag,
                status,
            } => self.apply_path_done(vm, path, tag, status, t),
        }
    }

    fn apply_ingress(&mut self, vm: usize, vsq: u16, cmd: SubmissionEntry, t: Ns) {
        self.stats.accepted += 1;
        self.telemetry.count(Metric::Accepted);
        let state = RequestState {
            vm: self.vms[vm].vm_id,
            vsq,
            guest_cid: cmd.cid,
            cmd,
            pending: 0,
            hooks: 0,
            will_complete: 0,
            status: Status::SUCCESS,
            user_tag: 0,
            accepted_at: t,
            sent_paths: 0,
            dispatched_at: 0,
            serviced_at: 0,
        };
        let tag = match self.table.insert(state) {
            Some(tag) => tag,
            None => {
                // Routing table exhausted: fail the request (the guest sees
                // a transient internal error, like a controller under
                // resource pressure).
                let cqe = CompletionEntry::new(cmd.cid, Status::INTERNAL);
                self.post_vcq(vm, vsq, cqe, t);
                self.stats.errors += 1;
                return;
            }
        };
        self.telemetry.event(
            t,
            self.vms[vm].vm_id,
            vsq,
            tag,
            Stage::VsqFetch,
            PathKind::None,
        );
        let verdict = self.run_classifier(vm, tag, HOOK_VSQ, Status::SUCCESS, t);
        self.route(vm, tag, verdict, t);
    }

    fn apply_path_done(&mut self, vm: usize, path: u8, tag: u16, status: Status, t: Ns) {
        let (hooked, vm_id, vsq) = {
            let Some(state) = self.table.get_mut(tag) else {
                self.stats.spurious += 1;
                self.telemetry.count(Metric::Spurious);
                return;
            };
            state.pending &= !path;
            state.serviced_at = t;
            if status.is_error() && !state.status.is_error() {
                state.status = status;
            }
            (state.hooks & path != 0, state.vm, state.vsq)
        };
        if hooked {
            // One-shot hook: consume it, then let the classifier decide the
            // next leg of the state machine.
            self.table.get_mut(tag).expect("still present").hooks &= !path;
            self.telemetry.count(Metric::HookReentries);
            self.telemetry.event(
                t,
                vm_id,
                vsq,
                tag,
                Stage::HookReentry,
                Self::path_kind(path),
            );
            let hook_id = match path {
                path_bits::HQ => HOOK_HCQ,
                path_bits::KQ => HOOK_KCQ,
                _ => HOOK_NCQ,
            };
            let verdict = self.run_classifier(vm, tag, hook_id, status, t);
            self.route(vm, tag, verdict, t);
            return;
        }
        let state = self.table.get_mut(tag).expect("still present");
        let wc = state.will_complete & path != 0;
        if state.pending == 0 && (wc || state.will_complete == 0) {
            let final_status = state.status;
            self.finish(vm, tag, final_status, t);
        }
        // Otherwise: a multicast leg finished but others are outstanding —
        // wait for them.
    }

    /// Telemetry path annotation for a path bit.
    fn path_kind(path: u8) -> PathKind {
        match path {
            path_bits::HQ => PathKind::Fast,
            path_bits::KQ => PathKind::Kernel,
            path_bits::NQ => PathKind::Notify,
            _ => PathKind::None,
        }
    }

    fn run_classifier(&mut self, vm: usize, tag: u16, hook: u32, error: Status, t: Ns) -> Verdict {
        self.stats.classifier_runs += 1;
        self.telemetry.count(Metric::ClassifierRuns);
        let state = self.table.get(tag).expect("request tracked");
        let (vm_id, vsq) = (state.vm, state.vsq);
        let mut ctx = RequestCtx::new(
            hook,
            self.vms[vm].vm_id,
            state.vsq,
            &state.cmd,
            error,
            state.user_tag,
        );
        let verdict = self.vms[vm].classifier.run(&mut ctx, t);
        self.telemetry
            .event(t, vm_id, vsq, tag, Stage::Classified, PathKind::None);
        // Direct mediation: copy the writable window back into the command.
        let state = self.table.get_mut(tag).expect("request tracked");
        state.cmd.set_slba(ctx.slba());
        let nlb = ctx.nlb().clamp(1, 0x1_0000);
        state.cmd.cdw12 = (state.cmd.cdw12 & !0xFFFF) | (nlb - 1);
        state.user_tag = ctx.user_tag();
        verdict
    }

    fn route(&mut self, vm: usize, tag: u16, verdict: Verdict, t: Ns) {
        if verdict.complete() {
            self.finish(vm, tag, verdict.status(), t);
            return;
        }
        let send = verdict.send_mask();
        if send == 0 {
            // A verdict that neither completes nor routes is a classifier
            // bug; fail closed.
            self.finish(vm, tag, Status::PATH_ERROR, t);
            return;
        }
        if send.count_ones() > 1 {
            self.stats.multicasts += 1;
            self.telemetry.count(Metric::Multicasts);
        }
        // Isolation: the fast path reaches real hardware, so partition
        // bounds are enforced here, not trusted to the classifier.
        if send & path_bits::HQ != 0 {
            let state = self.table.get(tag).expect("tracked");
            let (slba, nlb) = (state.cmd.slba(), state.cmd.nlb());
            let has_lba = state.cmd.has_data() || matches!(state.cmd.opcode, 0x08 | 0x09);
            if has_lba && !self.vms[vm].partition.contains(slba, nlb) {
                self.finish(vm, tag, Status::LBA_OUT_OF_RANGE, t);
                return;
            }
        }
        let state = self.table.get_mut(tag).expect("tracked");
        state.hooks |= verdict.hook_mask();
        state.will_complete |= verdict.will_complete_mask();
        state.sent_paths |= send;
        if state.dispatched_at == 0 {
            state.dispatched_at = t;
        }
        let (vm_id, vsq) = (state.vm, state.vsq);
        let mut fwd = state.cmd;
        fwd.cid = tag;
        if send & path_bits::HQ != 0 {
            self.table.get_mut(tag).expect("tracked").pending |= path_bits::HQ;
            self.stats.sent_hq += 1;
            self.telemetry.count(Metric::SentFast);
            self.telemetry
                .event(t, vm_id, vsq, tag, Stage::Dispatched, PathKind::Fast);
            if self.vms[vm].hsq.push(fwd).is_err() {
                self.path_unavailable(vm, tag, path_bits::HQ, t);
                return;
            }
        }
        if send & path_bits::KQ != 0 {
            self.table.get_mut(tag).expect("tracked").pending |= path_bits::KQ;
            self.stats.sent_kq += 1;
            self.telemetry.count(Metric::SentKernel);
            self.telemetry
                .event(t, vm_id, vsq, tag, Stage::Dispatched, PathKind::Kernel);
            match self.vms[vm].kernel.as_mut() {
                Some(k) => k.submit(tag, fwd, t),
                None => {
                    self.path_unavailable(vm, tag, path_bits::KQ, t);
                    return;
                }
            }
        }
        if send & path_bits::NQ != 0 {
            self.table.get_mut(tag).expect("tracked").pending |= path_bits::NQ;
            self.stats.sent_nq += 1;
            self.telemetry.count(Metric::SentNotify);
            self.telemetry
                .event(t, vm_id, vsq, tag, Stage::Dispatched, PathKind::Notify);
            let pushed = match self.vms[vm].notify.as_mut() {
                Some(n) => n.nsq.push(fwd).is_ok(),
                None => false,
            };
            if !pushed {
                self.path_unavailable(vm, tag, path_bits::NQ, t);
            }
        }
    }

    /// A target queue was missing or full: fail the request. Outstanding
    /// legs on other paths will be dropped as spurious when they return.
    fn path_unavailable(&mut self, vm: usize, tag: u16, path: u8, t: Ns) {
        let state = self.table.get_mut(tag).expect("tracked");
        state.pending &= !path;
        self.finish(vm, tag, Status::PATH_ERROR, t);
    }

    fn finish(&mut self, vm: usize, tag: u16, status: Status, t: Ns) {
        let state = match self.table.remove(tag) {
            Some(s) => s,
            None => {
                self.stats.spurious += 1;
                self.telemetry.count(Metric::Spurious);
                return;
            }
        };
        if self.telemetry.enabled() {
            self.telemetry.event(
                t,
                state.vm,
                state.vsq,
                tag,
                Stage::VcqComplete,
                PathKind::None,
            );
            // Attribute latency to the heaviest path the request touched
            // (notify > kernel > fast); requests the router completed
            // without dispatching have no route.
            let route = if state.sent_paths & path_bits::NQ != 0 {
                Some(Route::Notify)
            } else if state.sent_paths & path_bits::KQ != 0 {
                Some(Route::Kernel)
            } else if state.sent_paths & path_bits::HQ != 0 {
                Some(Route::Fast)
            } else {
                None
            };
            if let Some(route) = route {
                self.telemetry
                    .route_latency(route, t.saturating_sub(state.accepted_at));
            }
            if state.dispatched_at != 0 {
                self.telemetry.segment(
                    Segment::IngressToDispatch,
                    state.dispatched_at.saturating_sub(state.accepted_at),
                );
                if state.serviced_at != 0 {
                    self.telemetry.segment(
                        Segment::DispatchToService,
                        state.serviced_at.saturating_sub(state.dispatched_at),
                    );
                    self.telemetry.segment(
                        Segment::ServiceToComplete,
                        t.saturating_sub(state.serviced_at),
                    );
                }
            }
        }
        let cqe = CompletionEntry::new(state.guest_cid, status);
        self.post_vcq(vm, state.vsq, cqe, t);
    }

    fn post_vcq(&mut self, vm: usize, vsq: u16, cqe: CompletionEntry, _t: Ns) {
        self.stats.completed += 1;
        self.telemetry.count(Metric::Completed);
        if cqe.status().is_error() {
            self.stats.errors += 1;
            self.telemetry.count(Metric::Errors);
        }
        if let Err(cqe) = self.vms[vm].vcqs[vsq as usize].push(cqe) {
            // VCQ full: retry on a later poll (the guest is reaping).
            self.vcq_retry.push((vm, vsq, cqe));
        }
    }
}

impl Actor for Router {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        self.last_poll = now;
        let mut progressed = false;
        // Retry any VCQ posts that found the queue full.
        if !self.vcq_retry.is_empty() {
            let retries: Vec<_> = self.vcq_retry.drain(..).collect();
            for (vm, vsq, cqe) in retries {
                if let Err(cqe) = self.vms[vm].vcqs[vsq as usize].push(cqe) {
                    self.vcq_retry.push((vm, vsq, cqe));
                } else {
                    progressed = true;
                }
            }
        }
        progressed |= self.ingest(now);
        while let Some((work, t)) = self.station.pop_done_timed(now) {
            self.apply(work, t);
            progressed = true;
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        let mut next = self.station.next_event();
        for vm in &self.vms {
            if let Some(k) = vm.kernel.as_ref().and_then(|k| k.next_event()) {
                next = Some(next.map_or(k, |n| n.min(k)));
            }
        }
        if !self.vcq_retry.is_empty() {
            let retry = self.last_poll + US;
            next = Some(next.map_or(retry, |n| n.min(retry)));
        }
        next
    }

    fn charged(&self) -> Ns {
        let kernel: Ns = self
            .vms
            .iter()
            .filter_map(|v| v.kernel.as_ref().map(|k| k.charged()))
            .sum();
        self.station.charged() + kernel
    }

    fn cpu_mode(&self) -> CpuMode {
        CpuMode::Adaptive {
            idle_timeout: self.cost.adaptive_idle_timeout,
        }
    }
}
