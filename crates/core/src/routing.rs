//! The routing table: per-request state for iterative routing.
//!
//! Every in-flight guest request owns a slot recording where it came from,
//! the (possibly mediated) command, which paths it is outstanding on, which
//! completions re-invoke the classifier, and which completions finish it —
//! "a routing table that tracks each request's state during classification"
//! (§III-C). Slot indices double as the command identifiers NVMetro stamps
//! on forwarded commands, so path completions map back to their request in
//! O(1).

use nvmetro_nvme::{Status, SubmissionEntry};

/// One in-flight request.
#[derive(Clone, Debug)]
pub struct RequestState {
    /// Originating VM.
    pub vm: u32,
    /// Router VM-slot (binding index) the request entered through. Two
    /// queue groups of one VM can share a shard, so `vm` alone does not
    /// identify the owning binding; servicing snapshots map this slot back
    /// to the global queue-group ordinal.
    pub slot: u16,
    /// VSQ index within the VM.
    pub vsq: u16,
    /// Guest-assigned command identifier (restored on completion).
    pub guest_cid: u16,
    /// Current (mediated) command forwarded to paths.
    pub cmd: SubmissionEntry,
    /// Paths the request is outstanding on (see `classify::path_bits`).
    pub pending: u8,
    /// Paths whose completion re-invokes the classifier.
    pub hooks: u8,
    /// Paths whose completion finishes the request.
    pub will_complete: u8,
    /// Latest path status observed.
    pub status: Status,
    /// Classifier scratch state carried across hooks.
    pub user_tag: u64,
    /// Virtual time the request entered the router (latency accounting).
    pub accepted_at: u64,
    /// Every path this request was ever sent down (union of dispatch
    /// masks; unlike `pending` this never clears). Telemetry derives the
    /// request's route attribution from it.
    pub sent_paths: u8,
    /// Time of the first path dispatch (0 = never dispatched).
    pub dispatched_at: u64,
    /// Time the last path leg reported service done (0 = none yet).
    pub serviced_at: u64,
    /// Router-wide sequence number, unique per insert: recovery timers and
    /// retry entries store it so a reused slot never matches a stale timer.
    pub seq: u64,
    /// Times the request was re-dispatched after a retryable failure.
    pub retries: u32,
    /// Absolute deadline of the current dispatch (0 = none armed).
    pub deadline: u64,
    /// Path mask of the latest dispatch, replayed verbatim on retry.
    pub dispatch_send: u8,
    /// Hook mask of the latest dispatch.
    pub dispatch_hooks: u8,
    /// Will-complete mask of the latest dispatch.
    pub dispatch_wc: u8,
    /// Paths abandoned by an abort whose completions may still arrive;
    /// such completions are dropped as late instead of re-entering the
    /// request's state machine.
    pub orphaned: u8,
    /// The guest already received this request's CQE (after an abort with
    /// legs still in flight); the slot lingers only to quarantine the tag.
    pub zombie: bool,
    /// Time the first fault was observed (0 = none); recovery latency runs
    /// from here to final completion.
    pub first_fault_at: u64,
    /// Engine generation the request was admitted under. Bumped on every
    /// restore/reshard; a completion whose slot carries an older generation
    /// than the router's is an epoch-late straggler and is quarantined, so
    /// a pre-snapshot leg can never satisfy a post-restore command.
    pub generation: u32,
}

impl RequestState {
    /// The route this request is attributed to for latency accounting:
    /// the heaviest path it touched (notify > kernel > fast), or `None`
    /// if it never left the router.
    pub fn route_bits(&self) -> u8 {
        self.sent_paths
    }
}

enum Slot {
    Free { next_free: Option<u16> },
    Busy(Box<RequestState>),
}

/// A fixed-capacity slab of request states with O(1) alloc/free.
pub struct RoutingTable {
    slots: Vec<Slot>,
    free_head: Option<u16>,
    in_flight: usize,
    high_water: usize,
}

impl RoutingTable {
    /// Creates a table able to track `capacity` concurrent requests
    /// (at most 65 535, since slot indices ride in 16-bit CID fields).
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity >= 1 && capacity < u16::MAX as usize,
            "capacity must be in [1, 65534]"
        );
        let slots = (0..capacity)
            .map(|i| Slot::Free {
                next_free: if i + 1 < capacity {
                    Some((i + 1) as u16)
                } else {
                    None
                },
            })
            .collect();
        RoutingTable {
            slots,
            free_head: Some(0),
            in_flight: 0,
            high_water: 0,
        }
    }

    /// Allocates a slot for a new request; `None` when the table is full
    /// (the router then backpressures the VSQ).
    pub fn insert(&mut self, state: RequestState) -> Option<u16> {
        let idx = self.free_head?;
        match self.slots[idx as usize] {
            Slot::Free { next_free } => {
                self.free_head = next_free;
                self.slots[idx as usize] = Slot::Busy(Box::new(state));
                self.in_flight += 1;
                self.high_water = self.high_water.max(self.in_flight);
                Some(idx)
            }
            Slot::Busy(_) => unreachable!("free list points at busy slot"),
        }
    }

    /// Reserves a *specific* slot for `state` (live servicing: a restored
    /// engine pins a quarantined request to the exact tag its old shard
    /// stamped on the in-flight command, so the late completion still maps
    /// back by CID). O(capacity): the free list is unlinked by walking it.
    /// Fails if `tag` is out of range or the slot is already busy.
    pub fn insert_at(&mut self, tag: u16, state: RequestState) -> bool {
        if tag as usize >= self.slots.len() || matches!(self.slots[tag as usize], Slot::Busy(_)) {
            return false;
        }
        // Unlink `tag` from the free list.
        if self.free_head == Some(tag) {
            let Slot::Free { next_free } = self.slots[tag as usize] else {
                unreachable!("checked free above");
            };
            self.free_head = next_free;
        } else {
            let mut cur = self.free_head;
            loop {
                let Some(idx) = cur else {
                    return false; // free slot not on the free list: corrupt
                };
                let Slot::Free { next_free } = self.slots[idx as usize] else {
                    unreachable!("free list points at busy slot");
                };
                if next_free == Some(tag) {
                    let Slot::Free {
                        next_free: tag_next,
                    } = self.slots[tag as usize]
                    else {
                        unreachable!("checked free above");
                    };
                    self.slots[idx as usize] = Slot::Free {
                        next_free: tag_next,
                    };
                    break;
                }
                cur = next_free;
            }
        }
        self.slots[tag as usize] = Slot::Busy(Box::new(state));
        self.in_flight += 1;
        self.high_water = self.high_water.max(self.in_flight);
        true
    }

    /// Iterates every live request as `(tag, state)`, in slot order
    /// (servicing snapshots walk the table with this).
    pub fn iter(&self) -> impl Iterator<Item = (u16, &RequestState)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Busy(state) => Some((i as u16, state.as_ref())),
            Slot::Free { .. } => None,
        })
    }

    /// Accesses a request by tag.
    pub fn get(&self, tag: u16) -> Option<&RequestState> {
        match self.slots.get(tag as usize) {
            Some(Slot::Busy(s)) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to a request by tag.
    pub fn get_mut(&mut self, tag: u16) -> Option<&mut RequestState> {
        match self.slots.get_mut(tag as usize) {
            Some(Slot::Busy(s)) => Some(s),
            _ => None,
        }
    }

    /// Frees a slot, returning its state.
    pub fn remove(&mut self, tag: u16) -> Option<RequestState> {
        let slot = self.slots.get_mut(tag as usize)?;
        if matches!(slot, Slot::Free { .. }) {
            return None;
        }
        let old = std::mem::replace(
            slot,
            Slot::Free {
                next_free: self.free_head,
            },
        );
        self.free_head = Some(tag);
        self.in_flight -= 1;
        match old {
            Slot::Busy(s) => Some(*s),
            Slot::Free { .. } => unreachable!(),
        }
    }

    /// Requests currently tracked.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Maximum concurrent requests ever tracked.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> RequestState {
        RequestState {
            vm: 0,
            slot: 0,
            vsq: 0,
            guest_cid: 7,
            cmd: SubmissionEntry::flush(1),
            pending: 0,
            hooks: 0,
            will_complete: 0,
            status: Status::SUCCESS,
            user_tag: 0,
            accepted_at: 0,
            sent_paths: 0,
            dispatched_at: 0,
            serviced_at: 0,
            seq: 0,
            retries: 0,
            deadline: 0,
            dispatch_send: 0,
            dispatch_hooks: 0,
            dispatch_wc: 0,
            orphaned: 0,
            zombie: false,
            first_fault_at: 0,
            generation: 0,
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = RoutingTable::new(4);
        let tag = t.insert(state()).unwrap();
        assert_eq!(t.get(tag).unwrap().guest_cid, 7);
        assert_eq!(t.in_flight(), 1);
        let removed = t.remove(tag).unwrap();
        assert_eq!(removed.guest_cid, 7);
        assert_eq!(t.in_flight(), 0);
        assert!(t.get(tag).is_none());
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut t = RoutingTable::new(3);
        let tags: Vec<u16> = (0..3).map(|_| t.insert(state()).unwrap()).collect();
        assert!(t.insert(state()).is_none(), "table must be full");
        t.remove(tags[1]).unwrap();
        assert!(t.insert(state()).is_some(), "slot must be reusable");
    }

    #[test]
    fn tags_are_distinct_while_live() {
        let mut t = RoutingTable::new(16);
        let tags: Vec<u16> = (0..16).map(|_| t.insert(state()).unwrap()).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
    }

    #[test]
    fn double_remove_is_none() {
        let mut t = RoutingTable::new(2);
        let tag = t.insert(state()).unwrap();
        assert!(t.remove(tag).is_some());
        assert!(t.remove(tag).is_none());
    }

    #[test]
    fn mutation_persists() {
        let mut t = RoutingTable::new(2);
        let tag = t.insert(state()).unwrap();
        t.get_mut(tag).unwrap().pending = 0b101;
        assert_eq!(t.get(tag).unwrap().pending, 0b101);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut t = RoutingTable::new(8);
        let a = t.insert(state()).unwrap();
        let b = t.insert(state()).unwrap();
        t.remove(a).unwrap();
        t.remove(b).unwrap();
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.high_water(), 2);
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn insert_at_pins_tags_and_keeps_the_free_list_sound() {
        let mut t = RoutingTable::new(8);
        // Pin a mid-list slot, the head, and the tail.
        assert!(t.insert_at(3, state()));
        assert!(t.insert_at(0, state()));
        assert!(t.insert_at(7, state()));
        assert!(!t.insert_at(3, state()), "busy slot must be refused");
        assert!(!t.insert_at(8, state()), "out of range must be refused");
        assert_eq!(t.in_flight(), 3);
        // The remaining 5 slots must still allocate, never colliding with
        // the pinned tags.
        let rest: Vec<u16> = (0..5).map(|_| t.insert(state()).unwrap()).collect();
        assert!(rest.iter().all(|&tag| ![0, 3, 7].contains(&tag)));
        assert!(t.insert(state()).is_none(), "table must now be full");
        assert_eq!(t.iter().count(), 8);
        t.remove(3).unwrap();
        assert_eq!(t.insert(state()).unwrap(), 3, "freed pin must recycle");
    }

    #[test]
    fn churn_reuses_slots_without_leak() {
        let mut t = RoutingTable::new(4);
        for _ in 0..1000 {
            let tag = t.insert(state()).unwrap();
            t.remove(tag).unwrap();
        }
        assert_eq!(t.in_flight(), 0);
        // All capacity still available.
        let tags: Vec<_> = (0..4).map(|_| t.insert(state()).unwrap()).collect();
        assert_eq!(tags.len(), 4);
    }
}
