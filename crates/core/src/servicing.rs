//! Live servicing: versioned serializable state for the whole datapath.
//!
//! A running [`Engine`](crate::engine::Engine) can be quiesced, snapshotted
//! into a [`ServiceState`], and restored into a *fresh* engine — possibly
//! with a different shard count (online resharding) — without losing or
//! duplicating a single guest completion. The snapshot captures everything
//! the paper's router accumulates at runtime: in-flight tag tables,
//! retry/backoff ledgers, circuit-breaker states, undelivered guest CQEs,
//! and the fleet governor's per-tenant throttle cells.
//!
//! The byte format is an in-repo wire encoding (no external serialization
//! deps): little-endian fixed-width integers behind a magic + version
//! header, with an FNV-1a checksum trailer so a truncated or bit-flipped
//! snapshot is rejected instead of restored. Versioning rules: the header
//! version is bumped on any layout change, and `from_bytes` refuses
//! versions it does not know — a servicing blob is either understood
//! exactly or not at all.

use crate::policy::{BatchPolicy, EnginePolicy, PlacementPolicy, PollPolicy};
use crate::recovery::BreakerSnap;
use crate::router::RouterStats;
use crate::routing::RequestState;
use nvmetro_nvme::{Status, SubmissionEntry};
use nvmetro_sim::Topology;

/// Magic prefix of every serialized [`ServiceState`].
pub const SERVICE_MAGIC: [u8; 4] = *b"NVMS";
/// Current layout version (v2 added the [`EnginePolicy`] block after the
/// shard count; v1 blobs are refused, not guessed at).
pub const SERVICE_VERSION: u16 = 2;

/// Why a servicing operation or deserialization failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The blob does not start with [`SERVICE_MAGIC`].
    BadMagic,
    /// The blob's layout version is not understood.
    BadVersion(u16),
    /// The blob ended before the structure it promised.
    Truncated,
    /// The checksum trailer does not match the payload.
    BadChecksum,
    /// The blob parsed but its contents are inconsistent.
    Corrupt(&'static str),
    /// The restore target does not match the snapshot (queue-group list
    /// diverged between snapshot and restore).
    Mismatch(&'static str),
    /// The named VM is not bound to the engine.
    UnknownVm(u32),
    /// The VM still has work in flight; pause it and drain first.
    VmBusy(u32),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadMagic => write!(f, "not a service-state blob (bad magic)"),
            ServiceError::BadVersion(v) => write!(f, "unknown service-state version {v}"),
            ServiceError::Truncated => write!(f, "service-state blob truncated"),
            ServiceError::BadChecksum => write!(f, "service-state checksum mismatch"),
            ServiceError::Corrupt(what) => write!(f, "service-state corrupt: {what}"),
            ServiceError::Mismatch(what) => write!(f, "restore target mismatch: {what}"),
            ServiceError::UnknownVm(vm) => write!(f, "vm {vm} is not bound"),
            ServiceError::VmBusy(vm) => write!(f, "vm {vm} still has I/O in flight"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Little-endian wire primitives (in-repo; no external deps).
mod wire {
    use super::ServiceError;

    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        pub fn new() -> Self {
            Writer { buf: Vec::new() }
        }
        pub fn u8(&mut self, v: u8) {
            self.buf.push(v);
        }
        pub fn u16(&mut self, v: u16) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        pub fn u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        pub fn u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        pub fn bytes(&mut self, v: &[u8]) {
            self.buf.extend_from_slice(v);
        }
        pub fn as_slice(&self) -> &[u8] {
            &self.buf
        }
        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }
    }

    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }
        fn take(&mut self, n: usize) -> Result<&'a [u8], ServiceError> {
            if self.pos + n > self.buf.len() {
                return Err(ServiceError::Truncated);
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }
        pub fn u8(&mut self) -> Result<u8, ServiceError> {
            Ok(self.take(1)?[0])
        }
        pub fn u16(&mut self) -> Result<u16, ServiceError> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
        }
        pub fn u32(&mut self) -> Result<u32, ServiceError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }
        pub fn u64(&mut self) -> Result<u64, ServiceError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }
    }
}

/// FNV-1a 64 over the payload; the integrity trailer of the byte format.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One queue group's identity, in bind order (the restore side rebinds
/// these round-robin onto the new shard set in exactly this order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedGroup {
    /// Owning VM id.
    pub vm_id: u32,
    /// Index of the group within its VM.
    pub queue_group: u32,
}

/// One in-flight (or quarantined) request, pinned to the tag its old shard
/// stamped on the forwarded command.
#[derive(Clone, Debug)]
pub struct SavedRequest {
    /// Global queue-group ordinal (index into [`ServiceState::groups`]).
    pub group: u32,
    /// Routing-table tag = command CID on every internal queue.
    pub tag: u16,
    /// The full request state, including its admission generation.
    pub state: RequestState,
}

/// A retry-backoff ledger entry: request `(group, tag)` re-dispatches at
/// absolute virtual time `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedRetry {
    /// Global queue-group ordinal of the owning request.
    pub group: u32,
    /// The request's routing-table tag at snapshot time.
    pub tag: u16,
    /// Absolute fire time of the pending re-dispatch.
    pub at: u64,
}

/// A guest CQE that was completed but not yet delivered (VCQ full or
/// mid-flush at snapshot time). Re-buffered verbatim on restore — it was
/// already counted as completed, so delivery must not double-count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedCqe {
    /// Global queue-group ordinal.
    pub group: u32,
    /// VCQ index within the group.
    pub vsq: u16,
    /// Guest command identifier.
    pub cid: u16,
    /// Packed NVMe status (phase bit excluded).
    pub status: u16,
}

/// One queue group's circuit-breaker state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SavedBreaker {
    /// Global queue-group ordinal.
    pub group: u32,
    /// The flattened breaker state machine.
    pub snap: BreakerSnap,
}

/// One tenant's governor cell: throttle knob plus admission counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedTenant {
    /// Tenant (VM) id.
    pub tenant: u32,
    /// Throttle scale in permille.
    pub throttle_permille: u32,
    /// Requests admitted so far (all shards).
    pub admitted: u64,
    /// Token-bucket denials so far (all shards).
    pub throttled: u64,
}

/// The versioned, serializable state of a quiesced engine.
///
/// Produced by `Engine::snapshot`, consumed by `Engine::restore` (same or
/// different shard count). `to_bytes`/`from_bytes` round-trip it through
/// the in-repo byte format for on-disk or over-the-wire transport.
#[derive(Clone, Debug)]
pub struct ServiceState {
    /// Engine generation the snapshot was taken under; the restored engine
    /// runs at `generation + 1` and quarantines completions from earlier
    /// generations.
    pub generation: u32,
    /// Shard count at snapshot time (informational; restore may differ).
    pub shards: u32,
    /// The datapath policy the engine ran under (poll governor, batch
    /// tuning, placement, workers). The restore side applies it to the new
    /// engine, so tenants keep the policy they were admitted with across
    /// snapshot/restore and reshard.
    pub policy: EnginePolicy,
    /// Highest request sequence number issued by any shard; the restored
    /// shards continue from here so trace generations never collide.
    pub next_seq: u64,
    /// Lifetime counters up to the snapshot (including totals carried from
    /// earlier restores); the restored engine reports these plus whatever
    /// its fresh shards accumulate.
    pub carried: RouterStats,
    /// Peak routing-table occupancy up to the snapshot.
    pub carried_high_water: u64,
    /// Every bound queue group, in bind order.
    pub groups: Vec<SavedGroup>,
    /// Every live routing-table entry (in-flight, retry-waiting, and
    /// quarantined-zombie requests).
    pub requests: Vec<SavedRequest>,
    /// The retry-backoff ledger (pending re-dispatch times).
    pub retries: Vec<SavedRetry>,
    /// Undelivered guest CQEs.
    pub cqes: Vec<SavedCqe>,
    /// Per-queue-group circuit-breaker states (empty when recovery is
    /// off).
    pub breakers: Vec<SavedBreaker>,
    /// Per-tenant governor cells (empty when fleet mode is off).
    pub tenants: Vec<SavedTenant>,
}

/// Bounds a parsed count so a corrupt length prefix cannot ask for
/// gigabytes before the checksum is consulted.
const MAX_COUNT: u32 = 1 << 24;

fn write_cmd(w: &mut wire::Writer, c: &SubmissionEntry) {
    w.u8(c.opcode);
    w.u8(c.flags);
    w.u16(c.cid);
    w.u32(c.nsid);
    w.u32(c.cdw2);
    w.u32(c.cdw3);
    w.u64(c.mptr);
    w.u64(c.prp1);
    w.u64(c.prp2);
    w.u32(c.cdw10);
    w.u32(c.cdw11);
    w.u32(c.cdw12);
    w.u32(c.cdw13);
    w.u32(c.cdw14);
    w.u32(c.cdw15);
}

fn read_cmd(r: &mut wire::Reader) -> Result<SubmissionEntry, ServiceError> {
    Ok(SubmissionEntry {
        opcode: r.u8()?,
        flags: r.u8()?,
        cid: r.u16()?,
        nsid: r.u32()?,
        cdw2: r.u32()?,
        cdw3: r.u32()?,
        mptr: r.u64()?,
        prp1: r.u64()?,
        prp2: r.u64()?,
        cdw10: r.u32()?,
        cdw11: r.u32()?,
        cdw12: r.u32()?,
        cdw13: r.u32()?,
        cdw14: r.u32()?,
        cdw15: r.u32()?,
    })
}

fn write_request(w: &mut wire::Writer, s: &RequestState) {
    w.u32(s.vm);
    w.u16(s.slot);
    w.u16(s.vsq);
    w.u16(s.guest_cid);
    write_cmd(w, &s.cmd);
    w.u8(s.pending);
    w.u8(s.hooks);
    w.u8(s.will_complete);
    w.u16(s.status.0);
    w.u64(s.user_tag);
    w.u64(s.accepted_at);
    w.u8(s.sent_paths);
    w.u64(s.dispatched_at);
    w.u64(s.serviced_at);
    w.u64(s.seq);
    w.u32(s.retries);
    w.u64(s.deadline);
    w.u8(s.dispatch_send);
    w.u8(s.dispatch_hooks);
    w.u8(s.dispatch_wc);
    w.u8(s.orphaned);
    w.u8(s.zombie as u8);
    w.u64(s.first_fault_at);
    w.u32(s.generation);
}

fn read_request(r: &mut wire::Reader) -> Result<RequestState, ServiceError> {
    Ok(RequestState {
        vm: r.u32()?,
        slot: r.u16()?,
        vsq: r.u16()?,
        guest_cid: r.u16()?,
        cmd: read_cmd(r)?,
        pending: r.u8()?,
        hooks: r.u8()?,
        will_complete: r.u8()?,
        status: Status(r.u16()?),
        user_tag: r.u64()?,
        accepted_at: r.u64()?,
        sent_paths: r.u8()?,
        dispatched_at: r.u64()?,
        serviced_at: r.u64()?,
        seq: r.u64()?,
        retries: r.u32()?,
        deadline: r.u64()?,
        dispatch_send: r.u8()?,
        dispatch_hooks: r.u8()?,
        dispatch_wc: r.u8()?,
        orphaned: r.u8()?,
        zombie: r.u8()? != 0,
        first_fault_at: r.u64()?,
        generation: r.u32()?,
    })
}

fn write_stats(w: &mut wire::Writer, s: &RouterStats) {
    for v in [
        s.accepted,
        s.classifier_runs,
        s.sent_hq,
        s.sent_kq,
        s.sent_nq,
        s.multicasts,
        s.completed,
        s.errors,
        s.spurious,
        s.retries,
        s.aborts,
        s.failovers,
        s.vcq_retry_drops,
        s.late_completions,
        s.cq_notifies,
        s.cq_batches,
        s.coalesced_reads,
        s.coalesce_fanout,
        s.sched_throttled,
        s.sched_preemptions,
        s.replayed,
        s.epoch_late_drops,
    ] {
        w.u64(v);
    }
}

fn read_stats(r: &mut wire::Reader) -> Result<RouterStats, ServiceError> {
    Ok(RouterStats {
        accepted: r.u64()?,
        classifier_runs: r.u64()?,
        sent_hq: r.u64()?,
        sent_kq: r.u64()?,
        sent_nq: r.u64()?,
        multicasts: r.u64()?,
        completed: r.u64()?,
        errors: r.u64()?,
        spurious: r.u64()?,
        retries: r.u64()?,
        aborts: r.u64()?,
        failovers: r.u64()?,
        vcq_retry_drops: r.u64()?,
        late_completions: r.u64()?,
        cq_notifies: r.u64()?,
        cq_batches: r.u64()?,
        coalesced_reads: r.u64()?,
        coalesce_fanout: r.u64()?,
        sched_throttled: r.u64()?,
        sched_preemptions: r.u64()?,
        replayed: r.u64()?,
        epoch_late_drops: r.u64()?,
    })
}

// Policy wire block: each axis is a kind byte followed by fixed-width
// parameters (zero-padded for parameterless kinds), so every v2 blob has
// the same policy-block length regardless of which variants are in force.
fn write_policy(w: &mut wire::Writer, p: &EnginePolicy) {
    match p.poll {
        PollPolicy::Spin => {
            w.u8(0);
            w.u64(0);
            w.u64(0);
        }
        PollPolicy::Adaptive {
            idle_spin,
            park_after,
        } => {
            w.u8(1);
            w.u64(idle_spin);
            w.u64(park_after);
        }
    }
    match p.batch {
        BatchPolicy::Fixed(n) => {
            w.u8(0);
            w.u64(n as u64);
            w.u64(0);
        }
        BatchPolicy::Auto { min, max } => {
            w.u8(1);
            w.u64(min as u64);
            w.u64(max as u64);
        }
    }
    match p.placement {
        PlacementPolicy::RoundRobin => {
            w.u8(0);
            for _ in 0..4 {
                w.u64(0);
            }
        }
        PlacementPolicy::Affine(t) => {
            w.u8(1);
            w.u64(t.nodes as u64);
            w.u64(t.cores_per_node as u64);
            w.u64(t.device_node as u64);
            w.u64(t.cross_penalty);
        }
    }
    w.u64(p.workers as u64);
}

fn read_policy(r: &mut wire::Reader) -> Result<EnginePolicy, ServiceError> {
    let poll = match r.u8()? {
        0 => {
            r.u64()?;
            r.u64()?;
            PollPolicy::Spin
        }
        1 => PollPolicy::Adaptive {
            idle_spin: r.u64()?,
            park_after: r.u64()?,
        },
        _ => return Err(ServiceError::Corrupt("unknown poll policy")),
    };
    let batch = match r.u8()? {
        0 => {
            let n = r.u64()? as usize;
            r.u64()?;
            BatchPolicy::Fixed(n.max(1))
        }
        1 => BatchPolicy::Auto {
            min: r.u64()? as usize,
            max: r.u64()? as usize,
        },
        _ => return Err(ServiceError::Corrupt("unknown batch policy")),
    };
    let placement = match r.u8()? {
        0 => {
            for _ in 0..4 {
                r.u64()?;
            }
            PlacementPolicy::RoundRobin
        }
        1 => PlacementPolicy::Affine(Topology {
            nodes: (r.u64()? as usize).max(1),
            cores_per_node: (r.u64()? as usize).max(1),
            device_node: r.u64()? as usize,
            cross_penalty: r.u64()?,
        }),
        _ => return Err(ServiceError::Corrupt("unknown placement policy")),
    };
    let workers = (r.u64()? as usize).max(1);
    Ok(EnginePolicy {
        poll,
        batch,
        placement,
        workers,
    })
}

fn read_count(r: &mut wire::Reader) -> Result<usize, ServiceError> {
    let n = r.u32()?;
    if n > MAX_COUNT {
        return Err(ServiceError::Corrupt("count out of bounds"));
    }
    Ok(n as usize)
}

impl ServiceState {
    /// Serializes into the versioned byte format (magic + version header,
    /// little-endian payload, FNV-1a checksum trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = wire::Writer::new();
        w.bytes(&SERVICE_MAGIC);
        w.u16(SERVICE_VERSION);
        w.u32(self.generation);
        w.u32(self.shards);
        write_policy(&mut w, &self.policy);
        w.u64(self.next_seq);
        write_stats(&mut w, &self.carried);
        w.u64(self.carried_high_water);
        w.u32(self.groups.len() as u32);
        for g in &self.groups {
            w.u32(g.vm_id);
            w.u32(g.queue_group);
        }
        w.u32(self.requests.len() as u32);
        for q in &self.requests {
            w.u32(q.group);
            w.u16(q.tag);
            write_request(&mut w, &q.state);
        }
        w.u32(self.retries.len() as u32);
        for t in &self.retries {
            w.u32(t.group);
            w.u16(t.tag);
            w.u64(t.at);
        }
        w.u32(self.cqes.len() as u32);
        for c in &self.cqes {
            w.u32(c.group);
            w.u16(c.vsq);
            w.u16(c.cid);
            w.u16(c.status);
        }
        w.u32(self.breakers.len() as u32);
        for b in &self.breakers {
            w.u32(b.group);
            w.u8(b.snap.state);
            w.u64(b.snap.until);
            w.u32(b.snap.consecutive_failures);
            w.u64(b.snap.opens);
        }
        w.u32(self.tenants.len() as u32);
        for t in &self.tenants {
            w.u32(t.tenant);
            w.u32(t.throttle_permille);
            w.u64(t.admitted);
            w.u64(t.throttled);
        }
        let checksum = fnv1a(w.as_slice());
        w.u64(checksum);
        w.into_bytes()
    }

    /// Parses a blob produced by [`ServiceState::to_bytes`], rejecting bad
    /// magic, unknown versions, truncation, and checksum mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServiceState, ServiceError> {
        if bytes.len() < SERVICE_MAGIC.len() + 2 + 8 {
            return Err(ServiceError::Truncated);
        }
        if bytes[..4] != SERVICE_MAGIC {
            return Err(ServiceError::BadMagic);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        if fnv1a(payload) != stored {
            return Err(ServiceError::BadChecksum);
        }
        let mut r = wire::Reader::new(&payload[4..]);
        let version = r.u16()?;
        if version != SERVICE_VERSION {
            return Err(ServiceError::BadVersion(version));
        }
        let generation = r.u32()?;
        let shards = r.u32()?;
        let policy = read_policy(&mut r)?;
        let next_seq = r.u64()?;
        let carried = read_stats(&mut r)?;
        let carried_high_water = r.u64()?;
        let mut groups = Vec::new();
        for _ in 0..read_count(&mut r)? {
            groups.push(SavedGroup {
                vm_id: r.u32()?,
                queue_group: r.u32()?,
            });
        }
        let mut requests = Vec::new();
        for _ in 0..read_count(&mut r)? {
            let group = r.u32()?;
            let tag = r.u16()?;
            let state = read_request(&mut r)?;
            if group as usize >= groups.len() {
                return Err(ServiceError::Corrupt("request group out of range"));
            }
            requests.push(SavedRequest { group, tag, state });
        }
        let mut retries = Vec::new();
        for _ in 0..read_count(&mut r)? {
            retries.push(SavedRetry {
                group: r.u32()?,
                tag: r.u16()?,
                at: r.u64()?,
            });
        }
        let mut cqes = Vec::new();
        for _ in 0..read_count(&mut r)? {
            let c = SavedCqe {
                group: r.u32()?,
                vsq: r.u16()?,
                cid: r.u16()?,
                status: r.u16()?,
            };
            if c.group as usize >= groups.len() {
                return Err(ServiceError::Corrupt("cqe group out of range"));
            }
            cqes.push(c);
        }
        let mut breakers = Vec::new();
        for _ in 0..read_count(&mut r)? {
            breakers.push(SavedBreaker {
                group: r.u32()?,
                snap: BreakerSnap {
                    state: r.u8()?,
                    until: r.u64()?,
                    consecutive_failures: r.u32()?,
                    opens: r.u64()?,
                },
            });
        }
        let mut tenants = Vec::new();
        for _ in 0..read_count(&mut r)? {
            tenants.push(SavedTenant {
                tenant: r.u32()?,
                throttle_permille: r.u32()?,
                admitted: r.u64()?,
                throttled: r.u64()?,
            });
        }
        if r.remaining() != 0 {
            return Err(ServiceError::Corrupt("trailing bytes"));
        }
        Ok(ServiceState {
            generation,
            shards,
            policy,
            next_seq,
            carried,
            carried_high_water,
            groups,
            requests,
            retries,
            cqes,
            breakers,
            tenants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ServiceState {
        let carried = RouterStats {
            accepted: 1234,
            completed: 1200,
            retries: 7,
            epoch_late_drops: 2,
            ..Default::default()
        };
        let cmd = SubmissionEntry::read(1, 0x40, 8, 0, 0);
        let req = RequestState {
            vm: 3,
            slot: 1,
            vsq: 2,
            guest_cid: 77,
            cmd,
            pending: 0b001,
            hooks: 0,
            will_complete: 0b001,
            status: Status::SUCCESS,
            user_tag: 42,
            accepted_at: 100,
            sent_paths: 0b001,
            dispatched_at: 110,
            serviced_at: 0,
            seq: 991,
            retries: 1,
            deadline: 5000,
            dispatch_send: 0b001,
            dispatch_hooks: 0,
            dispatch_wc: 0b001,
            orphaned: 0,
            zombie: false,
            first_fault_at: 0,
            generation: 4,
        };
        ServiceState {
            generation: 4,
            shards: 2,
            policy: EnginePolicy {
                poll: PollPolicy::Adaptive {
                    idle_spin: 8_000,
                    park_after: 64_000,
                },
                batch: BatchPolicy::Auto { min: 4, max: 256 },
                placement: PlacementPolicy::Affine(Topology {
                    nodes: 2,
                    cores_per_node: 4,
                    device_node: 1,
                    cross_penalty: 1_200,
                }),
                workers: 2,
            },
            next_seq: 1000,
            carried,
            carried_high_water: 96,
            groups: vec![
                SavedGroup {
                    vm_id: 3,
                    queue_group: 0,
                },
                SavedGroup {
                    vm_id: 9,
                    queue_group: 0,
                },
            ],
            requests: vec![SavedRequest {
                group: 0,
                tag: 17,
                state: req,
            }],
            retries: vec![SavedRetry {
                group: 0,
                tag: 17,
                at: 7777,
            }],
            cqes: vec![SavedCqe {
                group: 1,
                vsq: 0,
                cid: 5,
                status: Status::SUCCESS.0,
            }],
            breakers: vec![SavedBreaker {
                group: 0,
                snap: BreakerSnap {
                    state: BreakerSnap::OPEN,
                    until: 123456,
                    consecutive_failures: 4,
                    opens: 2,
                },
            }],
            tenants: vec![SavedTenant {
                tenant: 3,
                throttle_permille: 500,
                admitted: 88,
                throttled: 12,
            }],
        }
    }

    #[test]
    fn byte_format_round_trips() {
        let s = sample_state();
        let bytes = s.to_bytes();
        let r = ServiceState::from_bytes(&bytes).expect("round trip");
        assert_eq!(r.generation, 4);
        assert_eq!(r.shards, 2);
        assert_eq!(r.policy, s.policy);
        assert_eq!(r.next_seq, 1000);
        assert_eq!(r.carried.accepted, 1234);
        assert_eq!(r.carried.epoch_late_drops, 2);
        assert_eq!(r.carried_high_water, 96);
        assert_eq!(r.groups, s.groups);
        assert_eq!(r.requests.len(), 1);
        let q = &r.requests[0];
        assert_eq!((q.group, q.tag), (0, 17));
        assert_eq!(q.state.seq, 991);
        assert_eq!(q.state.cmd.slba(), 0x40);
        assert_eq!(q.state.cmd.nlb(), 8);
        assert_eq!(q.state.generation, 4);
        assert_eq!(r.retries, s.retries);
        assert_eq!(r.cqes, s.cqes);
        assert_eq!(r.breakers[0].snap.until, 123456);
        assert_eq!(r.tenants, s.tenants);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_state().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            ServiceState::from_bytes(&bytes).unwrap_err(),
            ServiceError::BadMagic
        );
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample_state().to_bytes();
        // Flip the version field, then re-stamp the checksum so version
        // checking (not the checksum) does the rejecting.
        bytes[4] = 0xFF;
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            ServiceState::from_bytes(&bytes).unwrap_err(),
            ServiceError::BadVersion(0xFF)
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample_state().to_bytes();
        for cut in [0usize, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            let r = ServiceState::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let clean = sample_state().to_bytes();
        for pos in [6usize, 20, clean.len() / 2, clean.len() - 9] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            assert_eq!(
                ServiceState::from_bytes(&bytes).unwrap_err(),
                ServiceError::BadChecksum,
                "bit flip at {pos} must fail the checksum"
            );
        }
    }
}
