//! Real-thread execution of poll-driven components.
//!
//! The same router / UIF / device objects that the virtual-time executor
//! steps for benchmarks run here on OS threads against the wall clock —
//! this is the configuration the functional examples and end-to-end tests
//! use, mirroring the paper's deployment (router worker threads in the
//! host kernel, UIF threads in a userspace process).

use nvmetro_sim::{Actor, Ns, Progress};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// An [`Actor`] being driven by a dedicated OS thread.
///
/// The loop implements the adaptive-polling discipline in real time: after
/// a run of idle polls it yields to the OS (the paper's `epoll` fallback),
/// resuming hard polling as soon as work reappears.
pub struct ActorThread<A: Actor + Send + 'static> {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<A>>,
}

impl<A: Actor + Send + 'static> ActorThread<A> {
    /// Moves `actor` onto a new thread. `time_scale` compresses virtual
    /// costs exactly as in `DeviceThread` (1.0 = modeled nanoseconds are
    /// wall nanoseconds; 100.0 = 100x faster than modeled).
    pub fn spawn(mut actor: A, time_scale: f64) -> Self {
        assert!(time_scale > 0.0);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let name = actor.name().to_string();
        let handle = std::thread::Builder::new()
            .name(format!("{name}-thread"))
            .spawn(move || {
                let start = Instant::now();
                let mut idle_streak = 0u32;
                while !stop2.load(Ordering::Relaxed) {
                    let now: Ns = (start.elapsed().as_nanos() as f64 * time_scale) as Ns;
                    match actor.poll(now) {
                        Progress::Busy => idle_streak = 0,
                        Progress::Idle => {
                            idle_streak = idle_streak.saturating_add(1);
                            if idle_streak > 32 {
                                // Park briefly: the OS-assisted wait of the
                                // paper's adaptive polling.
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                // Drain remaining scheduled work before handing back.
                while let Some(t) = actor.next_event() {
                    actor.poll(t);
                }
                actor
            })
            .expect("spawn actor thread");
        ActorThread {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and returns the actor.
    pub fn stop(mut self) -> A {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("still running")
            .join()
            .expect("actor thread panicked")
    }
}

impl<A: Actor + Send + 'static> Drop for ActorThread<A> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
