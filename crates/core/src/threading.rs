//! Real-thread execution of poll-driven components.
//!
//! The same router / UIF / device objects that the virtual-time executor
//! steps for benchmarks run here on OS threads against the wall clock —
//! this is the configuration the functional examples and end-to-end tests
//! use, mirroring the paper's deployment (router worker threads in the
//! host kernel, UIF threads in a userspace process).
//!
//! The drive loop itself lives in `nvmetro-sim` ([`ActorThread`]) so the
//! device crate can share it; this module adds [`Pool`], the one-decision-
//! point deployment handle: `Engine::spawn_threads` puts every router shard
//! on its own thread and returns a `Pool` the caller can keep adding
//! companion actors (device, UIF runners) to, then stop as a unit.

pub use nvmetro_sim::ActorThread;

use nvmetro_sim::Actor;

/// A set of OS threads driving boxed actors at a common time scale.
///
/// Replaces the per-call-site `ActorThread::spawn` / `DeviceThread::spawn`
/// wiring: one `Pool` owns the whole real-thread deployment and joins it in
/// one place.
pub struct Pool {
    time_scale: f64,
    threads: Vec<ActorThread<Box<dyn Actor + Send>>>,
}

impl Pool {
    /// An empty pool; threads spawned through it share `time_scale`.
    pub fn new(time_scale: f64) -> Self {
        assert!(time_scale > 0.0, "time scale must be positive");
        Pool {
            time_scale,
            threads: Vec::new(),
        }
    }

    /// Moves `actor` onto its own OS thread.
    pub fn spawn(&mut self, actor: impl Actor + Send + 'static) {
        self.spawn_boxed(Box::new(actor));
    }

    /// Moves an already-boxed actor onto its own OS thread.
    pub fn spawn_boxed(&mut self, actor: Box<dyn Actor + Send>) {
        self.threads
            .push(ActorThread::spawn(actor, self.time_scale));
    }

    /// Number of threads the pool is driving.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the pool is driving any threads.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// The common time scale threads are driven at.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Stops every thread and returns the actors in spawn order (each has
    /// drained its remaining scheduled work).
    pub fn stop(self) -> Vec<Box<dyn Actor + Send>> {
        self.threads.into_iter().map(ActorThread::stop).collect()
    }
}
