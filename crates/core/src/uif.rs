//! The userspace I/O function (UIF) framework (§III-D).
//!
//! A UIF is the userspace half of a storage function: it maps the notify
//! queues (NSQ/NCQ) into its address space, polls for requests exported by
//! the router, reads/writes the VM's data pages, and answers with a status
//! code — or performs its own backend disk I/O first (the paper's UIFs use
//! `io_uring`) and answers asynchronously.
//!
//! The framework mirrors the paper's 1.1 kLoC C++ library: it owns queue
//! setup, adaptive polling, NVMe command parsing, guest page access and
//! io_uring-style backend submission, so a concrete [`Uif`] (see
//! `nvmetro-functions`) only implements `work`.

use nvmetro_faults::{CmdClass, FaultAction, FaultInjector};
use nvmetro_mem::{prp_segments, GuestMemory, PAGE_SIZE};
use nvmetro_nvme::{
    CompletionEntry, CqConsumer, CqProducer, NvmOpcode, SqConsumer, SqProducer, Status,
    SubmissionEntry, LBA_SIZE,
};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, Station};
use nvmetro_telemetry::{Metric, PathKind, Stage, TelemetryHandle};
use std::collections::HashMap;
use std::sync::Arc;

/// What a UIF decided about a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UifDisposition {
    /// Respond to the router immediately with this status
    /// (`return false; /* respond with status */` in Listing 2).
    Respond(Status),
    /// The UIF issued asynchronous backend I/O and will respond when it
    /// completes (`return true; /* asynchronous response later */`).
    Async,
}

/// A storage function's userspace half.
pub trait Uif: Send {
    /// Handles one request exported over the notify path. `req` gives
    /// parsed command fields, guest data access, and the backend I/O
    /// handle.
    fn work(&mut self, req: &mut UifRequest<'_>) -> UifDisposition;

    /// Called when a backend I/O submitted through [`UifIoHandle`]
    /// completes; returns `Some((tag, status))` to answer the original
    /// request now.
    fn backend_done(&mut self, ticket: u64, status: Status) -> Option<(u16, Status)> {
        Some((ticket as u16, status))
    }

    /// Virtual-time CPU cost of `work` for this command (e.g. XTS cost for
    /// an encryptor). Defaults to the framework's per-request overhead only.
    fn work_cost(&self, cmd: &SubmissionEntry, cost: &CostModel) -> Ns {
        let _ = cmd;
        let _ = cost;
        0
    }

    /// Autonomous background work, called once per runner poll even when no
    /// request arrived: replica resync, link probing, housekeeping timers.
    /// Returns `true` if the UIF made progress (keeps the runner busy).
    fn tick(&mut self, io: &mut UifIoHandle<'_>, now: Ns) -> bool {
        let _ = io;
        let _ = now;
        false
    }

    /// Next virtual time at which [`Uif::tick`] has scheduled work (e.g. a
    /// link probe); merged into the runner's wakeup so the executor keeps
    /// advancing virtual time toward it even when the guest has gone quiet.
    fn next_event(&self) -> Option<Ns> {
        None
    }
}

/// A parsed request handed to [`Uif::work`].
pub struct UifRequest<'a> {
    /// The (router-mediated) command; `cid` is the routing tag.
    pub cmd: SubmissionEntry,
    /// Routing tag to echo in asynchronous responses.
    pub tag: u16,
    /// Virtual time at which the framework handed the request to `work`
    /// (lets fault-aware UIFs consult time-windowed fault plans).
    pub now: Ns,
    mem: &'a GuestMemory,
    io: &'a mut UifIo,
    transfer_data: bool,
}

impl<'a> UifRequest<'a> {
    /// NVM opcode of the request, if recognized.
    pub fn opcode(&self) -> Option<NvmOpcode> {
        self.cmd.nvm_opcode()
    }

    /// Request length in bytes.
    pub fn data_len(&self) -> usize {
        self.cmd.data_len()
    }

    /// Gathers the request's guest data pages (empty in no-data
    /// performance runs).
    pub fn read_guest(&self) -> Vec<u8> {
        if !self.transfer_data {
            return Vec::new();
        }
        let len = self.data_len();
        let segs = prp_segments(self.mem, self.cmd.prp1, self.cmd.prp2, len)
            .expect("router-validated PRPs");
        let mut out = Vec::with_capacity(len);
        for (gpa, l) in segs {
            out.extend(self.mem.read_vec(gpa, l));
        }
        out
    }

    /// Scatters `data` back into the request's guest pages.
    pub fn write_guest(&self, data: &[u8]) {
        if !self.transfer_data {
            return;
        }
        let segs = prp_segments(self.mem, self.cmd.prp1, self.cmd.prp2, data.len())
            .expect("router-validated PRPs");
        let mut off = 0;
        for (gpa, l) in segs {
            self.mem.write(gpa, &data[off..off + l]);
            off += l;
        }
    }

    /// Applies `f` to the guest data in place (e.g. in-place decryption of
    /// ciphertext the device already delivered, as in Listing 2's
    /// `do_read`).
    pub fn modify_guest(&self, f: impl FnOnce(&mut [u8])) {
        if !self.transfer_data {
            return;
        }
        let mut data = self.read_guest();
        f(&mut data);
        self.write_guest(&data);
    }

    /// The backend I/O handle (io_uring in the paper).
    pub fn io(&mut self) -> UifIoHandle<'_> {
        UifIoHandle { io: self.io }
    }
}

/// Borrowed access to the backend I/O engine from inside `work`.
pub struct UifIoHandle<'a> {
    io: &'a mut UifIo,
}

impl<'a> UifIoHandle<'a> {
    /// Submits an asynchronous write of `nlb` blocks at `slba`; `data`
    /// (when present) is copied into a pooled host buffer first.
    /// `ticket` comes back in [`Uif::backend_done`].
    pub fn write(&mut self, slba: u64, nlb: u32, data: Option<&[u8]>, ticket: u64) {
        self.io.submit(NvmOpcode::Write, slba, nlb, data, ticket);
    }

    /// Submits an asynchronous read (data lands in a pooled buffer and is
    /// discarded; used for prefetch/scrub-style functions).
    pub fn read(&mut self, slba: u64, nlb: u32, ticket: u64) {
        self.io.submit(NvmOpcode::Read, slba, nlb, None, ticket);
    }

    /// Submits a flush.
    pub fn flush(&mut self, ticket: u64) {
        self.io.submit(NvmOpcode::Flush, 0, 1, None, ticket);
    }
}

/// Pooled host buffer: a contiguous host-memory region plus prebuilt PRPs.
struct HostBuffer {
    prp1: u64,
    prp2: u64,
    base: u64,
    pages: usize,
}

/// io_uring-style backend I/O engine over the UIF's own device queue pair.
struct UifIo {
    sq: SqProducer,
    cq: CqConsumer,
    host_mem: Arc<GuestMemory>,
    pool: HashMap<usize, Vec<HostBuffer>>,
    in_flight: HashMap<u16, (u64, Option<HostBuffer>)>,
    next_cid: u16,
    charged: Ns,
    io_cost: Ns,
    transfer_data: bool,
    submitted: u64,
}

impl UifIo {
    fn alloc_buffer(&mut self, bytes: usize) -> HostBuffer {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        if let Some(buf) = self.pool.get_mut(&pages).and_then(|v| v.pop()) {
            return buf;
        }
        // Fresh region: data pages followed by one PRP-list page.
        let base = self.host_mem.alloc(pages * PAGE_SIZE);
        let (prp1, prp2) = if pages == 1 {
            (base, 0)
        } else if pages == 2 {
            (base, base + PAGE_SIZE as u64)
        } else {
            let list = self.host_mem.alloc(PAGE_SIZE);
            for i in 1..pages {
                self.host_mem
                    .write_u64(list + ((i - 1) * 8) as u64, base + (i * PAGE_SIZE) as u64);
            }
            (base, list)
        };
        HostBuffer {
            prp1,
            prp2,
            base,
            pages,
        }
    }

    fn submit(&mut self, op: NvmOpcode, slba: u64, nlb: u32, data: Option<&[u8]>, ticket: u64) {
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        let bytes = nlb as usize * LBA_SIZE;
        let buffer = if op == NvmOpcode::Flush || !self.transfer_data {
            None
        } else {
            let buf = self.alloc_buffer(bytes);
            if let Some(data) = data {
                self.host_mem.write(buf.base, data);
            }
            Some(buf)
        };
        let mut cmd = match op {
            NvmOpcode::Flush => SubmissionEntry::flush(1),
            _ => {
                let (prp1, prp2) = buffer
                    .as_ref()
                    .map(|b| (b.prp1, b.prp2))
                    .unwrap_or((0x1000, 0));
                if op == NvmOpcode::Write {
                    SubmissionEntry::write(1, slba, nlb, prp1, prp2)
                } else {
                    SubmissionEntry::read(1, slba, nlb, prp1, prp2)
                }
            }
        };
        cmd.cid = cid;
        self.in_flight.insert(cid, (ticket, buffer));
        self.charged += self.io_cost;
        self.submitted += 1;
        self.sq
            .push(cmd)
            .expect("UIF backend queue sized for max in-flight");
    }

    fn poll(&mut self, out: &mut Vec<(u64, Status)>) {
        while let Some(cqe) = self.cq.pop() {
            if let Some((ticket, buffer)) = self.in_flight.remove(&cqe.cid) {
                if let Some(buf) = buffer {
                    self.pool.entry(buf.pages).or_default().push(buf);
                }
                out.push((ticket, cqe.status()));
            }
        }
    }
}

/// Runs one UIF against one VM's notify queues — the framework's event
/// loop with adaptive polling ("switch between active polling and
/// OS-assisted waiting depending on the activity level", §III-D).
pub struct UifRunner {
    name: String,
    cost: CostModel,
    nsq: SqConsumer,
    ncq: CqProducer,
    guest_mem: Arc<GuestMemory>,
    uif: Box<dyn Uif>,
    work: Station<SubmissionEntry>,
    io: UifIo,
    io_out: Vec<(u64, Status)>,
    transfer_data: bool,
    requests: u64,
    responses: u64,
    telemetry: TelemetryHandle,
    faults: FaultInjector,
}

/// Fault class of an NVM opcode at the UIF dispatch site.
fn fault_class(op: Option<NvmOpcode>) -> CmdClass {
    match op {
        Some(op) if op.is_read() => CmdClass::Read,
        Some(op) if op.is_write() => CmdClass::Write,
        Some(NvmOpcode::Flush) => CmdClass::Flush,
        Some(_) => CmdClass::Management,
        None => CmdClass::Admin,
    }
}

impl UifRunner {
    /// Creates a runner.
    ///
    /// * `nsq`/`ncq` — UIF-side ends of the notify queues;
    /// * `guest_mem` — the served VM's memory (mapped into the UIF);
    /// * `backend` — producer/consumer ends of the UIF's own queue pair on
    ///   a backing device (its io_uring file);
    /// * `workers` — parallel worker threads (the paper's encryptor uses 2,
    ///   its SGX variant 1 + a switchless thread);
    /// * `transfer_data` — move real bytes (functional mode) or model costs
    ///   only (virtual-time figure runs).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        cost: CostModel,
        nsq: SqConsumer,
        ncq: CqProducer,
        guest_mem: Arc<GuestMemory>,
        backend: (SqProducer, CqConsumer),
        host_mem: Arc<GuestMemory>,
        uif: Box<dyn Uif>,
        workers: usize,
        transfer_data: bool,
    ) -> Self {
        let io_cost = cost.io_uring_op;
        UifRunner {
            name: name.to_string(),
            cost,
            nsq,
            ncq,
            guest_mem,
            uif,
            work: Station::new(workers.max(1)),
            io: UifIo {
                sq: backend.0,
                cq: backend.1,
                host_mem,
                pool: HashMap::new(),
                in_flight: HashMap::new(),
                next_cid: 0,
                charged: 0,
                io_cost,
                transfer_data,
                submitted: 0,
            },
            io_out: Vec::new(),
            transfer_data,
            requests: 0,
            responses: 0,
            telemetry: TelemetryHandle::disabled(),
            faults: FaultInjector::off(),
        }
    }

    /// Attaches a telemetry worker handle (see `nvmetro-telemetry`).
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// Arms a fault injector (the `UifDispatch` site of a seeded fault
    /// plan): matching rules fire as requests are accepted from the NSQ,
    /// before the function's `work` runs.
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = injector;
    }

    /// Requests received from the router so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Responses posted back to the router so far.
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Backend I/Os submitted (io_uring operations).
    pub fn backend_ios(&self) -> u64 {
        self.io.submitted
    }

    fn respond(&mut self, tag: u16, status: Status, now: Ns) {
        self.ncq
            .push(CompletionEntry::new(tag, status))
            .expect("NCQ sized to NSQ depth");
        self.responses += 1;
        self.telemetry.count(Metric::UifResponses);
        self.telemetry
            .tag_event(now, tag, Stage::UifService, PathKind::Notify);
    }
}

impl Actor for UifRunner {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        // 1. Accept new notify-path requests into the worker station.
        while let Some((cmd, _)) = self.nsq.pop() {
            self.requests += 1;
            self.telemetry.count(Metric::UifRequests);
            let mut stall: Ns = 0;
            if self.faults.is_active() {
                if let Some(action) = self.faults.decide(now, fault_class(cmd.nvm_opcode())) {
                    self.telemetry.count(Metric::FaultsInjected);
                    match action {
                        // Lost on the notify path: the router's deadline is
                        // the only thing that can recover this request.
                        FaultAction::DropCompletion => {
                            progressed = true;
                            continue;
                        }
                        FaultAction::MediaError { dnr } => {
                            let st = match cmd.nvm_opcode() {
                                Some(op) if op.is_write() => Status::WRITE_FAULT,
                                Some(op) if op.is_read() => Status::UNRECOVERED_READ,
                                _ => Status::INTERNAL,
                            };
                            self.respond(cmd.cid, if dnr { st.with_dnr() } else { st }, now);
                            progressed = true;
                            continue;
                        }
                        FaultAction::CorruptPayload => {
                            self.respond(cmd.cid, Status::GUARD_CHECK, now);
                            progressed = true;
                            continue;
                        }
                        FaultAction::LinkOutage => {
                            self.respond(cmd.cid, Status::PATH_ERROR, now);
                            progressed = true;
                            continue;
                        }
                        // A wedged worker: the request waits out the stall
                        // before service.
                        FaultAction::Stall(d) | FaultAction::CqPressure(d) => stall = d,
                    }
                }
            }
            let cost = self.cost.uif_request + stall + self.uif.work_cost(&cmd, &self.cost);
            self.work.push(cmd, cost, now);
            progressed = true;
        }
        // 2. Complete worked requests.
        while let Some((cmd, _t)) = self.work.pop_done_timed(now) {
            let tag = cmd.cid;
            let submitted_before = self.io.submitted;
            let mut req = UifRequest {
                cmd,
                tag,
                now,
                mem: &self.guest_mem,
                io: &mut self.io,
                transfer_data: self.transfer_data,
            };
            let disposition = self.uif.work(&mut req);
            self.telemetry
                .add(Metric::UifBackendIos, self.io.submitted - submitted_before);
            match disposition {
                UifDisposition::Respond(status) => self.respond(tag, status, now),
                UifDisposition::Async => {}
            }
            progressed = true;
        }
        // 3. Reap backend completions.
        self.io_out.clear();
        self.io.poll(&mut self.io_out);
        let done: Vec<(u64, Status)> = self.io_out.drain(..).collect();
        for (ticket, status) in done {
            if let Some((tag, st)) = self.uif.backend_done(ticket, status) {
                self.respond(tag, st, now);
            }
            progressed = true;
        }
        // 4. Give the function its background slice (resync, link probes).
        let mut handle = UifIoHandle { io: &mut self.io };
        if self.uif.tick(&mut handle, now) {
            progressed = true;
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        match (self.work.next_event(), self.uif.next_event()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn charged(&self) -> Ns {
        self.work.charged() + self.io.charged
    }

    fn cpu_mode(&self) -> CpuMode {
        CpuMode::Adaptive {
            idle_timeout: self.cost.adaptive_idle_timeout,
        }
    }
}
