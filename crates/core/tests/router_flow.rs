//! End-to-end router tests: VM queues → router → classifier → paths →
//! completion, in virtual time.

use nvmetro_core::classify::{
    classifier_verifier_config, ctx_offsets, verdict_bits, Classifier, NativeClassifier,
    RequestCtx, Verdict,
};
use nvmetro_core::router::{KernelPath, NotifyBinding, Router, VmBinding};
use nvmetro_core::uif::{Uif, UifDisposition, UifRequest, UifRunner};
use nvmetro_core::{passthrough_program, Partition, VirtualController, VmConfig};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro_nvme::{CqPair, SqPair, Status, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::Executor;
use std::sync::Arc;

struct Rig {
    ex: Executor,
    guest_sq: nvmetro_nvme::SqProducer,
    guest_cq: nvmetro_nvme::CqConsumer,
    mem: Arc<nvmetro_mem::GuestMemory>,
    store: Arc<nvmetro_device::BlockStore>,
}

/// Builds a single-VM rig: guest queues → router → device, with the given
/// classifier and optional notify-path UIF.
fn build_rig(classifier: Classifier, uif: Option<Box<dyn Uif>>, partition: Partition) -> Rig {
    let cost = CostModel::default();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            ..Default::default()
        },
    );
    let store = ssd.store();

    let mut vc = VirtualController::new(VmConfig {
        id: 0,
        mem_bytes: 1 << 26,
        queue_pairs: 1,
        queue_depth: 256,
        partition,
    });
    let mem = vc.memory();
    let (guest_sq, guest_cq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    // Fast path queues.
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

    let mut router = Router::new("router", cost.clone(), 1, 1024);
    let mut ex = Executor::new();

    let notify = if let Some(uif) = uif {
        let (nsq_p, nsq_c) = SqPair::new(256);
        let (ncq_p, ncq_c) = CqPair::new(256);
        // UIF backend queue pair on the same device.
        let (bsq_p, bsq_c) = SqPair::new(256);
        let (bcq_p, bcq_c) = CqPair::new(256);
        let host_mem = Arc::new(nvmetro_mem::GuestMemory::new(1 << 26));
        ssd.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);
        let runner = UifRunner::new(
            "uif",
            cost.clone(),
            nsq_c,
            ncq_p,
            mem.clone(),
            (bsq_p, bcq_c),
            host_mem,
            uif,
            2,
            true,
        );
        ex.add(Box::new(runner));
        Some(NotifyBinding {
            nsq: nsq_p,
            ncq: ncq_c,
        })
    } else {
        None
    };

    router.bind_vm(VmBinding {
        vm_id: 0,
        mem: mem.clone(),
        partition,
        vsqs,
        vcqs,
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify,
        classifier,
    });
    ex.add(Box::new(router));
    ex.add(Box::new(ssd));
    Rig {
        ex,
        guest_sq,
        guest_cq,
        mem,
        store,
    }
}

fn whole() -> Partition {
    Partition::whole(1 << 20)
}

fn write_cmd(rig: &Rig, slba: u64, data: &[u8]) -> SubmissionEntry {
    let gpa = rig.mem.alloc(data.len());
    rig.mem.write(gpa, data);
    let (p1, p2) = nvmetro_mem::build_prps(&rig.mem, gpa, data.len());
    SubmissionEntry::write(1, slba, (data.len() / 512) as u32, p1, p2)
}

fn read_cmd(rig: &Rig, slba: u64, len: usize) -> (SubmissionEntry, u64) {
    let gpa = rig.mem.alloc(len);
    let (p1, p2) = nvmetro_mem::build_prps(&rig.mem, gpa, len);
    (
        SubmissionEntry::read(1, slba, (len / 512) as u32, p1, p2),
        gpa,
    )
}

#[test]
fn passthrough_write_read_round_trip() {
    let mut rig = build_rig(Classifier::Bpf(passthrough_program()), None, whole());
    let data = vec![0x5Au8; 1024];
    let mut w = write_cmd(&rig, 100, &data);
    w.cid = 1;
    rig.guest_sq.push(w).unwrap();
    rig.ex.run(u64::MAX);
    let cqe = rig.guest_cq.pop().expect("write completion");
    assert_eq!(cqe.cid, 1);
    assert_eq!(cqe.status(), Status::SUCCESS);
    assert_eq!(rig.store.read_vec(100, 2), data);

    let (mut r, gpa) = read_cmd(&rig, 100, 1024);
    r.cid = 2;
    rig.guest_sq.push(r).unwrap();
    rig.ex.run(u64::MAX);
    let cqe = rig.guest_cq.pop().expect("read completion");
    assert_eq!(cqe.cid, 2);
    assert_eq!(rig.mem.read_vec(gpa, 1024), data);
}

#[test]
fn qd1_latency_matches_device_plus_router_costs() {
    let mut rig = build_rig(Classifier::Bpf(passthrough_program()), None, whole());
    let (cmd, _) = read_cmd(&rig, 0, 512);
    rig.guest_sq.push(cmd).unwrap();
    let report = rig.ex.run(u64::MAX);
    let cost = CostModel::default();
    let min = cost.ssd_read_lat / 2;
    let max = cost.ssd_read_lat * 2;
    assert!(
        report.duration > min && report.duration < max,
        "completion at {} should be near device latency {}",
        report.duration,
        cost.ssd_read_lat
    );
}

#[test]
fn lba_translating_classifier_mediates_commands() {
    // Classifier adds a partition offset to every LBA (Section III-C's
    // direct-mediation example) — written in vbpf.
    use nvmetro_vbpf::isa::*;
    let mut b = nvmetro_vbpf::ProgramBuilder::new();
    b.ldx(SIZE_DW, R2, R1, ctx_offsets::SLBA)
        .add64_imm(R2, 5000)
        .stx(SIZE_DW, R1, ctx_offsets::SLBA, R2)
        .lddw(R0, verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
        .exit();
    let (insns, maps) = b.build();
    let vm = nvmetro_vbpf::Vm::new(
        nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config()).unwrap(),
    );
    let mut rig = build_rig(Classifier::Bpf(vm), None, whole());
    let data = vec![0x77u8; 512];
    rig.guest_sq.push(write_cmd(&rig, 10, &data)).unwrap();
    rig.ex.run(u64::MAX);
    assert_eq!(rig.guest_cq.pop().unwrap().status(), Status::SUCCESS);
    // Data landed at the *translated* LBA.
    assert_eq!(rig.store.read_vec(5010, 1), data);
    assert!(rig.store.read_vec(10, 1).iter().all(|&b| b == 0));
}

#[test]
fn partition_bounds_are_enforced_by_the_router() {
    // Passthrough classifier does NOT translate; the guest's raw LBA lands
    // outside its partition and the router must reject it even though the
    // classifier said SEND_HQ.
    let partition = Partition {
        lba_offset: 1000,
        lba_count: 100,
    };
    let mut rig = build_rig(Classifier::Bpf(passthrough_program()), None, partition);
    let (cmd, _) = read_cmd(&rig, 5, 512); // physical LBA 5 < 1000
    rig.guest_sq.push(cmd).unwrap();
    rig.ex.run(u64::MAX);
    assert_eq!(
        rig.guest_cq.pop().unwrap().status(),
        Status::LBA_OUT_OF_RANGE
    );
}

#[test]
fn complete_verdict_short_circuits_without_touching_device() {
    struct Reject;
    impl NativeClassifier for Reject {
        fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
            Verdict(Status::INVALID_OPCODE.0 as u64 | verdict_bits::COMPLETE)
        }
    }
    let mut rig = build_rig(Classifier::Native(Box::new(Reject)), None, whole());
    let (cmd, _) = read_cmd(&rig, 0, 512);
    rig.guest_sq.push(cmd).unwrap();
    let report = rig.ex.run(u64::MAX);
    assert_eq!(rig.guest_cq.pop().unwrap().status(), Status::INVALID_OPCODE);
    // No device round trip: the run is much shorter than a device read.
    assert!(report.duration < CostModel::default().ssd_read_lat / 2);
}

#[test]
fn classifier_with_no_action_fails_closed() {
    struct Lost;
    impl NativeClassifier for Lost {
        fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
            Verdict(0)
        }
    }
    let mut rig = build_rig(Classifier::Native(Box::new(Lost)), None, whole());
    let (cmd, _) = read_cmd(&rig, 0, 512);
    rig.guest_sq.push(cmd).unwrap();
    rig.ex.run(u64::MAX);
    assert_eq!(rig.guest_cq.pop().unwrap().status(), Status::PATH_ERROR);
}

/// A UIF that uppercases data on writes before passing it to disk itself,
/// and a classifier that routes writes through it — exercising the notify
/// path, backend io_uring writes, and asynchronous responses.
struct XorUif {
    key: u8,
    offset: u64,
}

impl Uif for XorUif {
    fn work(&mut self, req: &mut UifRequest<'_>) -> UifDisposition {
        match req.opcode() {
            Some(nvmetro_nvme::NvmOpcode::Write) => {
                let mut data = req.read_guest();
                for b in &mut data {
                    *b ^= self.key;
                }
                let slba = req.cmd.slba() + self.offset;
                let nlb = req.cmd.nlb();
                let tag = req.tag;
                req.io().write(slba, nlb, Some(&data), tag as u64);
                UifDisposition::Async
            }
            Some(nvmetro_nvme::NvmOpcode::Read) => {
                // In-place transform of data the device already delivered.
                req.modify_guest(|data| {
                    for b in data {
                        *b ^= self.key;
                    }
                });
                UifDisposition::Respond(Status::SUCCESS)
            }
            _ => UifDisposition::Respond(Status::INVALID_OPCODE),
        }
    }
}

/// Classifier mirroring Listing 1: reads go device-then-UIF (hook), writes
/// go to the UIF which finishes them (WILL_COMPLETE_NQ).
struct ListingOneClassifier;

impl NativeClassifier for ListingOneClassifier {
    fn classify(&mut self, ctx: &mut RequestCtx) -> Verdict {
        use verdict_bits::*;
        match ctx.current_hook() {
            nvmetro_core::HOOK_VSQ => match ctx.opcode() {
                0x02 => Verdict(SEND_HQ | HOOK_HCQ),
                0x01 => Verdict(SEND_NQ | WILL_COMPLETE_NQ),
                _ => Verdict(SEND_HQ | WILL_COMPLETE_HQ),
            },
            nvmetro_core::HOOK_HCQ => {
                if ctx.error().is_error() {
                    Verdict(ctx.error().0 as u64 | COMPLETE)
                } else {
                    Verdict(SEND_NQ | WILL_COMPLETE_NQ)
                }
            }
            _ => Verdict(Status::INTERNAL.0 as u64 | COMPLETE),
        }
    }
}

#[test]
fn notify_path_transforms_writes_and_reads() {
    let key = 0xA5;
    let mut rig = build_rig(
        Classifier::Native(Box::new(ListingOneClassifier)),
        Some(Box::new(XorUif { key, offset: 0 })),
        whole(),
    );
    let plain = vec![0x10u8; 512];
    let mut w = write_cmd(&rig, 77, &plain);
    w.cid = 5;
    rig.guest_sq.push(w).unwrap();
    rig.ex.run(u64::MAX);
    assert_eq!(rig.guest_cq.pop().unwrap().status(), Status::SUCCESS);
    // On disk: transformed (the UIF wrote it through its own backend queue).
    let on_disk = rig.store.read_vec(77, 1);
    assert!(on_disk.iter().all(|&b| b == 0x10 ^ key));

    // Read back: device delivers ciphertext, UIF untransforms in place.
    let (mut r, gpa) = read_cmd(&rig, 77, 512);
    r.cid = 6;
    rig.guest_sq.push(r).unwrap();
    rig.ex.run(u64::MAX);
    assert_eq!(rig.guest_cq.pop().unwrap().status(), Status::SUCCESS);
    assert_eq!(rig.mem.read_vec(gpa, 512), plain);
}

#[test]
fn multicast_completes_only_when_all_targets_finish() {
    // Writes go to BOTH the device and the UIF (mirror-style):
    // WILL_COMPLETE on both paths.
    struct Mirror;
    impl NativeClassifier for Mirror {
        fn classify(&mut self, ctx: &mut RequestCtx) -> Verdict {
            use verdict_bits::*;
            if ctx.opcode() == 0x01 {
                Verdict(SEND_HQ | SEND_NQ | WILL_COMPLETE_HQ | WILL_COMPLETE_NQ)
            } else {
                Verdict(SEND_HQ | WILL_COMPLETE_HQ)
            }
        }
    }
    // The UIF mirrors writes to a shifted LBA region on the same disk.
    let mut rig = build_rig(
        Classifier::Native(Box::new(Mirror)),
        Some(Box::new(XorUif {
            key: 0, // pure copy
            offset: 500_000,
        })),
        whole(),
    );
    let data = vec![0xEEu8; 512];
    rig.guest_sq.push(write_cmd(&rig, 42, &data)).unwrap();
    rig.ex.run(u64::MAX);
    let cqe = rig.guest_cq.pop().expect("completed after both legs");
    assert_eq!(cqe.status(), Status::SUCCESS);
    // Both replicas present.
    assert_eq!(rig.store.read_vec(42, 1), data);
    assert_eq!(rig.store.read_vec(500_042, 1), data);
}

#[test]
fn device_error_propagates_through_hook() {
    // Read beyond the device: classifier's HOOK_HCQ sees the error and
    // forwards it (line 8 of Listing 1).
    let mut rig = build_rig(
        Classifier::Native(Box::new(ListingOneClassifier)),
        Some(Box::new(XorUif { key: 1, offset: 0 })),
        Partition::whole(u64::MAX), // let the router pass it through
    );
    let (cmd, _) = read_cmd(&rig, (1 << 20) + 5, 512); // beyond capacity
    rig.guest_sq.push(cmd).unwrap();
    rig.ex.run(u64::MAX);
    assert_eq!(
        rig.guest_cq.pop().unwrap().status(),
        Status::LBA_OUT_OF_RANGE
    );
}

#[test]
fn on_the_fly_classifier_replacement() {
    let kernel_none: Option<Box<dyn KernelPath>> = None;
    drop(kernel_none); // silence unused-trait-import style lints

    struct RejectAll;
    impl NativeClassifier for RejectAll {
        fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
            Verdict(Status::INVALID_OPCODE.0 as u64 | verdict_bits::COMPLETE)
        }
    }

    // Build a rig, run one I/O through passthrough, then hot-swap the
    // classifier and observe the behavior change without any rebind.
    let cost = CostModel::default();
    let mut ssd = SimSsd::new("ssd", SsdConfig::default());
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 24,
        ..Default::default()
    });
    let mem = vc.memory();
    let (guest_sq, guest_cq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let mut router = Router::new("router", cost, 1, 64);
    let vm = router.bind_vm(VmBinding {
        vm_id: 0,
        mem: mem.clone(),
        partition: Partition::whole(1 << 31),
        vsqs,
        vcqs,
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify: None,
        classifier: Classifier::Bpf(passthrough_program()),
    });
    *router.classifier_mut(vm) = Classifier::Native(Box::new(RejectAll));

    let mut ex = Executor::new();
    ex.add(Box::new(router));
    ex.add(Box::new(ssd));
    guest_sq.push(SubmissionEntry::flush(1)).unwrap();
    ex.run(u64::MAX);
    assert_eq!(guest_cq.pop().unwrap().status(), Status::INVALID_OPCODE);
}
