//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! The container this workspace builds in has no network access to the
//! crates registry, so the real `criterion` cannot be fetched. This crate
//! implements the small API surface the `nvmetro-bench` micro-benchmarks
//! use — `Criterion`, `benchmark_group`, `Throughput`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros — with a straightforward
//! warm-up / calibrate / sample measurement loop, and prints one summary
//! line per benchmark. It is a measurement tool, not a statistics suite:
//! numbers are medians over `sample_size` samples.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group, echoed in the
/// summary line as elements/s or bytes/s.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing context handed to each benchmark closure; `iter` runs the
/// workload `iters` times and records the elapsed wall-clock time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark driver. Mirrors criterion's builder API.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Total time budget for the sampling phase.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.cfg.measurement_time = t;
        self
    }

    /// Time budget for the warm-up/calibration phase.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.cfg.warm_up_time = t;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_one(self.cfg, &id.into(), None, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in summary lines.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.cfg, &full, self.throughput, f);
    }

    /// Ends the group (summary lines are printed eagerly, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: Config, name: &str, tput: Option<Throughput>, mut f: F) {
    // Warm-up doubling loop: grows the iteration count until one batch is
    // long enough to time reliably, or the warm-up budget runs out.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed.as_nanos() > 0 {
            per_iter = b.elapsed / iters as u32;
        }
        if warm_start.elapsed() >= cfg.warm_up_time || b.elapsed >= cfg.warm_up_time {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }

    // Sampling: split the measurement budget into sample_size batches.
    let sample_budget = cfg.measurement_time / cfg.sample_size as u32;
    let per_iter_ns = per_iter.as_nanos().max(1) as u64;
    let iters_per_sample = (sample_budget.as_nanos() as u64 / per_iter_ns).max(1);
    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];
    let med = samples_ns[samples_ns.len() / 2];

    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(med),
        fmt_ns(hi)
    );
    match tput {
        Some(Throughput::Elements(n)) if med > 0.0 => {
            let rate = n as f64 * 1e9 / med;
            line.push_str(&format!("  thrpt: {:.3} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) if med > 0.0 => {
            let rate = n as f64 * 1e9 / med;
            line.push_str(&format!("  thrpt: {:.3} MiB/s", rate / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function that runs each target with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 37,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 37);
    }

    #[test]
    fn run_one_completes_quickly() {
        let cfg = Config {
            sample_size: 2,
            measurement_time: Duration::from_millis(4),
            warm_up_time: Duration::from_millis(2),
        };
        run_one(cfg, "smoke", Some(Throughput::Elements(1)), |b| {
            b.iter(|| std::hint::black_box(1 + 1))
        });
    }
}
