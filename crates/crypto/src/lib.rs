//! Cryptography substrate for NVMetro's encryption storage function.
//!
//! The paper's encryption UIFs use "the standard XTS-AES algorithm and are
//! compatible with Linux's dm-crypt" (§IV-A). This crate implements that
//! stack from scratch:
//!
//! * [`aes`] — AES-128/256 block cipher (FIPS-197), software implementation;
//! * [`xts`] — XTS mode (IEEE 1619) with dm-crypt's `plain64` sector tweak,
//!   so NVMetro's encryptor and the simulated `dm-crypt` baseline produce
//!   byte-identical ciphertext;
//! * [`sgx`] — an Intel SGX enclave *simulation*: the data key is sealed
//!   inside an opaque enclave object that only exposes ECALLs, with call
//!   accounting for the switchless-call cost model (see `DESIGN.md`).
//!
//! The paper's UIFs use AES-NI; we model AES-NI's *throughput* in
//! `nvmetro-sim::cost` while this software implementation provides the
//! *functional* data transformation for tests and examples.

pub mod aes;
pub mod sgx;
pub mod xts;

pub use aes::Aes;
pub use sgx::{SgxEnclave, SgxStats};
pub use xts::{Xts, SECTOR_SIZE};
