//! Intel SGX enclave simulation.
//!
//! The paper's SGX encryption UIF "stores the cryptographic key inside a
//! hardware enclave" and uses switchless calls with a dedicated thread
//! (§IV-A, §V-C). No SGX hardware is available here, so this module
//! reproduces the enclave's *interface contract*:
//!
//! * the key is sealed at construction and can never be read back — all
//!   cryptography happens "inside" the enclave through ECALLs;
//! * every ECALL is counted, and callers declare whether they use the
//!   switchless path (1 worker + 1 switchless thread in the paper's setup);
//!   the virtual-time cost of regular vs switchless transitions is applied
//!   by the evaluation layer from `nvmetro-sim::cost`.

use crate::xts::Xts;

/// ECALL accounting, used by the cost model and by tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SgxStats {
    /// ECALLs that took the regular (ring-transition) path.
    pub ecalls: u64,
    /// ECALLs served by the switchless worker.
    pub switchless_calls: u64,
    /// Total bytes transformed inside the enclave.
    pub bytes_processed: u64,
}

/// A simulated SGX enclave holding an XTS-AES key.
pub struct SgxEnclave {
    // Sealed: private and deliberately not exposed by any accessor.
    cipher: Xts,
    switchless: bool,
    stats: SgxStats,
}

impl SgxEnclave {
    /// "Creates" the enclave, sealing the XTS key inside. `switchless`
    /// selects the switchless-call configuration the paper evaluates.
    pub fn create(key: &[u8], switchless: bool) -> Self {
        SgxEnclave {
            cipher: Xts::new(key),
            switchless,
            stats: SgxStats::default(),
        }
    }

    /// Whether this enclave was configured for switchless calls.
    pub fn is_switchless(&self) -> bool {
        self.switchless
    }

    fn account(&mut self, bytes: usize) {
        if self.switchless {
            self.stats.switchless_calls += 1;
        } else {
            self.stats.ecalls += 1;
        }
        self.stats.bytes_processed += bytes as u64;
    }

    /// ECALL: encrypt whole sectors in place.
    pub fn ecall_encrypt(&mut self, first_sector: u64, data: &mut [u8]) {
        self.account(data.len());
        self.cipher.encrypt_sectors(first_sector, data);
    }

    /// ECALL: decrypt whole sectors in place.
    pub fn ecall_decrypt(&mut self, first_sector: u64, data: &mut [u8]) {
        self.account(data.len());
        self.cipher.decrypt_sectors(first_sector, data);
    }

    /// Call accounting snapshot.
    pub fn stats(&self) -> SgxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xts::SECTOR_SIZE;

    #[test]
    fn enclave_encrypts_like_bare_xts() {
        // The enclave must be ciphertext-compatible with dm-crypt/our Xts:
        // same key, same sectors, same bytes.
        let key = [3u8; 64];
        let mut enclave = SgxEnclave::create(&key, true);
        let xts = Xts::new(&key);
        let mut a = vec![0x42u8; SECTOR_SIZE];
        let mut b = a.clone();
        enclave.ecall_encrypt(9, &mut a);
        xts.encrypt_sectors(9, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_through_ecalls() {
        let mut enclave = SgxEnclave::create(&[7u8; 32], false);
        let original = vec![1u8; 2 * SECTOR_SIZE];
        let mut buf = original.clone();
        enclave.ecall_encrypt(100, &mut buf);
        assert_ne!(buf, original);
        enclave.ecall_decrypt(100, &mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn switchless_configuration_routes_accounting() {
        let mut sw = SgxEnclave::create(&[0u8; 32], true);
        let mut reg = SgxEnclave::create(&[0u8; 32], false);
        let mut buf = vec![0u8; SECTOR_SIZE];
        sw.ecall_encrypt(0, &mut buf);
        reg.ecall_encrypt(0, &mut buf);
        assert_eq!(sw.stats().switchless_calls, 1);
        assert_eq!(sw.stats().ecalls, 0);
        assert_eq!(reg.stats().ecalls, 1);
        assert_eq!(reg.stats().switchless_calls, 0);
        assert_eq!(sw.stats().bytes_processed, SECTOR_SIZE as u64);
    }
}
