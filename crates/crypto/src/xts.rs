//! XTS mode (IEEE 1619) with dm-crypt-compatible `plain64` sector tweaks.
//!
//! XTS is the standard mode for disk encryption: each 512-byte sector is
//! encrypted under a tweak derived from its sector number, so identical
//! plaintext at different LBAs yields different ciphertext while staying
//! length-preserving and random-access. `aes-xts-plain64` (what both the
//! paper's UIF and dm-crypt use) takes the sector number as a little-endian
//! 64-bit value in the 128-bit tweak block.

use crate::aes::Aes;

/// Disk sector size — XTS data unit, matching the 512 B LBA size.
pub const SECTOR_SIZE: usize = 512;

/// An XTS-AES cipher bound to a data key and a tweak key.
#[derive(Clone)]
pub struct Xts {
    data: Aes,
    tweak: Aes,
}

impl Xts {
    /// Creates an XTS cipher from a double-length key: the first half is
    /// the data key, the second half the tweak key (32 bytes total for
    /// XTS-AES-128, 64 for XTS-AES-256 — dm-crypt's default).
    pub fn new(key: &[u8]) -> Self {
        assert!(
            key.len() == 32 || key.len() == 64,
            "XTS key must be 32 or 64 bytes, got {}",
            key.len()
        );
        let half = key.len() / 2;
        Xts {
            data: Aes::new(&key[..half]),
            tweak: Aes::new(&key[half..]),
        }
    }

    /// Computes the initial tweak block for a sector (`plain64` IV).
    fn initial_tweak(&self, sector: u64) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[..8].copy_from_slice(&sector.to_le_bytes());
        self.tweak.encrypt_block(&mut t);
        t
    }

    /// Multiplies the tweak by alpha (x) in GF(2^128), per IEEE 1619.
    fn mul_alpha(t: &mut [u8; 16]) {
        let mut carry = 0u8;
        for b in t.iter_mut() {
            let new_carry = *b >> 7;
            *b = (*b << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            t[0] ^= 0x87;
        }
    }

    fn process_sector(&self, sector: u64, buf: &mut [u8], encrypt: bool) {
        debug_assert_eq!(buf.len() % 16, 0);
        let mut t = self.initial_tweak(sector);
        for chunk in buf.chunks_exact_mut(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            for i in 0..16 {
                block[i] ^= t[i];
            }
            if encrypt {
                self.data.encrypt_block(&mut block);
            } else {
                self.data.decrypt_block(&mut block);
            }
            for i in 0..16 {
                block[i] ^= t[i];
            }
            chunk.copy_from_slice(&block);
            Self::mul_alpha(&mut t);
        }
    }

    /// Encrypts `data` in place; must be a whole number of sectors, the
    /// first of which is `first_sector` (consecutive sectors follow).
    pub fn encrypt_sectors(&self, first_sector: u64, data: &mut [u8]) {
        assert_eq!(
            data.len() % SECTOR_SIZE,
            0,
            "data must be sector aligned ({} bytes given)",
            data.len()
        );
        for (i, sector_buf) in data.chunks_exact_mut(SECTOR_SIZE).enumerate() {
            self.process_sector(first_sector + i as u64, sector_buf, true);
        }
    }

    /// Decrypts `data` in place (inverse of [`Xts::encrypt_sectors`]).
    pub fn decrypt_sectors(&self, first_sector: u64, data: &mut [u8]) {
        assert_eq!(
            data.len() % SECTOR_SIZE,
            0,
            "data must be sector aligned ({} bytes given)",
            data.len()
        );
        for (i, sector_buf) in data.chunks_exact_mut(SECTOR_SIZE).enumerate() {
            self.process_sector(first_sector + i as u64, sector_buf, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn ieee1619_vector_1_first_blocks() {
        // IEEE 1619-2007 XTS-AES-128 Vector 1: all-zero keys, sector 0,
        // all-zero plaintext.
        let xts = Xts::new(&[0u8; 32]);
        let mut data = vec![0u8; 32];
        // The vector's data unit is 32 bytes, smaller than a disk sector,
        // so drive the sector routine directly.
        xts.process_sector(0, &mut data, true);
        assert_eq!(
            data,
            hex("917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e")
        );
    }

    #[test]
    fn round_trip_single_sector() {
        let key: Vec<u8> = (0..64).collect();
        let xts = Xts::new(&key);
        let original: Vec<u8> = (0..SECTOR_SIZE).map(|i| (i % 251) as u8).collect();
        let mut buf = original.clone();
        xts.encrypt_sectors(7, &mut buf);
        assert_ne!(buf, original);
        xts.decrypt_sectors(7, &mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn round_trip_multi_sector_run() {
        let key: Vec<u8> = (0..64).map(|i| i as u8 ^ 0x5A).collect();
        let xts = Xts::new(&key);
        let original: Vec<u8> = (0..8 * SECTOR_SIZE).map(|i| (i % 13) as u8).collect();
        let mut buf = original.clone();
        xts.encrypt_sectors(1000, &mut buf);
        xts.decrypt_sectors(1000, &mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn same_plaintext_different_sectors_differs() {
        let xts = Xts::new(&[7u8; 64]);
        let mut a = vec![0xAAu8; SECTOR_SIZE];
        let mut b = vec![0xAAu8; SECTOR_SIZE];
        xts.encrypt_sectors(1, &mut a);
        xts.encrypt_sectors(2, &mut b);
        assert_ne!(a, b, "tweak must bind ciphertext to the sector number");
    }

    #[test]
    fn decrypting_at_wrong_sector_fails_to_recover() {
        let xts = Xts::new(&[9u8; 64]);
        let original = vec![0x11u8; SECTOR_SIZE];
        let mut buf = original.clone();
        xts.encrypt_sectors(5, &mut buf);
        xts.decrypt_sectors(6, &mut buf);
        assert_ne!(buf, original);
    }

    #[test]
    fn sector_independence_allows_random_access() {
        // Encrypting sectors [0..4) together equals encrypting each alone.
        let key: Vec<u8> = (100..164).map(|i| i as u8).collect();
        let xts = Xts::new(&key);
        let original: Vec<u8> = (0..4 * SECTOR_SIZE).map(|i| (i / 7) as u8).collect();
        let mut together = original.clone();
        xts.encrypt_sectors(40, &mut together);
        for s in 0..4 {
            let mut alone = original[s * SECTOR_SIZE..(s + 1) * SECTOR_SIZE].to_vec();
            xts.encrypt_sectors(40 + s as u64, &mut alone);
            assert_eq!(
                &together[s * SECTOR_SIZE..(s + 1) * SECTOR_SIZE],
                &alone[..]
            );
        }
    }

    #[test]
    fn xts_128_and_256_keys_supported() {
        let _ = Xts::new(&[1u8; 32]);
        let _ = Xts::new(&[1u8; 64]);
    }

    #[test]
    #[should_panic(expected = "32 or 64")]
    fn bad_key_length_panics() {
        let _ = Xts::new(&[0u8; 48]);
    }

    #[test]
    #[should_panic(expected = "sector aligned")]
    fn unaligned_data_panics() {
        let xts = Xts::new(&[0u8; 32]);
        let mut buf = vec![0u8; 100];
        xts.encrypt_sectors(0, &mut buf);
    }

    #[test]
    fn mul_alpha_carries_into_reduction() {
        let mut t = [0u8; 16];
        t[15] = 0x80; // top bit set: multiplication must reduce
        Xts::mul_alpha(&mut t);
        assert_eq!(t[0], 0x87);
        assert_eq!(t[15], 0x00);
    }
}
