//! Simulated NVMe SSD and NVMe-oF remote target.
//!
//! Replaces the paper's Samsung 970 EVO Plus 1 TB (and the Infiniband-
//! attached secondary drive of the replication experiments) with a
//! multi-queue device model:
//!
//! * [`BlockStore`] — sparse 512 B-block content storage, so data written
//!   through any path can be read back and verified;
//! * [`SimSsd`] — the device proper: consumes commands from any number of
//!   registered submission queues, moves data to/from the owning VM's
//!   guest memory via PRP walks, and schedules completions using a
//!   two-stage service model (parallel NAND channels + shared internal
//!   bandwidth) calibrated in `nvmetro-sim::cost`;
//! * transport overlay — an optional NVMe-over-Fabrics hop (RTT plus
//!   per-byte wire cost) turning the same model into the remote mirror
//!   target;
//! * [`DeviceThread`] — drives a [`SimSsd`] on a real OS thread for the
//!   functional (non-virtual-time) examples and tests.

mod ssd;
mod store;
mod thread;

pub use ssd::{CompletionMode, QueueHandle, SimSsd, SsdConfig, Transport};
pub use store::BlockStore;
pub use thread::DeviceThread;
