//! The multi-queue SSD model.

use crate::store::BlockStore;
use nvmetro_faults::{CmdClass, FaultAction, FaultInjector, FaultPlan, FaultSite};
use nvmetro_mem::{prp_segments, GuestMemory};
use nvmetro_nvme::{
    CompletionEntry, CqProducer, NvmOpcode, SqConsumer, Status, SubmissionEntry, LBA_SIZE,
};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, SimRng, US};
use nvmetro_telemetry::{Metric, PathKind, Stage, TelemetryHandle};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// How completions on a queue reach their consumer: polled CQs cost the
/// device nothing host-side; interrupt-mode queues charge the host an IRQ
/// delivery cost and add injection latency (device passthrough, vhost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionMode {
    /// Consumer busy-polls the CQ (NVMetro, MDev, SPDK).
    Polled,
    /// Completion raises a host interrupt.
    Interrupt,
}

/// Optional NVMe-over-Fabrics transport in front of the device (the
/// replication experiments' Infiniband link).
#[derive(Clone, Copy, Debug)]
pub struct Transport {
    /// One-way latency of the fabric.
    pub one_way: Ns,
    /// Per-byte wire cost (ns/B).
    pub per_byte: f64,
}

/// Device configuration.
#[derive(Clone, Debug)]
pub struct SsdConfig {
    /// Capacity in logical blocks.
    pub capacity_lbas: u64,
    /// Calibrated service-time model.
    pub cost: CostModel,
    /// Move real bytes between guest memory and the block store. Figure
    /// harnesses disable this (latency comes from the model either way);
    /// functional tests and examples enable it.
    pub move_data: bool,
    /// Jitter seed.
    pub seed: u64,
    /// NVMe-oF hop, if this device is remote.
    pub transport: Option<Transport>,
    /// Failure injection: seeded fault plan consulted once per command
    /// (the device acts on its `FaultSite::Device` rules). Replaces the
    /// old bare `fail_rate` probability — see
    /// [`FaultPlan::media_fail_rate`] for the equivalent plan.
    pub faults: FaultPlan,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            // 1 TB-class drive: 2^31 LBAs of 512 B.
            capacity_lbas: 1 << 31,
            cost: CostModel::default(),
            move_data: true,
            seed: 0x5517,
            transport: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Identifies a registered queue pair on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueHandle(pub u16);

struct DeviceQueue {
    sq: SqConsumer,
    cq: CqProducer,
    mem: Arc<GuestMemory>,
    mode: CompletionMode,
}

struct Pending {
    finish: Ns,
    seq: u64,
    queue: usize,
    cqe: CompletionEntry,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.finish == other.finish && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finish, self.seq).cmp(&(other.finish, other.seq))
    }
}

/// The simulated SSD. Registered queues are serviced on every poll; command
/// completions are scheduled through a two-stage model: one of
/// `ssd_channels` parallel NAND channels plus a shared bandwidth stage, so
/// both QD-1 latency and saturated throughput match the calibration.
pub struct SimSsd {
    name: String,
    cfg: SsdConfig,
    store: Arc<BlockStore>,
    queues: Vec<DeviceQueue>,
    channels: Vec<Ns>,
    bw_until: Ns,
    pending: BinaryHeap<Reverse<Pending>>,
    seq: u64,
    rng: SimRng,
    injector: FaultInjector,
    cq_blocked_until: Ns,
    charged: Ns,
    ios_served: u64,
    telemetry: TelemetryHandle,
}

/// Coarse fault-plan class of a (possibly unrecognized) opcode.
fn class_of(op: Option<NvmOpcode>) -> CmdClass {
    match op {
        None => CmdClass::Admin,
        Some(NvmOpcode::Flush) => CmdClass::Flush,
        Some(NvmOpcode::Read) | Some(NvmOpcode::Compare) => CmdClass::Read,
        Some(NvmOpcode::Write) | Some(NvmOpcode::WriteUncorrectable) => CmdClass::Write,
        Some(NvmOpcode::WriteZeroes) | Some(NvmOpcode::DatasetManagement) => CmdClass::Management,
    }
}

impl SimSsd {
    /// Creates a device with its own fresh [`BlockStore`].
    pub fn new(name: &str, cfg: SsdConfig) -> Self {
        let store = Arc::new(BlockStore::new(cfg.capacity_lbas));
        Self::with_store(name, cfg, store)
    }

    /// Creates a device over an existing store (e.g. shared inspection).
    pub fn with_store(name: &str, cfg: SsdConfig, store: Arc<BlockStore>) -> Self {
        let channels = vec![0; cfg.cost.ssd_channels];
        let seed = cfg.seed;
        let injector = cfg.faults.injector(FaultSite::Device);
        SimSsd {
            name: name.to_string(),
            cfg,
            store,
            queues: Vec::new(),
            channels,
            bw_until: 0,
            pending: BinaryHeap::new(),
            seq: 0,
            rng: SimRng::new(seed),
            injector,
            cq_blocked_until: 0,
            charged: 0,
            ios_served: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry worker handle (see `nvmetro-telemetry`). Device
    /// events carry no VM identity (the device sees only tags), so they are
    /// emitted with `VM_ANY` and correlated by tag + time window.
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// The device's content store.
    pub fn store(&self) -> Arc<BlockStore> {
        self.store.clone()
    }

    /// Registers a host queue pair (an HSQ/HCQ in the paper's terms). The
    /// guest memory is what PRP pointers in commands on this queue resolve
    /// against.
    pub fn add_queue(
        &mut self,
        sq: SqConsumer,
        cq: CqProducer,
        mem: Arc<GuestMemory>,
        mode: CompletionMode,
    ) -> QueueHandle {
        self.queues.push(DeviceQueue { sq, cq, mem, mode });
        QueueHandle((self.queues.len() - 1) as u16)
    }

    /// Total I/O commands fully served.
    pub fn ios_served(&self) -> u64 {
        self.ios_served
    }

    fn schedule(&mut self, queue: usize, cqe: CompletionEntry, finish: Ns) {
        // Interrupt-driven consumers see completions only after interrupt
        // delivery/injection (passthrough's +18% median latency in Fig. 4).
        let finish = match self.queues[queue].mode {
            CompletionMode::Interrupt => finish + self.cfg.cost.guest_irq_inject,
            CompletionMode::Polled => finish,
        };
        self.pending.push(Reverse(Pending {
            finish,
            seq: self.seq,
            queue,
            cqe,
        }));
        self.seq += 1;
    }

    fn jitter(&mut self, base: Ns) -> Ns {
        let j = self.cfg.cost.ssd_jitter;
        if j <= 0.0 {
            return base;
        }
        let f = self.rng.range_f64(1.0 - j, 1.0 + j);
        (base as f64 * f) as Ns
    }

    /// Computes the completion time of a media command issued at `now`.
    fn service_finish(&mut self, now: Ns, write: bool, bytes: usize) -> Ns {
        // Stage 1: a parallel channel.
        let ch_cost = self.jitter(self.cfg.cost.ssd_channel_cost(write, bytes));
        let (idx, free_at) = self
            .channels
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("device has channels");
        let ch_start = free_at.max(now);
        let ch_finish = ch_start + ch_cost;
        self.channels[idx] = ch_finish;
        // Stage 2: shared internal bandwidth.
        let bw_cost = self.cfg.cost.ssd_bandwidth_cost(write, bytes);
        let bw_start = self.bw_until.max(now);
        let bw_finish = bw_start + bw_cost;
        self.bw_until = bw_finish;
        let mut finish = ch_finish.max(bw_finish);
        // NVMe-oF hop: request out + response back, data in one direction.
        if let Some(t) = self.cfg.transport {
            finish += 2 * t.one_way + (bytes as f64 * t.per_byte) as Ns;
        }
        finish
    }

    /// Completion time of a faulted command: full service time for media
    /// transfers (a real drive exhausts internal retries first), a
    /// write-latency beat for everything else.
    fn fault_finish(&mut self, now: Ns, class: CmdClass, cmd: &SubmissionEntry) -> Ns {
        match class {
            CmdClass::Read | CmdClass::Write => {
                let bytes = cmd.nlb() as usize * LBA_SIZE;
                self.service_finish(now, class == CmdClass::Write, bytes)
            }
            _ => now + self.jitter(self.cfg.cost.ssd_write_lat),
        }
    }

    fn process_cmd(&mut self, queue: usize, cmd: SubmissionEntry, now: Ns) {
        let opcode = NvmOpcode::from_u8(cmd.opcode);
        let class = class_of(opcode);
        let mut now = now;
        let fault = if self.injector.is_active() {
            let f = self.injector.decide(now, class);
            if f.is_some() {
                self.telemetry.count(Metric::FaultsInjected);
            }
            f
        } else {
            None
        };
        match fault {
            None => {}
            Some(FaultAction::Stall(d)) => {
                // The drive sits on the command before servicing it.
                now += d;
            }
            Some(FaultAction::CqPressure(d)) => {
                // Completions (this one included) are held back while the
                // host-side CQ stays full.
                self.cq_blocked_until = self.cq_blocked_until.max(now + d);
            }
            Some(FaultAction::DropCompletion) => {
                // The drive does the work but the completion is lost:
                // writes still land (a re-issue is idempotent) and no CQE
                // is ever posted, so only a host-side deadline recovers
                // the tag.
                if self.cfg.move_data {
                    if let Some(op) = opcode {
                        let slba = cmd.slba();
                        let nlb = cmd.nlb();
                        if matches!(op, NvmOpcode::Read | NvmOpcode::Write | NvmOpcode::Compare)
                            && self.store.in_range(slba, nlb)
                        {
                            let bytes = nlb as usize * LBA_SIZE;
                            let _ = self.dma(queue, &cmd, op, slba, bytes);
                        }
                    }
                }
                return;
            }
            Some(FaultAction::CorruptPayload) => {
                // The end-to-end guard detects the corruption before any
                // data moves, so a retry sees clean state on both sides.
                let finish = self.fault_finish(now, class, &cmd);
                self.schedule(
                    queue,
                    CompletionEntry::new(cmd.cid, Status::GUARD_CHECK),
                    finish,
                );
                return;
            }
            Some(FaultAction::MediaError { dnr }) => {
                let status = match class {
                    CmdClass::Write => Status::WRITE_FAULT,
                    CmdClass::Read => Status::UNRECOVERED_READ,
                    _ => Status::INTERNAL,
                };
                let status = if dnr { status.with_dnr() } else { status };
                let finish = self.fault_finish(now, class, &cmd);
                self.schedule(queue, CompletionEntry::new(cmd.cid, status), finish);
                return;
            }
            Some(FaultAction::LinkOutage) => {
                // Not meaningful inside the drive; surface as a path error.
                self.schedule(
                    queue,
                    CompletionEntry::new(cmd.cid, Status::PATH_ERROR),
                    now + 5 * US,
                );
                return;
            }
        }
        let op = match opcode {
            Some(op) => op,
            None => {
                self.schedule(
                    queue,
                    CompletionEntry::new(cmd.cid, Status::INVALID_OPCODE),
                    now + 5 * US,
                );
                return;
            }
        };
        match op {
            NvmOpcode::Flush => {
                // Drain the (modeled) write cache.
                let finish = now + self.jitter(self.cfg.cost.ssd_write_lat);
                self.schedule(
                    queue,
                    CompletionEntry::new(cmd.cid, Status::SUCCESS),
                    finish,
                );
            }
            NvmOpcode::Read | NvmOpcode::Write | NvmOpcode::Compare => {
                let slba = cmd.slba();
                let nlb = cmd.nlb();
                if !self.store.in_range(slba, nlb) {
                    self.schedule(
                        queue,
                        CompletionEntry::new(cmd.cid, Status::LBA_OUT_OF_RANGE),
                        now + 5 * US,
                    );
                    return;
                }
                let bytes = nlb as usize * LBA_SIZE;
                let is_write = op == NvmOpcode::Write;
                let mut status = Status::SUCCESS;
                if self.cfg.move_data {
                    status = self.dma(queue, &cmd, op, slba, bytes);
                }
                let finish = self.service_finish(now, is_write, bytes);
                self.schedule(queue, CompletionEntry::new(cmd.cid, status), finish);
            }
            NvmOpcode::WriteZeroes | NvmOpcode::DatasetManagement => {
                let slba = cmd.slba();
                let nlb = cmd.nlb();
                if !self.store.in_range(slba, nlb) {
                    self.schedule(
                        queue,
                        CompletionEntry::new(cmd.cid, Status::LBA_OUT_OF_RANGE),
                        now + 5 * US,
                    );
                    return;
                }
                if self.cfg.move_data {
                    self.store.deallocate(slba, nlb);
                }
                let finish = now + self.jitter(self.cfg.cost.ssd_write_lat / 2);
                self.schedule(
                    queue,
                    CompletionEntry::new(cmd.cid, Status::SUCCESS),
                    finish,
                );
            }
            NvmOpcode::WriteUncorrectable => {
                let finish = now + self.jitter(self.cfg.cost.ssd_write_lat);
                self.schedule(
                    queue,
                    CompletionEntry::new(cmd.cid, Status::SUCCESS),
                    finish,
                );
            }
        }
    }

    /// Moves data between guest memory and the block store.
    fn dma(
        &mut self,
        queue: usize,
        cmd: &SubmissionEntry,
        op: NvmOpcode,
        slba: u64,
        bytes: usize,
    ) -> Status {
        let mem = self.queues[queue].mem.clone();
        let segs = match prp_segments(&mem, cmd.prp1, cmd.prp2, bytes) {
            Ok(s) => s,
            Err(_) => return Status::INVALID_FIELD,
        };
        match op {
            NvmOpcode::Write => {
                let mut data = Vec::with_capacity(bytes);
                for (gpa, len) in segs {
                    data.extend(mem.read_vec(gpa, len));
                }
                self.store.write_blocks(slba, &data);
                Status::SUCCESS
            }
            NvmOpcode::Read => {
                let data = self.store.read_vec(slba, (bytes / LBA_SIZE) as u32);
                let mut off = 0;
                for (gpa, len) in segs {
                    mem.write(gpa, &data[off..off + len]);
                    off += len;
                }
                Status::SUCCESS
            }
            NvmOpcode::Compare => {
                let disk = self.store.read_vec(slba, (bytes / LBA_SIZE) as u32);
                let mut host = Vec::with_capacity(bytes);
                for (gpa, len) in segs {
                    host.extend(mem.read_vec(gpa, len));
                }
                if disk == host {
                    Status::SUCCESS
                } else {
                    Status::new(nvmetro_nvme::StatusCodeType::MediaError, 0x85)
                }
            }
            _ => Status::SUCCESS,
        }
    }

    /// Posts completions due by `now`; returns whether any were posted.
    fn post_due(&mut self, now: Ns) -> bool {
        if now < self.cq_blocked_until {
            // Injected CQ-full pressure: nothing drains until it lifts.
            return false;
        }
        let mut progressed = false;
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.finish > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked");
            let q = &self.queues[p.queue];
            match q.cq.push(p.cqe) {
                Ok(()) => {
                    if q.mode == CompletionMode::Interrupt {
                        self.charged += self.cfg.cost.ssd_irq_cost;
                    }
                    self.ios_served += 1;
                    self.telemetry.count(Metric::DeviceIos);
                    self.telemetry.tag_event(
                        p.finish,
                        p.cqe.cid,
                        Stage::DeviceService,
                        PathKind::Fast,
                    );
                    progressed = true;
                }
                Err(cqe) => {
                    // CQ full: retry shortly. The consumer will drain it.
                    let retry_at = now + US;
                    self.schedule(p.queue, cqe, retry_at);
                    break;
                }
            }
        }
        progressed
    }
}

impl Actor for SimSsd {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = self.post_due(now);
        for qi in 0..self.queues.len() {
            while let Some((cmd, _)) = self.queues[qi].sq.pop() {
                self.process_cmd(qi, cmd, now);
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        self.pending
            .peek()
            .map(|Reverse(p)| p.finish.max(self.cq_blocked_until))
    }

    fn charged(&self) -> Ns {
        self.charged
    }

    fn cpu_mode(&self) -> CpuMode {
        // The device itself is hardware; only IRQ delivery costs host CPU.
        CpuMode::EventDriven
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_nvme::{CqPair, SqPair};

    fn small_cfg() -> SsdConfig {
        SsdConfig {
            capacity_lbas: 100_000,
            ..Default::default()
        }
    }

    struct Rig {
        ssd: SimSsd,
        sq: nvmetro_nvme::SqProducer,
        cq: nvmetro_nvme::CqConsumer,
        mem: Arc<GuestMemory>,
    }

    fn rig(cfg: SsdConfig) -> Rig {
        let mut ssd = SimSsd::new("ssd", cfg);
        let (sqp, sqc) = SqPair::new(256);
        let (cqp, cqc) = CqPair::new(256);
        let mem = Arc::new(GuestMemory::new(1 << 26));
        ssd.add_queue(sqc, cqp, mem.clone(), CompletionMode::Polled);
        Rig {
            ssd,
            sq: sqp,
            cq: cqc,
            mem,
        }
    }

    /// Polls the ssd forward in virtual time until a completion appears.
    fn run_until_completion(r: &mut Rig, mut now: Ns) -> (CompletionEntry, Ns) {
        for _ in 0..1000 {
            r.ssd.poll(now);
            if let Some(cqe) = r.cq.pop() {
                return (cqe, now);
            }
            now = r.ssd.next_event().expect("work must be pending");
        }
        panic!("no completion");
    }

    #[test]
    fn write_then_read_round_trips_data() {
        let mut r = rig(small_cfg());
        let data: Vec<u8> = (0..1024).map(|i| (i % 200) as u8).collect();
        let gpa = r.mem.alloc(1024);
        r.mem.write(gpa, &data);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 1024);
        r.sq.push(SubmissionEntry::write(1, 50, 2, p1, p2)).unwrap();
        let (cqe, t) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status(), Status::SUCCESS);

        let out_gpa = r.mem.alloc(1024);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, out_gpa, 1024);
        r.sq.push(SubmissionEntry::read(1, 50, 2, p1, p2)).unwrap();
        let (cqe, _) = run_until_completion(&mut r, t);
        assert_eq!(cqe.status(), Status::SUCCESS);
        assert_eq!(r.mem.read_vec(out_gpa, 1024), data);
    }

    #[test]
    fn read_latency_is_in_the_calibrated_band() {
        let mut r = rig(small_cfg());
        let gpa = r.mem.alloc(512);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 512);
        r.sq.push(SubmissionEntry::read(1, 0, 1, p1, p2)).unwrap();
        r.ssd.poll(0);
        let finish = r.ssd.next_event().unwrap();
        let lat = CostModel::default().ssd_read_lat;
        assert!(
            finish > lat / 2 && finish < lat * 2,
            "QD1 512B read latency {finish} vs base {lat}"
        );
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut r = rig(small_cfg());
        let gpa = r.mem.alloc(512);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 512);
        r.sq.push(SubmissionEntry::read(1, 99_999_999, 1, p1, p2))
            .unwrap();
        let (cqe, _) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status(), Status::LBA_OUT_OF_RANGE);
    }

    #[test]
    fn unknown_opcode_fails() {
        let mut r = rig(small_cfg());
        let mut cmd = SubmissionEntry::flush(1);
        cmd.opcode = 0x7F;
        r.sq.push(cmd).unwrap();
        let (cqe, _) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status(), Status::INVALID_OPCODE);
    }

    #[test]
    fn flush_and_write_zeroes_succeed() {
        let mut r = rig(small_cfg());
        r.sq.push(SubmissionEntry::flush(1)).unwrap();
        let (cqe, t) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status(), Status::SUCCESS);

        // Write data then zero it via WriteZeroes.
        let store = r.ssd.store();
        store.write_blocks(7, &[0xAB; 512]);
        let mut wz = SubmissionEntry::read(1, 7, 1, 0, 0);
        wz.opcode = NvmOpcode::WriteZeroes as u8;
        r.sq.push(wz).unwrap();
        let (cqe, _) = run_until_completion(&mut r, t);
        assert_eq!(cqe.status(), Status::SUCCESS);
        assert!(store.read_vec(7, 1).iter().all(|&b| b == 0));
    }

    #[test]
    fn parallel_commands_overlap_on_channels() {
        // 8 QD-8 reads must finish much sooner than 8x the QD-1 latency.
        let mut r = rig(small_cfg());
        let gpa = r.mem.alloc(512 * 8);
        for i in 0..8 {
            let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa + i * 512, 512);
            r.sq.push(SubmissionEntry::read(1, i, 1, p1, p2)).unwrap();
        }
        r.ssd.poll(0);
        let mut last_finish = 0;
        let mut done = 0;
        let mut now;
        while done < 8 {
            now = r.ssd.next_event().expect("pending");
            r.ssd.poll(now);
            while r.cq.pop().is_some() {
                done += 1;
                last_finish = now;
            }
        }
        let qd1 = CostModel::default().ssd_read_lat;
        assert!(
            last_finish < qd1 * 3,
            "8 parallel reads took {last_finish}, expected ~1x-2x QD1 ({qd1})"
        );
    }

    #[test]
    fn bandwidth_stage_limits_large_sequential_reads() {
        // Saturate with 128K reads; throughput must be bandwidth-bound
        // (~3 GB/s), not channel-bound.
        let cfg = SsdConfig {
            move_data: false,
            ..small_cfg()
        };
        let mut r = rig(cfg);
        let n = 64;
        for i in 0..n {
            r.sq.push(SubmissionEntry::read(1, i * 256, 256, 0x1000, 0))
                .unwrap();
        }
        r.ssd.poll(0);
        let mut done = 0;
        let mut now = 0;
        while done < n {
            now = r.ssd.next_event().expect("pending");
            r.ssd.poll(now);
            while r.cq.pop().is_some() {
                done += 1;
            }
        }
        let bytes = n as f64 * 131072.0;
        let gbs = bytes / now as f64;
        assert!(gbs > 2.0 && gbs < 5.0, "128K sequential read {gbs} GB/s");
    }

    #[test]
    fn transport_adds_remote_latency() {
        let mut local = rig(small_cfg());
        let remote_cfg = SsdConfig {
            transport: Some(Transport {
                one_way: 10 * US,
                per_byte: 0.1,
            }),
            ..small_cfg()
        };
        let mut remote = rig(remote_cfg);
        for r in [&mut local, &mut remote] {
            let gpa = r.mem.alloc(512);
            let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 512);
            r.sq.push(SubmissionEntry::read(1, 0, 1, p1, p2)).unwrap();
            r.ssd.poll(0);
        }
        let lf = local.ssd.next_event().unwrap();
        let rf = remote.ssd.next_event().unwrap();
        assert!(
            rf > lf + 15 * US,
            "remote ({rf}) must pay the fabric RTT over local ({lf})"
        );
    }

    #[test]
    fn interrupt_mode_charges_host_cpu() {
        let mut ssd = SimSsd::new("ssd", small_cfg());
        let (sqp, sqc) = SqPair::new(16);
        let (cqp, cqc) = CqPair::new(16);
        let mem = Arc::new(GuestMemory::new(1 << 20));
        ssd.add_queue(sqc, cqp, mem, CompletionMode::Interrupt);
        sqp.push(SubmissionEntry::flush(1)).unwrap();
        ssd.poll(0);
        let t = ssd.next_event().unwrap();
        ssd.poll(t);
        assert!(cqc.pop().is_some());
        assert!(ssd.charged() > 0, "IRQ must cost host CPU");
        assert_eq!(ssd.ios_served(), 1);
    }

    #[test]
    fn fault_plan_media_rate_fails_reads_and_writes() {
        let cfg = SsdConfig {
            faults: nvmetro_faults::FaultPlan::media_fail_rate(0xBAD, 1.0),
            ..small_cfg()
        };
        let mut r = rig(cfg);
        let gpa = r.mem.alloc(512);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 512);
        r.sq.push(SubmissionEntry::read(1, 0, 1, p1, p2)).unwrap();
        let (cqe, t) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status(), Status::UNRECOVERED_READ);
        r.sq.push(SubmissionEntry::write(1, 0, 1, p1, p2)).unwrap();
        let (cqe, t) = run_until_completion(&mut r, t);
        assert_eq!(cqe.status(), Status::WRITE_FAULT);
        // Flush is outside MEDIA_CLASSES and must be untouched.
        r.sq.push(SubmissionEntry::flush(1)).unwrap();
        let (cqe, _) = run_until_completion(&mut r, t);
        assert_eq!(cqe.status(), Status::SUCCESS);
    }

    #[test]
    fn fault_plan_reaches_flush_and_admin_commands() {
        use nvmetro_faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
        let plan = FaultPlan::new(0x11).rule(
            FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: true })
                .classes(CmdClass::Flush.bit() | CmdClass::Admin.bit()),
        );
        let mut r = rig(SsdConfig {
            faults: plan,
            ..small_cfg()
        });
        r.sq.push(SubmissionEntry::flush(1)).unwrap();
        let (cqe, t) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status().without_dnr(), Status::INTERNAL);
        assert!(cqe.status().dnr(), "plan asked for DNR");
        // Unrecognized opcodes classify as admin and fault the same way.
        let mut cmd = SubmissionEntry::flush(2);
        cmd.opcode = 0x7F;
        r.sq.push(cmd).unwrap();
        let (cqe, t) = run_until_completion(&mut r, t);
        assert!(cqe.status().dnr());
        // Reads are outside the mask and still succeed.
        let gpa = r.mem.alloc(512);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 512);
        r.sq.push(SubmissionEntry::read(1, 0, 1, p1, p2)).unwrap();
        let (cqe, _) = run_until_completion(&mut r, t);
        assert_eq!(cqe.status(), Status::SUCCESS);
    }

    #[test]
    fn stall_fault_delays_completion() {
        use nvmetro_faults::{FaultAction, FaultPlan, FaultRule, FaultSite};
        let stall = 2_000_000; // 2 ms, far above any service time
        let plan = FaultPlan::new(0x22)
            .rule(FaultRule::new(FaultSite::Device, FaultAction::Stall(stall)).max_hits(1));
        let mut r = rig(SsdConfig {
            faults: plan,
            move_data: false,
            ..small_cfg()
        });
        r.sq.push(SubmissionEntry::read(1, 0, 1, 0x1000, 0))
            .unwrap();
        r.ssd.poll(0);
        let finish = r.ssd.next_event().unwrap();
        assert!(finish >= stall, "stalled command finished at {finish}");
    }

    #[test]
    fn dropped_completion_never_posts() {
        use nvmetro_faults::{FaultAction, FaultPlan, FaultRule, FaultSite};
        let plan = FaultPlan::new(0x33)
            .rule(FaultRule::new(FaultSite::Device, FaultAction::DropCompletion).max_hits(1));
        let mut r = rig(SsdConfig {
            faults: plan,
            move_data: false,
            ..small_cfg()
        });
        r.sq.push(SubmissionEntry::read(1, 0, 1, 0x1000, 0))
            .unwrap();
        r.ssd.poll(0);
        assert_eq!(r.ssd.next_event(), None, "dropped command must vanish");
        assert!(r.cq.pop().is_none());
        // The next command (cap exhausted) completes normally.
        r.sq.push(SubmissionEntry::read(1, 0, 1, 0x1000, 0))
            .unwrap();
        let (cqe, _) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status(), Status::SUCCESS);
    }

    #[test]
    fn cq_pressure_holds_completions_until_it_lifts() {
        use nvmetro_faults::{FaultAction, FaultPlan, FaultRule, FaultSite};
        let hold = 5_000_000; // 5 ms
        let plan = FaultPlan::new(0x44)
            .rule(FaultRule::new(FaultSite::Device, FaultAction::CqPressure(hold)).max_hits(1));
        let mut r = rig(SsdConfig {
            faults: plan,
            move_data: false,
            ..small_cfg()
        });
        r.sq.push(SubmissionEntry::read(1, 0, 1, 0x1000, 0))
            .unwrap();
        r.ssd.poll(0);
        let next = r.ssd.next_event().unwrap();
        assert!(next >= hold, "CQ must stay blocked until pressure lifts");
        r.ssd.poll(next - 1);
        assert!(r.cq.pop().is_none(), "nothing drains while blocked");
        r.ssd.poll(next);
        assert!(r.cq.pop().is_some(), "completion flows once unblocked");
    }

    #[test]
    fn corrupt_payload_surfaces_guard_check_and_preserves_data() {
        use nvmetro_faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
        let plan = FaultPlan::new(0x55).rule(
            FaultRule::new(FaultSite::Device, FaultAction::CorruptPayload)
                .classes(CmdClass::Write.bit())
                .max_hits(1),
        );
        let mut r = rig(SsdConfig {
            faults: plan,
            ..small_cfg()
        });
        let store = r.ssd.store();
        store.write_blocks(9, &[0x77; 512]);
        let gpa = r.mem.alloc(512);
        r.mem.write(gpa, &[0x12; 512]);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 512);
        r.sq.push(SubmissionEntry::write(1, 9, 1, p1, p2)).unwrap();
        let (cqe, t) = run_until_completion(&mut r, 0);
        assert_eq!(cqe.status(), Status::GUARD_CHECK);
        assert!(
            store.read_vec(9, 1).iter().all(|&b| b == 0x77),
            "guarded write must not land"
        );
        // Retry (cap exhausted) lands cleanly.
        r.sq.push(SubmissionEntry::write(1, 9, 1, p1, p2)).unwrap();
        let (cqe, _) = run_until_completion(&mut r, t);
        assert_eq!(cqe.status(), Status::SUCCESS);
        assert!(store.read_vec(9, 1).iter().all(|&b| b == 0x12));
    }

    #[test]
    fn compare_detects_mismatch() {
        let mut r = rig(small_cfg());
        let store = r.ssd.store();
        store.write_blocks(3, &[0x11; 512]);
        let gpa = r.mem.alloc(512);
        r.mem.write(gpa, &[0x22; 512]);
        let (p1, p2) = nvmetro_mem::build_prps(&r.mem, gpa, 512);
        let mut cmd = SubmissionEntry::read(1, 3, 1, p1, p2);
        cmd.opcode = NvmOpcode::Compare as u8;
        r.sq.push(cmd).unwrap();
        let (cqe, _) = run_until_completion(&mut r, 0);
        assert!(cqe.status().is_error());
    }
}
