//! Sparse block content storage.

use nvmetro_nvme::LBA_SIZE;
use std::collections::HashMap;
use std::sync::Mutex;

const SHARDS: usize = 64;

/// The bytes on the (virtual) flash: a sparse map from LBA to 512-byte
/// blocks. Unwritten blocks read as zeroes, like a fresh/trimmed SSD.
///
/// Shared between the device model and tests (to verify what actually
/// landed on "disk", e.g. that ciphertext — not plaintext — was written).
pub struct BlockStore {
    shards: Vec<Mutex<HashMap<u64, Box<[u8; LBA_SIZE]>>>>,
    capacity_lbas: u64,
}

impl BlockStore {
    /// Creates a store with the given capacity in logical blocks.
    pub fn new(capacity_lbas: u64) -> Self {
        BlockStore {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_lbas,
        }
    }

    /// Device capacity in logical blocks.
    pub fn capacity_lbas(&self) -> u64 {
        self.capacity_lbas
    }

    /// True if `slba..slba+nlb` lies within the device.
    pub fn in_range(&self, slba: u64, nlb: u32) -> bool {
        slba.checked_add(nlb as u64)
            .is_some_and(|end| end <= self.capacity_lbas)
    }

    fn shard(&self, lba: u64) -> &Mutex<HashMap<u64, Box<[u8; LBA_SIZE]>>> {
        &self.shards[(lba as usize) % SHARDS]
    }

    /// Writes whole blocks starting at `slba`; `data` length must be a
    /// multiple of the LBA size.
    pub fn write_blocks(&self, slba: u64, data: &[u8]) {
        assert_eq!(data.len() % LBA_SIZE, 0, "partial block write");
        assert!(
            self.in_range(slba, (data.len() / LBA_SIZE) as u32),
            "write beyond capacity"
        );
        for (i, chunk) in data.chunks_exact(LBA_SIZE).enumerate() {
            let lba = slba + i as u64;
            let mut shard = self.shard(lba).lock().unwrap();
            let block = shard
                .entry(lba)
                .or_insert_with(|| Box::new([0u8; LBA_SIZE]));
            block.copy_from_slice(chunk);
        }
    }

    /// Reads whole blocks starting at `slba` into `out`.
    pub fn read_blocks(&self, slba: u64, out: &mut [u8]) {
        assert_eq!(out.len() % LBA_SIZE, 0, "partial block read");
        assert!(
            self.in_range(slba, (out.len() / LBA_SIZE) as u32),
            "read beyond capacity"
        );
        for (i, chunk) in out.chunks_exact_mut(LBA_SIZE).enumerate() {
            let lba = slba + i as u64;
            let shard = self.shard(lba).lock().unwrap();
            match shard.get(&lba) {
                Some(block) => chunk.copy_from_slice(&block[..]),
                None => chunk.fill(0),
            }
        }
    }

    /// Reads `nlb` blocks into a fresh vector.
    pub fn read_vec(&self, slba: u64, nlb: u32) -> Vec<u8> {
        let mut v = vec![0u8; nlb as usize * LBA_SIZE];
        self.read_blocks(slba, &mut v);
        v
    }

    /// Deallocates (TRIMs) a block range: subsequent reads return zeroes.
    pub fn deallocate(&self, slba: u64, nlb: u32) {
        for lba in slba..slba + nlb as u64 {
            self.shard(lba).lock().unwrap().remove(&lba);
        }
    }

    /// Number of blocks holding data (diagnostics).
    pub fn resident_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_zero() {
        let s = BlockStore::new(1000);
        assert!(s.read_vec(5, 2).iter().all(|&b| b == 0));
        assert_eq!(s.resident_blocks(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let s = BlockStore::new(1000);
        let data: Vec<u8> = (0..2 * LBA_SIZE).map(|i| (i % 250) as u8).collect();
        s.write_blocks(10, &data);
        assert_eq!(s.read_vec(10, 2), data);
        assert_eq!(s.resident_blocks(), 2);
    }

    #[test]
    fn deallocate_zeroes_blocks() {
        let s = BlockStore::new(100);
        s.write_blocks(0, &vec![0xFF; LBA_SIZE * 3]);
        s.deallocate(1, 1);
        assert!(s.read_vec(1, 1).iter().all(|&b| b == 0));
        assert!(s.read_vec(0, 1).iter().all(|&b| b == 0xFF));
        assert_eq!(s.resident_blocks(), 2);
    }

    #[test]
    fn in_range_boundaries() {
        let s = BlockStore::new(100);
        assert!(s.in_range(0, 100));
        assert!(!s.in_range(0, 101));
        assert!(!s.in_range(100, 1));
        assert!(!s.in_range(u64::MAX, 1));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn overflow_write_panics() {
        let s = BlockStore::new(10);
        s.write_blocks(9, &vec![0u8; 2 * LBA_SIZE]);
    }

    #[test]
    #[should_panic(expected = "partial block")]
    fn partial_block_write_panics() {
        let s = BlockStore::new(10);
        s.write_blocks(0, &[1, 2, 3]);
    }
}
