//! Real-thread driver for the device model.
//!
//! In virtual-time runs the executor steps the SSD; functional examples and
//! integration tests instead run it on an OS thread against the wall clock,
//! like real hardware operating asynchronously from the host CPU. The drive
//! loop is the shared [`ActorThread`] from `nvmetro-sim`; this type only
//! keeps the device-flavoured name and the typed `stop() -> SimSsd`.

use crate::ssd::SimSsd;
use nvmetro_sim::ActorThread;

/// A device running on its own OS thread until dropped or stopped.
pub struct DeviceThread {
    inner: ActorThread<SimSsd>,
}

impl DeviceThread {
    /// Moves the device onto a new thread. `time_scale` compresses modeled
    /// latencies (e.g. `100.0` makes a 60 µs read complete in 0.6 µs of
    /// wall time) so functional tests stay fast while preserving ordering.
    pub fn spawn(ssd: SimSsd, time_scale: f64) -> Self {
        DeviceThread {
            inner: ActorThread::spawn(ssd, time_scale),
        }
    }

    /// Stops the device thread and returns the device (with its store).
    pub fn stop(self) -> SimSsd {
        self.inner.stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssd::{CompletionMode, SsdConfig};
    use nvmetro_mem::GuestMemory;
    use nvmetro_nvme::{CqPair, SqPair, Status, SubmissionEntry};
    use std::time::{Duration, Instant};

    #[test]
    fn device_thread_serves_io_asynchronously() {
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 10_000,
                ..Default::default()
            },
        );
        let (sqp, sqc) = SqPair::new(64);
        let (cqp, cqc) = CqPair::new(64);
        let mem = std::sync::Arc::new(GuestMemory::new(1 << 24));
        ssd.add_queue(sqc, cqp, mem.clone(), CompletionMode::Polled);
        let dev = DeviceThread::spawn(ssd, 100.0); // 100x faster than modeled

        let data = vec![0x77u8; 512];
        let gpa = mem.alloc(512);
        mem.write(gpa, &data);
        let (p1, p2) = nvmetro_mem::build_prps(&mem, gpa, 512);
        sqp.push(SubmissionEntry::write(1, 11, 1, p1, p2)).unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        let cqe = loop {
            if let Some(c) = cqc.pop() {
                break c;
            }
            assert!(Instant::now() < deadline, "completion timed out");
            std::thread::yield_now();
        };
        assert_eq!(cqe.status(), Status::SUCCESS);
        let ssd = dev.stop();
        assert_eq!(ssd.store().read_vec(11, 1), data);
    }
}
