//! Real-thread driver for the device model.
//!
//! In virtual-time runs the executor steps the SSD; functional examples and
//! integration tests instead run it on an OS thread against the wall clock,
//! like real hardware operating asynchronously from the host CPU.

use crate::ssd::SimSsd;
use nvmetro_sim::{Actor, Ns, Progress};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A device running on its own OS thread until dropped or stopped.
pub struct DeviceThread {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<SimSsd>>,
}

impl DeviceThread {
    /// Moves the device onto a new thread. `time_scale` compresses modeled
    /// latencies (e.g. `100.0` makes a 60 µs read complete in 0.6 µs of
    /// wall time) so functional tests stay fast while preserving ordering.
    pub fn spawn(mut ssd: SimSsd, time_scale: f64) -> Self {
        assert!(time_scale > 0.0, "time scale must be positive");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{}-thread", Actor::name(&ssd)))
            .spawn(move || {
                let start = Instant::now();
                let mut idle_streak = 0u32;
                while !stop2.load(Ordering::Relaxed) {
                    let now: Ns = (start.elapsed().as_nanos() as f64 * time_scale) as Ns;
                    match ssd.poll(now) {
                        Progress::Busy => idle_streak = 0,
                        Progress::Idle => {
                            idle_streak = idle_streak.saturating_add(1);
                            // Yield quickly so co-runners get the core on
                            // small machines (single-core CI included).
                            if idle_streak > 32 {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                // Drain whatever is still pending so shutdown is clean.
                while let Some(t) = ssd.next_event() {
                    ssd.poll(t);
                }
                ssd
            })
            .expect("spawn device thread");
        DeviceThread {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the device thread and returns the device (with its store).
    pub fn stop(mut self) -> SimSsd {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("thread still running")
            .join()
            .expect("device thread panicked")
    }
}

impl Drop for DeviceThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssd::{CompletionMode, SsdConfig};
    use nvmetro_mem::GuestMemory;
    use nvmetro_nvme::{CqPair, SqPair, Status, SubmissionEntry};
    use std::time::Duration;

    #[test]
    fn device_thread_serves_io_asynchronously() {
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 10_000,
                ..Default::default()
            },
        );
        let (sqp, sqc) = SqPair::new(64);
        let (cqp, cqc) = CqPair::new(64);
        let mem = std::sync::Arc::new(GuestMemory::new(1 << 24));
        ssd.add_queue(sqc, cqp, mem.clone(), CompletionMode::Polled);
        let dev = DeviceThread::spawn(ssd, 100.0); // 100x faster than modeled

        let data = vec![0x77u8; 512];
        let gpa = mem.alloc(512);
        mem.write(gpa, &data);
        let (p1, p2) = nvmetro_mem::build_prps(&mem, gpa, 512);
        sqp.push(SubmissionEntry::write(1, 11, 1, p1, p2)).unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        let cqe = loop {
            if let Some(c) = cqc.pop() {
                break c;
            }
            assert!(Instant::now() < deadline, "completion timed out");
            std::thread::yield_now();
        };
        assert_eq!(cqe.status(), Status::SUCCESS);
        let ssd = dev.stop();
        assert_eq!(ssd.store().read_vec(11, 1), data);
    }
}
