//! Deterministic, seeded fault plans for chaos testing the datapath.
//!
//! A [`FaultPlan`] is a declarative list of [`FaultRule`]s — each naming a
//! [`FaultSite`] (where in the stack it fires), a [`FaultAction`] (what goes
//! wrong), an opcode-class mask, a probability, and optional virtual-time
//! window and hit caps. Components derive a site-local [`FaultInjector`]
//! from the plan and consult it per command; everything downstream of the
//! 64-bit plan seed is reproducible, so a chaos run replays identically.
//!
//! This generalizes the old `SsdConfig::fail_rate` bare probability: a rate
//! becomes a single probabilistic `MediaError` rule at the device site
//! ([`FaultPlan::media_fail_rate`]), while richer plans mix stalls, dropped
//! completions, payload corruption, CQ back-pressure windows, and replica
//! leg outages across the SSD model, kernel DM path, and UIF dispatch.

use nvmetro_sim::{Ns, SimRng};

/// Where in the stack a rule fires. Each site draws from an independent
/// RNG stream (seeded from the plan seed and the site) so adding a rule at
/// one site never perturbs the fault sequence observed at another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// The simulated SSD: faults on command completion paths.
    Device,
    /// The kernel device-mapper path.
    KernelDm,
    /// UIF dispatch inside a notify-path runner.
    UifDispatch,
    /// The replica leg used by the replicator UIF.
    ReplicaLink,
}

impl FaultSite {
    fn salt(self) -> u64 {
        match self {
            FaultSite::Device => 0xA5A5_5A5A_0000_0001,
            FaultSite::KernelDm => 0xA5A5_5A5A_0000_0002,
            FaultSite::UifDispatch => 0xA5A5_5A5A_0000_0003,
            FaultSite::ReplicaLink => 0xA5A5_5A5A_0000_0004,
        }
    }
}

/// Coarse command class, used to scope rules to a subset of opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmdClass {
    /// Read-like data transfers (Read, Compare).
    Read,
    /// Write-like data transfers (Write, WriteUncorrectable).
    Write,
    /// Flush.
    Flush,
    /// Admin / unrecognized opcodes.
    Admin,
    /// Management ops (WriteZeroes, DatasetManagement).
    Management,
}

impl CmdClass {
    /// Bit for this class inside a rule's class mask.
    pub const fn bit(self) -> u8 {
        1 << self as u8
    }
}

/// Class mask matching every command class.
pub const ALL_CLASSES: u8 = 0b1_1111;
/// Class mask matching only media data transfers (reads and writes).
pub const MEDIA_CLASSES: u8 = CmdClass::Read.bit() | CmdClass::Write.bit();

/// What goes wrong when a rule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Complete with a media error after full service time. `dnr` sets the
    /// Do Not Retry bit so hosts must surface the failure instead of
    /// retrying it.
    MediaError {
        /// Set the Do Not Retry bit on the resulting status.
        dnr: bool,
    },
    /// Delay completion by the given amount of virtual time.
    Stall(Ns),
    /// Swallow the completion entirely: the command is accepted and never
    /// answered, so only a host-side deadline can recover it.
    DropCompletion,
    /// Corrupt the payload in flight; the device detects it and reports an
    /// end-to-end guard check error.
    CorruptPayload,
    /// Block the completion queue for the given duration, modelling
    /// sustained CQ-full pressure on the host.
    CqPressure(Ns),
    /// The replica leg is unreachable; writes to it fail outright.
    LinkOutage,
}

/// One injectable fault: site + action, scoped by class mask, probability,
/// optional virtual-time window, and optional cap on total firings.
#[derive(Clone, Copy, Debug)]
pub struct FaultRule {
    /// Where the rule applies.
    pub site: FaultSite,
    /// What happens when it fires.
    pub action: FaultAction,
    /// Command classes the rule matches (bitmask of [`CmdClass::bit`]).
    pub classes: u8,
    /// Firing probability per matching command. Values `>= 1.0` fire
    /// unconditionally without consuming randomness, so windowed
    /// deterministic rules replay identically regardless of traffic shape.
    pub probability: f64,
    /// Half-open virtual-time window `[start, end)` the rule is live in;
    /// `None` means always live.
    pub window: Option<(Ns, Ns)>,
    /// Maximum number of firings; `None` means unbounded.
    pub max_hits: Option<u64>,
}

impl FaultRule {
    /// A rule that always fires, for every class, with no window or cap.
    /// Narrow it with the builder methods.
    pub fn new(site: FaultSite, action: FaultAction) -> Self {
        FaultRule {
            site,
            action,
            classes: ALL_CLASSES,
            probability: 1.0,
            window: None,
            max_hits: None,
        }
    }

    /// Restricts the rule to the given class mask.
    pub fn classes(mut self, mask: u8) -> Self {
        self.classes = mask;
        self
    }

    /// Sets the per-command firing probability.
    pub fn probability(mut self, p: f64) -> Self {
        self.probability = p;
        self
    }

    /// Restricts the rule to the virtual-time window `[start, end)`.
    pub fn window(mut self, start: Ns, end: Ns) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Caps the number of times the rule may fire.
    pub fn max_hits(mut self, n: u64) -> Self {
        self.max_hits = Some(n);
        self
    }

    fn matches(&self, now: Ns, class: CmdClass) -> bool {
        if self.classes & class.bit() == 0 {
            return false;
        }
        match self.window {
            Some((start, end)) => now >= start && now < end,
            None => true,
        }
    }
}

/// A seeded, declarative chaos scenario: the single source of truth a rig
/// hands to every fault-capable component.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed all site injectors derive their RNG streams from.
    pub seed: u64,
    /// Rules, consulted in insertion order (first match wins per command).
    pub rules: Vec<FaultRule>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            rules: Vec::new(),
        }
    }

    /// An empty plan with the given seed; add rules with [`FaultPlan::rule`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Appends a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Back-compat sugar for the old `fail_rate` knob: media errors on
    /// reads and writes at the device with the given probability.
    pub fn media_fail_rate(seed: u64, rate: f64) -> Self {
        if rate <= 0.0 {
            return FaultPlan::none();
        }
        FaultPlan::new(seed).rule(
            FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                .classes(MEDIA_CLASSES)
                .probability(rate),
        )
    }

    /// Whether the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether any rule targets the given site.
    pub fn has_site(&self, site: FaultSite) -> bool {
        self.rules.iter().any(|r| r.site == site)
    }

    /// Derives the per-site injector a component polls per command.
    pub fn injector(&self, site: FaultSite) -> FaultInjector {
        let rules: Vec<FaultRule> = self
            .rules
            .iter()
            .filter(|r| r.site == site)
            .copied()
            .collect();
        let hits = vec![0u64; rules.len()];
        FaultInjector {
            rules,
            hits,
            rng: SimRng::new(self.seed ^ site.salt()),
            injected: 0,
        }
    }
}

/// Site-local view of a plan: holds the site's rules, their hit counts, and
/// an independent RNG stream. Components call [`FaultInjector::decide`]
/// once per command and act on the returned action, if any.
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    hits: Vec<u64>,
    rng: SimRng,
    injected: u64,
}

impl FaultInjector {
    /// An injector that never fires (no rules).
    pub fn off() -> Self {
        FaultInjector {
            rules: Vec::new(),
            hits: Vec::new(),
            rng: SimRng::new(0),
            injected: 0,
        }
    }

    /// Whether the injector has any rules at all; `false` lets hot paths
    /// skip the per-command consult entirely.
    pub fn is_active(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Consults the plan for one command: first live rule matching `class`
    /// at virtual time `now` fires (subject to its probability) and its
    /// action is returned. Deterministic rules (probability `>= 1.0`) never
    /// consume randomness, so their replay is independent of how many
    /// probabilistic draws other commands made.
    pub fn decide(&mut self, now: Ns, class: CmdClass) -> Option<FaultAction> {
        for i in 0..self.rules.len() {
            let rule = self.rules[i];
            if !rule.matches(now, class) {
                continue;
            }
            if let Some(cap) = rule.max_hits {
                if self.hits[i] >= cap {
                    continue;
                }
            }
            let fires = rule.probability >= 1.0 || self.rng.chance(rule.probability);
            if fires {
                self.hits[i] += 1;
                self.injected += 1;
                return Some(rule.action);
            }
        }
        None
    }

    /// Total faults injected by this injector so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut inj = FaultPlan::none().injector(FaultSite::Device);
        assert!(!inj.is_active());
        for now in 0..1000 {
            assert_eq!(inj.decide(now, CmdClass::Read), None);
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn class_mask_scopes_rules() {
        let plan = FaultPlan::new(7).rule(
            FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                .classes(CmdClass::Flush.bit()),
        );
        let mut inj = plan.injector(FaultSite::Device);
        assert_eq!(inj.decide(0, CmdClass::Read), None);
        assert_eq!(inj.decide(0, CmdClass::Write), None);
        assert_eq!(
            inj.decide(0, CmdClass::Flush),
            Some(FaultAction::MediaError { dnr: false })
        );
    }

    #[test]
    fn window_bounds_are_half_open() {
        let plan = FaultPlan::new(1).rule(
            FaultRule::new(FaultSite::KernelDm, FaultAction::DropCompletion).window(100, 200),
        );
        let mut inj = plan.injector(FaultSite::KernelDm);
        assert_eq!(inj.decide(99, CmdClass::Read), None);
        assert_eq!(
            inj.decide(100, CmdClass::Read),
            Some(FaultAction::DropCompletion)
        );
        assert_eq!(
            inj.decide(199, CmdClass::Read),
            Some(FaultAction::DropCompletion)
        );
        assert_eq!(inj.decide(200, CmdClass::Read), None);
    }

    #[test]
    fn max_hits_caps_firings() {
        let plan = FaultPlan::new(3)
            .rule(FaultRule::new(FaultSite::Device, FaultAction::CorruptPayload).max_hits(2));
        let mut inj = plan.injector(FaultSite::Device);
        assert!(inj.decide(0, CmdClass::Write).is_some());
        assert!(inj.decide(1, CmdClass::Write).is_some());
        assert!(inj.decide(2, CmdClass::Write).is_none());
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn probabilistic_rules_replay_identically_per_seed() {
        let plan = FaultPlan::media_fail_rate(0x5EED, 0.3);
        let run = |plan: &FaultPlan| {
            let mut inj = plan.injector(FaultSite::Device);
            (0..200)
                .map(|i| inj.decide(i, CmdClass::Read).is_some())
                .collect::<Vec<bool>>()
        };
        let a = run(&plan);
        let b = run(&plan);
        assert_eq!(a, b, "same seed must give the same fault sequence");
        let hits = a.iter().filter(|&&h| h).count();
        assert!(
            hits > 20 && hits < 120,
            "rate ~0.3 must roughly hold ({hits})"
        );
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::new(42)
            .rule(
                FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                    .probability(0.5),
            )
            .rule(
                FaultRule::new(FaultSite::KernelDm, FaultAction::DropCompletion).probability(0.5),
            );
        let dev: Vec<bool> = {
            let mut inj = plan.injector(FaultSite::Device);
            (0..64)
                .map(|i| inj.decide(i, CmdClass::Read).is_some())
                .collect()
        };
        // Adding traffic at another site must not change the device stream.
        let mut kd = plan.injector(FaultSite::KernelDm);
        for i in 0..64 {
            let _ = kd.decide(i, CmdClass::Write);
        }
        let dev2: Vec<bool> = {
            let mut inj = plan.injector(FaultSite::Device);
            (0..64)
                .map(|i| inj.decide(i, CmdClass::Read).is_some())
                .collect()
        };
        assert_eq!(dev, dev2);
    }

    #[test]
    fn deterministic_rules_do_not_consume_randomness() {
        // A windowed always-fire rule ahead of a probabilistic one: commands
        // inside the window must not shift the probabilistic stream.
        let base = FaultPlan::new(9).rule(
            FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                .probability(0.4),
        );
        let with_window = FaultPlan::new(9)
            .rule(FaultRule::new(FaultSite::Device, FaultAction::Stall(500)).window(0, 10))
            .rule(
                FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                    .probability(0.4),
            );
        let tail = |plan: &FaultPlan| {
            let mut inj = plan.injector(FaultSite::Device);
            (10..100)
                .map(|i| inj.decide(i, CmdClass::Read).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(tail(&base), tail(&with_window));
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(5)
            .rule(FaultRule::new(FaultSite::ReplicaLink, FaultAction::LinkOutage).window(0, 50))
            .rule(FaultRule::new(
                FaultSite::ReplicaLink,
                FaultAction::MediaError { dnr: true },
            ));
        let mut inj = plan.injector(FaultSite::ReplicaLink);
        assert_eq!(
            inj.decide(10, CmdClass::Write),
            Some(FaultAction::LinkOutage)
        );
        assert_eq!(
            inj.decide(60, CmdClass::Write),
            Some(FaultAction::MediaError { dnr: true })
        );
    }

    #[test]
    fn media_fail_rate_zero_is_empty() {
        assert!(FaultPlan::media_fail_rate(1, 0.0).is_empty());
        assert!(!FaultPlan::media_fail_rate(1, 0.1).is_empty());
        assert!(FaultPlan::media_fail_rate(1, 0.1).has_site(FaultSite::Device));
        assert!(!FaultPlan::media_fail_rate(1, 0.1).has_site(FaultSite::KernelDm));
    }
}
