//! Cross-VM read coalescing window.
//!
//! Many tenants hammering a shared dataset (an image base layer, a hot
//! index block) produce *concurrent duplicate reads*: same LBA range, in
//! flight at the same instant, from different VMs. The router is the one
//! place that sees all of them, so it can issue **one** device command and
//! fan the completion back to every waiting (vm, vsq, tag) — the
//! cross-IP request coalescing argument, applied to the NVMe mediator.
//!
//! This module is pure bookkeeping and owns no requests: the router calls
//! [`CoalesceWindow::try_join`] after classification (only for plain
//! fast-path reads — anything with hooks, multicast, mediation retries, or
//! non-read opcodes bypasses the window), parks followers undispatched in
//! its routing table, and calls [`CoalesceWindow::resolve`] when the
//! leader reaches its *terminal* completion — after retries and breaker
//! failover have run their course — so followers inherit exactly the
//! status the leader's guest saw and are completed exactly once.
//!
//! The window is bounded (`max_keys` live leader keys, `max_fanout`
//! followers per leader); overflow degrades to plain dispatch, never to
//! queuing.

use std::collections::HashMap;

/// Bounds for the coalescing window.
#[derive(Clone, Copy, Debug)]
pub struct CoalesceConfig {
    /// Maximum distinct in-flight leader keys tracked.
    pub max_keys: usize,
    /// Maximum followers fanned out per leader.
    pub max_fanout: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_keys: 1024,
            max_fanout: 64,
        }
    }
}

/// Outcome of offering a read to the window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Join {
    /// First in-flight read of this range: dispatch it; the window will
    /// watch its tag for the terminal completion.
    Leader,
    /// Duplicate of an in-flight leader (whose tag is carried): do not
    /// dispatch; park and await the leader's fan-out.
    Follower(u16),
    /// Window bounds exceeded: dispatch normally, uncoalesced.
    Bypass,
}

/// A parked duplicate read awaiting its leader's completion.
#[derive(Clone, Copy, Debug)]
pub struct Waiter {
    /// Router VM-binding slot of the follower.
    pub vm: usize,
    /// Routing-table tag of the follower.
    pub tag: u16,
}

struct LeaderEntry {
    key: (u64, u32),
    waiters: Vec<Waiter>,
}

/// Aggregate window counters (monotonic).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoalesceStats {
    /// Reads parked as followers instead of dispatched.
    pub coalesced: u64,
    /// Follower completions fanned out from leader completions.
    pub fanned_out: u64,
    /// Reads registered as leaders.
    pub leaders: u64,
}

/// Duplicate-read tracker keyed by post-mediation `(slba, nlb)`. See the
/// module docs for the protocol.
pub struct CoalesceWindow {
    cfg: CoalesceConfig,
    index: HashMap<(u64, u32), u16>,
    leaders: HashMap<u16, LeaderEntry>,
    stats: CoalesceStats,
}

impl CoalesceWindow {
    /// Creates an empty window.
    pub fn new(cfg: CoalesceConfig) -> Self {
        CoalesceWindow {
            cfg,
            index: HashMap::new(),
            leaders: HashMap::new(),
            stats: CoalesceStats::default(),
        }
    }

    /// Offers an in-flight read (`slba`, `nlb`, owned by `vm`/`tag`) to
    /// the window. The caller must only offer plain single-path reads
    /// whose tag is live in its routing table.
    pub fn try_join(&mut self, slba: u64, nlb: u32, vm: usize, tag: u16) -> Join {
        let key = (slba, nlb);
        if let Some(&leader) = self.index.get(&key) {
            let entry = self
                .leaders
                .get_mut(&leader)
                .expect("index entry without leader entry");
            if entry.waiters.len() >= self.cfg.max_fanout {
                return Join::Bypass;
            }
            entry.waiters.push(Waiter { vm, tag });
            self.stats.coalesced += 1;
            Join::Follower(leader)
        } else {
            if self.leaders.len() >= self.cfg.max_keys {
                return Join::Bypass;
            }
            self.index.insert(key, tag);
            self.leaders.insert(
                tag,
                LeaderEntry {
                    key,
                    waiters: Vec::new(),
                },
            );
            self.stats.leaders += 1;
            Join::Leader
        }
    }

    /// Resolves a terminal completion for `tag`. If it was a live leader,
    /// returns the parked followers (to be completed with the leader's
    /// status) and retires the key; otherwise returns empty. Idempotent:
    /// a second resolve of the same tag is a no-op.
    pub fn resolve(&mut self, tag: u16) -> Vec<Waiter> {
        match self.leaders.remove(&tag) {
            Some(entry) => {
                self.index.remove(&entry.key);
                self.stats.fanned_out += entry.waiters.len() as u64;
                entry.waiters
            }
            None => Vec::new(),
        }
    }

    /// Live leader keys currently tracked.
    pub fn live_leaders(&self) -> usize {
        self.leaders.len()
    }

    /// Followers currently parked across all leaders.
    pub fn parked(&self) -> usize {
        self.leaders.values().map(|e| e.waiters.len()).sum()
    }

    /// Monotonic window counters.
    pub fn stats(&self) -> CoalesceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_then_followers_then_fanout() {
        let mut w = CoalesceWindow::new(CoalesceConfig::default());
        assert_eq!(w.try_join(100, 8, 0, 1), Join::Leader);
        assert_eq!(w.try_join(100, 8, 1, 2), Join::Follower(1));
        assert_eq!(w.try_join(100, 8, 2, 3), Join::Follower(1));
        // Different range → independent leader.
        assert_eq!(w.try_join(200, 8, 1, 4), Join::Leader);
        assert_eq!(w.parked(), 2);
        let fan = w.resolve(1);
        assert_eq!(fan.len(), 2);
        assert_eq!(fan[0].tag, 2);
        assert_eq!(fan[1].tag, 3);
        // Key retired: the next duplicate becomes a fresh leader.
        assert_eq!(w.try_join(100, 8, 0, 5), Join::Leader);
        // Resolve is idempotent and ignores non-leaders.
        assert!(w.resolve(1).is_empty());
        assert!(w.resolve(2).is_empty());
        let s = w.stats();
        assert_eq!(s.coalesced, 2);
        assert_eq!(s.fanned_out, 2);
        assert_eq!(s.leaders, 3);
    }

    #[test]
    fn bounds_degrade_to_bypass() {
        let mut w = CoalesceWindow::new(CoalesceConfig {
            max_keys: 1,
            max_fanout: 1,
        });
        assert_eq!(w.try_join(1, 1, 0, 1), Join::Leader);
        assert_eq!(w.try_join(2, 1, 0, 2), Join::Bypass); // key table full
        assert_eq!(w.try_join(1, 1, 0, 3), Join::Follower(1));
        assert_eq!(w.try_join(1, 1, 0, 4), Join::Bypass); // fanout full
        assert_eq!(w.resolve(1).len(), 1);
        assert_eq!(w.live_leaders(), 0);
    }

    #[test]
    fn exact_match_only() {
        let mut w = CoalesceWindow::new(CoalesceConfig::default());
        assert_eq!(w.try_join(100, 8, 0, 1), Join::Leader);
        // Same start, different length — not a duplicate.
        assert_eq!(w.try_join(100, 16, 0, 2), Join::Leader);
    }
}
