//! Insight → scheduler feedback: throttle the aggressor, never the victim.
//!
//! PR 5's stall watchdog already diagnoses fleet sickness — `QueueStalled`
//! names the victim queue, `SloBurn` flags a route burning its latency
//! budget. This actor closes the loop: it tails the [`HealthLog`], and
//! when the fleet stays unhealthy for a configured number of consecutive
//! windows it picks the **aggressor** — the tenant admitting the most
//! requests over the window that is *not* among the stalled victims — and
//! multiplicatively tightens its [`TenantGovernor`] throttle knob. The
//! shard schedulers see the knob on their next token refill; no datapath
//! coordination is needed.
//!
//! Hysteresis works in both directions: tightening requires
//! `trigger_after` consecutive unhealthy windows (and restarts the count
//! after each step), relaxing requires `relax_after` consecutive healthy
//! windows per step. The throttle never drops below `floor_permille`, so
//! an aggressor is squeezed, not starved, and a mis-identified aggressor
//! keeps making progress while the loop re-evaluates.

use crate::governor::{TenantGovernor, FULL_RATE};
use nvmetro_insight::{HealthLog, HealthVerdict};
use nvmetro_sim::{Actor, Ns, Progress, MS};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Tuning for the feedback loop.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// Evaluation window (virtual time between ticks).
    pub interval: Ns,
    /// Consecutive unhealthy windows before (each) tightening step.
    pub trigger_after: u32,
    /// Consecutive healthy windows before (each) relaxing step.
    pub relax_after: u32,
    /// Multiplicative step in permille: each tighten scales the throttle
    /// by `(1000 - step) / 1000`.
    pub step_permille: u32,
    /// Lower bound on the throttle — the aggressor is never starved.
    pub floor_permille: u32,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            interval: MS,
            trigger_after: 2,
            relax_after: 4,
            step_permille: 300,
            floor_permille: 100,
        }
    }
}

/// One actuation taken by the loop (audit trail).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedbackAction {
    /// Tightened `tenant`'s throttle to `permille`.
    Tighten {
        /// Virtual time of the actuation.
        at: Ns,
        /// Throttled tenant.
        tenant: u32,
        /// New throttle scale.
        permille: u32,
    },
    /// Relaxed `tenant`'s throttle to `permille`.
    Relax {
        /// Virtual time of the actuation.
        at: Ns,
        /// Relaxed tenant.
        tenant: u32,
        /// New throttle scale.
        permille: u32,
    },
}

/// Cloneable audit log of feedback actuations.
#[derive(Clone, Default)]
pub struct FeedbackLog(Arc<Mutex<Vec<FeedbackAction>>>);

impl FeedbackLog {
    /// All actuations so far, in order.
    pub fn actions(&self) -> Vec<FeedbackAction> {
        self.0.lock().unwrap().clone()
    }

    fn push(&self, a: FeedbackAction) {
        self.0.lock().unwrap().push(a);
    }
}

/// The feedback actor. Add it to the executor alongside the watchdog that
/// feeds `log`; it is cheap (a few map lookups per window) and piggybacks
/// on other actors' events, scheduling its own only while a throttle is
/// active and must eventually be relaxed.
pub struct InsightFeedback {
    name: String,
    log: HealthLog,
    governor: TenantGovernor,
    cfg: FeedbackConfig,
    actions: FeedbackLog,
    seen_reports: usize,
    last_admitted: HashMap<u32, u64>,
    victims: HashSet<u32>,
    unhealthy_streak: u32,
    healthy_streak: u32,
    target: Option<u32>,
    next_tick: Ns,
}

impl InsightFeedback {
    /// Creates the actor tailing `log` and actuating `governor`. Returns
    /// the actor and a cloneable audit log.
    pub fn new(
        log: HealthLog,
        governor: TenantGovernor,
        cfg: FeedbackConfig,
    ) -> (Self, FeedbackLog) {
        let actions = FeedbackLog::default();
        (
            InsightFeedback {
                name: "insight-feedback".to_string(),
                log,
                governor,
                cfg,
                actions: actions.clone(),
                seen_reports: 0,
                last_admitted: HashMap::new(),
                victims: HashSet::new(),
                unhealthy_streak: 0,
                healthy_streak: 0,
                target: None,
                next_tick: cfg.interval,
            },
            actions,
        )
    }

    /// The tenant currently throttled by this loop, if any.
    pub fn target(&self) -> Option<u32> {
        self.target
    }

    fn tick(&mut self, now: Ns) {
        let reports = self.log.reports();
        let fresh = &reports[self.seen_reports.min(reports.len())..];
        self.seen_reports = reports.len();
        if fresh.is_empty() {
            // No watchdog windows closed since our last look; without new
            // evidence neither streak advances.
            return;
        }
        let mut unhealthy = false;
        for r in fresh {
            if !r.healthy {
                unhealthy = true;
            }
            for v in &r.verdicts {
                if let HealthVerdict::QueueStalled { vm, .. } = v {
                    self.victims.insert(*vm);
                }
            }
        }

        // Admission deltas over the window, from the shared governor.
        let snap = self.governor.snapshot();
        let mut deltas: Vec<(u32, u64)> = Vec::with_capacity(snap.len());
        for v in &snap {
            let prev = self.last_admitted.insert(v.tenant, v.admitted);
            deltas.push((v.tenant, v.admitted - prev.unwrap_or(0)));
        }

        if unhealthy {
            self.unhealthy_streak += 1;
            self.healthy_streak = 0;
        } else {
            self.healthy_streak += 1;
            self.unhealthy_streak = 0;
        }

        if self.unhealthy_streak >= self.cfg.trigger_after {
            // Stick with the current target while it is still the top
            // non-victim talker; otherwise re-elect.
            let aggressor = self
                .target
                .filter(|t| !self.victims.contains(t))
                .or_else(|| {
                    deltas
                        .iter()
                        .filter(|(t, _)| !self.victims.contains(t))
                        .max_by_key(|&&(t, d)| (d, std::cmp::Reverse(t)))
                        .map(|&(t, _)| t)
                });
            if let Some(t) = aggressor {
                let cur = self.governor.throttle_of(t);
                let next = (cur * (FULL_RATE - self.cfg.step_permille) / FULL_RATE)
                    .max(self.cfg.floor_permille);
                if next < cur {
                    self.governor.set_throttle(t, next);
                    self.actions.push(FeedbackAction::Tighten {
                        at: now,
                        tenant: t,
                        permille: next,
                    });
                }
                self.target = Some(t);
            }
            // Each step requires a fresh run of unhealthy windows.
            self.unhealthy_streak = 0;
        }

        if self.healthy_streak >= self.cfg.relax_after {
            if let Some(t) = self.target {
                let cur = self.governor.throttle_of(t);
                let denom = (FULL_RATE - self.cfg.step_permille).max(1);
                let next = (cur * FULL_RATE / denom + 1).min(FULL_RATE);
                self.governor.set_throttle(t, next);
                self.actions.push(FeedbackAction::Relax {
                    at: now,
                    tenant: t,
                    permille: next,
                });
                if next >= FULL_RATE {
                    self.target = None;
                    self.victims.clear();
                }
            }
            self.healthy_streak = 0;
        }
    }
}

impl Actor for InsightFeedback {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        if now < self.next_tick {
            return Progress::Idle;
        }
        self.tick(now);
        self.next_tick = now + self.cfg.interval;
        Progress::Idle
    }

    fn next_event(&self) -> Option<Ns> {
        // Schedule our own wake-ups only while an actuation is live (a
        // throttled tenant must eventually be relaxed even if the fleet
        // goes quiet). Otherwise piggyback on datapath events, like the
        // watchdog, so an idle simulation can terminate.
        if self.target.is_some() {
            Some(self.next_tick)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_insight::{StallWatchdog, WatchdogConfig};
    use nvmetro_telemetry::Telemetry;

    /// Build a HealthLog we can drive by hand through a watchdog over an
    /// empty telemetry stream — then inject reports via the real rig in
    /// integration tests. Here we only exercise streak arithmetic, using
    /// the private tick() through the Actor interface would need a real
    /// watchdog; instead fabricate reports by running a watchdog with no
    /// traffic (healthy windows) and assert relaxation bookkeeping.
    #[test]
    fn healthy_windows_relax_and_clear_target() {
        let telemetry = Telemetry::enabled();
        let (mut wd, log) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                interval: MS,
                ..WatchdogConfig::default()
            },
        );
        let gov = TenantGovernor::new();
        gov.set_throttle(5, 400);
        let cfg = FeedbackConfig {
            interval: MS,
            relax_after: 1,
            step_permille: 300,
            ..FeedbackConfig::default()
        };
        let (mut fb, actions) = InsightFeedback::new(log, gov.clone(), cfg);
        fb.target = Some(5);
        // Drive watchdog + feedback through enough healthy windows for
        // the throttle to fully relax.
        let mut now = MS;
        for _ in 0..16 {
            wd.poll(now);
            fb.poll(now);
            now += MS;
        }
        assert_eq!(gov.throttle_of(5), FULL_RATE);
        assert_eq!(fb.target(), None);
        let acts = actions.actions();
        assert!(!acts.is_empty());
        assert!(acts
            .iter()
            .all(|a| matches!(a, FeedbackAction::Relax { tenant: 5, .. })));
    }
}
