//! Shared per-tenant control plane: throttle knobs and admission counters.
//!
//! The [`TenantGovernor`] is the rendezvous point between the sharded
//! datapath and the control loop. Each router shard holds an
//! [`Arc<TenantCell>`] per tenant it schedules (resolved once, at tenant
//! registration) and touches only the cell's atomics on the hot path; the
//! [insight feedback actor](crate::feedback) reads admission counters to
//! spot the aggressor and writes `throttle_permille` to tighten its token
//! bucket. No locks are taken after registration, so a shard never stalls
//! on the control plane.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Full throttle authority: the tenant's configured rate is unscaled.
pub const FULL_RATE: u32 = 1000;

/// Per-tenant shared state. Writers are the shard schedulers (counters)
/// and the feedback actor (`throttle_permille`); everything is relaxed
/// atomics — the values are statistics and a rate knob, not a lock.
#[derive(Debug)]
pub struct TenantCell {
    /// Scale applied to the tenant's configured token rate, in permille.
    /// `1000` = untouched; `500` = half rate. Never read below the
    /// feedback loop's configured floor.
    throttle_permille: AtomicU32,
    /// Requests admitted by the scheduler (all shards).
    admitted: AtomicU64,
    /// Admission attempts denied by the token bucket (all shards).
    throttled: AtomicU64,
}

impl TenantCell {
    fn new() -> Self {
        TenantCell {
            throttle_permille: AtomicU32::new(FULL_RATE),
            admitted: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }

    /// Current throttle scale in permille of the configured rate.
    pub fn throttle(&self) -> u32 {
        self.throttle_permille.load(Ordering::Relaxed)
    }

    /// Sets the throttle scale (clamped to `0..=1000`).
    pub fn set_throttle(&self, permille: u32) {
        self.throttle_permille
            .store(permille.min(FULL_RATE), Ordering::Relaxed);
    }

    /// Records one admitted request.
    pub fn note_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one token-bucket denial.
    pub fn note_throttled(&self) {
        self.throttled.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Token-bucket denials so far.
    pub fn throttled(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// Overwrites the admission counters with absolute values (live
    /// servicing: a restored engine carries the pre-snapshot totals into
    /// the fresh governor so per-tenant accounting survives a restore).
    pub fn restore_counters(&self, admitted: u64, throttled: u64) {
        self.admitted.store(admitted, Ordering::Relaxed);
        self.throttled.store(throttled, Ordering::Relaxed);
    }
}

/// Point-in-time view of one tenant's control-plane state.
#[derive(Clone, Copy, Debug)]
pub struct GovernorView {
    /// Tenant (VM) id.
    pub tenant: u32,
    /// Current throttle scale in permille (1000 = unthrottled).
    pub throttle_permille: u32,
    /// Requests admitted across all shards.
    pub admitted: u64,
    /// Token-bucket denials across all shards.
    pub throttled: u64,
}

/// Cloneable registry of [`TenantCell`]s, shared by every shard's
/// scheduler and the feedback actor. The registry lock is only taken on
/// first sight of a tenant and in control-plane snapshots.
#[derive(Clone, Default)]
pub struct TenantGovernor {
    cells: Arc<Mutex<HashMap<u32, Arc<TenantCell>>>>,
}

impl TenantGovernor {
    /// Creates an empty governor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (registering on first sight) the shared cell for `tenant`.
    pub fn cell(&self, tenant: u32) -> Arc<TenantCell> {
        let mut cells = self.cells.lock().unwrap();
        cells
            .entry(tenant)
            .or_insert_with(|| Arc::new(TenantCell::new()))
            .clone()
    }

    /// Sets the throttle scale for `tenant` (registering it if needed).
    pub fn set_throttle(&self, tenant: u32, permille: u32) {
        self.cell(tenant).set_throttle(permille);
    }

    /// Restores one tenant's full control-plane cell from a servicing
    /// snapshot: throttle knob plus absolute admission counters. A no-op
    /// write when the same governor instance is reused across the restore
    /// (the values are already identical).
    pub fn restore_cell(&self, tenant: u32, throttle_permille: u32, admitted: u64, throttled: u64) {
        let cell = self.cell(tenant);
        cell.set_throttle(throttle_permille);
        cell.restore_counters(admitted, throttled);
    }

    /// Current throttle scale for `tenant`; `FULL_RATE` if unknown.
    pub fn throttle_of(&self, tenant: u32) -> u32 {
        let cells = self.cells.lock().unwrap();
        cells.get(&tenant).map_or(FULL_RATE, |c| c.throttle())
    }

    /// True if any tenant is currently throttled below full rate.
    pub fn any_throttled(&self) -> bool {
        let cells = self.cells.lock().unwrap();
        cells.values().any(|c| c.throttle() < FULL_RATE)
    }

    /// Control-plane snapshot, sorted by tenant id.
    pub fn snapshot(&self) -> Vec<GovernorView> {
        let cells = self.cells.lock().unwrap();
        let mut out: Vec<GovernorView> = cells
            .iter()
            .map(|(&tenant, c)| GovernorView {
                tenant,
                throttle_permille: c.throttle(),
                admitted: c.admitted(),
                throttled: c.throttled(),
            })
            .collect();
        out.sort_by_key(|v| v.tenant);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_shared_and_clamped() {
        let gov = TenantGovernor::new();
        let a = gov.cell(7);
        let b = gov.clone().cell(7);
        a.set_throttle(2000);
        assert_eq!(b.throttle(), FULL_RATE);
        b.set_throttle(250);
        assert_eq!(gov.throttle_of(7), 250);
        assert!(gov.any_throttled());
        a.note_admitted();
        a.note_throttled();
        let snap = gov.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].tenant, 7);
        assert_eq!(snap[0].admitted, 1);
        assert_eq!(snap[0].throttled, 1);
    }

    #[test]
    fn unknown_tenant_reads_full_rate() {
        let gov = TenantGovernor::new();
        assert_eq!(gov.throttle_of(99), FULL_RATE);
        assert!(!gov.any_throttled());
    }
}
