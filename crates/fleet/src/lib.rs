//! Fleet-scale multi-tenancy for NVMetro.
//!
//! A single NVMe mediator in front of thousands of VM queue groups needs
//! more than a correct datapath: it needs *tenancy*. This crate is the
//! fleet layer the router plugs into:
//!
//! * [`sched`] — a per-shard [`TenantScheduler`]: weighted deficit
//!   round-robin over tenants with token-bucket admission, replacing the
//!   unconditional FIFO visit order of the drain loop (FlexBSO's argument
//!   that per-tenant QoS belongs in the offload layer, not the guest).
//! * [`coalesce`] — a [`CoalesceWindow`] that detects concurrent
//!   duplicate reads *across* VMs so the router can issue one device
//!   command and fan the completion out (cross-IP request coalescing at
//!   the NVMe mediator).
//! * [`governor`] — the [`TenantGovernor`] control plane: lock-free
//!   per-tenant throttle knobs and admission counters shared between
//!   shards and the control loop.
//! * [`feedback`] — [`InsightFeedback`], an actor that tails the PR 5
//!   stall-watchdog [`HealthLog`](nvmetro_insight::HealthLog), identifies
//!   the aggressor tenant behind `QueueStalled`/`SloBurn` verdicts, and
//!   tightens its token bucket with hysteresis — throttle the noisy
//!   neighbour, never the victim.
//!
//! The crate depends only on `sim`, `telemetry`, and `insight`;
//! `nvmetro-core` depends on *it* (the router embeds the scheduler and the
//! window), which keeps the dependency graph acyclic.

#![warn(missing_docs)]

pub mod coalesce;
pub mod feedback;
pub mod governor;
pub mod sched;

pub use coalesce::{CoalesceConfig, CoalesceStats, CoalesceWindow, Join, Waiter};
pub use feedback::{FeedbackAction, FeedbackConfig, FeedbackLog, InsightFeedback};
pub use governor::{GovernorView, TenantCell, TenantGovernor, FULL_RATE};
pub use sched::{Admit, FleetConfig, RateLimit, TenantScheduler, TenantSpec, TenantView};
