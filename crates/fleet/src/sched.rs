//! Per-tenant admission scheduling for a router shard's drain loop.
//!
//! Each shard owns one [`TenantScheduler`]. Per poll round the router asks
//! it, tenant by tenant, whether the next guest submission may be
//! admitted. Two mechanisms compose:
//!
//! * **Weighted deficit round-robin** — every round each backlogged
//!   tenant's deficit grows by `quantum × weight`; admitting a request
//!   spends one unit. A tenant whose deficit runs dry is preempted for the
//!   round, so a flooding VM cannot monopolise the drain loop no matter
//!   how deep its VSQs are. Deficit carries over while backlogged (classic
//!   DRR) and resets when the tenant's queues drain empty.
//! * **Token-bucket admission** — tenants with a configured
//!   [`RateLimit`] additionally spend one token per request, refilled at
//!   `iops` per second up to `burst`. The effective rate is scaled by the
//!   tenant's [`TenantGovernor`](crate::TenantGovernor) throttle knob, so
//!   the insight feedback loop can tighten a noisy tenant's bucket at run
//!   time without touching the shard.
//!
//! The scheduler is deliberately clock-driven rather than event-driven:
//! refill is computed lazily from elapsed virtual time on each admission
//! attempt, in integer arithmetic (`period = 1s / effective_iops`), so it
//! is deterministic under the virtual-time executor.

use crate::governor::{TenantCell, TenantGovernor, FULL_RATE};
use nvmetro_sim::{Ns, SEC};
use std::collections::HashMap;
use std::sync::Arc;

/// Token-bucket rate limit: sustained `iops` with up to `burst` tokens
/// banked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained admissions per second.
    pub iops: u64,
    /// Maximum banked tokens (bucket depth).
    pub burst: u64,
}

impl RateLimit {
    /// A limit of `iops` sustained with a quarter-second burst bank
    /// (minimum 8 tokens).
    pub fn per_second(iops: u64) -> Self {
        RateLimit {
            iops,
            burst: (iops / 4).max(8),
        }
    }
}

/// Per-tenant scheduling parameters.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant (VM) id.
    pub tenant: u32,
    /// DRR weight; deficit grows by `quantum × weight` per round.
    pub weight: u32,
    /// Optional token-bucket admission limit.
    pub rate: Option<RateLimit>,
}

/// Configuration for the fleet scheduler, shared by every shard of an
/// engine. Cloning is cheap; the embedded governor is a shared handle, so
/// all shards built from one config feed the same control plane.
#[derive(Clone)]
pub struct FleetConfig {
    /// Base DRR quantum (requests per round at weight 1).
    pub quantum: u32,
    /// Weight for tenants without an explicit [`TenantSpec`].
    pub default_weight: u32,
    /// Rate limit for tenants without an explicit [`TenantSpec`].
    pub default_rate: Option<RateLimit>,
    /// Explicit per-tenant overrides.
    pub tenants: Vec<TenantSpec>,
    /// Shared control plane (throttle knobs + admission counters).
    pub governor: TenantGovernor,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            quantum: 8,
            default_weight: 1,
            default_rate: None,
            tenants: Vec::new(),
            governor: TenantGovernor::new(),
        }
    }
}

impl FleetConfig {
    /// Sets the base DRR quantum.
    pub fn quantum(mut self, quantum: u32) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Sets the default rate limit for tenants without an override.
    pub fn default_rate(mut self, rate: RateLimit) -> Self {
        self.default_rate = Some(rate);
        self
    }

    /// Adds an explicit per-tenant override.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }
}

/// Outcome of one admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Request admitted; deficit and (if limited) one token were spent.
    Granted,
    /// Token bucket empty: the tenant is over its (possibly throttled)
    /// rate. Retry next poll.
    Throttled,
    /// DRR deficit exhausted: the tenant used up its share of this round
    /// and is preempted in favour of other tenants.
    Exhausted,
}

/// Rounds of unspent quantum a backlogged tenant may bank. Bounds the
/// post-idle burst the same way `burst` bounds the token bank.
const DEFICIT_BANK_ROUNDS: u64 = 4;

struct TenantState {
    tenant: u32,
    weight: u32,
    deficit: u64,
    /// Round this tenant last received its quantum grant.
    granted_round: u64,
    rate: Option<RateLimit>,
    tokens: u64,
    last_refill: Ns,
    cell: Arc<TenantCell>,
    admitted: u64,
    throttled: u64,
    preempted: u64,
}

/// Point-in-time view of one tenant's scheduler state on one shard, for
/// `EngineStats`.
#[derive(Clone, Copy, Debug)]
pub struct TenantView {
    /// Tenant (VM) id.
    pub tenant: u32,
    /// DRR weight.
    pub weight: u32,
    /// Unspent DRR deficit (requests).
    pub deficit: u64,
    /// Tokens remaining in the bucket (`u64::MAX` when unlimited).
    pub tokens: u64,
    /// Configured rate limit, if any.
    pub rate: Option<RateLimit>,
    /// Governor throttle scale in permille (1000 = unthrottled).
    pub throttle_permille: u32,
    /// Requests admitted on this shard.
    pub admitted: u64,
    /// Token denials on this shard.
    pub throttled: u64,
    /// Round preemptions on this shard.
    pub preempted: u64,
}

/// One shard's per-tenant admission scheduler. See the module docs.
pub struct TenantScheduler {
    quantum: u32,
    default_weight: u32,
    default_rate: Option<RateLimit>,
    overrides: HashMap<u32, (u32, Option<RateLimit>)>,
    governor: TenantGovernor,
    states: Vec<TenantState>,
    index: HashMap<u32, usize>,
    round: u64,
}

impl TenantScheduler {
    /// Builds a shard scheduler from the shared fleet configuration.
    pub fn new(cfg: &FleetConfig) -> Self {
        let overrides = cfg
            .tenants
            .iter()
            .map(|t| (t.tenant, (t.weight.max(1), t.rate)))
            .collect();
        TenantScheduler {
            quantum: cfg.quantum.max(1),
            default_weight: cfg.default_weight.max(1),
            default_rate: cfg.default_rate,
            overrides,
            governor: cfg.governor.clone(),
            states: Vec::new(),
            index: HashMap::new(),
            round: 0,
        }
    }

    /// The shared control plane this scheduler reports to.
    pub fn governor(&self) -> &TenantGovernor {
        &self.governor
    }

    /// Resolves (registering on first sight) the scheduler slot for a
    /// tenant. Slots are stable for the scheduler's lifetime.
    pub fn slot(&mut self, tenant: u32) -> usize {
        if let Some(&i) = self.index.get(&tenant) {
            return i;
        }
        let (weight, rate) = self
            .overrides
            .get(&tenant)
            .copied()
            .unwrap_or((self.default_weight, self.default_rate));
        let cell = self.governor.cell(tenant);
        let tokens = rate.map_or(0, |r| r.burst.max(1));
        let i = self.states.len();
        self.states.push(TenantState {
            tenant,
            weight,
            deficit: 0,
            granted_round: 0,
            rate,
            tokens,
            last_refill: 0,
            cell,
            admitted: 0,
            throttled: 0,
            preempted: 0,
        });
        self.index.insert(tenant, i);
        i
    }

    /// Starts a new DRR round. Quantum grants are applied lazily on the
    /// first admission attempt of each tenant in the round.
    pub fn new_round(&mut self) {
        self.round += 1;
    }

    /// Asks to admit one request for the tenant in `slot` at virtual time
    /// `now`. Call only when the tenant actually has a request queued.
    pub fn admit(&mut self, slot: usize, now: Ns) -> Admit {
        let quantum = self.quantum as u64;
        let s = &mut self.states[slot];
        if s.granted_round != self.round {
            s.granted_round = self.round;
            let grant = quantum * s.weight as u64;
            s.deficit = (s.deficit + grant).min(grant * DEFICIT_BANK_ROUNDS);
        }
        if s.deficit == 0 {
            s.preempted += 1;
            return Admit::Exhausted;
        }
        if let Some(rate) = s.rate {
            refill(s, rate, now);
            if s.tokens == 0 {
                s.throttled += 1;
                s.cell.note_throttled();
                return Admit::Throttled;
            }
            s.tokens -= 1;
        }
        s.deficit -= 1;
        s.admitted += 1;
        s.cell.note_admitted();
        Admit::Granted
    }

    /// Earliest virtual time `slot`'s bucket will hold a token again —
    /// the router's wake-up hint after a [`Admit::Throttled`] denial.
    /// Returns `now` when tokens are already available or the tenant is
    /// unlimited. Computed with the *current* throttle scale; a later
    /// relaxation only makes the hint conservative (early), never late.
    pub fn next_token_at(&self, slot: usize, now: Ns) -> Ns {
        let s = &self.states[slot];
        let Some(rate) = s.rate else {
            return now;
        };
        if s.tokens > 0 {
            return now;
        }
        let permille = s.cell.throttle().clamp(1, FULL_RATE) as u64;
        let eff_iops = (rate.iops * permille / FULL_RATE as u64).max(1);
        let period = (SEC / eff_iops).max(1);
        (s.last_refill + period).max(now)
    }

    /// Ends the round's visit to `slot`. `drained_empty` means every VSQ
    /// of the tenant is now empty: per classic DRR, an un-backlogged
    /// tenant forfeits its unspent deficit (it keeps banked tokens).
    pub fn end_visit(&mut self, slot: usize, drained_empty: bool) {
        if drained_empty {
            self.states[slot].deficit = 0;
        }
    }

    /// Per-tenant state view for stats surfaces, sorted by tenant id.
    pub fn view(&self) -> Vec<TenantView> {
        let mut out: Vec<TenantView> = self
            .states
            .iter()
            .map(|s| TenantView {
                tenant: s.tenant,
                weight: s.weight,
                deficit: s.deficit,
                tokens: if s.rate.is_some() { s.tokens } else { u64::MAX },
                rate: s.rate,
                throttle_permille: s.cell.throttle(),
                admitted: s.admitted,
                throttled: s.throttled,
                preempted: s.preempted,
            })
            .collect();
        out.sort_by_key(|v| v.tenant);
        out
    }
}

/// Lazily refills the token bucket from elapsed virtual time. Integer
/// period accounting: one token every `1s / effective_iops`, where the
/// effective rate is the configured rate scaled by the governor throttle.
/// `last_refill` advances by whole periods only, so fractional credit is
/// never lost.
fn refill(s: &mut TenantState, rate: RateLimit, now: Ns) {
    let permille = s.cell.throttle().clamp(1, FULL_RATE) as u64;
    let eff_iops = (rate.iops * permille / FULL_RATE as u64).max(1);
    let period = (SEC / eff_iops).max(1);
    if now <= s.last_refill {
        return;
    }
    let earned = (now - s.last_refill) / period;
    if earned == 0 {
        return;
    }
    let burst = rate.burst.max(1);
    if s.tokens + earned >= burst {
        s.tokens = burst;
        // Bucket is full: further banking is forfeited, restart the clock.
        s.last_refill = now;
    } else {
        s.tokens += earned;
        s.last_refill += earned * period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_sim::MS;

    fn sched_with(tenants: Vec<TenantSpec>) -> TenantScheduler {
        let cfg = FleetConfig {
            quantum: 4,
            tenants,
            ..FleetConfig::default()
        };
        TenantScheduler::new(&cfg)
    }

    #[test]
    fn drr_preempts_after_quantum_and_carries_deficit() {
        let mut s = sched_with(vec![
            TenantSpec {
                tenant: 0,
                weight: 1,
                rate: None,
            },
            TenantSpec {
                tenant: 1,
                weight: 2,
                rate: None,
            },
        ]);
        let a = s.slot(0);
        let b = s.slot(1);
        s.new_round();
        let mut got_a = 0;
        while s.admit(a, 0) == Admit::Granted {
            got_a += 1;
        }
        let mut got_b = 0;
        while s.admit(b, 0) == Admit::Granted {
            got_b += 1;
        }
        assert_eq!(got_a, 4); // quantum × weight 1
        assert_eq!(got_b, 8); // quantum × weight 2
                              // Still backlogged (end_visit not drained-empty): deficit banks
                              // into the next round, capped at DEFICIT_BANK_ROUNDS grants.
        s.end_visit(a, false);
        s.new_round();
        assert_eq!(s.admit(a, 0), Admit::Granted);
    }

    #[test]
    fn drained_tenant_forfeits_deficit() {
        let mut s = sched_with(vec![]);
        let a = s.slot(9);
        s.new_round();
        assert_eq!(s.admit(a, 0), Admit::Granted);
        s.end_visit(a, true);
        let v = &s.view()[0];
        assert_eq!(v.deficit, 0);
        assert_eq!(v.tenant, 9);
    }

    #[test]
    fn token_bucket_paces_to_rate_and_honors_throttle() {
        // 1000 IOPS, burst 2 → one token per millisecond.
        let mut s = sched_with(vec![TenantSpec {
            tenant: 3,
            weight: 100, // deficit never the binding constraint here
            rate: Some(RateLimit {
                iops: 1000,
                burst: 2,
            }),
        }]);
        let slot = s.slot(3);
        s.new_round();
        assert_eq!(s.admit(slot, 0), Admit::Granted);
        assert_eq!(s.admit(slot, 0), Admit::Granted);
        assert_eq!(s.admit(slot, 0), Admit::Throttled);
        assert_eq!(s.admit(slot, MS - 1), Admit::Throttled);
        assert_eq!(s.admit(slot, MS), Admit::Granted);
        // Throttle to half rate: next token takes 2 ms.
        s.governor().set_throttle(3, 500);
        assert_eq!(s.admit(slot, MS + MS), Admit::Throttled);
        assert_eq!(s.admit(slot, MS + 2 * MS), Admit::Granted);
        let v = &s.view()[0];
        assert_eq!(v.throttle_permille, 500);
        assert!(v.throttled >= 3);
    }

    #[test]
    fn burst_caps_idle_banking() {
        let mut s = sched_with(vec![TenantSpec {
            tenant: 1,
            weight: 100,
            rate: Some(RateLimit {
                iops: 1000,
                burst: 4,
            }),
        }]);
        let slot = s.slot(1);
        s.new_round();
        // Drain the initial bank...
        while s.admit(slot, 0) == Admit::Granted {}
        // ...then a full idle second earns 1000 periods but banks only 4.
        let mut granted = 0;
        while s.admit(slot, SEC) == Admit::Granted {
            granted += 1;
        }
        assert_eq!(granted, 4);
    }
}
