//! The encryption I/O classifier — vbpf translation of Listing 1.
//!
//! Rules (Fig. 2): reads go to the device first and hook its completion,
//! then continue in the UIF for decryption; writes go to the UIF for
//! encryption, which finishes them after its own disk write; everything
//! else passes straight to the device. The classifier also performs the
//! direct-mediation LBA translation: the VM's partition offset is read
//! from map 0, key 0 — configured by the host, never trusted from the
//! guest.

use nvmetro_core::classify::{classifier_verifier_config, ctx_offsets, verdict_bits};
use nvmetro_nvme::Status;
use nvmetro_vbpf::interp::helpers;
use nvmetro_vbpf::isa::*;
use nvmetro_vbpf::{MapDef, ProgramBuilder, Vm};

/// Builds and verifies the encryptor classifier; `lba_offset` is installed
/// into its configuration map. Returns the ready-to-install VM.
pub fn build_encryptor_classifier(lba_offset: u64) -> Vm {
    let mut b = ProgramBuilder::new();
    let cfg_map = b.declare_map(MapDef {
        value_size: 8,
        max_entries: 1,
    });
    let hook_hcq = b.new_label();
    let no_cfg = b.new_label();
    let is_write = b.new_label();
    let other_op = b.new_label();
    let fwd_error = b.new_label();
    let to_uif = b.new_label();

    // if (ctx->current_hook != HOOK_VSQ) goto hook_hcq;
    b.ldx(SIZE_W, R6, R1, ctx_offsets::HOOK)
        .jmp_imm(JMP_JNE, R6, 0, hook_hcq);
    // --- encryptor_begin: new request ---
    // LBA translation: slba += cfg[0] (the VM's partition offset).
    b.mov64(R7, R1) // keep ctx
        .st_imm(SIZE_W, R10, -4, 0)
        .mov64_imm(R1, cfg_map as i32)
        .mov64(R2, R10)
        .add64_imm(R2, -4)
        .call(helpers::MAP_LOOKUP)
        .jmp_imm(JMP_JEQ, R0, 0, no_cfg)
        .ldx(SIZE_DW, R3, R0, 0)
        .ldx(SIZE_DW, R4, R7, ctx_offsets::SLBA)
        .alu64(ALU_ADD, R4, R3)
        .stx(SIZE_DW, R7, ctx_offsets::SLBA, R4);
    // switch (ctx->cmd.common.opcode)
    b.ldx(SIZE_B, R5, R7, ctx_offsets::OPCODE)
        .jmp_imm(JMP_JEQ, R5, 0x01, is_write)
        .jmp_imm(JMP_JNE, R5, 0x02, other_op);
    // case nvme_cmd_read: read ciphertext from the device, hook its
    // completion: return SEND_HQ | HOOK_HCQ;
    b.lddw(R0, verdict_bits::SEND_HQ | verdict_bits::HOOK_HCQ)
        .exit();
    // case nvme_cmd_write: UIF encrypts and will finish the command:
    // return SEND_NQ | WILL_COMPLETE_NQ;
    b.bind(is_write);
    b.lddw(R0, verdict_bits::SEND_NQ | verdict_bits::WILL_COMPLETE_NQ)
        .exit();
    // default: send to device: return SEND_HQ | WILL_COMPLETE_HQ;
    b.bind(other_op);
    b.lddw(R0, verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
        .exit();
    // --- HOOK_HCQ: device read done, check for error ---
    b.bind(hook_hcq);
    b.ldx(SIZE_H, R3, R1, ctx_offsets::ERROR)
        .jmp_imm(JMP_JNE, R3, 0, fwd_error)
        .ja(to_uif);
    // if (ctx->error) return ctx->error | COMPLETE;
    b.bind(fwd_error);
    b.mov64(R0, R3)
        .or64_imm(R0, verdict_bits::COMPLETE as i32)
        .exit();
    // else return SEND_NQ | WILL_COMPLETE_NQ;
    b.bind(to_uif);
    b.lddw(R0, verdict_bits::SEND_NQ | verdict_bits::WILL_COMPLETE_NQ)
        .exit();
    // Unconfigured map: fail closed.
    b.bind(no_cfg);
    b.mov64_imm(R0, Status::INTERNAL.0 as i32)
        .or64_imm(R0, verdict_bits::COMPLETE as i32)
        .exit();

    let (insns, maps) = b.build();
    let mut vm = Vm::new(
        nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config())
            .expect("encryptor classifier must verify"),
    );
    vm.map_mut(cfg_map as usize)
        .set_u64(0, lba_offset)
        .expect("configure partition offset");
    vm
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_core::classify::path_bits;
    use nvmetro_core::classify::{Classifier, RequestCtx, Verdict, HOOK_HCQ, HOOK_VSQ};
    use nvmetro_nvme::SubmissionEntry;

    fn run(vm: &mut Vm, hook: u32, cmd: &SubmissionEntry, error: Status) -> (Verdict, RequestCtx) {
        let mut cls = Classifier::Bpf(std::mem::replace(vm, build_encryptor_classifier(0)));
        let mut ctx = RequestCtx::new(hook, 0, 0, cmd, error, 0);
        let v = cls.run(&mut ctx, 0);
        if let Classifier::Bpf(inner) = cls {
            *vm = inner;
        }
        (v, ctx)
    }

    #[test]
    fn reads_hook_the_device_completion() {
        let mut vm = build_encryptor_classifier(0);
        let cmd = SubmissionEntry::read(1, 10, 1, 0, 0);
        let (v, _) = run(&mut vm, HOOK_VSQ, &cmd, Status::SUCCESS);
        assert_eq!(v.send_mask(), path_bits::HQ);
        assert_eq!(v.hook_mask(), path_bits::HQ);
        assert_eq!(v.will_complete_mask(), 0);
    }

    #[test]
    fn writes_go_to_the_uif() {
        let mut vm = build_encryptor_classifier(0);
        let cmd = SubmissionEntry::write(1, 10, 1, 0, 0);
        let (v, _) = run(&mut vm, HOOK_VSQ, &cmd, Status::SUCCESS);
        assert_eq!(v.send_mask(), path_bits::NQ);
        assert_eq!(v.will_complete_mask(), path_bits::NQ);
    }

    #[test]
    fn other_commands_pass_through() {
        let mut vm = build_encryptor_classifier(0);
        let cmd = SubmissionEntry::flush(1);
        let (v, _) = run(&mut vm, HOOK_VSQ, &cmd, Status::SUCCESS);
        assert_eq!(v.send_mask(), path_bits::HQ);
        assert_eq!(v.will_complete_mask(), path_bits::HQ);
    }

    #[test]
    fn lba_translation_uses_the_config_map() {
        let mut vm = build_encryptor_classifier(4096);
        let cmd = SubmissionEntry::read(1, 10, 1, 0, 0);
        let (_, ctx) = run(&mut vm, HOOK_VSQ, &cmd, Status::SUCCESS);
        assert_eq!(ctx.slba(), 4106);
    }

    #[test]
    fn device_read_success_continues_in_uif() {
        let mut vm = build_encryptor_classifier(0);
        let cmd = SubmissionEntry::read(1, 10, 1, 0, 0);
        let (v, _) = run(&mut vm, HOOK_HCQ, &cmd, Status::SUCCESS);
        assert_eq!(v.send_mask(), path_bits::NQ);
        assert_eq!(v.will_complete_mask(), path_bits::NQ);
        assert!(!v.complete());
    }

    #[test]
    fn device_read_error_is_forwarded_to_the_vm() {
        let mut vm = build_encryptor_classifier(0);
        let cmd = SubmissionEntry::read(1, 10, 1, 0, 0);
        let (v, _) = run(&mut vm, HOOK_HCQ, &cmd, Status::UNRECOVERED_READ);
        assert!(v.complete());
        assert_eq!(v.status(), Status::UNRECOVERED_READ);
    }

    #[test]
    fn hook_invocations_do_not_retranslate() {
        let mut vm = build_encryptor_classifier(1000);
        let cmd = SubmissionEntry::read(1, 50, 1, 0, 0);
        // At HOOK_HCQ the slba is already physical; it must be untouched.
        let (_, ctx) = run(&mut vm, HOOK_HCQ, &cmd, Status::SUCCESS);
        assert_eq!(ctx.slba(), 50);
    }
}
