//! Transparent data encryption (§IV-A).

mod classifier;
mod uif;

pub use classifier::build_encryptor_classifier;
pub use uif::{CryptoBackend, EncryptorUif};
