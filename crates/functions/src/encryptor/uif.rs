//! The encryption UIF — Rust translation of Listing 2.
//!
//! Three tasks (§IV-A): (1) in-place decryption of ciphertext delivered by
//! the device; (2) encryption of guest plaintext into a temporary buffer;
//! (3) writing that ciphertext to disk through the framework's io_uring
//! backend. XTS sector tweaks use partition-relative LBAs (`data.lba()` in
//! the paper), while disk writes use physical LBAs (`data.disk_addr()`),
//! keeping the on-disk format byte-compatible with `dm-crypt`.

use nvmetro_core::uif::{Uif, UifDisposition, UifRequest};
use nvmetro_crypto::{SgxEnclave, Xts};
use nvmetro_nvme::{NvmOpcode, Status, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::Ns;
use nvmetro_telemetry::{Metric, TelemetryHandle};

/// Where the encryption happens.
pub enum CryptoBackend {
    /// Plain in-process XTS-AES (the paper's "normal UIF").
    Xts(Box<Xts>),
    /// Key sealed in a (simulated) SGX enclave with switchless calls.
    Sgx(Box<SgxEnclave>),
    /// No real data transformation — virtual-time cost modeling only.
    ModelOnly {
        /// Whether to model SGX costs (EPC factor, thread budget).
        sgx: bool,
    },
}

impl CryptoBackend {
    fn is_sgx(&self) -> bool {
        matches!(
            self,
            CryptoBackend::Sgx(_) | CryptoBackend::ModelOnly { sgx: true }
        )
    }
}

/// The encryption UIF.
pub struct EncryptorUif {
    crypto: CryptoBackend,
    /// Physical LBA where this VM's partition starts; sector tweaks are
    /// computed relative to it.
    lba_offset: u64,
    writes: u64,
    reads: u64,
    telemetry: TelemetryHandle,
}

impl EncryptorUif {
    /// Creates the UIF; `lba_offset` must match the classifier's map
    /// configuration.
    pub fn new(crypto: CryptoBackend, lba_offset: u64) -> Self {
        EncryptorUif {
            crypto,
            lba_offset,
            writes: 0,
            reads: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry worker handle; counts every sector
    /// transformation as `Metric::CryptoOps`.
    pub fn with_telemetry(mut self, handle: TelemetryHandle) -> Self {
        self.telemetry = handle;
        self
    }

    /// Requests decrypted so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Requests encrypted so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    fn decrypt(&mut self, sector: u64, data: &mut [u8]) {
        self.telemetry.count(Metric::CryptoOps);
        match &mut self.crypto {
            CryptoBackend::Xts(x) => x.decrypt_sectors(sector, data),
            CryptoBackend::Sgx(e) => e.ecall_decrypt(sector, data),
            CryptoBackend::ModelOnly { .. } => {}
        }
    }

    fn encrypt(&mut self, sector: u64, data: &mut [u8]) {
        self.telemetry.count(Metric::CryptoOps);
        match &mut self.crypto {
            CryptoBackend::Xts(x) => x.encrypt_sectors(sector, data),
            CryptoBackend::Sgx(e) => e.ecall_encrypt(sector, data),
            CryptoBackend::ModelOnly { .. } => {}
        }
    }
}

impl Uif for EncryptorUif {
    fn work(&mut self, req: &mut UifRequest<'_>) -> UifDisposition {
        let disk_addr = req.cmd.slba(); // already physical (classifier)
        let sector = disk_addr - self.lba_offset; // XTS tweak (guest view)
        match req.opcode() {
            Some(NvmOpcode::Read) => {
                // uif::do_read: iterate blocks from the device, decrypt
                // in place, signal success.
                self.reads += 1;
                req.modify_guest(|data| self.decrypt(sector, data));
                UifDisposition::Respond(Status::SUCCESS)
            }
            Some(NvmOpcode::Write) => {
                // uif::do_write_async: encrypt into a temporary buffer,
                // write to disk with io_uring, respond when that finishes.
                self.writes += 1;
                let mut data = req.read_guest();
                self.encrypt(sector, &mut data);
                let nlb = req.cmd.nlb();
                let tag = req.tag;
                let payload = if data.is_empty() {
                    None
                } else {
                    Some(&data[..])
                };
                req.io().write(disk_addr, nlb, payload, tag as u64);
                UifDisposition::Async
            }
            _ => UifDisposition::Respond(Status::INVALID_OPCODE),
        }
    }

    fn work_cost(&self, cmd: &SubmissionEntry, cost: &CostModel) -> Ns {
        let mut c = cost.xts_cost(cmd.data_len(), self.crypto.is_sgx());
        // Non-switchless enclaves would also pay a ring transition; our
        // configuration uses switchless calls (1 worker + 1 switchless
        // thread), so only the EPC factor applies.
        if let CryptoBackend::Sgx(e) = &self.crypto {
            if !e.is_switchless() {
                c += cost.sgx_ecall;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_crypto::SECTOR_SIZE;

    #[test]
    fn model_only_backend_does_not_touch_data() {
        let mut uif = EncryptorUif::new(CryptoBackend::ModelOnly { sgx: false }, 0);
        let mut data = vec![7u8; SECTOR_SIZE];
        uif.encrypt(0, &mut data);
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn xts_and_sgx_backends_agree() {
        let key = [5u8; 64];
        let mut plain_uif = EncryptorUif::new(CryptoBackend::Xts(Box::new(Xts::new(&key))), 0);
        let mut sgx_uif = EncryptorUif::new(
            CryptoBackend::Sgx(Box::new(SgxEnclave::create(&key, true))),
            0,
        );
        let mut a = vec![3u8; SECTOR_SIZE];
        let mut b = a.clone();
        plain_uif.encrypt(9, &mut a);
        sgx_uif.encrypt(9, &mut b);
        assert_eq!(a, b, "both variants share the on-disk format");
    }

    #[test]
    fn work_cost_scales_with_size_and_sgx_epc() {
        let cost = CostModel::default();
        let plain = EncryptorUif::new(CryptoBackend::ModelOnly { sgx: false }, 0);
        let sgx = EncryptorUif::new(CryptoBackend::ModelOnly { sgx: true }, 0);
        let small = SubmissionEntry::write(1, 0, 8, 0, 0); // 4 KiB
        let large = SubmissionEntry::write(1, 0, 256, 0, 0); // 128 KiB
        assert!(plain.work_cost(&large, &cost) > plain.work_cost(&small, &cost));
        // EPC thrashing penalizes only large SGX buffers.
        assert_eq!(plain.work_cost(&small, &cost), sgx.work_cost(&small, &cost));
        assert!(sgx.work_cost(&large, &cost) > plain.work_cost(&large, &cost));
    }
}
