//! NVMetro storage functions (§IV).
//!
//! The two storage functions the paper builds and evaluates:
//!
//! * [`encryptor`] — transparent XTS-AES disk encryption. Reads go
//!   device-first then to the UIF for in-place decryption; writes go to the
//!   UIF, which encrypts into a temporary buffer and writes ciphertext to
//!   disk through its io_uring backend (Fig. 2 / Listings 1-2). A variant
//!   keeps the key inside a (simulated) Intel SGX enclave.
//! * [`replicator`] — live disk mirroring. Reads go straight to the local
//!   primary; writes are multicast to the primary *and* the UIF, which
//!   forwards them to a remote NVMe-oF secondary; the request completes
//!   only when both replicas are durable (synchronous mirroring, §IV-B).
//!
//! (An earlier third function implemented per-VM token-bucket rate
//! limiting as a vbpf classifier. It was retired in favour of the fleet
//! layer: `nvmetro-fleet`'s tenant scheduler enforces rate + burst at the
//! router's drain loop for *all* tenants, sees cross-shard state through
//! its governor, and can be throttled at run time by the insight feedback
//! loop — none of which a per-classifier map could do. `examples/custom_classifier.rs`
//! still shows how to hand-roll a map-driven QoS classifier.)
//!
//! All classifiers are genuine vbpf bytecode assembled with
//! `nvmetro-vbpf`'s builder and accepted by its verifier; partition LBA
//! translation is configured through a classifier map, not hard-coded.

pub mod encryptor;
pub mod replicator;

pub use encryptor::{build_encryptor_classifier, CryptoBackend, EncryptorUif};
pub use replicator::{build_replicator_classifier, ReplicatorUif};
