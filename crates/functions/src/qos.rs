//! Quality-of-service rate limiting — entirely inside the classifier.
//!
//! The paper lists QoS among the storage functions NVMetro's flexibility
//! targets (§III-B; cf. FAST I/O [21] in §VI). This function needs *no
//! UIF at all*: a token-bucket rate limiter fits in the sandboxed
//! classifier, using a map for persistent bucket state and the `ktime_ns`
//! helper for refill — the same state/helpers Linux eBPF QoS programs use.
//!
//! Bucket state (map 0, key 0..1):
//! * slot 0: available tokens (I/O credits)
//! * slot 1: last refill timestamp (ns)
//!
//! Per request: refill `elapsed * rate / 1e9` tokens (capped at burst),
//! spend one token and pass to the device, or — when the bucket is empty —
//! complete the request with a retryable error, throttling the guest.

use nvmetro_core::classify::{classifier_verifier_config, verdict_bits};
use nvmetro_nvme::Status;
use nvmetro_vbpf::interp::helpers;
use nvmetro_vbpf::isa::*;
use nvmetro_vbpf::{MapDef, ProgramBuilder, Vm};

/// Map slot holding the token count.
pub const SLOT_TOKENS: u32 = 0;
/// Map slot holding the last-refill timestamp.
pub const SLOT_LAST_REFILL: u32 = 1;

/// Builds and verifies a token-bucket QoS classifier limiting this VM to
/// `iops` requests/second with a `burst`-request bucket.
pub fn build_qos_classifier(iops: u64, burst: u64) -> Vm {
    assert!(iops > 0 && burst > 0, "rate and burst must be positive");
    // Refill math in integer ns: tokens += elapsed_ns / period_ns.
    let period_ns = (1_000_000_000 / iops).max(1);

    let mut b = ProgramBuilder::new();
    let bucket = b.declare_map(MapDef {
        value_size: 8,
        max_entries: 2,
    });
    let no_cfg = b.new_label();
    let no_refill = b.new_label();
    let cap_ok = b.new_label();
    let throttle = b.new_label();

    // R6 = now (ktime helper).
    b.call(helpers::KTIME_NS).mov64(R6, R0);
    // R7 = &tokens (map slot 0).
    b.st_imm(SIZE_W, R10, -4, SLOT_TOKENS as i32)
        .mov64_imm(R1, bucket as i32)
        .mov64(R2, R10)
        .add64_imm(R2, -4)
        .call(helpers::MAP_LOOKUP)
        .jmp_imm(JMP_JEQ, R0, 0, no_cfg)
        .mov64(R7, R0);
    // R8 = &last_refill (map slot 1).
    b.st_imm(SIZE_W, R10, -4, SLOT_LAST_REFILL as i32)
        .mov64_imm(R1, bucket as i32)
        .mov64(R2, R10)
        .add64_imm(R2, -4)
        .call(helpers::MAP_LOOKUP)
        .jmp_imm(JMP_JEQ, R0, 0, no_cfg)
        .mov64(R8, R0);
    // elapsed = now - last; new_tokens = elapsed / period.
    b.ldx(SIZE_DW, R2, R8, 0)
        .mov64(R3, R6)
        .alu64(ALU_SUB, R3, R2) // R3 = elapsed
        .mov64(R4, R3)
        .alu64_imm(ALU_DIV, R4, period_ns as i32) // R4 = refill count
        .jmp_imm(JMP_JEQ, R4, 0, no_refill);
    // last_refill += refill * period (keeps the remainder accumulating).
    b.mov64(R5, R4)
        .alu64_imm(ALU_MUL, R5, period_ns as i32)
        .alu64(ALU_ADD, R2, R5)
        .stx(SIZE_DW, R8, 0, R2);
    // tokens = min(tokens + refill, burst).
    b.ldx(SIZE_DW, R5, R7, 0)
        .alu64(ALU_ADD, R5, R4)
        .jmp_imm(JMP_JLE, R5, burst as i32, cap_ok)
        .mov64_imm(R5, burst as i32);
    b.bind(cap_ok);
    b.stx(SIZE_DW, R7, 0, R5);
    b.bind(no_refill);
    // Spend a token or throttle.
    b.ldx(SIZE_DW, R5, R7, 0)
        .jmp_imm(JMP_JEQ, R5, 0, throttle)
        .alu64_imm(ALU_SUB, R5, 1)
        .stx(SIZE_DW, R7, 0, R5)
        .lddw(R0, verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
        .exit();
    // Over budget: tell the guest to back off.
    b.bind(throttle);
    b.mov64_imm(R0, Status::ABORTED.0 as i32)
        .or64_imm(R0, verdict_bits::COMPLETE as i32)
        .exit();
    // Unconfigured (map lookup failed): fail closed.
    b.bind(no_cfg);
    b.mov64_imm(R0, Status::INTERNAL.0 as i32)
        .or64_imm(R0, verdict_bits::COMPLETE as i32)
        .exit();

    let (insns, maps) = b.build();
    let mut vm = Vm::new(
        nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config())
            .expect("QoS classifier must verify"),
    );
    // Bucket starts full, clock starts at zero.
    vm.map_mut(bucket as usize)
        .set_u64(SLOT_TOKENS, burst)
        .expect("init tokens");
    vm
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_core::classify::{Classifier, RequestCtx, HOOK_VSQ};
    use nvmetro_nvme::SubmissionEntry;

    fn classify_at(cls: &mut Classifier, t: u64) -> nvmetro_core::classify::Verdict {
        let cmd = SubmissionEntry::read(1, 0, 1, 0, 0);
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        cls.run(&mut ctx, t)
    }

    #[test]
    fn passes_within_burst_then_throttles() {
        // 1000 IOPS, burst 4: the first 4 back-to-back requests pass, the
        // fifth is throttled.
        let mut cls = Classifier::Bpf(build_qos_classifier(1_000, 4));
        for i in 0..4 {
            let v = classify_at(&mut cls, 10);
            assert!(!v.complete(), "request {i} within burst must pass");
        }
        let v = classify_at(&mut cls, 10);
        assert!(v.complete());
        assert_eq!(v.status(), Status::ABORTED);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut cls = Classifier::Bpf(build_qos_classifier(1_000, 2));
        // Drain the bucket.
        for _ in 0..2 {
            assert!(!classify_at(&mut cls, 0).complete());
        }
        assert!(classify_at(&mut cls, 0).complete(), "bucket empty");
        // 1000 IOPS = one token per ms: 2.5 ms refills two (capped ok).
        let v = classify_at(&mut cls, 2_500_000);
        assert!(!v.complete(), "refilled token must pass");
        let v = classify_at(&mut cls, 2_500_000);
        assert!(!v.complete(), "second refilled token must pass");
        assert!(classify_at(&mut cls, 2_500_000).complete());
    }

    #[test]
    fn burst_cap_limits_accumulation() {
        let mut cls = Classifier::Bpf(build_qos_classifier(1_000_000, 3));
        // A long idle period must not bank more than `burst` tokens.
        let t = 10_000_000_000; // 10s idle: nominally 10M tokens
        let mut passed = 0;
        for _ in 0..10 {
            if !classify_at(&mut cls, t).complete() {
                passed += 1;
            }
        }
        assert_eq!(passed, 3, "burst cap must bound banked credits");
    }

    #[test]
    fn sustained_rate_is_enforced_end_to_end() {
        // Route through the real rig: a 20 kIOPS budget must cap a QD32
        // workload near 20 kIOPS.
        use nvmetro_workloads_shim::*;
        let r = run_qos_rig(20_000, 32);
        assert!(
            r > 15_000.0 && r < 25_000.0,
            "throttled throughput {r} should approximate the 20k budget"
        );
    }

    /// Minimal rig runner local to this test (avoids a dependency cycle
    /// with `nvmetro-workloads`).
    mod nvmetro_workloads_shim {
        use super::super::build_qos_classifier;
        use nvmetro_core::classify::Classifier;
        use nvmetro_core::router::{Router, VmBinding};
        use nvmetro_core::{Partition, VirtualController, VmConfig};
        use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
        use nvmetro_nvme::{CqPair, SqPair, SubmissionEntry};
        use nvmetro_sim::cost::CostModel;
        use nvmetro_sim::{Executor, MS};

        pub fn run_qos_rig(iops: u64, qd: usize) -> f64 {
            use nvmetro_sim::{Actor, Ns, Progress, US};
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::sync::Arc;

            /// A guest that keeps `qd` requests outstanding and backs off
            /// briefly when throttled (like a driver seeing ABORTED).
            struct HammerJob {
                sq: nvmetro_nvme::SqProducer,
                cq: nvmetro_nvme::CqConsumer,
                ok: Arc<AtomicU64>,
                retry_slots: Vec<u16>,
                retry_at: Ns,
                seeded: bool,
                qd: usize,
                stop_at: Ns,
                seq: u64,
            }
            impl HammerJob {
                fn submit(&mut self, cid: u16) {
                    self.seq += 1;
                    let mut cmd = SubmissionEntry::read(1, (self.seq % 64) * 8, 8, 0x1000, 0);
                    cmd.cid = cid;
                    let _ = self.sq.push(cmd);
                }
            }
            impl Actor for HammerJob {
                fn name(&self) -> &str {
                    "hammer"
                }
                fn poll(&mut self, now: Ns) -> Progress {
                    let mut busy = false;
                    if !self.seeded {
                        self.seeded = true;
                        for cid in 0..self.qd as u16 {
                            self.submit(cid);
                        }
                        busy = true;
                    }
                    while let Some(cqe) = self.cq.pop() {
                        busy = true;
                        if cqe.status().is_error() {
                            // Throttled: back off before retrying.
                            self.retry_slots.push(cqe.cid);
                            self.retry_at = now + 200 * US;
                        } else {
                            self.ok.fetch_add(1, Ordering::Relaxed);
                            if now < self.stop_at {
                                self.submit(cqe.cid);
                            }
                        }
                    }
                    if now >= self.retry_at && !self.retry_slots.is_empty() {
                        busy = true;
                        if now < self.stop_at {
                            let slots = std::mem::take(&mut self.retry_slots);
                            for cid in slots {
                                self.submit(cid);
                            }
                        } else {
                            self.retry_slots.clear();
                        }
                    }
                    if busy {
                        Progress::Busy
                    } else {
                        Progress::Idle
                    }
                }
                fn next_event(&self) -> Option<Ns> {
                    (!self.retry_slots.is_empty()).then_some(self.retry_at)
                }
            }

            let mut ssd = SimSsd::new(
                "ssd",
                SsdConfig {
                    capacity_lbas: 1 << 20,
                    move_data: false,
                    ..Default::default()
                },
            );
            let mut vc = VirtualController::new(VmConfig {
                mem_bytes: 1 << 20,
                queue_depth: 256,
                ..Default::default()
            });
            let mem = vc.memory();
            let (gsq, gcq) = vc.take_guest_queue(0);
            let (vsqs, vcqs) = vc.take_router_queues();
            let (hsq_p, hsq_c) = SqPair::new(256);
            let (hcq_p, hcq_c) = CqPair::new(256);
            ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
            let mut router = Router::new("router", CostModel::default(), 1, 512);
            router.bind_vm(VmBinding {
                vm_id: 0,
                mem,
                partition: Partition::whole(1 << 20),
                vsqs,
                vcqs,
                hsq: hsq_p,
                hcq: hcq_c,
                kernel: None,
                notify: None,
                classifier: Classifier::Bpf(build_qos_classifier(iops, 32)),
            });
            let duration = 200 * MS;
            let ok = Arc::new(AtomicU64::new(0));
            let job = HammerJob {
                sq: gsq,
                cq: gcq,
                ok: ok.clone(),
                retry_slots: Vec::new(),
                retry_at: 0,
                seeded: false,
                qd,
                stop_at: duration,
                seq: 0,
            };
            let mut ex = Executor::new();
            ex.add(Box::new(job));
            ex.add(Box::new(router));
            ex.add(Box::new(ssd));
            let report = ex.run(u64::MAX);
            ok.load(Ordering::Relaxed) as f64 * 1e9 / report.duration.max(1) as f64
        }
    }
}
