//! The replication I/O classifier.
//!
//! "Our classifier passes read requests directly from the guest to the
//! primary disk, while write requests are sent to both the primary disk
//! and UIF" (§IV-B). Mirroring is synchronous: the write completes only
//! when both the local and remote legs finish, which the router's
//! multicast `WILL_COMPLETE_HQ | WILL_COMPLETE_NQ` expresses directly —
//! the UIF never even sees reads, they are "filtered out by our classifier
//! and directly passed to disk" (§V-F).

use nvmetro_core::classify::{classifier_verifier_config, ctx_offsets, verdict_bits};
use nvmetro_vbpf::interp::helpers;
use nvmetro_vbpf::isa::*;
use nvmetro_vbpf::{MapDef, ProgramBuilder, Vm};

/// Builds and verifies the replicator classifier with the VM's partition
/// offset installed in its configuration map.
pub fn build_replicator_classifier(lba_offset: u64) -> Vm {
    let mut b = ProgramBuilder::new();
    let cfg_map = b.declare_map(MapDef {
        value_size: 8,
        max_entries: 1,
    });
    let skip_cfg = b.new_label();
    let is_write = b.new_label();

    // slba += cfg[0] (partition translation).
    b.mov64(R7, R1)
        .st_imm(SIZE_W, R10, -4, 0)
        .mov64_imm(R1, cfg_map as i32)
        .mov64(R2, R10)
        .add64_imm(R2, -4)
        .call(helpers::MAP_LOOKUP)
        .jmp_imm(JMP_JEQ, R0, 0, skip_cfg)
        .ldx(SIZE_DW, R3, R0, 0)
        .ldx(SIZE_DW, R4, R7, ctx_offsets::SLBA)
        .alu64(ALU_ADD, R4, R3)
        .stx(SIZE_DW, R7, ctx_offsets::SLBA, R4);
    b.bind(skip_cfg);
    // Writes: multicast to the primary disk and the UIF; complete when
    // both are durable.
    b.ldx(SIZE_B, R5, R7, ctx_offsets::OPCODE)
        .jmp_imm(JMP_JEQ, R5, 0x01, is_write);
    // Reads and everything else: primary disk only.
    b.lddw(R0, verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
        .exit();
    b.bind(is_write);
    b.lddw(
        R0,
        verdict_bits::SEND_HQ
            | verdict_bits::SEND_NQ
            | verdict_bits::WILL_COMPLETE_HQ
            | verdict_bits::WILL_COMPLETE_NQ,
    )
    .exit();

    let (insns, maps) = b.build();
    let mut vm = Vm::new(
        nvmetro_vbpf::verify(insns, maps, &classifier_verifier_config())
            .expect("replicator classifier must verify"),
    );
    vm.map_mut(cfg_map as usize)
        .set_u64(0, lba_offset)
        .expect("configure partition offset");
    vm
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_core::classify::{path_bits, Classifier, RequestCtx, Verdict, HOOK_VSQ};
    use nvmetro_nvme::{Status, SubmissionEntry};

    fn classify(offset: u64, cmd: &SubmissionEntry) -> (Verdict, RequestCtx) {
        let mut cls = Classifier::Bpf(build_replicator_classifier(offset));
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, cmd, Status::SUCCESS, 0);
        let v = cls.run(&mut ctx, 0);
        (v, ctx)
    }

    #[test]
    fn reads_go_to_primary_only() {
        let (v, _) = classify(0, &SubmissionEntry::read(1, 0, 1, 0, 0));
        assert_eq!(v.send_mask(), path_bits::HQ);
        assert_eq!(v.will_complete_mask(), path_bits::HQ);
    }

    #[test]
    fn writes_multicast_to_disk_and_uif() {
        let (v, _) = classify(0, &SubmissionEntry::write(1, 0, 1, 0, 0));
        assert_eq!(v.send_mask(), path_bits::HQ | path_bits::NQ);
        assert_eq!(
            v.will_complete_mask(),
            path_bits::HQ | path_bits::NQ,
            "synchronous mirroring: both legs must finish"
        );
    }

    #[test]
    fn translation_applies_before_routing() {
        let (_, ctx) = classify(2048, &SubmissionEntry::write(1, 5, 1, 0, 0));
        assert_eq!(ctx.slba(), 2053);
    }

    #[test]
    fn flush_goes_to_primary() {
        let (v, _) = classify(0, &SubmissionEntry::flush(1));
        assert_eq!(v.send_mask(), path_bits::HQ);
    }
}
