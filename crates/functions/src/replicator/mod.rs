//! Live disk replication (§IV-B).

mod classifier;
mod uif;

pub use classifier::build_replicator_classifier;
pub use uif::ReplicatorUif;
