//! The mirroring UIF.
//!
//! "The UIF then forwards the write request to the secondary disk using
//! io_uring. The mirroring process is synchronous" (§IV-B). The UIF's
//! backend queue pair is registered on the *remote* NVMe-oF device, so a
//! forwarded write pays the fabric round trip; the router completes the
//! guest request only when this leg and the local fast-path leg both
//! report success.

use nvmetro_core::uif::{Uif, UifDisposition, UifRequest};
use nvmetro_nvme::{NvmOpcode, Status, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::Ns;
use nvmetro_telemetry::{Metric, TelemetryHandle};

/// The replication UIF: forwards writes to the secondary.
pub struct ReplicatorUif {
    forwarded: u64,
    telemetry: TelemetryHandle,
}

impl Default for ReplicatorUif {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicatorUif {
    /// Creates the UIF.
    pub fn new() -> Self {
        ReplicatorUif {
            forwarded: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry worker handle; counts forwarded writes as
    /// `Metric::ReplicaWrites`.
    pub fn with_telemetry(mut self, handle: TelemetryHandle) -> Self {
        self.telemetry = handle;
        self
    }

    /// Writes forwarded to the secondary so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Uif for ReplicatorUif {
    fn work(&mut self, req: &mut UifRequest<'_>) -> UifDisposition {
        match req.opcode() {
            Some(NvmOpcode::Write) => {
                self.forwarded += 1;
                self.telemetry.count(Metric::ReplicaWrites);
                let data = req.read_guest();
                let slba = req.cmd.slba();
                let nlb = req.cmd.nlb();
                let tag = req.tag;
                let payload = if data.is_empty() {
                    None
                } else {
                    Some(&data[..])
                };
                req.io().write(slba, nlb, payload, tag as u64);
                UifDisposition::Async
            }
            // The classifier filters reads out before they reach us; answer
            // defensively if one slips through.
            _ => UifDisposition::Respond(Status::INVALID_OPCODE),
        }
    }

    fn work_cost(&self, _cmd: &SubmissionEntry, _cost: &CostModel) -> Ns {
        // Pure forwarding: only the framework's per-request overhead and
        // the io_uring submission cost (both charged by the runner).
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_forwarded_writes() {
        // Counter behavior is observable without a full rig; routing
        // integration is covered by the crate-level tests.
        let uif = ReplicatorUif::new();
        assert_eq!(uif.forwarded(), 0);
    }

    #[test]
    fn work_cost_is_negligible() {
        let uif = ReplicatorUif::new();
        let cmd = SubmissionEntry::write(1, 0, 256, 0, 0);
        assert_eq!(uif.work_cost(&cmd, &CostModel::default()), 0);
    }
}
