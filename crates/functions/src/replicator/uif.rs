//! The mirroring UIF.
//!
//! "The UIF then forwards the write request to the secondary disk using
//! io_uring. The mirroring process is synchronous" (§IV-B). The UIF's
//! backend queue pair is registered on the *remote* NVMe-oF device, so a
//! forwarded write pays the fabric round trip; the router completes the
//! guest request only when this leg and the local fast-path leg both
//! report success.
//!
//! # Degraded mode
//!
//! A mirror whose remote leg dies must not take guest writes down with
//! it: the primary leg is still durable. When the replica link fails —
//! either a [`FaultSite::ReplicaLink`] rule from a seeded fault plan or a
//! real error from the remote device — the UIF enters *degraded mode*:
//!
//! 1. it keeps acknowledging guest writes immediately (primary-only),
//! 2. logs each unreplicated region in a dirty log (coalesced by LBA),
//! 3. probes the link on a fixed cadence, and
//! 4. once the link heals, replays the dirty log as resync writes and
//!    exits degraded mode when the log drains.
//!
//! Enter/exit transitions and resync traffic are counted via
//! `Metric::DegradedEnters` / `DegradedExits` / `ResyncWrites`.

use nvmetro_core::uif::{Uif, UifDisposition, UifIoHandle, UifRequest};
use nvmetro_faults::{CmdClass, FaultInjector, FaultPlan, FaultSite};
use nvmetro_nvme::{NvmOpcode, Status, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Ns, MS};
use nvmetro_telemetry::{Metric, TelemetryHandle};
use std::collections::{BTreeMap, HashMap};

/// Resync tickets carry this bit so [`Uif::backend_done`] can tell them
/// apart from guest-forwarded writes (which must answer the router).
const RESYNC_BIT: u64 = 1 << 63;

/// How often a degraded replicator probes the link / pumps resync.
const PROBE_INTERVAL: Ns = 2 * MS;

/// Max resync writes in flight at once — keeps recovery traffic from
/// starving foreground I/O on the remote leg.
const RESYNC_BATCH: usize = 4;

/// A write the remote leg has not confirmed yet (or a logged dirty
/// region awaiting resync): enough to replay it later.
#[derive(Clone)]
struct PendingWrite {
    slba: u64,
    nlb: u32,
    payload: Vec<u8>,
}

/// The replication UIF: forwards writes to the secondary, degrading to
/// primary-only service (with a dirty log and later resync) when the
/// replica leg fails.
pub struct ReplicatorUif {
    forwarded: u64,
    telemetry: TelemetryHandle,
    faults: FaultInjector,
    /// Remote leg considered down; writes are logged, not forwarded.
    degraded: bool,
    /// Latest virtual time seen by `work`/`tick` — `backend_done` has no
    /// clock of its own, so transitions it triggers use this.
    clock: Ns,
    degraded_since: Ns,
    /// Unreplicated regions keyed by `slba` (last write wins per key).
    dirty: BTreeMap<u64, PendingWrite>,
    /// ticket -> (guest tag when this answers the router, the write).
    in_flight: HashMap<u64, (Option<u16>, PendingWrite)>,
    next_ticket: u64,
    next_probe: Ns,
    resync_in_flight: usize,
    degraded_enters: u64,
    degraded_exits: u64,
    resync_writes: u64,
}

impl Default for ReplicatorUif {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicatorUif {
    /// Creates the UIF with a healthy link and no fault plan.
    pub fn new() -> Self {
        ReplicatorUif {
            forwarded: 0,
            telemetry: TelemetryHandle::disabled(),
            faults: FaultInjector::off(),
            degraded: false,
            clock: 0,
            degraded_since: 0,
            dirty: BTreeMap::new(),
            in_flight: HashMap::new(),
            next_ticket: 0,
            next_probe: 0,
            resync_in_flight: 0,
            degraded_enters: 0,
            degraded_exits: 0,
            resync_writes: 0,
        }
    }

    /// Attaches a telemetry worker handle; counts forwarded writes as
    /// `Metric::ReplicaWrites` plus the degraded-mode counters.
    pub fn with_telemetry(mut self, handle: TelemetryHandle) -> Self {
        self.telemetry = handle;
        self
    }

    /// Arms the `ReplicaLink` site of a seeded fault plan: matching rules
    /// fail forwarded writes as if the fabric link had dropped.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = plan.injector(FaultSite::ReplicaLink);
        self
    }

    /// Writes forwarded to the secondary so far (resync replays included).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Currently serving primary-only with an un-resynced remote leg?
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Regions logged dirty and not yet resynced.
    pub fn dirty_regions(&self) -> usize {
        self.dirty.len()
    }

    /// Times the UIF entered / exited degraded mode.
    pub fn degraded_transitions(&self) -> (u64, u64) {
        (self.degraded_enters, self.degraded_exits)
    }

    /// Resync writes replayed to the recovered leg so far.
    pub fn resynced(&self) -> u64 {
        self.resync_writes
    }

    fn enter_degraded(&mut self, now: Ns) {
        if !self.degraded {
            self.degraded = true;
            self.degraded_since = now;
            self.degraded_enters += 1;
            self.next_probe = now + PROBE_INTERVAL;
            self.telemetry.count(Metric::DegradedEnters);
        }
    }

    fn log_dirty(&mut self, w: PendingWrite) {
        // Last write wins per start-LBA; overlapping partial rewrites of a
        // different length are kept as separate regions (replay order over
        // a BTreeMap is ascending, matching submission order well enough
        // for a mirror where the primary already holds the truth).
        self.dirty.insert(w.slba, w);
    }

    fn exit_degraded_if_clean(&mut self) {
        if self.degraded && self.dirty.is_empty() && self.resync_in_flight == 0 {
            self.degraded = false;
            self.degraded_exits += 1;
            self.telemetry.count(Metric::DegradedExits);
        }
    }
}

impl Uif for ReplicatorUif {
    fn work(&mut self, req: &mut UifRequest<'_>) -> UifDisposition {
        match req.opcode() {
            Some(NvmOpcode::Write) => {
                let data = req.read_guest();
                let write = PendingWrite {
                    slba: req.cmd.slba(),
                    nlb: req.cmd.nlb(),
                    payload: data,
                };
                let now = req.now;
                self.clock = self.clock.max(now);
                // A fault-plan hit on the replica link means the forward
                // would never arrive: treat it as an immediate leg failure.
                if self.faults.decide(now, CmdClass::Write).is_some() {
                    self.telemetry.count(Metric::FaultsInjected);
                    self.enter_degraded(now);
                }
                if self.degraded {
                    // Primary-only service: acknowledge now, replay later.
                    self.log_dirty(write);
                    return UifDisposition::Respond(Status::SUCCESS);
                }
                self.forwarded += 1;
                self.telemetry.count(Metric::ReplicaWrites);
                let ticket = self.next_ticket;
                self.next_ticket += 1;
                let payload = if write.payload.is_empty() {
                    None
                } else {
                    Some(&write.payload[..])
                };
                req.io().write(write.slba, write.nlb, payload, ticket);
                self.in_flight.insert(ticket, (Some(req.tag), write));
                UifDisposition::Async
            }
            // The classifier filters reads out before they reach us; answer
            // defensively if one slips through.
            _ => UifDisposition::Respond(Status::INVALID_OPCODE),
        }
    }

    fn backend_done(&mut self, ticket: u64, status: Status) -> Option<(u16, Status)> {
        let (tag, write) = self.in_flight.remove(&ticket)?;
        let resync = ticket & RESYNC_BIT != 0;
        if resync {
            self.resync_in_flight -= 1;
        }
        if status.is_error() {
            // Leg failure mid-flight: the region is unreplicated — log it
            // and degrade. The guest write still succeeded on the primary,
            // so the router-visible answer stays SUCCESS.
            self.log_dirty(write);
            self.enter_degraded(self.clock);
            return tag.map(|t| (t, Status::SUCCESS));
        }
        self.exit_degraded_if_clean();
        tag.map(|t| (t, Status::SUCCESS))
    }

    fn tick(&mut self, io: &mut UifIoHandle<'_>, now: Ns) -> bool {
        self.clock = self.clock.max(now);
        if !self.degraded || now < self.next_probe {
            return false;
        }
        self.next_probe = now + PROBE_INTERVAL;
        // Probe: would a write clear the link right now? A fault-plan hit
        // means the outage persists — back off until the next probe.
        if self.faults.decide(now, CmdClass::Write).is_some() {
            self.telemetry.count(Metric::FaultsInjected);
            return true;
        }
        // Link looks healthy: pump a bounded batch of resync writes.
        let mut progressed = false;
        while self.resync_in_flight < RESYNC_BATCH {
            let Some((&slba, _)) = self.dirty.iter().next() else {
                break;
            };
            let write = self.dirty.remove(&slba).expect("key just observed");
            let ticket = RESYNC_BIT | self.next_ticket;
            self.next_ticket += 1;
            let payload = if write.payload.is_empty() {
                None
            } else {
                Some(&write.payload[..])
            };
            io.write(write.slba, write.nlb, payload, ticket);
            self.in_flight.insert(ticket, (None, write));
            self.resync_in_flight += 1;
            self.resync_writes += 1;
            self.forwarded += 1;
            self.telemetry.count(Metric::ResyncWrites);
            progressed = true;
        }
        self.exit_degraded_if_clean();
        progressed
    }

    fn next_event(&self) -> Option<Ns> {
        // While degraded the probe timer must drive virtual time forward
        // even after the guest goes idle, or resync would never finish and
        // the executor would quiesce with a dirty log.
        self.degraded.then_some(self.next_probe)
    }

    fn work_cost(&self, _cmd: &SubmissionEntry, _cost: &CostModel) -> Ns {
        // Pure forwarding: only the framework's per-request overhead and
        // the io_uring submission cost (both charged by the runner).
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_faults::{FaultAction, FaultRule};

    #[test]
    fn counts_forwarded_writes() {
        // Counter behavior is observable without a full rig; routing
        // integration is covered by the crate-level tests.
        let uif = ReplicatorUif::new();
        assert_eq!(uif.forwarded(), 0);
        assert!(!uif.degraded());
    }

    #[test]
    fn work_cost_is_negligible() {
        let uif = ReplicatorUif::new();
        let cmd = SubmissionEntry::write(1, 0, 256, 0, 0);
        assert_eq!(uif.work_cost(&cmd, &CostModel::default()), 0);
    }

    #[test]
    fn backend_error_degrades_but_still_answers_success() {
        let mut uif = ReplicatorUif::new();
        uif.in_flight.insert(
            7,
            (
                Some(42),
                PendingWrite {
                    slba: 0x100,
                    nlb: 8,
                    payload: Vec::new(),
                },
            ),
        );
        let answer = uif.backend_done(7, Status::WRITE_FAULT);
        assert_eq!(answer, Some((42, Status::SUCCESS)));
        assert!(uif.degraded());
        assert_eq!(uif.dirty_regions(), 1);
        assert_eq!(uif.degraded_transitions(), (1, 0));
    }

    #[test]
    fn dirty_log_coalesces_rewrites_of_the_same_region() {
        let mut uif = ReplicatorUif::new();
        for payload in [vec![1u8; 8], vec![2u8; 8]] {
            uif.log_dirty(PendingWrite {
                slba: 0x40,
                nlb: 1,
                payload,
            });
        }
        assert_eq!(uif.dirty_regions(), 1);
        assert_eq!(uif.dirty[&0x40].payload, vec![2u8; 8]);
    }

    #[test]
    fn outage_rule_trips_degraded_mode_on_first_decide() {
        let plan = FaultPlan::new(9).rule(
            FaultRule::new(FaultSite::ReplicaLink, FaultAction::LinkOutage)
                .classes(CmdClass::Write.bit()),
        );
        let mut uif = ReplicatorUif::new().with_faults(&plan);
        assert!(uif.faults.decide(0, CmdClass::Write).is_some());
        uif.enter_degraded(0);
        assert!(uif.degraded());
        // Window-free rules never heal: probes keep backing off.
        assert!(uif.faults.decide(5 * MS, CmdClass::Write).is_some());
    }
}
