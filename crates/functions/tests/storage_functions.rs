//! End-to-end tests of the paper's two storage functions over the full
//! NVMetro stack in virtual time: guest queues → router → vbpf classifier
//! → fast/notify paths → device(s) → UIF backend I/O.

use nvmetro_core::classify::Classifier;
use nvmetro_core::router::{NotifyBinding, Router, VmBinding};
use nvmetro_core::uif::UifRunner;
use nvmetro_core::{Partition, VirtualController, VmConfig};
use nvmetro_crypto::Xts;
use nvmetro_device::{BlockStore, CompletionMode, SimSsd, SsdConfig, Transport};
use nvmetro_functions::{
    build_encryptor_classifier, build_replicator_classifier, CryptoBackend, EncryptorUif,
    ReplicatorUif,
};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqPair, SqPair, Status, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor as _, Executor};
use std::sync::Arc;

const PART_OFFSET: u64 = 10_000;

struct Rig {
    ex: Executor,
    guest_sq: nvmetro_nvme::SqProducer,
    guest_cq: nvmetro_nvme::CqConsumer,
    mem: Arc<GuestMemory>,
    primary: Arc<BlockStore>,
    secondary: Option<Arc<BlockStore>>,
}

enum Function {
    Encryptor(CryptoBackend),
    Replicator,
}

fn build(function: Function) -> Rig {
    let cost = CostModel::default();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            ..Default::default()
        },
    );
    let primary = ssd.store();

    let mut vc = VirtualController::new(VmConfig {
        id: 0,
        mem_bytes: 1 << 26,
        queue_pairs: 1,
        queue_depth: 256,
        partition: Partition {
            lba_offset: PART_OFFSET,
            lba_count: 100_000,
        },
    });
    let mem = vc.memory();
    let (guest_sq, guest_cq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

    let (nsq_p, nsq_c) = SqPair::new(256);
    let (ncq_p, ncq_c) = CqPair::new(256);
    let (bsq_p, bsq_c) = SqPair::new(256);
    let (bcq_p, bcq_c) = CqPair::new(256);
    let host_mem = Arc::new(GuestMemory::new(1 << 28));

    let mut ex = Executor::new();
    let mut secondary = None;

    let (classifier, uif, workers): (Classifier, Box<dyn nvmetro_core::Uif>, usize) = match function
    {
        Function::Encryptor(backend) => {
            // UIF backend writes ciphertext to the SAME device.
            ssd.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);
            (
                Classifier::Bpf(build_encryptor_classifier(PART_OFFSET)),
                Box::new(EncryptorUif::new(backend, PART_OFFSET)),
                2,
            )
        }
        Function::Replicator => {
            // UIF backend goes to the REMOTE device over NVMe-oF.
            let mut remote = SimSsd::new(
                "remote",
                SsdConfig {
                    capacity_lbas: 1 << 20,
                    transport: Some(Transport {
                        one_way: 10_000,
                        per_byte: 0.1,
                    }),
                    ..Default::default()
                },
            );
            secondary = Some(remote.store());
            remote.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);
            ex.add(Box::new(remote));
            (
                Classifier::Bpf(build_replicator_classifier(PART_OFFSET)),
                Box::new(ReplicatorUif::new()),
                1,
            )
        }
    };

    let runner = UifRunner::new(
        "uif",
        cost.clone(),
        nsq_c,
        ncq_p,
        mem.clone(),
        (bsq_p, bcq_c),
        host_mem,
        uif,
        workers,
        true,
    );
    ex.add(Box::new(runner));

    let mut router = Router::new("router", cost, 1, 1024);
    router.bind_vm(VmBinding {
        vm_id: 0,
        mem: mem.clone(),
        partition: Partition {
            lba_offset: PART_OFFSET,
            lba_count: 100_000,
        },
        vsqs,
        vcqs,
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify: Some(NotifyBinding {
            nsq: nsq_p,
            ncq: ncq_c,
        }),
        classifier,
    });
    ex.add(Box::new(router));
    ex.add(Box::new(ssd));

    Rig {
        ex,
        guest_sq,
        guest_cq,
        mem,
        primary,
        secondary,
    }
}

fn guest_write(rig: &mut Rig, slba: u64, data: &[u8], cid: u16) {
    let gpa = rig.mem.alloc(data.len());
    rig.mem.write(gpa, data);
    let (p1, p2) = nvmetro_mem::build_prps(&rig.mem, gpa, data.len());
    let mut cmd = SubmissionEntry::write(1, slba, (data.len() / 512) as u32, p1, p2);
    cmd.cid = cid;
    rig.guest_sq.push(cmd).unwrap();
    rig.ex.run(u64::MAX);
    let cqe = rig.guest_cq.pop().expect("write completion");
    assert_eq!(cqe.cid, cid);
    assert_eq!(cqe.status(), Status::SUCCESS);
}

fn guest_read(rig: &mut Rig, slba: u64, len: usize, cid: u16) -> Vec<u8> {
    let gpa = rig.mem.alloc(len);
    let (p1, p2) = nvmetro_mem::build_prps(&rig.mem, gpa, len);
    let mut cmd = SubmissionEntry::read(1, slba, (len / 512) as u32, p1, p2);
    cmd.cid = cid;
    rig.guest_sq.push(cmd).unwrap();
    rig.ex.run(u64::MAX);
    let cqe = rig.guest_cq.pop().expect("read completion");
    assert_eq!(cqe.cid, cid);
    assert_eq!(cqe.status(), Status::SUCCESS);
    rig.mem.read_vec(gpa, len)
}

#[test]
fn encryption_round_trip_with_ciphertext_on_disk() {
    let key = vec![0x42u8; 64];
    let mut rig = build(Function::Encryptor(CryptoBackend::Xts(Box::new(Xts::new(
        &key,
    )))));
    let plain: Vec<u8> = (0..2048).map(|i| (i % 251) as u8).collect();
    guest_write(&mut rig, 100, &plain, 1);

    // On-disk bytes (at the translated physical LBA) are ciphertext...
    let on_disk = rig.primary.read_vec(PART_OFFSET + 100, 4);
    assert_ne!(on_disk, plain);
    // ...and exactly the dm-crypt-compatible XTS layout, tweaked by the
    // guest-relative sector number.
    let mut expect = plain.clone();
    Xts::new(&key).encrypt_sectors(100, &mut expect);
    assert_eq!(on_disk, expect);

    // Reading back through the function decrypts transparently.
    assert_eq!(guest_read(&mut rig, 100, 2048, 2), plain);
}

#[test]
fn encryption_sgx_variant_matches_plain_format() {
    let key = vec![0x42u8; 64];
    let mut rig = build(Function::Encryptor(CryptoBackend::Sgx(Box::new(
        nvmetro_crypto::SgxEnclave::create(&key, true),
    ))));
    let plain = vec![0xA1u8; 512];
    guest_write(&mut rig, 7, &plain, 1);
    let mut expect = plain.clone();
    Xts::new(&key).encrypt_sectors(7, &mut expect);
    assert_eq!(rig.primary.read_vec(PART_OFFSET + 7, 1), expect);
    assert_eq!(guest_read(&mut rig, 7, 512, 2), plain);
}

#[test]
fn encrypted_disk_readable_by_dm_crypt_stack() {
    // Interop: write through NVMetro's encryptor, read through the
    // simulated Linux dm-crypt (the paper claims dm-crypt compatibility).
    let key = vec![0x13u8; 64];
    let mut rig = build(Function::Encryptor(CryptoBackend::Xts(Box::new(Xts::new(
        &key,
    )))));
    let plain: Vec<u8> = (0..1024).map(|i| (i * 7 % 256) as u8).collect();
    guest_write(&mut rig, 200, &plain, 1);

    // Mount the same store under a dm-crypt stack at the same offset.
    let mut ssd2 = SimSsd::with_store(
        "ssd2",
        SsdConfig {
            capacity_lbas: 1 << 20,
            ..Default::default()
        },
        rig.primary.clone(),
    );
    let guest2 = Arc::new(GuestMemory::new(1 << 24));
    let (sq_p, sq_c) = SqPair::new(64);
    let (cq_p, cq_c) = CqPair::new(64);
    let dm = nvmetro_kernel::KernelDm::new(
        CostModel::default(),
        nvmetro_kernel::DmConfig::Crypt {
            offset: PART_OFFSET,
            key: Some(key),
        },
        vec![(sq_p, cq_c)],
        guest2.clone(),
    );
    ssd2.add_queue(sq_c, cq_p, dm.host_memory(), CompletionMode::Interrupt);
    let mut dm = dm;
    let gpa = guest2.alloc(1024);
    let (p1, p2) = nvmetro_mem::build_prps(&guest2, gpa, 1024);
    dm.submit(
        nvmetro_kernel::DmRequest {
            user: 1,
            write: false,
            slba: 200,
            nlb: 2,
            prp1: p1,
            prp2: p2,
        },
        0,
    );
    let mut out = Vec::new();
    let mut now = 0;
    while out.is_empty() {
        dm.poll(now);
        ssd2.poll(now);
        dm.poll(now);
        dm.take_done(&mut out);
        if out.is_empty() {
            now = [dm.next_event(), ssd2.next_event()]
                .into_iter()
                .flatten()
                .min()
                .expect("work pending");
        }
    }
    assert_eq!(out[0].1, Status::SUCCESS);
    assert_eq!(guest2.read_vec(gpa, 1024), plain);
}

#[test]
fn replication_mirrors_writes_and_reads_locally() {
    let mut rig = build(Function::Replicator);
    let data: Vec<u8> = (0..1024).map(|i| (i % 239) as u8).collect();
    guest_write(&mut rig, 55, &data, 1);

    // Both replicas hold the data at the translated LBA.
    assert_eq!(rig.primary.read_vec(PART_OFFSET + 55, 2), data);
    assert_eq!(
        rig.secondary
            .as_ref()
            .unwrap()
            .read_vec(PART_OFFSET + 55, 2),
        data,
        "synchronous mirror: secondary must be durable at completion"
    );

    // Reads are served locally: the remote store's content is irrelevant.
    assert_eq!(guest_read(&mut rig, 55, 1024, 2), data);
}

#[test]
fn replication_write_latency_includes_remote_leg() {
    let mut rig = build(Function::Replicator);
    let data = vec![1u8; 512];
    let gpa = rig.mem.alloc(512);
    rig.mem.write(gpa, &data);
    let (p1, p2) = nvmetro_mem::build_prps(&rig.mem, gpa, 512);
    rig.guest_sq
        .push(SubmissionEntry::write(1, 0, 1, p1, p2))
        .unwrap();
    let report = rig.ex.run(u64::MAX);
    assert!(rig.guest_cq.pop().is_some());
    let local_only = CostModel::default().ssd_write_lat;
    assert!(
        report.duration > local_only + 20_000,
        "write at {} must wait out the 2x10us fabric RTT",
        report.duration
    );
}

#[test]
fn replication_reads_do_not_touch_the_remote() {
    let mut rig = build(Function::Replicator);
    guest_write(&mut rig, 9, &vec![9u8; 512], 1);
    // Poison the remote replica; reads must still return local data.
    rig.secondary
        .as_ref()
        .unwrap()
        .write_blocks(PART_OFFSET + 9, &[0xFF; 512]);
    assert_eq!(guest_read(&mut rig, 9, 512, 2), vec![9u8; 512]);
}
