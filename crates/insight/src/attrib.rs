//! Tail-latency attribution and exemplar capture.
//!
//! Given reconstructed [`Span`]s, answer the question "for the slow
//! requests on this route, *where did the time go*?" — per quantile
//! (p50/p99/p999), which [`Segment`] contributed what fraction of the
//! end-to-end latency. Alongside the aggregate answer, an
//! [`ExemplarReservoir`] keeps *whole spans* — the slowest K plus a
//! seeded-random K per route — so a tail report can always point at
//! concrete requests with their full stage timelines.

use crate::span::Span;
use nvmetro_sim::SimRng;
use nvmetro_telemetry::{Route, Segment};

/// A segment's share of the latency across one quantile window.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegmentShare {
    /// Mean duration of this segment across the window's spans.
    pub mean_ns: f64,
    /// Fraction of the window's mean end-to-end latency (0..=1; shares
    /// can sum below 1 when spans have untracked gaps).
    pub fraction: f64,
}

/// Attribution at one quantile: which spans are at-or-above it, and how
/// their latency splits across segments.
#[derive(Clone, Debug, Default)]
pub struct QuantileAttribution {
    /// The quantile (0.5, 0.99, 0.999).
    pub q: f64,
    /// Latency at the quantile (ns).
    pub latency_ns: u64,
    /// Spans in the window (at or above the quantile).
    pub window: usize,
    /// Mean end-to-end latency of the window.
    pub mean_latency_ns: f64,
    /// Per-segment share, indexed by `Segment as usize`.
    pub segments: [SegmentShare; Segment::COUNT],
}

impl QuantileAttribution {
    /// The segment with the largest share — "where the tail lives".
    pub fn dominant(&self) -> Segment {
        let mut best = Segment::ALL[0];
        let mut best_frac = -1.0;
        for seg in Segment::ALL {
            let f = self.segments[seg as usize].fraction;
            if f > best_frac {
                best_frac = f;
                best = seg;
            }
        }
        best
    }
}

/// Per-route tail attribution over a set of complete spans.
#[derive(Clone, Debug, Default)]
pub struct RouteAttribution {
    /// The route this attribution covers.
    pub route: Option<Route>,
    /// Complete spans observed on the route.
    pub count: usize,
    /// Attribution at each analysed quantile (p50, p99, p999).
    pub quantiles: Vec<QuantileAttribution>,
}

/// The quantiles the attribution analyses.
pub const TAIL_QUANTILES: [f64; 3] = [0.5, 0.99, 0.999];

/// Computes per-route tail attribution from complete spans.
#[derive(Clone, Debug, Default)]
pub struct TailAttribution {
    /// One entry per route (index = `Route as usize`) with ≥1 span.
    pub routes: Vec<RouteAttribution>,
}

impl TailAttribution {
    /// Analyses the complete spans in `spans` (incomplete ones are
    /// skipped — they have no end-to-end latency to attribute).
    pub fn of(spans: &[Span]) -> Self {
        let mut per_route: Vec<Vec<&Span>> = vec![Vec::new(); Route::COUNT];
        for s in spans.iter().filter(|s| s.complete) {
            if let Some(route) = s.route() {
                per_route[route as usize].push(s);
            }
        }
        let mut routes = Vec::new();
        for route in Route::ALL {
            let bucket = &mut per_route[route as usize];
            if bucket.is_empty() {
                continue;
            }
            bucket.sort_by_key(|s| s.latency_ns());
            let n = bucket.len();
            let mut quantiles = Vec::with_capacity(TAIL_QUANTILES.len());
            for q in TAIL_QUANTILES {
                // Window = spans at or above the quantile rank.
                let idx = (((n - 1) as f64) * q) as usize;
                let window = &bucket[idx..];
                let mut qa = QuantileAttribution {
                    q,
                    latency_ns: bucket[idx].latency_ns(),
                    window: window.len(),
                    ..QuantileAttribution::default()
                };
                let mut seg_sum = [0f64; Segment::COUNT];
                let mut lat_sum = 0f64;
                for s in window {
                    lat_sum += s.latency_ns() as f64;
                    let segs = s.segments();
                    for (acc, d) in seg_sum.iter_mut().zip(segs) {
                        *acc += d as f64;
                    }
                }
                qa.mean_latency_ns = lat_sum / window.len() as f64;
                for seg in Segment::ALL {
                    let mean = seg_sum[seg as usize] / window.len() as f64;
                    qa.segments[seg as usize] = SegmentShare {
                        mean_ns: mean,
                        fraction: if lat_sum > 0.0 {
                            seg_sum[seg as usize] / lat_sum
                        } else {
                            0.0
                        },
                    };
                }
                quantiles.push(qa);
            }
            routes.push(RouteAttribution {
                route: Some(route),
                count: n,
                quantiles,
            });
        }
        TailAttribution { routes }
    }

    /// The attribution for one route, if any spans took it.
    pub fn route(&self, route: Route) -> Option<&RouteAttribution> {
        self.routes.iter().find(|r| r.route == Some(route))
    }
}

/// Per-route exemplar store: the slowest K spans (kept sorted, slowest
/// first) plus K uniformly sampled ones (seeded reservoir sampling, so
/// runs are reproducible).
pub struct ExemplarReservoir {
    k: usize,
    rng: SimRng,
    slowest: Vec<Vec<Span>>,
    random: Vec<Vec<Span>>,
    seen: Vec<u64>,
}

impl ExemplarReservoir {
    /// A reservoir keeping `k` slowest + `k` random spans per route.
    pub fn new(k: usize, seed: u64) -> Self {
        ExemplarReservoir {
            k,
            rng: SimRng::new(seed),
            slowest: vec![Vec::new(); Route::COUNT],
            random: vec![Vec::new(); Route::COUNT],
            seen: vec![0; Route::COUNT],
        }
    }

    /// Offers one complete span (incomplete or route-less spans are
    /// ignored).
    pub fn offer(&mut self, span: &Span) {
        if !span.complete {
            return;
        }
        let Some(route) = span.route() else { return };
        let ri = route as usize;
        self.seen[ri] += 1;

        // Slowest-K: insert sorted descending by latency, truncate.
        let slow = &mut self.slowest[ri];
        let lat = span.latency_ns();
        if slow.len() < self.k || lat > slow.last().map_or(0, |s| s.latency_ns()) {
            let pos = slow
                .iter()
                .position(|s| s.latency_ns() < lat)
                .unwrap_or(slow.len());
            slow.insert(pos, span.clone());
            slow.truncate(self.k);
        }

        // Random-K: classic reservoir sampling.
        let rand = &mut self.random[ri];
        if rand.len() < self.k {
            rand.push(span.clone());
        } else {
            let j = self.rng.below(self.seen[ri]) as usize;
            if j < self.k {
                rand[j] = span.clone();
            }
        }
    }

    /// Offers every span in a batch.
    pub fn offer_all<'a>(&mut self, spans: impl IntoIterator<Item = &'a Span>) {
        for s in spans {
            self.offer(s);
        }
    }

    /// Slowest exemplars for a route, slowest first.
    pub fn slowest(&self, route: Route) -> &[Span] {
        &self.slowest[route as usize]
    }

    /// Random exemplars for a route (no particular order).
    pub fn random(&self, route: Route) -> &[Span] {
        &self.random[route as usize]
    }

    /// Total complete spans offered for a route.
    pub fn seen(&self, route: Route) -> u64 {
        self.seen[route as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;
    use nvmetro_telemetry::{PathKind, Stage};

    fn span(latency: u64, path: PathKind, ingress: u64) -> Span {
        // start at 1000; dispatch after `ingress`; service at 80% of the
        // way; complete at start + latency.
        let start = 1000;
        let end = start + latency;
        let service_stage = match path {
            PathKind::Kernel => Stage::KernelService,
            PathKind::Notify => Stage::UifService,
            _ => Stage::DeviceService,
        };
        Span {
            vm: 0,
            vsq: 0,
            tag: 0,
            gen: 1,
            shard: 0,
            start_ns: start,
            end_ns: end,
            complete: true,
            events: vec![
                SpanEvent {
                    ts_ns: start,
                    stage: Stage::VsqFetch,
                    path: PathKind::None,
                    worker: 0,
                    link_tag: 0,
                    link_gen: 0,
                },
                SpanEvent {
                    ts_ns: start + ingress,
                    stage: Stage::Dispatched,
                    path,
                    worker: 0,
                    link_tag: 0,
                    link_gen: 0,
                },
                SpanEvent {
                    ts_ns: start + latency * 4 / 5,
                    stage: service_stage,
                    path,
                    worker: 0,
                    link_tag: 0,
                    link_gen: 0,
                },
                SpanEvent {
                    ts_ns: end,
                    stage: Stage::VcqComplete,
                    path: PathKind::None,
                    worker: 0,
                    link_tag: 0,
                    link_gen: 0,
                },
            ],
        }
    }

    #[test]
    fn attribution_windows_cover_the_tail() {
        // 100 fast spans, latency 100..=10_000 in steps of 100.
        let spans: Vec<Span> = (1..=100)
            .map(|i| span(i * 100, PathKind::Fast, 10))
            .collect();
        let attrib = TailAttribution::of(&spans);
        let fast = attrib.route(Route::Fast).expect("fast route present");
        assert_eq!(fast.count, 100);
        let p50 = &fast.quantiles[0];
        assert_eq!(p50.q, 0.5);
        assert_eq!(p50.window, 51); // ranks 49..100
        let p999 = &fast.quantiles[2];
        assert_eq!(p999.window, 2); // ranks 98..100
        assert_eq!(p999.latency_ns, 9_900);
        // Fractions are sane: each in [0,1], dominant segment is the
        // service wait (dispatch→service spans 80% of the latency).
        for s in &p999.segments {
            assert!(s.fraction >= 0.0 && s.fraction <= 1.0);
        }
        assert_eq!(p999.dominant(), Segment::DispatchToService);
    }

    #[test]
    fn routes_are_attributed_separately() {
        let mut spans: Vec<Span> = (1..=10).map(|i| span(i * 100, PathKind::Fast, 5)).collect();
        spans.extend((1..=10).map(|i| span(i * 1000, PathKind::Kernel, 5)));
        let attrib = TailAttribution::of(&spans);
        assert!(attrib.route(Route::Fast).is_some());
        assert!(attrib.route(Route::Kernel).is_some());
        assert!(attrib.route(Route::Notify).is_none());
        assert_eq!(attrib.route(Route::Kernel).unwrap().count, 10);
    }

    #[test]
    fn reservoir_keeps_slowest_and_samples_randomly() {
        let mut res = ExemplarReservoir::new(3, 42);
        for i in 1..=50u64 {
            res.offer(&span(i * 10, PathKind::Fast, 1));
        }
        let slow = res.slowest(Route::Fast);
        assert_eq!(slow.len(), 3);
        assert_eq!(slow[0].latency_ns(), 500);
        assert_eq!(slow[1].latency_ns(), 490);
        assert_eq!(slow[2].latency_ns(), 480);
        assert_eq!(res.random(Route::Fast).len(), 3);
        assert_eq!(res.seen(Route::Fast), 50);
        // Seeded: a second identical run samples identically.
        let mut res2 = ExemplarReservoir::new(3, 42);
        for i in 1..=50u64 {
            res2.offer(&span(i * 10, PathKind::Fast, 1));
        }
        let a: Vec<u64> = res
            .random(Route::Fast)
            .iter()
            .map(|s| s.latency_ns())
            .collect();
        let b: Vec<u64> = res2
            .random(Route::Fast)
            .iter()
            .map(|s| s.latency_ns())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn incomplete_spans_are_ignored() {
        let mut s = span(100, PathKind::Fast, 1);
        s.complete = false;
        let mut res = ExemplarReservoir::new(2, 1);
        res.offer(&s);
        assert_eq!(res.seen(Route::Fast), 0);
        let attrib = TailAttribution::of(&[s]);
        assert!(attrib.routes.is_empty());
    }
}
