//! Exporters: Chrome `trace_event` JSON for reconstructed spans and
//! Prometheus text exposition for a [`TelemetrySnapshot`].
//!
//! The Chrome trace maps the rig topology onto the trace viewer's model:
//! each telemetry worker (router shard, device, UIF) is a *process*
//! (pid = worker id, named from the registry), and each guest queue
//! (vm, vsq) is a *track* (tid) inside the shard that owned it. Every span
//! becomes one complete ("X") event with per-stage child intervals, and
//! recovery stages (abort/retry/failover) become instant ("i") markers.
//! Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::forest::TraceForest;
use crate::span::Span;
use nvmetro_telemetry::{Metric, Percentiles, Route, Segment, Stage, TelemetrySnapshot, Tier};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Renders spans as Chrome `trace_event` JSON (the `{"traceEvents": [...]}`
/// object form). `workers` names the processes (index = worker id, from
/// [`nvmetro_telemetry::Telemetry::worker_names`]); missing names fall
/// back to `shard-N`.
pub fn chrome_trace(spans: &[Span], workers: &[String]) -> String {
    wrap_trace(span_trace_events(spans, workers))
}

/// Renders a [`TraceForest`] as Chrome `trace_event` JSON: the usual span
/// records plus one flow arrow ("s"/"f" event pair sharing an `id`) per
/// resolved causal link, so the viewer draws coalesce fan-out and
/// cross-generation replay as arrows between the related request slices.
pub fn chrome_trace_forest(forest: &TraceForest, workers: &[String]) -> String {
    let mut events = span_trace_events(&forest.spans, workers);
    for (id, link) in forest.links.iter().enumerate() {
        let name = link.kind.name();
        for (ph, span) in [
            ("s", &forest.spans[link.parent]),
            ("f", &forest.spans[link.child]),
        ] {
            // Clamp the instant into the span's own interval so the flow
            // event binds to that track's enclosing slice.
            let ts = link.at.clamp(span.start_ns, span.end_ns.max(span.start_ns));
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            let tid = ((span.vm as u64) << 16) | span.vsq as u64;
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"link\",\"ph\":\"{ph}\"{bp},\"id\":{id},\
                 \"ts\":{:.3},\"pid\":{},\"tid\":{tid}}}",
                us(ts),
                span.shard,
            ));
        }
    }
    wrap_trace(events)
}

fn wrap_trace(events: Vec<String>) -> String {
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
        events.join(",")
    )
}

fn span_trace_events(spans: &[Span], workers: &[String]) -> Vec<String> {
    let mut events: Vec<String> = Vec::new();
    let mut seen_pids: Vec<u16> = Vec::new();
    let mut seen_tids: Vec<(u16, u64)> = Vec::new();

    for span in spans {
        let pid = span.shard;
        let tid = ((span.vm as u64) << 16) | span.vsq as u64;
        if !seen_pids.contains(&pid) {
            seen_pids.push(pid);
            let name = workers
                .get(pid as usize)
                .map(|s| esc(s))
                .unwrap_or_else(|| format!("shard-{pid}"));
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        if !seen_tids.contains(&(pid, tid)) {
            seen_tids.push((pid, tid));
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"vm{} vsq{}\"}}}}",
                span.vm, span.vsq
            ));
        }

        let route = span.route().map(|r| r.name()).unwrap_or("-");
        let dur = us(span.end_ns.saturating_sub(span.start_ns)).max(0.001);
        events.push(format!(
            "{{\"name\":\"tag{} gen{}\",\"cat\":\"request\",\"ph\":\"X\",\
             \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"route\":\"{route}\",\"attempts\":{},\"complete\":{}}}}}",
            span.tag,
            span.gen,
            us(span.start_ns),
            dur,
            span.attempts(),
            span.complete,
        ));

        // Child intervals: each consecutive event pair becomes a slice
        // named after the earlier stage, so the viewer shows where the
        // request's time went.
        let mut evs: Vec<_> = span.events.iter().collect();
        evs.sort_by_key(|e| e.ts_ns);
        for pair in evs.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.ts_ns <= a.ts_ns {
                continue;
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"path\":\"{}\"}}}}",
                a.stage.name(),
                us(a.ts_ns),
                us(b.ts_ns - a.ts_ns),
                a.path.name(),
            ));
        }

        for e in &span.events {
            if matches!(e.stage, Stage::Abort | Stage::Retry | Stage::Failover) {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"recovery\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{:.3},\"pid\":{pid},\"tid\":{tid}}}",
                    e.stage.name(),
                    us(e.ts_ns),
                ));
            }
        }
    }

    events
}

fn prom_hist(out: &mut String, family: &str, label_key: &str, label: &str, p: &Percentiles) {
    for (q, v) in [
        ("0.5", p.p50),
        ("0.9", p.p90),
        ("0.99", p.p99),
        ("0.999", p.p999),
    ] {
        let _ = writeln!(
            out,
            "{family}{{{label_key}=\"{label}\",quantile=\"{q}\"}} {v}"
        );
    }
    let _ = writeln!(out, "{family}_count{{{label_key}=\"{label}\"}} {}", p.count);
    let _ = writeln!(
        out,
        "{family}_mean{{{label_key}=\"{label}\"}} {:.1}",
        p.mean
    );
}

/// One (shard, tenant) fleet-scheduler throttle cell, decoupled from the
/// core engine types so the exporter stays engine-agnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantGauge {
    /// Shard the scheduler slot lives on.
    pub shard: usize,
    /// Tenant (VM) id.
    pub tenant: u32,
    /// Governor throttle scale in permille (1000 = unthrottled).
    pub throttle_permille: u32,
    /// Unspent DRR deficit (requests).
    pub deficit: u64,
    /// Requests admitted on this shard.
    pub admitted: u64,
    /// Token denials on this shard.
    pub throttled: u64,
}

/// One (shard, VM) circuit-breaker cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerGauge {
    /// Shard the breaker lives on.
    pub shard: usize,
    /// Owning VM id.
    pub vm: u32,
    /// Whether the breaker is currently open.
    pub open: bool,
    /// Times it has opened so far.
    pub opens: u64,
}

/// Point-in-time engine gauges for the Prometheus exporter — a neutral
/// mirror of the engine's `EngineStats` surface (per-shard poll mode,
/// batch bound, core pin, table occupancy, breaker and tenant-throttle
/// cells), kept here so insight never depends on the core crate. Populate
/// it from an `EngineStats` with `blackbox::engine_gauges`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineGauges {
    /// Each shard's poll-governor mode name ("spin"/"yield"/"parked").
    pub poll_modes: Vec<&'static str>,
    /// Each shard's batch bound currently in force.
    pub batch_sizes: Vec<usize>,
    /// Core each shard is pinned to.
    pub shard_cores: Vec<usize>,
    /// Requests currently occupying routing-table slots across shards.
    pub occupancy: usize,
    /// Highest routing-table occupancy any shard reached.
    pub high_water: usize,
    /// Every (shard, tenant) throttle cell.
    pub tenants: Vec<TenantGauge>,
    /// Every (shard, VM) breaker cell.
    pub breakers: Vec<BreakerGauge>,
}

/// Renders a snapshot as Prometheus text exposition (format 0.0.4):
/// every counter as `nvmetro_<name>_total`, the latency/occupancy
/// distributions as quantile summaries, and per-ring drop counts labelled
/// by worker.
pub fn prometheus_text(snapshot: &TelemetrySnapshot) -> String {
    prometheus_text_with(snapshot, None)
}

/// [`prometheus_text`] plus point-in-time engine gauges: per-shard poll
/// mode / batch bound / core pin, routing-table occupancy, and the
/// per-(shard, tenant) throttle and per-(shard, VM) breaker cells.
pub fn prometheus_text_with(snapshot: &TelemetrySnapshot, gauges: Option<&EngineGauges>) -> String {
    let mut out = String::new();
    for m in Metric::ALL {
        let name = m.name();
        let _ = writeln!(
            out,
            "# HELP nvmetro_{name}_total Monotonic datapath counter \"{name}\"."
        );
        let _ = writeln!(out, "# TYPE nvmetro_{name}_total counter");
        let _ = writeln!(
            out,
            "nvmetro_{name}_total {}",
            snapshot.counters[m as usize]
        );
    }

    let _ = writeln!(
        out,
        "# HELP nvmetro_route_latency_ns Completion latency by dispatch route."
    );
    let _ = writeln!(out, "# TYPE nvmetro_route_latency_ns summary");
    for r in Route::ALL {
        let p = Percentiles::of(&snapshot.route_latency[r as usize]);
        prom_hist(&mut out, "nvmetro_route_latency_ns", "route", r.name(), &p);
    }
    let _ = writeln!(
        out,
        "# HELP nvmetro_segment_ns Time spent per request lifecycle segment."
    );
    let _ = writeln!(out, "# TYPE nvmetro_segment_ns summary");
    for s in Segment::ALL {
        let p = Percentiles::of(&snapshot.segments[s as usize]);
        prom_hist(&mut out, "nvmetro_segment_ns", "segment", s.name(), &p);
    }
    let _ = writeln!(
        out,
        "# HELP nvmetro_tier_latency_ns Service latency by storage tier."
    );
    let _ = writeln!(out, "# TYPE nvmetro_tier_latency_ns summary");
    for t in Tier::ALL {
        let p = Percentiles::of(&snapshot.tiers[t as usize]);
        prom_hist(&mut out, "nvmetro_tier_latency_ns", "tier", t.name(), &p);
    }

    let _ = writeln!(
        out,
        "# HELP nvmetro_trace_ring_dropped_total Trace events lost to ring wrap, per worker."
    );
    let _ = writeln!(out, "# TYPE nvmetro_trace_ring_dropped_total counter");
    for (i, dropped) in snapshot.ring_dropped.iter().enumerate() {
        let worker = snapshot
            .workers
            .get(i)
            .map(|s| esc(s))
            .unwrap_or_else(|| format!("worker-{i}"));
        let _ = writeln!(
            out,
            "nvmetro_trace_ring_dropped_total{{worker=\"{worker}\"}} {dropped}"
        );
    }

    if let Some(g) = gauges {
        let _ = writeln!(
            out,
            "# HELP nvmetro_shard_poll_mode Poll-governor state per shard (1 on the active mode)."
        );
        let _ = writeln!(out, "# TYPE nvmetro_shard_poll_mode gauge");
        for (shard, mode) in g.poll_modes.iter().enumerate() {
            let _ = writeln!(
                out,
                "nvmetro_shard_poll_mode{{shard=\"{shard}\",mode=\"{}\"}} 1",
                esc(mode)
            );
        }
        let _ = writeln!(
            out,
            "# HELP nvmetro_shard_batch_size Batch bound currently in force per shard."
        );
        let _ = writeln!(out, "# TYPE nvmetro_shard_batch_size gauge");
        for (shard, b) in g.batch_sizes.iter().enumerate() {
            let _ = writeln!(out, "nvmetro_shard_batch_size{{shard=\"{shard}\"}} {b}");
        }
        let _ = writeln!(
            out,
            "# HELP nvmetro_shard_core Core each shard is pinned to by placement."
        );
        let _ = writeln!(out, "# TYPE nvmetro_shard_core gauge");
        for (shard, c) in g.shard_cores.iter().enumerate() {
            let _ = writeln!(out, "nvmetro_shard_core{{shard=\"{shard}\"}} {c}");
        }
        let _ = writeln!(
            out,
            "# HELP nvmetro_table_occupancy Requests currently occupying routing-table slots."
        );
        let _ = writeln!(out, "# TYPE nvmetro_table_occupancy gauge");
        let _ = writeln!(out, "nvmetro_table_occupancy {}", g.occupancy);
        let _ = writeln!(
            out,
            "# HELP nvmetro_table_high_water Highest routing-table occupancy any shard reached."
        );
        let _ = writeln!(out, "# TYPE nvmetro_table_high_water gauge");
        let _ = writeln!(out, "nvmetro_table_high_water {}", g.high_water);

        let _ = writeln!(
            out,
            "# HELP nvmetro_tenant_throttle_permille Feedback throttle scale (1000 = unthrottled)."
        );
        let _ = writeln!(out, "# TYPE nvmetro_tenant_throttle_permille gauge");
        for t in &g.tenants {
            let _ = writeln!(
                out,
                "nvmetro_tenant_throttle_permille{{shard=\"{}\",tenant=\"{}\"}} {}",
                t.shard, t.tenant, t.throttle_permille
            );
        }
        let _ = writeln!(
            out,
            "# HELP nvmetro_tenant_deficit Unspent DRR deficit per scheduler cell."
        );
        let _ = writeln!(out, "# TYPE nvmetro_tenant_deficit gauge");
        for t in &g.tenants {
            let _ = writeln!(
                out,
                "nvmetro_tenant_deficit{{shard=\"{}\",tenant=\"{}\"}} {}",
                t.shard, t.tenant, t.deficit
            );
        }
        let _ = writeln!(
            out,
            "# HELP nvmetro_tenant_admitted_total Requests admitted per scheduler cell."
        );
        let _ = writeln!(out, "# TYPE nvmetro_tenant_admitted_total counter");
        for t in &g.tenants {
            let _ = writeln!(
                out,
                "nvmetro_tenant_admitted_total{{shard=\"{}\",tenant=\"{}\"}} {}",
                t.shard, t.tenant, t.admitted
            );
        }
        let _ = writeln!(
            out,
            "# HELP nvmetro_tenant_throttled_total Token denials per scheduler cell."
        );
        let _ = writeln!(out, "# TYPE nvmetro_tenant_throttled_total counter");
        for t in &g.tenants {
            let _ = writeln!(
                out,
                "nvmetro_tenant_throttled_total{{shard=\"{}\",tenant=\"{}\"}} {}",
                t.shard, t.tenant, t.throttled
            );
        }

        let _ = writeln!(
            out,
            "# HELP nvmetro_breaker_open Whether the (shard, VM) circuit breaker is open."
        );
        let _ = writeln!(out, "# TYPE nvmetro_breaker_open gauge");
        for b in &g.breakers {
            let _ = writeln!(
                out,
                "nvmetro_breaker_open{{shard=\"{}\",vm=\"{}\"}} {}",
                b.shard, b.vm, b.open as u32
            );
        }
        // Named apart from the global `nvmetro_breaker_opens_total`
        // counter family the Metric loop already emits.
        let _ = writeln!(
            out,
            "# HELP nvmetro_breaker_cell_opens_total Times the (shard, VM) breaker has opened."
        );
        let _ = writeln!(out, "# TYPE nvmetro_breaker_cell_opens_total counter");
        for b in &g.breakers {
            let _ = writeln!(
                out,
                "nvmetro_breaker_cell_opens_total{{shard=\"{}\",vm=\"{}\"}} {}",
                b.shard, b.vm, b.opens
            );
        }
    }
    out
}

/// Validates that `input` is one well-formed JSON value (the whole string,
/// modulo surrounding whitespace). Dependency-free recursive descent;
/// returns the byte offset and reason on failure. Used by `ci.sh` to gate
/// the exported Chrome trace.
pub fn validate_json(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos} (expected {lit})"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac = *pos;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac {
            return Err(format!("bad number fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp = *pos;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp {
            return Err(format!("bad number exponent at byte {start}"));
        }
    }
    Ok(())
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanAssembler;
    use nvmetro_telemetry::{PathKind, Telemetry, TraceEvent, VM_ANY};

    fn sample_spans() -> Vec<Span> {
        let mk = |ts, vm, vsq, tag, gen, stage, path, worker| TraceEvent {
            ts_ns: ts,
            vm,
            vsq,
            tag,
            gen,
            stage,
            path,
            worker,
            ..TraceEvent::default()
        };
        let mut a = SpanAssembler::new();
        a.push(&mk(1000, 0, 0, 5, 1, Stage::VsqFetch, PathKind::None, 0));
        a.push(&mk(1010, 0, 0, 5, 1, Stage::Dispatched, PathKind::Fast, 0));
        a.push(&mk(
            1500,
            VM_ANY,
            0,
            5,
            0,
            Stage::DeviceService,
            PathKind::Fast,
            2,
        ));
        a.push(&mk(1600, 0, 0, 5, 1, Stage::Retry, PathKind::None, 0));
        a.push(&mk(2000, 0, 0, 5, 1, Stage::VcqComplete, PathKind::None, 0));
        a.finish().spans
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_records() {
        let spans = sample_spans();
        let workers = vec!["router".to_string(), "uif".to_string(), "ssd".to_string()];
        let trace = chrome_trace(&spans, &workers);
        validate_json(&trace).expect("valid JSON");
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"process_name\""));
        assert!(trace.contains("\"router\""));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\"")); // the retry marker
        assert!(trace.contains("\"retry\""));
    }

    #[test]
    fn chrome_trace_of_nothing_is_still_valid() {
        let trace = chrome_trace(&[], &[]);
        validate_json(&trace).expect("valid JSON");
        assert!(trace.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn prometheus_text_lists_counters_and_quantiles() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router.0");
        h.count(Metric::Accepted);
        h.count(Metric::Accepted);
        h.route_latency(nvmetro_telemetry::Route::Fast, 1234);
        let text = prometheus_text(&telemetry.snapshot());
        assert!(text.contains("# TYPE nvmetro_accepted_total counter"));
        assert!(text.contains("nvmetro_accepted_total 2"));
        assert!(text.contains("nvmetro_route_latency_ns{route=\"fast\",quantile=\"0.5\"} 1234"));
        assert!(text.contains("nvmetro_route_latency_ns_count{route=\"fast\"} 1"));
        assert!(text.contains("nvmetro_trace_ring_dropped_total{worker=\"router.0\"} 0"));
    }

    #[test]
    fn chrome_trace_forest_emits_flow_event_pairs() {
        use crate::forest::TraceForest;
        let mk = |ts, vm, tag, stage, link_tag, link_gen| TraceEvent {
            ts_ns: ts,
            vm,
            tag,
            gen: 1,
            stage,
            link_tag,
            link_gen,
            ..TraceEvent::default()
        };
        let mut a = SpanAssembler::new();
        a.extend(&[
            mk(100, 0, 1, Stage::VsqFetch, 0, 0),
            mk(110, 1, 2, Stage::VsqFetch, 0, 0),
            mk(500, 1, 2, Stage::LinkFanout, 1, 1),
            mk(500, 1, 2, Stage::VcqComplete, 0, 0),
            mk(501, 0, 1, Stage::VcqComplete, 0, 0),
        ]);
        let forest = TraceForest::build(a.finish().spans);
        assert_eq!(forest.stats.links_resolved, 1);
        let trace = chrome_trace_forest(&forest, &["router".to_string()]);
        validate_json(&trace).expect("valid JSON");
        assert!(trace.contains("\"ph\":\"s\""));
        assert!(trace.contains("\"ph\":\"f\",\"bp\":\"e\""));
        assert!(trace.contains("\"coalesce_fanout\""));
        // The pair shares an id.
        assert_eq!(trace.matches("\"id\":0").count(), 2);
    }

    #[test]
    fn prometheus_text_with_gauges_lists_engine_state() {
        use super::{BreakerGauge, EngineGauges, TenantGauge};
        let telemetry = Telemetry::enabled();
        telemetry.register_worker_named("router.0");
        let gauges = EngineGauges {
            poll_modes: vec!["spin", "parked"],
            batch_sizes: vec![8, 16],
            shard_cores: vec![2, 3],
            occupancy: 5,
            high_water: 40,
            tenants: vec![TenantGauge {
                shard: 1,
                tenant: 7,
                throttle_permille: 500,
                deficit: 3,
                admitted: 100,
                throttled: 9,
            }],
            breakers: vec![BreakerGauge {
                shard: 0,
                vm: 7,
                open: true,
                opens: 2,
            }],
        };
        let text = prometheus_text_with(&telemetry.snapshot(), Some(&gauges));
        assert!(text.contains("nvmetro_shard_poll_mode{shard=\"1\",mode=\"parked\"} 1"));
        assert!(text.contains("nvmetro_shard_batch_size{shard=\"1\"} 16"));
        assert!(text.contains("nvmetro_shard_core{shard=\"0\"} 2"));
        assert!(text.contains("nvmetro_table_occupancy 5"));
        assert!(text.contains("nvmetro_table_high_water 40"));
        assert!(text.contains("nvmetro_tenant_throttle_permille{shard=\"1\",tenant=\"7\"} 500"));
        assert!(text.contains("nvmetro_tenant_admitted_total{shard=\"1\",tenant=\"7\"} 100"));
        assert!(text.contains("nvmetro_tenant_throttled_total{shard=\"1\",tenant=\"7\"} 9"));
        assert!(text.contains("nvmetro_breaker_open{shard=\"0\",vm=\"7\"} 1"));
        assert!(text.contains("nvmetro_breaker_cell_opens_total{shard=\"0\",vm=\"7\"} 2"));
    }

    #[test]
    fn prometheus_exposition_format_conformance() {
        let telemetry = Telemetry::enabled();
        // A hostile worker name must be escaped in the label value.
        telemetry.register_worker_named("router\"0\\x\n");
        let text = prometheus_text_with(&telemetry.snapshot(), Some(&EngineGauges::default()));
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in exposition output");
        }
        // Every sample's family has both HELP and TYPE comments, with
        // HELP immediately before TYPE.
        let lines: Vec<&str> = text.lines().collect();
        for w in lines.windows(2) {
            if let Some(rest) = w[0].strip_prefix("# HELP ") {
                let family = rest.split_whitespace().next().unwrap();
                assert!(
                    w[1].starts_with(&format!("# TYPE {family} ")),
                    "HELP for {family} not followed by its TYPE line"
                );
            }
        }
        assert!(text.contains("# HELP nvmetro_accepted_total"));
        assert!(text.contains("# TYPE nvmetro_accepted_total counter"));
        assert!(text.contains("# TYPE nvmetro_route_latency_ns summary"));
        assert!(text.contains("# TYPE nvmetro_shard_poll_mode gauge"));
        // The escaped worker label: quote, backslash and newline encoded.
        assert!(text.contains("worker=\"router\\\"0\\\\x\\n\""));
        // Exactly one TYPE line per family.
        let mut families: Vec<&str> = lines
            .iter()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let total = families.len();
        families.sort_unstable();
        families.dedup();
        assert_eq!(total, families.len(), "duplicate # TYPE family");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\": [1, 2.5, -3e4, true, null, \"x\\n\"]}").is_ok());
        assert!(validate_json("  [ ]  ").is_ok());
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{'a':1}").is_err());
    }
}
