//! Exporters: Chrome `trace_event` JSON for reconstructed spans and
//! Prometheus text exposition for a [`TelemetrySnapshot`].
//!
//! The Chrome trace maps the rig topology onto the trace viewer's model:
//! each telemetry worker (router shard, device, UIF) is a *process*
//! (pid = worker id, named from the registry), and each guest queue
//! (vm, vsq) is a *track* (tid) inside the shard that owned it. Every span
//! becomes one complete ("X") event with per-stage child intervals, and
//! recovery stages (abort/retry/failover) become instant ("i") markers.
//! Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::span::Span;
use nvmetro_telemetry::{Metric, Percentiles, Route, Segment, Stage, TelemetrySnapshot, Tier};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Renders spans as Chrome `trace_event` JSON (the `{"traceEvents": [...]}`
/// object form). `workers` names the processes (index = worker id, from
/// [`nvmetro_telemetry::Telemetry::worker_names`]); missing names fall
/// back to `shard-N`.
pub fn chrome_trace(spans: &[Span], workers: &[String]) -> String {
    let mut events: Vec<String> = Vec::new();
    let mut seen_pids: Vec<u16> = Vec::new();
    let mut seen_tids: Vec<(u16, u64)> = Vec::new();

    for span in spans {
        let pid = span.shard;
        let tid = ((span.vm as u64) << 16) | span.vsq as u64;
        if !seen_pids.contains(&pid) {
            seen_pids.push(pid);
            let name = workers
                .get(pid as usize)
                .map(|s| esc(s))
                .unwrap_or_else(|| format!("shard-{pid}"));
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        if !seen_tids.contains(&(pid, tid)) {
            seen_tids.push((pid, tid));
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"vm{} vsq{}\"}}}}",
                span.vm, span.vsq
            ));
        }

        let route = span.route().map(|r| r.name()).unwrap_or("-");
        let dur = us(span.end_ns.saturating_sub(span.start_ns)).max(0.001);
        events.push(format!(
            "{{\"name\":\"tag{} gen{}\",\"cat\":\"request\",\"ph\":\"X\",\
             \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"route\":\"{route}\",\"attempts\":{},\"complete\":{}}}}}",
            span.tag,
            span.gen,
            us(span.start_ns),
            dur,
            span.attempts(),
            span.complete,
        ));

        // Child intervals: each consecutive event pair becomes a slice
        // named after the earlier stage, so the viewer shows where the
        // request's time went.
        let mut evs: Vec<_> = span.events.iter().collect();
        evs.sort_by_key(|e| e.ts_ns);
        for pair in evs.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.ts_ns <= a.ts_ns {
                continue;
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"path\":\"{}\"}}}}",
                a.stage.name(),
                us(a.ts_ns),
                us(b.ts_ns - a.ts_ns),
                a.path.name(),
            ));
        }

        for e in &span.events {
            if matches!(e.stage, Stage::Abort | Stage::Retry | Stage::Failover) {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"recovery\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{:.3},\"pid\":{pid},\"tid\":{tid}}}",
                    e.stage.name(),
                    us(e.ts_ns),
                ));
            }
        }
    }

    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
        events.join(",")
    )
}

fn prom_hist(out: &mut String, family: &str, label_key: &str, label: &str, p: &Percentiles) {
    for (q, v) in [
        ("0.5", p.p50),
        ("0.9", p.p90),
        ("0.99", p.p99),
        ("0.999", p.p999),
    ] {
        let _ = writeln!(
            out,
            "{family}{{{label_key}=\"{label}\",quantile=\"{q}\"}} {v}"
        );
    }
    let _ = writeln!(out, "{family}_count{{{label_key}=\"{label}\"}} {}", p.count);
    let _ = writeln!(
        out,
        "{family}_mean{{{label_key}=\"{label}\"}} {:.1}",
        p.mean
    );
}

/// Renders a snapshot as Prometheus text exposition (format 0.0.4):
/// every counter as `nvmetro_<name>_total`, the latency/occupancy
/// distributions as quantile summaries, and per-ring drop counts labelled
/// by worker.
pub fn prometheus_text(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for m in Metric::ALL {
        let name = m.name();
        let _ = writeln!(out, "# TYPE nvmetro_{name}_total counter");
        let _ = writeln!(
            out,
            "nvmetro_{name}_total {}",
            snapshot.counters[m as usize]
        );
    }

    let _ = writeln!(out, "# TYPE nvmetro_route_latency_ns summary");
    for r in Route::ALL {
        let p = Percentiles::of(&snapshot.route_latency[r as usize]);
        prom_hist(&mut out, "nvmetro_route_latency_ns", "route", r.name(), &p);
    }
    let _ = writeln!(out, "# TYPE nvmetro_segment_ns summary");
    for s in Segment::ALL {
        let p = Percentiles::of(&snapshot.segments[s as usize]);
        prom_hist(&mut out, "nvmetro_segment_ns", "segment", s.name(), &p);
    }
    let _ = writeln!(out, "# TYPE nvmetro_tier_latency_ns summary");
    for t in Tier::ALL {
        let p = Percentiles::of(&snapshot.tiers[t as usize]);
        prom_hist(&mut out, "nvmetro_tier_latency_ns", "tier", t.name(), &p);
    }

    let _ = writeln!(out, "# TYPE nvmetro_trace_ring_dropped_total counter");
    for (i, dropped) in snapshot.ring_dropped.iter().enumerate() {
        let worker = snapshot
            .workers
            .get(i)
            .map(|s| esc(s))
            .unwrap_or_else(|| format!("worker-{i}"));
        let _ = writeln!(
            out,
            "nvmetro_trace_ring_dropped_total{{worker=\"{worker}\"}} {dropped}"
        );
    }
    out
}

/// Validates that `input` is one well-formed JSON value (the whole string,
/// modulo surrounding whitespace). Dependency-free recursive descent;
/// returns the byte offset and reason on failure. Used by `ci.sh` to gate
/// the exported Chrome trace.
pub fn validate_json(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos} (expected {lit})"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac = *pos;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac {
            return Err(format!("bad number fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp = *pos;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp {
            return Err(format!("bad number exponent at byte {start}"));
        }
    }
    Ok(())
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanAssembler;
    use nvmetro_telemetry::{PathKind, Telemetry, TraceEvent, VM_ANY};

    fn sample_spans() -> Vec<Span> {
        let mk = |ts, vm, vsq, tag, gen, stage, path, worker| TraceEvent {
            ts_ns: ts,
            vm,
            vsq,
            tag,
            gen,
            stage,
            path,
            worker,
        };
        let mut a = SpanAssembler::new();
        a.push(&mk(1000, 0, 0, 5, 1, Stage::VsqFetch, PathKind::None, 0));
        a.push(&mk(1010, 0, 0, 5, 1, Stage::Dispatched, PathKind::Fast, 0));
        a.push(&mk(
            1500,
            VM_ANY,
            0,
            5,
            0,
            Stage::DeviceService,
            PathKind::Fast,
            2,
        ));
        a.push(&mk(1600, 0, 0, 5, 1, Stage::Retry, PathKind::None, 0));
        a.push(&mk(2000, 0, 0, 5, 1, Stage::VcqComplete, PathKind::None, 0));
        a.finish().spans
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_records() {
        let spans = sample_spans();
        let workers = vec!["router".to_string(), "uif".to_string(), "ssd".to_string()];
        let trace = chrome_trace(&spans, &workers);
        validate_json(&trace).expect("valid JSON");
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"process_name\""));
        assert!(trace.contains("\"router\""));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\"")); // the retry marker
        assert!(trace.contains("\"retry\""));
    }

    #[test]
    fn chrome_trace_of_nothing_is_still_valid() {
        let trace = chrome_trace(&[], &[]);
        validate_json(&trace).expect("valid JSON");
        assert!(trace.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn prometheus_text_lists_counters_and_quantiles() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router.0");
        h.count(Metric::Accepted);
        h.count(Metric::Accepted);
        h.route_latency(nvmetro_telemetry::Route::Fast, 1234);
        let text = prometheus_text(&telemetry.snapshot());
        assert!(text.contains("# TYPE nvmetro_accepted_total counter"));
        assert!(text.contains("nvmetro_accepted_total 2"));
        assert!(text.contains("nvmetro_route_latency_ns{route=\"fast\",quantile=\"0.5\"} 1234"));
        assert!(text.contains("nvmetro_route_latency_ns_count{route=\"fast\"} 1"));
        assert!(text.contains("nvmetro_trace_ring_dropped_total{worker=\"router.0\"} 0"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\": [1, 2.5, -3e4, true, null, \"x\\n\"]}").is_ok());
        assert!(validate_json("  [ ]  ").is_ok());
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{'a':1}").is_err());
    }
}
