//! Causal trace forest: stitching linked spans into logical request trees.
//!
//! The span assembler reconstructs each *attempt* as its own [`Span`], but
//! the datapath reshapes requests across spans: a coalescing leader's
//! device read answers N parked followers ([`Stage::LinkFanout`] on each
//! follower names the leader), and a servicing replay re-issues a
//! snapshotted request under a new generation ([`Stage::Replayed`] names
//! the pre-snapshot predecessor). [`TraceForest`] resolves those link
//! events into parent→child edges, exposing each logical request as one
//! tree: the leader with its fan-out, the pre-snapshot attempt with its
//! replay. [`TraceForest::critical_path`] walks a tree from its root to
//! the last-completing descendant and names the dominant lifecycle
//! segment of every hop — the per-tree answer to "where did the time go".

use crate::span::Span;
use nvmetro_telemetry::{Ns, Segment, Stage};
use std::collections::HashMap;

/// Why a child span hangs off its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// The child is a coalescing follower fanned out from the parent
    /// (leader) request's terminal completion.
    CoalesceFanout,
    /// The child is the cross-generation servicing replay of the parent
    /// (pre-snapshot) request.
    Replay,
}

impl LinkKind {
    /// Stable lowercase name for JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            LinkKind::CoalesceFanout => "coalesce_fanout",
            LinkKind::Replay => "replay",
        }
    }
}

/// One resolved parent→child edge (indices into [`TraceForest::spans`]).
#[derive(Clone, Copy, Debug)]
pub struct TraceLink {
    /// Span index of the parent (leader / pre-snapshot attempt).
    pub parent: usize,
    /// Span index of the child (follower / replay).
    pub child: usize,
    /// Edge kind.
    pub kind: LinkKind,
    /// When the link event was emitted.
    pub at: Ns,
}

/// Link-resolution bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForestStats {
    /// Spans fed into the forest.
    pub spans: usize,
    /// Link events observed on the spans.
    pub links_seen: usize,
    /// Link events resolved to a parent span.
    pub links_resolved: usize,
    /// Roots (spans with no parent) — unlinked spans are one-node trees.
    pub trees: usize,
}

impl ForestStats {
    /// Fraction of observed links that resolved (1.0 when none were seen).
    pub fn link_coverage(&self) -> f64 {
        if self.links_seen == 0 {
            return 1.0;
        }
        self.links_resolved as f64 / self.links_seen as f64
    }
}

/// One hop of a tree's critical path.
#[derive(Clone, Copy, Debug)]
pub struct CriticalHop {
    /// Index of the span this hop crosses.
    pub span: usize,
    /// The span's own VSQ→VCQ latency (0 while incomplete).
    pub latency_ns: u64,
    /// The lifecycle segment that dominated the span's latency.
    pub dominant: Segment,
}

/// The forest itself: spans plus resolved links and tree accessors.
pub struct TraceForest {
    /// The spans, in the order they were handed in.
    pub spans: Vec<Span>,
    /// Every resolved edge.
    pub links: Vec<TraceLink>,
    /// Resolution bookkeeping.
    pub stats: ForestStats,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl TraceForest {
    /// Builds the forest: resolves every [`Stage::LinkFanout`] /
    /// [`Stage::Replayed`] link event carried by `spans` to its parent
    /// span. Coalesce links match within the emitting shard (coalescing
    /// never crosses shards); replay links match by `(tag, gen)` across
    /// shards, since a reshard may land the replay elsewhere. When tag
    /// reuse leaves several candidates, the latest one starting at or
    /// before the link instant wins.
    pub fn build(spans: Vec<Span>) -> Self {
        let mut by_shard: HashMap<(u16, u16, u8), Vec<usize>> = HashMap::new();
        let mut by_tag: HashMap<(u16, u8), Vec<usize>> = HashMap::new();
        for (i, s) in spans.iter().enumerate() {
            by_shard.entry((s.shard, s.tag, s.gen)).or_default().push(i);
            by_tag.entry((s.tag, s.gen)).or_default().push(i);
        }
        let mut parent: Vec<Option<usize>> = vec![None; spans.len()];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut links = Vec::new();
        let mut seen = 0usize;
        for (child, span) in spans.iter().enumerate() {
            for ev in span.links() {
                let kind = match ev.stage {
                    Stage::LinkFanout => LinkKind::CoalesceFanout,
                    Stage::Replayed => LinkKind::Replay,
                    _ => continue,
                };
                seen += 1;
                let candidates = match kind {
                    LinkKind::CoalesceFanout => {
                        by_shard.get(&(span.shard, ev.link_tag, ev.link_gen))
                    }
                    LinkKind::Replay => by_tag.get(&(ev.link_tag, ev.link_gen)),
                };
                let best =
                    candidates
                        .into_iter()
                        .flatten()
                        .copied()
                        .fold(None::<usize>, |best, cand| {
                            if cand == child || spans[cand].start_ns > ev.ts_ns {
                                return best;
                            }
                            match best {
                                Some(b) if spans[b].start_ns >= spans[cand].start_ns => Some(b),
                                _ => Some(cand),
                            }
                        });
                let Some(p) = best else { continue };
                if parent[child].is_some() || would_cycle(&parent, p, child) {
                    continue;
                }
                parent[child] = Some(p);
                children[p].push(child);
                links.push(TraceLink {
                    parent: p,
                    child,
                    kind,
                    at: ev.ts_ns,
                });
            }
        }
        let trees = parent.iter().filter(|p| p.is_none()).count();
        let stats = ForestStats {
            spans: spans.len(),
            links_seen: seen,
            links_resolved: links.len(),
            trees,
        };
        TraceForest {
            spans,
            links,
            stats,
            parent,
            children,
        }
    }

    /// The parent of a span, if linked.
    pub fn parent_of(&self, span: usize) -> Option<usize> {
        self.parent.get(span).copied().flatten()
    }

    /// Direct children of a span.
    pub fn children_of(&self, span: usize) -> &[usize] {
        self.children.get(span).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Indices of every root (spans with no parent).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.spans.len())
            .filter(|&i| self.parent[i].is_none())
            .collect()
    }

    /// The root of the tree containing `span`.
    pub fn root_of(&self, mut span: usize) -> usize {
        while let Some(p) = self.parent[span] {
            span = p;
        }
        span
    }

    /// Every span in `root`'s tree (pre-order, root first).
    pub fn tree(&self, root: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            out.push(i);
            stack.extend(self.children[i].iter().rev());
        }
        out
    }

    /// The tree's critical path: root → the child subtree that finishes
    /// last, one hop per span, each hop naming its dominant lifecycle
    /// segment. The first hop is the root itself.
    pub fn critical_path(&self, root: usize) -> Vec<CriticalHop> {
        let mut path = Vec::new();
        let mut at = root;
        loop {
            let span = &self.spans[at];
            let segs = span.segments();
            let dominant = Segment::ALL[segs
                .iter()
                .enumerate()
                .max_by_key(|(_, v)| **v)
                .map(|(i, _)| i)
                .unwrap_or(0)];
            path.push(CriticalHop {
                span: at,
                latency_ns: span.latency_ns(),
                dominant,
            });
            // Descend into the child whose subtree ends last.
            let next = self.children[at]
                .iter()
                .copied()
                .max_by_key(|&c| self.subtree_end(c));
            match next {
                Some(c) => at = c,
                None => return path,
            }
        }
    }

    fn subtree_end(&self, root: usize) -> Ns {
        self.tree(root)
            .into_iter()
            .map(|i| self.spans[i].end_ns)
            .max()
            .unwrap_or(0)
    }
}

/// Whether making `parent` the parent of `child` would close a cycle
/// (i.e. `child` is already an ancestor of `parent`).
fn would_cycle(parents: &[Option<usize>], parent: usize, child: usize) -> bool {
    let mut at = parent;
    loop {
        if at == child {
            return true;
        }
        match parents[at] {
            Some(p) => at = p,
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanAssembler;
    use nvmetro_telemetry::{PathKind, TraceEvent};

    fn ev(ts: Ns, vm: u32, tag: u16, gen: u8, stage: Stage, worker: u16) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            vm,
            vsq: 0,
            tag,
            gen,
            stage,
            path: PathKind::None,
            worker,
            ..TraceEvent::default()
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn link(
        ts: Ns,
        vm: u32,
        tag: u16,
        gen: u8,
        stage: Stage,
        worker: u16,
        link_tag: u16,
        link_gen: u8,
    ) -> TraceEvent {
        TraceEvent {
            link_tag,
            link_gen,
            ..ev(ts, vm, tag, gen, stage, worker)
        }
    }

    fn spans(events: &[TraceEvent]) -> Vec<Span> {
        let mut a = SpanAssembler::new();
        a.extend(events);
        a.finish().spans
    }

    #[test]
    fn coalesce_fanout_builds_one_tree() {
        // Leader tag 1; followers tags 2 and 3 fan out from it.
        let events = vec![
            ev(100, 0, 1, 1, Stage::VsqFetch, 0),
            ev(110, 1, 2, 1, Stage::VsqFetch, 0),
            ev(120, 2, 3, 1, Stage::VsqFetch, 0),
            link(500, 1, 2, 1, Stage::LinkFanout, 0, 1, 1),
            ev(500, 1, 2, 1, Stage::VcqComplete, 0),
            link(500, 2, 3, 1, Stage::LinkFanout, 0, 1, 1),
            ev(500, 2, 3, 1, Stage::VcqComplete, 0),
            ev(501, 0, 1, 1, Stage::VcqComplete, 0),
        ];
        let f = TraceForest::build(spans(&events));
        assert_eq!(f.stats.links_seen, 2);
        assert_eq!(f.stats.links_resolved, 2);
        assert_eq!(f.stats.trees, 1);
        assert!((f.stats.link_coverage() - 1.0).abs() < 1e-9);
        let root = f.roots()[0];
        assert_eq!(f.spans[root].tag, 1);
        assert_eq!(f.tree(root).len(), 3);
        assert_eq!(f.children_of(root).len(), 2);
    }

    #[test]
    fn replay_links_across_shards() {
        // The pre-snapshot attempt ran on shard 0, tag 5 gen 2, never
        // completed; the replay runs on shard 3 under a new tag/gen.
        let events = vec![
            ev(100, 0, 5, 2, Stage::VsqFetch, 0),
            ev(102, 0, 5, 2, Stage::Dispatched, 0),
            ev(900, 0, 9, 1, Stage::VsqFetch, 3),
            link(900, 0, 9, 1, Stage::Replayed, 3, 5, 2),
            ev(950, 0, 9, 1, Stage::VcqComplete, 3),
        ];
        let f = TraceForest::build(spans(&events));
        assert_eq!(f.stats.links_resolved, 1);
        assert_eq!(f.stats.trees, 1);
        let root = f.roots()[0];
        assert_eq!(f.spans[root].shard, 0, "pre-snapshot attempt is the root");
        let leaf = f.children_of(root)[0];
        assert_eq!(f.spans[leaf].shard, 3);
        assert_eq!(f.root_of(leaf), root);
        assert_eq!(f.links[0].kind, LinkKind::Replay);
    }

    #[test]
    fn unresolved_link_counts_against_coverage() {
        let events = vec![
            ev(100, 0, 2, 1, Stage::VsqFetch, 0),
            link(500, 0, 2, 1, Stage::LinkFanout, 0, 77, 9), // no such leader
            ev(500, 0, 2, 1, Stage::VcqComplete, 0),
        ];
        let f = TraceForest::build(spans(&events));
        assert_eq!(f.stats.links_seen, 1);
        assert_eq!(f.stats.links_resolved, 0);
        assert!(f.stats.link_coverage() < 1.0);
    }

    #[test]
    fn critical_path_descends_to_last_finishing_child() {
        let events = vec![
            ev(100, 0, 1, 1, Stage::VsqFetch, 0),
            ev(101, 0, 1, 1, Stage::Dispatched, 0),
            ev(110, 1, 2, 1, Stage::VsqFetch, 0),
            ev(120, 2, 3, 1, Stage::VsqFetch, 0),
            link(400, 1, 2, 1, Stage::LinkFanout, 0, 1, 1),
            ev(400, 1, 2, 1, Stage::VcqComplete, 0),
            link(800, 2, 3, 1, Stage::LinkFanout, 0, 1, 1),
            ev(800, 2, 3, 1, Stage::VcqComplete, 0),
            ev(401, 0, 1, 1, Stage::VcqComplete, 0),
        ];
        let f = TraceForest::build(spans(&events));
        let root = f.root_of(0);
        let path = f.critical_path(root);
        assert_eq!(path.len(), 2);
        assert_eq!(f.spans[path[0].span].tag, 1);
        // tag 3 finishes at 800, later than tag 2's 400.
        assert_eq!(f.spans[path[1].span].tag, 3);
    }
}
