//! nvmetro-insight: analysis and live monitoring over the telemetry stream.
//!
//! The telemetry crate records *what happened* — flat per-worker rings of
//! lifecycle events plus counters and histograms. This crate answers
//! *what it means*:
//!
//! * [`span`] folds the event stream back into per-request [`Span`]s
//!   (handling ring wrap, tag reuse via generations, retries and
//!   failovers) with per-stage segment timings and coverage accounting;
//! * [`attrib`] attributes tail latency — for the p50/p99/p999 spans on
//!   each route, which lifecycle segment contributed what fraction — and
//!   keeps whole-span exemplars (slowest-K + seeded random-K per route);
//! * [`watchdog`] is a live [`nvmetro_sim::Actor`] that drains the rings
//!   every tick and flags stalled queues, breaker flapping, and SLO
//!   error-budget burn, surfacing verdicts as telemetry metrics and
//!   [`HealthReport`]s;
//! * [`export`] renders spans as Chrome `trace_event` JSON (one process
//!   per worker, one track per guest queue) and snapshots as Prometheus
//!   text exposition.

#![warn(missing_docs)]

pub mod attrib;
pub mod export;
pub mod span;
pub mod watchdog;

pub use attrib::{ExemplarReservoir, QuantileAttribution, RouteAttribution, TailAttribution};
pub use export::{chrome_trace, prometheus_text, validate_json};
pub use span::{assemble, AssemblyStats, Span, SpanAssembler, SpanEvent, SpanReport};
pub use watchdog::{
    HealthLog, HealthReport, HealthVerdict, QueueHealth, SharedWatchdog, SloConfig, SloStatus,
    StallWatchdog, WatchdogConfig,
};
