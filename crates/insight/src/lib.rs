//! nvmetro-insight: analysis and live monitoring over the telemetry stream.
//!
//! The telemetry crate records *what happened* — flat per-worker rings of
//! lifecycle events plus counters and histograms. This crate answers
//! *what it means*:
//!
//! * [`span`] folds the event stream back into per-request [`Span`]s
//!   (handling ring wrap, tag reuse via generations, retries and
//!   failovers) with per-stage segment timings and coverage accounting;
//! * [`attrib`] attributes tail latency — for the p50/p99/p999 spans on
//!   each route, which lifecycle segment contributed what fraction — and
//!   keeps whole-span exemplars (slowest-K + seeded random-K per route);
//! * [`watchdog`] is a live [`nvmetro_sim::Actor`] that drains the rings
//!   every tick and flags stalled queues, breaker flapping, and SLO
//!   error-budget burn, surfacing verdicts as telemetry metrics and
//!   [`HealthReport`]s;
//! * [`forest`] stitches causally linked spans (coalesce leader→follower
//!   fan-out, cross-generation servicing replays) into logical request
//!   trees with per-tree critical-path attribution;
//! * [`export`] renders spans as Chrome `trace_event` JSON (one process
//!   per worker, one track per guest queue, flow arrows for causal
//!   links) and snapshots as Prometheus text exposition, optionally with
//!   point-in-time engine gauges.

#![warn(missing_docs)]

pub mod attrib;
pub mod export;
pub mod forest;
pub mod span;
pub mod watchdog;

pub use attrib::{ExemplarReservoir, QuantileAttribution, RouteAttribution, TailAttribution};
pub use export::{
    chrome_trace, chrome_trace_forest, prometheus_text, prometheus_text_with, validate_json,
    BreakerGauge, EngineGauges, TenantGauge,
};
pub use forest::{CriticalHop, ForestStats, LinkKind, TraceForest, TraceLink};
pub use span::{assemble, AssemblyStats, Span, SpanAssembler, SpanEvent, SpanReport};
pub use watchdog::{
    HealthLog, HealthReport, HealthVerdict, QueueHealth, SharedWatchdog, SloConfig, SloStatus,
    StallWatchdog, WatchdogConfig,
};
