//! Span reconstruction: folding the flat telemetry event stream back into
//! per-request spans.
//!
//! The telemetry rings hold interleaved [`TraceEvent`]s from every worker.
//! Router-side events carry `(vm, vsq, tag)` plus a nonzero generation
//! (`TraceEvent::gen`) that disambiguates reuse of the same routing-table
//! tag across requests; below-router events (device, kernel, UIF) only
//! know the tag (`vm == VM_ANY`, generation 0) and are matched to the open
//! span they most plausibly belong to. The assembler tolerates ring wrap
//! (events lost before it ever saw them become *orphans*, and the final
//! [`SpanReport`] states coverage instead of silently missing requests),
//! retries/failovers (one span per request, [`Span::attempts`] counts the
//! dispatch attempts), and out-of-order arrival across rings.

use nvmetro_telemetry::{
    Ns, PathKind, Route, Segment, Stage, TelemetrySnapshot, TraceEvent, VM_ANY,
};
use std::collections::HashMap;

/// One event attached to a span (the request identity lives on the span).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// When the stage was reached.
    pub ts_ns: Ns,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Path annotation, if any.
    pub path: PathKind,
    /// Worker (ring) that emitted the event.
    pub worker: u16,
    /// Causal link target tag ([`Stage::LinkFanout`]/[`Stage::Replayed`]
    /// carry the related request here; 0 with `link_gen == 0` otherwise).
    pub link_tag: u16,
    /// Causal link target generation (0 = no link).
    pub link_gen: u8,
}

impl SpanEvent {
    fn of(ev: &TraceEvent) -> Self {
        SpanEvent {
            ts_ns: ev.ts_ns,
            stage: ev.stage,
            path: ev.path,
            worker: ev.worker,
            link_tag: ev.link_tag,
            link_gen: ev.link_gen,
        }
    }
}

/// One reconstructed request: every lifecycle event between its `VsqFetch`
/// and its terminal `VcqComplete` (plus any recovery stages in between).
#[derive(Clone, Debug)]
pub struct Span {
    /// Owning VM id.
    pub vm: u32,
    /// Virtual submission queue within the VM.
    pub vsq: u16,
    /// Routing-table tag the request occupied.
    pub tag: u16,
    /// Router-stamped generation (nonzero; disambiguates tag reuse).
    pub gen: u8,
    /// Worker id of the router shard that owned the request.
    pub shard: u16,
    /// `VsqFetch` timestamp.
    pub start_ns: Ns,
    /// Latest event timestamp observed (the `VcqComplete` instant once the
    /// span is complete).
    pub end_ns: Ns,
    /// Whether the terminal `VcqComplete` was observed.
    pub complete: bool,
    /// Events in arrival order.
    pub events: Vec<SpanEvent>,
}

impl Span {
    fn new(ev: &TraceEvent) -> Self {
        Span {
            vm: ev.vm,
            vsq: ev.vsq,
            tag: ev.tag,
            gen: ev.gen,
            shard: ev.worker,
            start_ns: ev.ts_ns,
            end_ns: ev.ts_ns,
            complete: false,
            events: vec![SpanEvent::of(ev)],
        }
    }

    /// VSQ-fetch to VCQ-complete latency (0 while incomplete).
    pub fn latency_ns(&self) -> u64 {
        if self.complete {
            self.end_ns.saturating_sub(self.start_ns)
        } else {
            0
        }
    }

    /// Number of occurrences of one stage.
    pub fn count(&self, stage: Stage) -> usize {
        self.events.iter().filter(|e| e.stage == stage).count()
    }

    /// Whether any event reached this stage.
    pub fn has(&self, stage: Stage) -> bool {
        self.events.iter().any(|e| e.stage == stage)
    }

    /// Dispatch attempts: the first one plus one per retry.
    pub fn attempts(&self) -> u32 {
        1 + self.count(Stage::Retry) as u32
    }

    /// Causal link events this span carries ([`Stage::LinkFanout`] names
    /// the coalesce leader, [`Stage::Replayed`] the pre-snapshot
    /// predecessor). Empty for an ordinary span.
    pub fn links(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter().filter(|e| e.link_gen != 0)
    }

    /// The route this span is attributed to — the heaviest path it was
    /// dispatched on (notify > kernel > fast), matching the router's own
    /// route-latency attribution. `None` if it never dispatched.
    pub fn route(&self) -> Option<Route> {
        let mut route = None;
        for e in self.events.iter().filter(|e| e.stage == Stage::Dispatched) {
            route = match (e.path, route) {
                (PathKind::Notify, _) => Some(Route::Notify),
                (PathKind::Kernel, r) if r != Some(Route::Notify) => Some(Route::Kernel),
                (PathKind::Fast, None) => Some(Route::Fast),
                (_, r) => r,
            };
        }
        route
    }

    fn first_ts(&self, pred: impl Fn(&SpanEvent) -> bool) -> Option<Ns> {
        self.events
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.ts_ns)
            .min()
    }

    fn last_ts(&self, pred: impl Fn(&SpanEvent) -> bool) -> Option<Ns> {
        self.events
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.ts_ns)
            .max()
    }

    /// Duration of one stage segment within this span (0 when the span
    /// never touched the segment's endpoints).
    pub fn segment_ns(&self, seg: Segment) -> u64 {
        let service = |e: &SpanEvent| {
            matches!(
                e.stage,
                Stage::DeviceService | Stage::KernelService | Stage::UifService
            )
        };
        match seg {
            Segment::IngressToDispatch => self
                .first_ts(|e| e.stage == Stage::Dispatched)
                .map_or(0, |d| d.saturating_sub(self.start_ns)),
            Segment::DispatchToService => {
                match (
                    self.first_ts(|e| e.stage == Stage::Dispatched),
                    self.last_ts(service),
                ) {
                    (Some(d), Some(s)) => s.saturating_sub(d),
                    _ => 0,
                }
            }
            Segment::ServiceToComplete => {
                if !self.complete {
                    return 0;
                }
                self.last_ts(service)
                    .map_or(0, |s| self.end_ns.saturating_sub(s))
            }
            Segment::FaultToRecovery => self
                .first_ts(|e| matches!(e.stage, Stage::Abort | Stage::Retry | Stage::Failover))
                .map_or(0, |f| self.end_ns.saturating_sub(f)),
        }
    }

    /// All segment durations, indexed by `Segment as usize`.
    pub fn segments(&self) -> [u64; Segment::COUNT] {
        std::array::from_fn(|i| self.segment_ns(Segment::ALL[i]))
    }
}

/// Assembly bookkeeping: how much of the stream folded cleanly into spans.
#[derive(Clone, Copy, Debug, Default)]
pub struct AssemblyStats {
    /// Events pushed into the assembler.
    pub events: u64,
    /// Spans opened (one per observed `VsqFetch`).
    pub spans_opened: u64,
    /// Spans whose terminal `VcqComplete` was observed.
    pub spans_completed: u64,
    /// Events that matched no open span (their `VsqFetch` or the whole
    /// span was lost to ring wrap, or a late straggler arrived after its
    /// span was retired).
    pub orphan_events: u64,
    /// Below-router events that matched more than one plausible open span
    /// (attached to the best candidate; a measure of tag-collision noise).
    pub ambiguous_matches: u64,
    /// Router events whose generation contradicted the open span (stale
    /// ring remnants from a previous occupant of the tag).
    pub gen_mismatches: u64,
    /// Spans that observed a second terminal `VcqComplete` for the same
    /// generation — a datapath exactly-once violation.
    pub duplicate_terminals: u64,
}

/// A finished assembly: the reconstructed spans plus coverage accounting.
#[derive(Clone, Debug, Default)]
pub struct SpanReport {
    /// All spans, complete first by start time, then incomplete.
    pub spans: Vec<Span>,
    /// Assembly bookkeeping.
    pub stats: AssemblyStats,
    /// Ring-wrap losses reported by the telemetry snapshot (events the
    /// assembler never even saw).
    pub dropped_events: u64,
}

impl SpanReport {
    /// Number of fully reconstructed (terminal-bearing) spans.
    pub fn complete_count(&self) -> usize {
        self.spans.iter().filter(|s| s.complete).count()
    }

    /// Fraction of `completed` requests (the datapath's own counter) that
    /// were reconstructed into complete spans. 1.0 when nothing completed.
    pub fn coverage(&self, completed: u64) -> f64 {
        if completed == 0 {
            return 1.0;
        }
        self.complete_count() as f64 / completed as f64
    }
}

/// Router-event span key: `(worker, vm, vsq, tag)`. The worker (router
/// shard) is part of the identity because each shard numbers its VSQs and
/// routing-table tags independently — symmetric shards emit otherwise
/// identical streams.
type Key = (u16, u32, u16, u16);

/// Folds trace events into [`Span`]s.
///
/// Spans stay resident after their terminal event until the tag is reused
/// by a new `VsqFetch`, [`SpanAssembler::retire_settled`] deems them
/// settled, or [`SpanAssembler::finish`] runs — so below-router events
/// that sort after the completion (same-instant service reports from
/// another ring) still attach to the right span.
#[derive(Default)]
pub struct SpanAssembler {
    open: HashMap<Key, Span>,
    by_tag: HashMap<u16, Vec<Key>>,
    /// Incomplete spans displaced by tag reuse, keyed with their
    /// generation. The router frees a slot the instant the request
    /// completes, so under a closed loop the *next* request's `VsqFetch`
    /// can hit the ring before the previous one's (CQ-batched)
    /// `VcqComplete` at the same virtual instant. Keeping the displaced
    /// span around lets the old-generation terminal still close it.
    displaced: HashMap<(u16, u32, u16, u16, u8), Span>,
    done: Vec<Span>,
    stats: AssemblyStats,
    max_ts: Ns,
    strict: bool,
}

impl SpanAssembler {
    /// An assembler that tolerates datapath anomalies (counting them).
    pub fn new() -> Self {
        SpanAssembler::default()
    }

    /// An assembler that panics on exactly-once violations (duplicate
    /// terminal events for one generation) — the stage-coverage audit used
    /// by tests.
    pub fn strict() -> Self {
        SpanAssembler {
            strict: true,
            ..SpanAssembler::default()
        }
    }

    /// Assembly bookkeeping so far.
    pub fn stats(&self) -> &AssemblyStats {
        &self.stats
    }

    /// Number of spans still open (no terminal observed, not yet retired).
    pub fn in_flight(&self) -> usize {
        self.open.values().filter(|s| !s.complete).count()
    }

    /// All resident (not yet retired) spans.
    pub fn open_spans(&self) -> impl Iterator<Item = &Span> {
        self.open.values()
    }

    /// Feeds a batch; sorts a copy by timestamp first so cross-ring
    /// interleavings (one ring drained after another) still assemble in
    /// lifecycle order.
    pub fn extend(&mut self, events: &[TraceEvent]) {
        let mut sorted: Vec<&TraceEvent> = events.iter().collect();
        sorted.sort_by_key(|e| e.ts_ns);
        for ev in sorted {
            self.push(ev);
        }
    }

    /// Feeds one event.
    pub fn push(&mut self, ev: &TraceEvent) {
        self.stats.events += 1;
        self.max_ts = self.max_ts.max(ev.ts_ns);
        // Shard-lifecycle markers (poll governor park/wake) describe the
        // worker, not any request: never match them to a span.
        if matches!(ev.stage, Stage::ShardPark | Stage::ShardWake) {
            return;
        }
        if ev.vm == VM_ANY {
            self.push_below_router(ev);
        } else {
            self.push_router(ev);
        }
    }

    fn push_router(&mut self, ev: &TraceEvent) {
        let key: Key = (ev.worker, ev.vm, ev.vsq, ev.tag);
        if ev.stage == Stage::VsqFetch {
            // Tag reuse displaces the previous occupant. A completed
            // predecessor retires; an incomplete one is parked under its
            // generation to wait for its (possibly batch-delayed)
            // terminal.
            if let Some(prev) = self.open.remove(&key) {
                self.unindex(&key);
                if prev.complete {
                    self.done.push(prev);
                } else {
                    let dkey = (key.0, key.1, key.2, key.3, prev.gen);
                    if let Some(evicted) = self.displaced.insert(dkey, prev) {
                        self.done.push(evicted);
                    }
                }
            }
            self.stats.spans_opened += 1;
            self.open.insert(key, Span::new(ev));
            self.by_tag.entry(ev.tag).or_default().push(key);
            return;
        }
        // An event whose generation contradicts the current occupant
        // belongs to a displaced predecessor if one is parked.
        let mismatch = |span: &Span| ev.gen != 0 && span.gen != 0 && ev.gen != span.gen;
        if self.open.get(&key).is_none_or(mismatch) {
            let dkey = (key.0, key.1, key.2, key.3, ev.gen);
            if let Some(mut span) = self.displaced.remove(&dkey) {
                span.end_ns = span.end_ns.max(ev.ts_ns);
                span.events.push(SpanEvent::of(ev));
                if ev.stage == Stage::VcqComplete {
                    span.complete = true;
                    self.stats.spans_completed += 1;
                    self.done.push(span);
                } else {
                    self.displaced.insert(dkey, span);
                }
                return;
            }
        }
        let Some(span) = self.open.get_mut(&key) else {
            self.stats.orphan_events += 1;
            return;
        };
        if mismatch(span) {
            // A stale remnant of the tag's previous occupant.
            self.stats.gen_mismatches += 1;
            self.stats.orphan_events += 1;
            return;
        }
        if ev.stage == Stage::VcqComplete {
            if span.complete {
                self.stats.duplicate_terminals += 1;
                assert!(
                    !self.strict,
                    "duplicate terminal for vm {} vsq {} tag {} gen {}",
                    ev.vm, ev.vsq, ev.tag, ev.gen
                );
                self.stats.orphan_events += 1;
                return;
            }
            span.complete = true;
            span.end_ns = span.end_ns.max(ev.ts_ns);
            self.stats.spans_completed += 1;
        } else {
            span.end_ns = span.end_ns.max(ev.ts_ns);
        }
        span.events.push(SpanEvent::of(ev));
    }

    fn push_below_router(&mut self, ev: &TraceEvent) {
        // The path a service stage implies; used to reject open spans that
        // never dispatched that way (tag collisions across shards).
        let expected_path = match ev.stage {
            Stage::DeviceService => PathKind::Fast,
            Stage::KernelService => PathKind::Kernel,
            Stage::UifService => PathKind::Notify,
            _ => ev.path,
        };
        let Some(keys) = self.by_tag.get(&ev.tag) else {
            self.stats.orphan_events += 1;
            return;
        };
        let mut candidates = 0usize;
        let mut best: Option<Key> = None;
        let mut best_start = 0;
        for key in keys {
            let Some(span) = self.open.get(key) else {
                continue;
            };
            if ev.ts_ns < span.start_ns {
                continue;
            }
            if span.complete && ev.ts_ns > span.end_ns {
                continue;
            }
            if expected_path != PathKind::None
                && !span
                    .events
                    .iter()
                    .any(|e| e.stage == Stage::Dispatched && e.path == expected_path)
            {
                continue;
            }
            candidates += 1;
            // Latest-start wins: the most recent plausible dispatch.
            if best.is_none() || span.start_ns >= best_start {
                best = Some(*key);
                best_start = span.start_ns;
            }
        }
        match best {
            None => self.stats.orphan_events += 1,
            Some(key) => {
                if candidates > 1 {
                    self.stats.ambiguous_matches += 1;
                }
                let span = self.open.get_mut(&key).expect("candidate is open");
                span.events.push(SpanEvent::of(ev));
                if !span.complete {
                    span.end_ns = span.end_ns.max(ev.ts_ns);
                }
            }
        }
    }

    fn unindex(&mut self, key: &Key) {
        if let Some(keys) = self.by_tag.get_mut(&key.3) {
            keys.retain(|k| k != key);
            if keys.is_empty() {
                self.by_tag.remove(&key.3);
            }
        }
    }

    /// Retires spans that can no longer gain events: everything displaced
    /// off its tag that has since completed, plus complete spans whose
    /// terminal instant is strictly older than the newest event seen (so
    /// any same-instant straggler from another ring has already been
    /// drained). Returns them; the periodic watchdog calls this each tick.
    pub fn retire_settled(&mut self) -> Vec<Span> {
        let mut out: Vec<Span> = std::mem::take(&mut self.done);
        let watermark = self.max_ts;
        let keys: Vec<Key> = self
            .open
            .iter()
            .filter(|(_, s)| s.complete && s.end_ns < watermark)
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            let span = self.open.remove(&key).expect("listed");
            self.unindex(&key);
            out.push(span);
        }
        out
    }

    /// Closes every resident span and returns the report. Spans are
    /// ordered by start time, complete-then-incomplete on ties.
    pub fn finish(mut self) -> SpanReport {
        let mut spans = std::mem::take(&mut self.done);
        spans.extend(self.open.into_values());
        spans.extend(self.displaced.into_values());
        spans.sort_by_key(|s| (s.start_ns, !s.complete));
        SpanReport {
            spans,
            stats: self.stats,
            dropped_events: 0,
        }
    }
}

/// One-shot convenience: assemble every event in a snapshot.
pub fn assemble(snapshot: &TelemetrySnapshot) -> SpanReport {
    let mut a = SpanAssembler::new();
    a.extend(&snapshot.events);
    let mut report = a.finish();
    report.dropped_events = snapshot.dropped_events;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        ts: Ns,
        vm: u32,
        vsq: u16,
        tag: u16,
        gen: u8,
        stage: Stage,
        path: PathKind,
    ) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            vm,
            vsq,
            tag,
            gen,
            stage,
            path,
            ..TraceEvent::default()
        }
    }

    fn tag_ev(ts: Ns, tag: u16, stage: Stage, path: PathKind) -> TraceEvent {
        ev(ts, VM_ANY, 0, tag, 0, stage, path)
    }

    fn fast_request(t0: Ns, vm: u32, tag: u16, gen: u8) -> Vec<TraceEvent> {
        vec![
            ev(t0, vm, 0, tag, gen, Stage::VsqFetch, PathKind::None),
            ev(t0 + 1, vm, 0, tag, gen, Stage::Classified, PathKind::None),
            ev(t0 + 2, vm, 0, tag, gen, Stage::Dispatched, PathKind::Fast),
            tag_ev(t0 + 10, tag, Stage::DeviceService, PathKind::Fast),
            ev(t0 + 12, vm, 0, tag, gen, Stage::VcqComplete, PathKind::None),
        ]
    }

    #[test]
    fn assembles_one_fast_request() {
        let mut a = SpanAssembler::strict();
        a.extend(&fast_request(100, 0, 7, 1));
        let r = a.finish();
        assert_eq!(r.spans.len(), 1);
        let s = &r.spans[0];
        assert!(s.complete);
        assert_eq!(s.latency_ns(), 12);
        assert_eq!(s.route(), Some(Route::Fast));
        assert_eq!(s.events.len(), 5);
        assert_eq!(s.segment_ns(Segment::IngressToDispatch), 2);
        assert_eq!(s.segment_ns(Segment::DispatchToService), 8);
        assert_eq!(s.segment_ns(Segment::ServiceToComplete), 2);
        assert_eq!(s.segment_ns(Segment::FaultToRecovery), 0);
        assert_eq!(r.stats.orphan_events, 0);
        assert_eq!(r.coverage(1), 1.0);
    }

    #[test]
    fn tag_reuse_splits_spans_by_generation() {
        let mut a = SpanAssembler::strict();
        a.extend(&fast_request(100, 0, 7, 1));
        a.extend(&fast_request(500, 0, 7, 2));
        let r = a.finish();
        assert_eq!(r.spans.len(), 2);
        assert!(r.spans.iter().all(|s| s.complete));
        assert_eq!(r.spans[0].gen, 1);
        assert_eq!(r.spans[1].gen, 2);
        assert_eq!(r.coverage(2), 1.0);
    }

    #[test]
    fn stale_generation_events_are_orphaned_not_attached() {
        let mut a = SpanAssembler::new();
        a.push(&ev(100, 0, 0, 7, 2, Stage::VsqFetch, PathKind::None));
        // A remnant of the tag's previous occupant (gen 1) surfaces late.
        a.push(&ev(110, 0, 0, 7, 1, Stage::VcqComplete, PathKind::None));
        a.push(&ev(120, 0, 0, 7, 2, Stage::VcqComplete, PathKind::None));
        let r = a.finish();
        assert_eq!(r.spans.len(), 1);
        assert!(r.spans[0].complete);
        assert_eq!(r.spans[0].latency_ns(), 20);
        assert_eq!(r.stats.gen_mismatches, 1);
        assert_eq!(r.stats.orphan_events, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate terminal")]
    fn strict_mode_panics_on_duplicate_terminal() {
        let mut a = SpanAssembler::strict();
        a.push(&ev(100, 0, 0, 7, 1, Stage::VsqFetch, PathKind::None));
        a.push(&ev(110, 0, 0, 7, 1, Stage::VcqComplete, PathKind::None));
        a.push(&ev(120, 0, 0, 7, 1, Stage::VcqComplete, PathKind::None));
    }

    #[test]
    fn ring_wrap_orphans_are_counted_as_coverage_loss() {
        let mut a = SpanAssembler::new();
        // The VsqFetch was overwritten; only the tail survived.
        a.push(&tag_ev(50, 3, Stage::DeviceService, PathKind::Fast));
        a.push(&ev(60, 0, 0, 3, 1, Stage::VcqComplete, PathKind::None));
        a.extend(&fast_request(100, 0, 4, 2));
        let r = a.finish();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.stats.orphan_events, 2);
        // 2 requests completed per the counters, 1 reconstructed.
        assert!((r.coverage(2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn service_events_match_by_dispatch_path() {
        // Two open spans share a tag (different shards); the kernel
        // service report must land on the kernel-dispatched one.
        let mut a = SpanAssembler::new();
        a.push(&ev(100, 0, 0, 9, 1, Stage::VsqFetch, PathKind::None));
        a.push(&ev(101, 0, 0, 9, 1, Stage::Dispatched, PathKind::Fast));
        a.push(&ev(100, 1, 0, 9, 1, Stage::VsqFetch, PathKind::None));
        a.push(&ev(102, 1, 0, 9, 1, Stage::Dispatched, PathKind::Kernel));
        a.push(&tag_ev(150, 9, Stage::KernelService, PathKind::Kernel));
        let r = a.finish();
        assert_eq!(r.stats.ambiguous_matches, 0);
        let kernel_span = r.spans.iter().find(|s| s.vm == 1).unwrap();
        assert!(kernel_span.has(Stage::KernelService));
        let fast_span = r.spans.iter().find(|s| s.vm == 0).unwrap();
        assert!(!fast_span.has(Stage::KernelService));
    }

    #[test]
    fn retry_and_failover_stages_stay_on_one_span() {
        let mut a = SpanAssembler::strict();
        let (vm, tag, gen) = (0, 5, 4);
        a.push(&ev(100, vm, 0, tag, gen, Stage::VsqFetch, PathKind::None));
        a.push(&ev(102, vm, 0, tag, gen, Stage::Dispatched, PathKind::Fast));
        a.push(&ev(500, vm, 0, tag, gen, Stage::Abort, PathKind::None));
        a.push(&ev(500, vm, 0, tag, gen, Stage::Retry, PathKind::None));
        a.push(&ev(600, vm, 0, tag, gen, Stage::Failover, PathKind::Kernel));
        a.push(&ev(
            601,
            vm,
            0,
            tag,
            gen,
            Stage::Dispatched,
            PathKind::Kernel,
        ));
        a.push(&tag_ev(700, tag, Stage::KernelService, PathKind::Kernel));
        a.push(&ev(
            710,
            vm,
            0,
            tag,
            gen,
            Stage::VcqComplete,
            PathKind::None,
        ));
        let r = a.finish();
        assert_eq!(r.spans.len(), 1);
        let s = &r.spans[0];
        assert_eq!(s.attempts(), 2);
        assert!(s.has(Stage::Abort) && s.has(Stage::Retry) && s.has(Stage::Failover));
        assert_eq!(s.route(), Some(Route::Kernel));
        assert_eq!(s.segment_ns(Segment::FaultToRecovery), 210);
    }

    #[test]
    fn retire_settled_releases_only_quiescent_spans() {
        let mut a = SpanAssembler::new();
        a.extend(&fast_request(100, 0, 1, 1));
        // Nothing newer than the terminal yet: not settled.
        assert!(a.retire_settled().is_empty());
        a.push(&ev(200, 0, 0, 2, 2, Stage::VsqFetch, PathKind::None));
        let settled = a.retire_settled();
        assert_eq!(settled.len(), 1);
        assert_eq!(settled[0].tag, 1);
        assert_eq!(a.in_flight(), 1);
        let r = a.finish();
        assert_eq!(r.spans.len(), 1); // the still-open tag 2
    }

    #[test]
    fn batch_delayed_terminal_closes_displaced_span() {
        // Closed-loop reuse: the router frees the slot at completion and
        // the next request's VsqFetch lands in the ring BEFORE the
        // CQ-batched VcqComplete of the old generation, same instant.
        let mut a = SpanAssembler::strict();
        a.push(&ev(100, 0, 0, 7, 1, Stage::VsqFetch, PathKind::None));
        a.push(&ev(102, 0, 0, 7, 1, Stage::Dispatched, PathKind::Fast));
        a.push(&ev(200, 0, 0, 7, 2, Stage::VsqFetch, PathKind::None)); // reuse
        a.push(&ev(200, 0, 0, 7, 1, Stage::VcqComplete, PathKind::None)); // late terminal
        a.push(&ev(300, 0, 0, 7, 2, Stage::VcqComplete, PathKind::None));
        let retired = a.retire_settled();
        assert_eq!(retired.len(), 1, "displaced gen-1 span retired at once");
        assert!(retired[0].complete);
        assert_eq!(retired[0].gen, 1);
        assert_eq!(retired[0].latency_ns(), 100);
        let r = a.finish();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].gen, 2);
        assert!(r.spans[0].complete);
        assert_eq!(r.stats.orphan_events, 0);
        assert_eq!(r.stats.gen_mismatches, 0);
        assert_eq!(r.stats.spans_completed, 2);
    }

    #[test]
    fn out_of_order_batches_assemble_via_extend_sort() {
        let mut events = fast_request(100, 0, 7, 1);
        events.reverse();
        let mut a = SpanAssembler::new();
        a.extend(&events);
        let r = a.finish();
        assert_eq!(r.spans.len(), 1);
        assert!(r.spans[0].complete);
        assert_eq!(r.stats.orphan_events, 0);
    }
}
