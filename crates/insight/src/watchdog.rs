//! Live stall/health watchdog over the telemetry stream.
//!
//! [`StallWatchdog`] is a [`nvmetro_sim::Actor`] that periodically drains
//! the telemetry rings through a [`SpanAssembler`] and judges datapath
//! health: queues with in-flight requests but no completion progress
//! (stalls), circuit breakers flapping open repeatedly, and per-route SLO
//! error-budget burn. Verdicts surface three ways — as new telemetry
//! metrics (`stalls_detected`, `stalls_cleared`, `breaker_flaps`,
//! `slo_violations`, `watchdog_ticks`), as [`HealthReport`]s appended to a
//! shared [`HealthLog`], and (with [`WatchdogConfig::keep_spans`]) as the
//! full set of reconstructed spans for post-run analysis.
//!
//! The watchdog never keeps the simulation alive on its own: its
//! [`Actor::next_event`] schedules a tick only while requests are in
//! flight or a queue is still marked stalled, so `Executor::run(u64::MAX)`
//! still terminates when the datapath drains.

use crate::span::{AssemblyStats, Span, SpanAssembler};
use nvmetro_sim::{Actor, Ns, Progress, US};
use nvmetro_telemetry::{
    Metric, Route, Stage, Telemetry, TelemetryHandle, TraceCursor, TraceEvent, VM_ANY,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A per-route latency objective with an error-budget target.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Requests slower than this violate the objective.
    pub objective_ns: Ns,
    /// Fraction of requests that must meet the objective (e.g. 0.999).
    pub target: f64,
}

/// Watchdog tuning.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// Virtual time between health ticks. The 1 ms default keeps the
    /// watchdog's executor wakeups (each of which re-polls every actor)
    /// negligible next to the datapath; analysis rigs that want
    /// fine-grained sampling override it.
    pub interval: Ns,
    /// An open request older than this with no queue progress is a stall.
    pub stall_grace: Ns,
    /// Optional latency objective per route (index = `Route as usize`).
    pub slo: [Option<SloConfig>; Route::COUNT],
    /// Retain every retired span in the [`HealthLog`] (costs memory; used
    /// by reports and coverage checks).
    pub keep_spans: bool,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval: 1000 * US,
            stall_grace: 200 * US,
            slo: [None; Route::COUNT],
            keep_spans: false,
        }
    }
}

/// One health finding from a tick.
#[derive(Clone, Debug, PartialEq)]
pub enum HealthVerdict {
    /// A queue has in-flight requests past the grace period and made no
    /// completion progress in the last window.
    QueueStalled {
        /// Router shard (worker id) owning the queue — shards number
        /// their VSQs independently, so `(vm, vsq)` alone is ambiguous.
        worker: u16,
        /// Owning VM.
        vm: u32,
        /// Virtual submission queue.
        vsq: u16,
        /// In-flight requests on the queue.
        open: usize,
        /// Age of the oldest in-flight request (ns).
        oldest_age_ns: Ns,
    },
    /// A previously stalled queue completed requests again.
    QueueRecovered {
        /// Router shard (worker id) owning the queue.
        worker: u16,
        /// Owning VM.
        vm: u32,
        /// Virtual submission queue.
        vsq: u16,
    },
    /// The circuit breaker opened repeatedly (twice within one window, or
    /// in adjacent windows) — it is flapping, not recovering.
    BreakerFlap {
        /// Breaker opens observed in the last window.
        opens: u64,
    },
    /// A route burned through its SLO error budget.
    SloBurn {
        /// The route over budget.
        route: Route,
        /// Burn rate: fraction of budget consumed, >1 means over budget.
        burn: f64,
    },
}

/// Per-queue health at one tick.
#[derive(Clone, Copy, Debug)]
pub struct QueueHealth {
    /// Router shard (worker id) owning the queue.
    pub worker: u16,
    /// Owning VM.
    pub vm: u32,
    /// Virtual submission queue.
    pub vsq: u16,
    /// In-flight requests.
    pub open: usize,
    /// Age of the oldest in-flight request (ns).
    pub oldest_age_ns: Ns,
    /// Completions observed for this queue in the last window.
    pub completions: u64,
    /// Whether the queue is currently judged stalled.
    pub stalled: bool,
}

/// Cumulative per-route SLO accounting.
#[derive(Clone, Copy, Debug)]
pub struct SloStatus {
    /// The route under the objective.
    pub route: Route,
    /// The latency objective.
    pub objective_ns: Ns,
    /// Required success fraction.
    pub target: f64,
    /// Complete requests observed so far.
    pub total: u64,
    /// Requests that missed the objective.
    pub violations: u64,
    /// Error-budget burn: `(violations/total) / (1 - target)`.
    pub burn: f64,
}

/// The outcome of one watchdog tick.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Virtual time of the tick.
    pub at: Ns,
    /// Tick ordinal (1-based).
    pub tick: u64,
    /// Findings this tick (empty when healthy).
    pub verdicts: Vec<HealthVerdict>,
    /// Per-queue state for queues with in-flight requests or stalls.
    pub queues: Vec<QueueHealth>,
    /// Cumulative SLO accounting for configured routes.
    pub slo: Vec<SloStatus>,
    /// No stall, flap, or budget-burn verdicts this tick.
    pub healthy: bool,
}

#[derive(Default)]
struct LogInner {
    reports: Vec<HealthReport>,
    spans: Vec<Span>,
    stats: AssemblyStats,
    drain_missed: u64,
}

/// Shared, clonable sink for watchdog output. Clone it before handing the
/// watchdog to the executor; read it after the run.
#[derive(Clone, Default)]
pub struct HealthLog(Arc<Mutex<LogInner>>);

impl HealthLog {
    /// All reports so far.
    pub fn reports(&self) -> Vec<HealthReport> {
        self.0.lock().unwrap().reports.clone()
    }

    /// Reports appended since index `from` (a tail for incremental
    /// consumers: pass the previous call's returned `next` back in).
    /// Returns the fresh reports plus the new watermark, so a periodic
    /// observer never re-copies the whole log.
    pub fn reports_since(&self, from: usize) -> (Vec<HealthReport>, usize) {
        let inner = self.0.lock().unwrap();
        let start = from.min(inner.reports.len());
        (inner.reports[start..].to_vec(), inner.reports.len())
    }

    /// All retired spans (empty unless [`WatchdogConfig::keep_spans`]).
    pub fn spans(&self) -> Vec<Span> {
        self.0.lock().unwrap().spans.clone()
    }

    /// Assembly bookkeeping as of the last tick.
    pub fn stats(&self) -> AssemblyStats {
        self.0.lock().unwrap().stats
    }

    /// Events lost to ring wrap between watchdog drains.
    pub fn drain_missed(&self) -> u64 {
        self.0.lock().unwrap().drain_missed
    }

    /// Whether any report carried a [`HealthVerdict::QueueStalled`].
    pub fn saw_stall(&self) -> bool {
        self.0.lock().unwrap().reports.iter().any(|r| {
            r.verdicts
                .iter()
                .any(|v| matches!(v, HealthVerdict::QueueStalled { .. }))
        })
    }
}

/// Streaming per-queue accounting, updated straight from the drain
/// visitor: two branches per router event, nothing per tick.
#[derive(Default)]
struct QueueState {
    outstanding: u64,
    completions_window: u64,
    /// Start of the current no-progress epoch: the first fetch after the
    /// queue was empty, bumped to the latest completion while requests
    /// keep flowing. `now - epoch_start` over-approximates the oldest
    /// in-flight request's age only while the queue makes progress — for
    /// a stalled queue (no completions) it is exact from the last
    /// completion onward, which is the case stall grading depends on.
    epoch_start: Ns,
    stalled: bool,
}

/// Queue identity: `(worker, vm, vsq)` — router shards number their VSQs
/// independently, so the emitting worker is part of the key.
type QueueKey = (u16, u32, u16);

/// The only stages the streaming queue accounting reads; light-mode drains
/// skip the full event copy for everything else.
const QUEUE_STAGES: u32 = (1 << Stage::VsqFetch as u32) | (1 << Stage::VcqComplete as u32);

/// One queue-accounting step, shared by the light (stage-filtered) and
/// full (span-assembling) drain visitors. `cached` is a one-entry key
/// cache: router events arrive batched per queue, so most events resolve
/// their slot without touching the index map.
#[inline]
fn account(
    states: &mut Vec<(QueueKey, QueueState)>,
    index: &mut HashMap<QueueKey, usize>,
    cached: &mut Option<(QueueKey, usize)>,
    ev: &TraceEvent,
) {
    let key: QueueKey = (ev.worker, ev.vm, ev.vsq);
    let slot = match *cached {
        Some((k, i)) if k == key => i,
        _ => {
            let i = *index.entry(key).or_insert_with(|| {
                states.push((key, QueueState::default()));
                states.len() - 1
            });
            *cached = Some((key, i));
            i
        }
    };
    let q = &mut states[slot].1;
    if ev.stage == Stage::VsqFetch {
        if q.outstanding == 0 {
            q.epoch_start = ev.ts_ns;
        }
        q.outstanding += 1;
    } else {
        q.outstanding = q.outstanding.saturating_sub(1);
        q.completions_window += 1;
        q.epoch_start = ev.ts_ns;
    }
}

/// The periodic observer itself. See the module docs for semantics.
pub struct StallWatchdog {
    telemetry: Telemetry,
    handle: TelemetryHandle,
    cursor: TraceCursor,
    assembler: SpanAssembler,
    config: WatchdogConfig,
    log: HealthLog,
    buf: Vec<TraceEvent>,
    /// Whether span assembly runs at all: only when spans are retained or
    /// an SLO needs per-request latencies. The always-on stall/breaker
    /// duties use the streaming queue accounting alone.
    assemble: bool,
    next_tick: Ns,
    tick_no: u64,
    /// Dense queue states plus a key index. Router events arrive batched
    /// per queue, so the drain visitor runs a one-entry key cache in
    /// front of the index and most events touch only the Vec.
    queue_states: Vec<(QueueKey, QueueState)>,
    queue_index: HashMap<QueueKey, usize>,
    /// Set from the idle poll path when undrained events exist while no
    /// queue is in flight — the state a freshly built rig (or a burst
    /// after a quiet spell) is in before the first drain. Without it the
    /// executor would see no next event from the watchdog and could leap
    /// clean over a stall window.
    pending_armed: bool,
    spent: std::time::Duration,
    breaker_opens_seen: u64,
    breaker_opened_last_window: bool,
    slo_total: [u64; Route::COUNT],
    slo_violations: [u64; Route::COUNT],
}

impl StallWatchdog {
    /// Builds a watchdog over `telemetry` and returns it with the shared
    /// [`HealthLog`] its reports land in. Registers its own telemetry
    /// worker ("watchdog") for the metrics it emits.
    pub fn new(telemetry: &Telemetry, config: WatchdogConfig) -> (Self, HealthLog) {
        let log = HealthLog::default();
        let assemble = config.keep_spans || config.slo.iter().any(Option::is_some);
        let wd = StallWatchdog {
            telemetry: telemetry.clone(),
            handle: telemetry.register_worker_named("watchdog"),
            cursor: telemetry.cursor(),
            assembler: SpanAssembler::new(),
            next_tick: config.interval,
            config,
            log: log.clone(),
            buf: Vec::new(),
            assemble,
            tick_no: 0,
            queue_states: Vec::new(),
            queue_index: HashMap::new(),
            pending_armed: false,
            spent: std::time::Duration::ZERO,
            breaker_opens_seen: 0,
            breaker_opened_last_window: false,
            slo_total: [0; Route::COUNT],
            slo_violations: [0; Route::COUNT],
        };
        (wd, log)
    }

    /// Wall-clock time spent inside [`StallWatchdog::tick`] so far — the
    /// watchdog's self-attributed cost. The overhead bench reads this to
    /// grade the watchdog against a baseline run without relying on
    /// differential wall timing, which machine-load noise swamps at the
    /// percent level.
    pub fn spent(&self) -> std::time::Duration {
        self.spent
    }

    /// Runs one health tick at `now` and returns the report (also appended
    /// to the [`HealthLog`]). Called automatically from [`Actor::poll`];
    /// public for offline/manual use.
    pub fn tick(&mut self, now: Ns) -> HealthReport {
        let t0 = std::time::Instant::now();
        let report = self.tick_inner(now);
        self.spent += t0.elapsed();
        report
    }

    fn tick_inner(&mut self, now: Ns) -> HealthReport {
        self.tick_no += 1;
        self.handle.count(Metric::WatchdogTicks);

        // Stream the rings since the last tick through the per-queue
        // accounting (a few branches per event, no buffering); only when
        // span assembly is on do events also land in the batch buffer.
        for (_, q) in self.queue_states.iter_mut() {
            q.completions_window = 0;
        }
        self.buf.clear();
        let states = &mut self.queue_states;
        let index = &mut self.queue_index;
        let mut cached: Option<(QueueKey, usize)> = None;
        let missed = if self.assemble {
            let buf = &mut self.buf;
            self.telemetry.drain_with(&mut self.cursor, |ev| {
                if ev.vm != VM_ANY && matches!(ev.stage, Stage::VsqFetch | Stage::VcqComplete) {
                    account(states, index, &mut cached, &ev);
                }
                buf.push(ev);
            })
        } else {
            // Light mode never buffers: the stage-filtered drain copies
            // out only fetch/complete events and peeks one byte of the
            // rest, keeping the always-on watchdog cost per event tiny.
            self.telemetry
                .drain_stages(&mut self.cursor, QUEUE_STAGES, |ev| {
                    if ev.vm != VM_ANY {
                        account(states, index, &mut cached, &ev);
                    }
                })
        };
        let retired = if self.assemble {
            self.assembler.extend(&self.buf);
            self.assembler.retire_settled()
        } else {
            Vec::new()
        };

        let mut verdicts = Vec::new();

        // --- SLO accounting over this tick's retired spans. ---
        for span in &retired {
            let Some(route) = span.route() else { continue };
            let ri = route as usize;
            let Some(slo) = self.config.slo[ri] else {
                continue;
            };
            self.slo_total[ri] += 1;
            if span.latency_ns() > slo.objective_ns {
                self.slo_violations[ri] += 1;
                self.handle.count(Metric::SloViolations);
            }
        }
        let mut slo_status = Vec::new();
        for route in Route::ALL {
            let ri = route as usize;
            let Some(slo) = self.config.slo[ri] else {
                continue;
            };
            let total = self.slo_total[ri];
            let violations = self.slo_violations[ri];
            let budget = 1.0 - slo.target;
            let burn = if total == 0 || budget <= 0.0 {
                0.0
            } else {
                (violations as f64 / total as f64) / budget
            };
            if burn > 1.0 {
                verdicts.push(HealthVerdict::SloBurn { route, burn });
            }
            slo_status.push(SloStatus {
                route,
                objective_ns: slo.objective_ns,
                target: slo.target,
                total,
                violations,
                burn,
            });
        }

        // --- Stall detection per queue with in-flight requests, straight
        // off the streaming accounting (O(#queues) per tick). ---
        let mut queue_health = Vec::new();
        for (key, state) in self.queue_states.iter_mut() {
            let (worker, vm, vsq) = *key;
            let was_stalled = state.stalled;
            if state.outstanding == 0 && !was_stalled {
                continue;
            }
            let done = state.completions_window;
            let oldest_age = if state.outstanding > 0 {
                now.saturating_sub(state.epoch_start)
            } else {
                0
            };
            let open = state.outstanding as usize;
            let stalling = open > 0 && done == 0 && oldest_age >= self.config.stall_grace;
            if stalling && !was_stalled {
                state.stalled = true;
                self.handle.count(Metric::StallsDetected);
                verdicts.push(HealthVerdict::QueueStalled {
                    worker,
                    vm,
                    vsq,
                    open,
                    oldest_age_ns: oldest_age,
                });
            } else if was_stalled && (done > 0 || open == 0) {
                // A stalled queue that made progress (or fully drained)
                // has recovered.
                state.stalled = false;
                self.handle.count(Metric::StallsCleared);
                verdicts.push(HealthVerdict::QueueRecovered { worker, vm, vsq });
            }
            queue_health.push(QueueHealth {
                worker,
                vm,
                vsq,
                open,
                oldest_age_ns: oldest_age,
                completions: done,
                stalled: state.stalled,
            });
        }

        // --- Breaker flap: opens twice in one window, or in adjacent
        // windows (open/half-open churn instead of settling). ---
        let opens_total = self.telemetry.counter(Metric::BreakerOpens);
        let opens = opens_total.saturating_sub(self.breaker_opens_seen);
        self.breaker_opens_seen = opens_total;
        if opens >= 2 || (opens >= 1 && self.breaker_opened_last_window) {
            self.handle.count(Metric::BreakerFlaps);
            verdicts.push(HealthVerdict::BreakerFlap { opens });
        }
        self.breaker_opened_last_window = opens > 0;

        let healthy = !verdicts.iter().any(|v| {
            matches!(
                v,
                HealthVerdict::QueueStalled { .. }
                    | HealthVerdict::BreakerFlap { .. }
                    | HealthVerdict::SloBurn { .. }
            )
        });
        let report = HealthReport {
            at: now,
            tick: self.tick_no,
            verdicts,
            queues: queue_health,
            slo: slo_status,
            healthy,
        };

        {
            let mut log = self.log.0.lock().unwrap();
            log.reports.push(report.clone());
            log.stats = *self.assembler.stats();
            log.drain_missed += missed;
            if self.config.keep_spans {
                log.spans.extend(retired);
            }
        }
        report
    }

    /// Final sweep: drain whatever is left, close every resident span
    /// (complete or not), and move everything into the log. The watchdog
    /// keeps working afterwards with a fresh assembler.
    pub fn flush(&mut self, now: Ns) {
        self.tick(now);
        let report = std::mem::take(&mut self.assembler).finish();
        let mut log = self.log.0.lock().unwrap();
        log.stats = report.stats;
        if self.config.keep_spans {
            log.spans.extend(report.spans);
        }
    }

    /// [`StallWatchdog::flush`] for offline use, consuming the watchdog
    /// and handing back its log.
    pub fn finish(mut self, now: Ns) -> HealthLog {
        self.flush(now);
        self.log
    }

    /// Wraps the watchdog for shared ownership: one clone goes into the
    /// executor as an actor, the other stays with the harness so it can
    /// [`StallWatchdog::flush`] after the run.
    pub fn shared(self) -> SharedWatchdog {
        SharedWatchdog {
            name: self.name().to_string(),
            inner: Arc::new(Mutex::new(self)),
        }
    }

    fn watching(&self) -> bool {
        self.pending_armed
            || self
                .queue_states
                .iter()
                .any(|(_, q)| q.outstanding > 0 || q.stalled)
            || (self.assemble && self.assembler.in_flight() > 0)
    }

    /// Whether events have been published that no tick has drained yet.
    /// Only consulted from the idle poll path while nothing else is being
    /// watched, so its cost (a registry lock plus one load per ring) never
    /// rides the busy-datapath schedule.
    fn pending(&self) -> bool {
        self.telemetry.recorded_total() > self.cursor.consumed()
    }
}

impl Actor for StallWatchdog {
    fn name(&self) -> &str {
        "stall-watchdog"
    }

    fn poll(&mut self, now: Ns) -> Progress {
        if now < self.next_tick {
            if !self.watching() && self.pending() {
                self.pending_armed = true;
            }
            return Progress::Idle;
        }
        self.pending_armed = false;
        self.tick(now);
        self.next_tick = now + self.config.interval;
        Progress::Idle
    }

    fn next_event(&self) -> Option<Ns> {
        // Keep scheduling ticks only while something is worth watching;
        // otherwise the watchdog would keep an idle simulation running
        // forever. When idle it still ticks piggybacked on other actors'
        // events (poll fires whenever virtual time passes next_tick).
        if self.watching() {
            Some(self.next_tick)
        } else {
            None
        }
    }
}

/// Clonable handle to a watchdog shared between the executor (which polls
/// it as an actor) and the harness (which flushes it after the run). See
/// [`StallWatchdog::shared`].
#[derive(Clone)]
pub struct SharedWatchdog {
    name: String,
    inner: Arc<Mutex<StallWatchdog>>,
}

impl SharedWatchdog {
    /// Runs `f` against the wrapped watchdog (e.g. a post-run
    /// [`StallWatchdog::flush`]).
    pub fn with<R>(&self, f: impl FnOnce(&mut StallWatchdog) -> R) -> R {
        f(&mut self.inner.lock().unwrap())
    }
}

impl Actor for SharedWatchdog {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        self.inner.lock().unwrap().poll(now)
    }

    fn next_event(&self) -> Option<Ns> {
        self.inner.lock().unwrap().next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_telemetry::PathKind;

    fn request(
        h: &TelemetryHandle,
        t0: Ns,
        vm: u32,
        vsq: u16,
        tag: u16,
        gen: u8,
        complete_at: Option<Ns>,
    ) {
        h.request_event(t0, vm, vsq, tag, gen, Stage::VsqFetch, PathKind::None);
        h.request_event(t0 + 1, vm, vsq, tag, gen, Stage::Dispatched, PathKind::Fast);
        if let Some(tc) = complete_at {
            h.request_event(tc, vm, vsq, tag, gen, Stage::VcqComplete, PathKind::None);
        }
    }

    #[test]
    fn detects_stall_and_recovery() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router");
        let cfg = WatchdogConfig {
            interval: 100,
            stall_grace: 150,
            ..WatchdogConfig::default()
        };
        let (mut wd, log) = StallWatchdog::new(&telemetry, cfg);

        // A request enters at t=10 and hangs.
        request(&h, 10, 0, 0, 1, 1, None);
        let r1 = wd.tick(100);
        assert!(r1.healthy, "age 90 < grace 150: {:?}", r1.verdicts);
        let r2 = wd.tick(200);
        assert!(!r2.healthy);
        assert!(matches!(
            r2.verdicts[0],
            HealthVerdict::QueueStalled {
                vm: 0,
                vsq: 0,
                open: 1,
                ..
            }
        ));
        // Stall is edge-triggered: no duplicate verdict next tick.
        let r3 = wd.tick(300);
        assert!(r3.verdicts.is_empty());

        // The request completes; the queue recovers.
        h.request_event(350, 0, 0, 1, 1, Stage::VcqComplete, PathKind::None);
        let r4 = wd.tick(400);
        assert!(r4
            .verdicts
            .iter()
            .any(|v| matches!(v, HealthVerdict::QueueRecovered { vm: 0, vsq: 0, .. })));

        assert!(log.saw_stall());
        let counters = telemetry.counters();
        assert_eq!(counters[Metric::StallsDetected as usize], 1);
        assert_eq!(counters[Metric::StallsCleared as usize], 1);
        assert_eq!(counters[Metric::WatchdogTicks as usize], 4);
    }

    #[test]
    fn healthy_queue_with_progress_is_not_a_stall() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router");
        let (mut wd, _log) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                interval: 100,
                stall_grace: 50,
                ..WatchdogConfig::default()
            },
        );
        // One old in-flight request, but the queue keeps completing others.
        request(&h, 10, 0, 0, 1, 1, None);
        request(&h, 20, 0, 0, 2, 1, Some(90));
        let r = wd.tick(100);
        assert!(r.healthy, "{:?}", r.verdicts);
        assert_eq!(r.queues.len(), 1);
        assert_eq!(r.queues[0].completions, 1);
    }

    #[test]
    fn slo_burn_fires_when_budget_exceeded() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router");
        let mut slo = [None; Route::COUNT];
        slo[Route::Fast as usize] = Some(SloConfig {
            objective_ns: 100,
            target: 0.9, // 10% budget
        });
        let (mut wd, _log) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                interval: 1000,
                slo,
                ..WatchdogConfig::default()
            },
        );
        // 4 fast requests, half violate the 100ns objective.
        for (i, lat) in [50u64, 500, 60, 600].iter().enumerate() {
            let t0 = 10 + i as Ns * 1000;
            request(&h, t0, 0, 0, i as u16, 1, Some(t0 + lat));
        }
        // Newer event so retire_settled releases all four.
        request(&h, 50_000, 0, 0, 40, 2, None);
        let r = wd.tick(60_000);
        let burn = r
            .verdicts
            .iter()
            .find_map(|v| match v {
                HealthVerdict::SloBurn {
                    route: Route::Fast,
                    burn,
                } => Some(*burn),
                _ => None,
            })
            .expect("slo burn verdict");
        assert!(burn > 1.0);
        assert_eq!(r.slo[0].total, 4);
        assert_eq!(r.slo[0].violations, 2);
        assert_eq!(telemetry.counters()[Metric::SloViolations as usize], 2);
    }

    #[test]
    fn breaker_flap_verdict_on_adjacent_window_opens() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router");
        let (mut wd, _log) = StallWatchdog::new(&telemetry, WatchdogConfig::default());
        h.count(Metric::BreakerOpens);
        let r1 = wd.tick(100);
        assert!(r1.healthy, "single open is not a flap");
        h.count(Metric::BreakerOpens);
        let r2 = wd.tick(200);
        assert!(matches!(
            r2.verdicts[0],
            HealthVerdict::BreakerFlap { opens: 1 }
        ));
        assert_eq!(telemetry.counters()[Metric::BreakerFlaps as usize], 1);
    }

    #[test]
    fn next_event_is_none_when_nothing_in_flight() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router");
        let (mut wd, _log) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                interval: 100 * US,
                ..WatchdogConfig::default()
            },
        );
        assert_eq!(wd.next_event(), None);
        request(&h, 10, 0, 0, 1, 1, None);
        wd.poll(200 * US);
        assert!(wd.next_event().is_some(), "in-flight span schedules ticks");
        h.request_event(300 * US, 0, 0, 1, 1, Stage::VcqComplete, PathKind::None);
        // Two polls: one that sees the completion (and the stall clear),
        // one after everything settled.
        wd.poll(400 * US);
        wd.poll(600 * US);
        assert_eq!(wd.next_event(), None, "drained datapath stops the clock");
    }

    #[test]
    fn keep_spans_accumulates_retired_spans_in_log() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.register_worker_named("router");
        let (wd, _) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                keep_spans: true,
                ..WatchdogConfig::default()
            },
        );
        request(&h, 10, 0, 0, 1, 1, Some(100));
        request(&h, 500, 0, 0, 2, 1, Some(600));
        let log = wd.finish(1000);
        assert_eq!(log.spans().len(), 2);
        assert!(log.spans().iter().all(|s| s.complete));
        assert_eq!(log.stats().spans_completed, 2);
    }
}
