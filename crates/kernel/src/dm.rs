//! Block layer + device-mapper pipeline.

use nvmetro_crypto::Xts;
use nvmetro_faults::{CmdClass, FaultAction, FaultInjector};
use nvmetro_mem::{prp_segments, GuestMemory, PAGE_SIZE};
use nvmetro_nvme::{CqConsumer, SqProducer, Status, SubmissionEntry, LBA_SIZE};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Ns, Station};
use nvmetro_telemetry::{Metric, TelemetryHandle};
use std::collections::HashMap;
use std::sync::Arc;

/// Which device-mapper target sits on the block layer.
pub enum DmConfig {
    /// Plain block device (no DM).
    None,
    /// `dm-linear`: remap LBAs by a fixed offset.
    Linear {
        /// LBA offset added before hitting the device.
        offset: u64,
    },
    /// `dm-crypt` (aes-xts-plain64): encrypt on write via bounce buffers,
    /// decrypt in place on read. Sector tweaks use pre-remap LBAs, so
    /// ciphertext is compatible with NVMetro's encryption UIF.
    Crypt {
        /// LBA offset of the crypt device on the backing disk.
        offset: u64,
        /// XTS key (32 or 64 bytes); `None` models costs without real
        /// data transformation (virtual-time figure runs).
        key: Option<Vec<u8>>,
    },
    /// `dm-mirror` (dm-raid1): duplicate writes to device ports 0 and 1,
    /// read from the primary (port 0).
    Mirror {
        /// LBA offset on both legs.
        offset: u64,
    },
}

/// A request entering the kernel stack.
#[derive(Clone, Copy, Debug)]
pub struct DmRequest {
    /// Caller's identifier, returned on completion.
    pub user: u64,
    /// True for writes.
    pub write: bool,
    /// Starting LBA (pre-remap, i.e. as the guest sees it).
    pub slba: u64,
    /// Blocks.
    pub nlb: u32,
    /// Guest data pointer (PRP1).
    pub prp1: u64,
    /// Guest data pointer (PRP2).
    pub prp2: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Block,
    CryptWork,
    WriteSerial,
}

#[derive(Clone, Copy)]
struct Io {
    req: DmRequest,
    stage: Stage,
    /// After device completion of a crypt read, decrypt before finishing.
    post_decrypt: bool,
}

struct Track {
    req: DmRequest,
    legs: u8,
    status: Status,
    post_decrypt: bool,
    bounce: Option<Bounce>,
}

struct Bounce {
    base: u64,
    prp1: u64,
    prp2: u64,
    pages: usize,
}

struct Port {
    sq: SqProducer,
    cq: CqConsumer,
}

/// The kernel block/DM pipeline (see crate docs).
pub struct KernelDm {
    cost: CostModel,
    config: DmConfig,
    block: Station<Io>,
    crypt: Station<Io>,
    serial: Station<Io>,
    ports: Vec<Port>,
    guest_mem: Arc<GuestMemory>,
    host_mem: Arc<GuestMemory>,
    pool: HashMap<usize, Vec<Bounce>>,
    xts: Option<Xts>,
    in_flight: HashMap<u16, Track>,
    next_cid: u16,
    done: Vec<(u64, Status)>,
    charged_extra: Ns,
    faults: FaultInjector,
    telemetry: TelemetryHandle,
}

impl KernelDm {
    /// Builds the pipeline over one or two device ports
    /// (`(sq, cq)` pairs registered on the backing devices).
    pub fn new(
        cost: CostModel,
        config: DmConfig,
        ports: Vec<(SqProducer, CqConsumer)>,
        guest_mem: Arc<GuestMemory>,
    ) -> Self {
        if matches!(config, DmConfig::Mirror { .. }) {
            assert!(ports.len() >= 2, "dm-mirror needs two device ports");
        } else {
            assert!(!ports.is_empty(), "need at least one device port");
        }
        let xts = match &config {
            DmConfig::Crypt { key: Some(k), .. } => Some(Xts::new(k)),
            _ => None,
        };
        let crypt_workers = cost.dmcrypt_workers.max(1);
        KernelDm {
            cost,
            config,
            block: Station::new(1),
            crypt: Station::new(crypt_workers),
            serial: Station::new(1),
            ports: ports.into_iter().map(|(sq, cq)| Port { sq, cq }).collect(),
            guest_mem,
            host_mem: Arc::new(GuestMemory::new(1 << 32)),
            pool: HashMap::new(),
            xts: None.or(xts),
            in_flight: HashMap::new(),
            next_cid: 0,
            done: Vec::new(),
            charged_extra: 0,
            faults: FaultInjector::off(),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Arms a fault injector (the `KernelDm` site of a seeded fault plan):
    /// matching rules fire at submit time, before the block layer.
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = injector;
    }

    /// Attaches a telemetry worker handle; injected faults are counted as
    /// `Metric::FaultsInjected`.
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// Faults injected into this stack so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected()
    }

    /// Memory object backing crypt bounce buffers (the device port for
    /// writes must resolve PRPs against this when crypt is active).
    pub fn host_memory(&self) -> Arc<GuestMemory> {
        self.host_mem.clone()
    }

    /// Submits a request into the stack.
    pub fn submit(&mut self, req: DmRequest, now: Ns) {
        let mut stall: Ns = 0;
        if self.faults.is_active() {
            let class = if req.write {
                CmdClass::Write
            } else {
                CmdClass::Read
            };
            if let Some(action) = self.faults.decide(now, class) {
                self.telemetry.count(Metric::FaultsInjected);
                match action {
                    // Swallowed inside the stack: no completion will ever
                    // surface — only a router deadline can recover it.
                    FaultAction::DropCompletion => return,
                    FaultAction::MediaError { dnr } => {
                        let st = if req.write {
                            Status::WRITE_FAULT
                        } else {
                            Status::UNRECOVERED_READ
                        };
                        self.done
                            .push((req.user, if dnr { st.with_dnr() } else { st }));
                        return;
                    }
                    FaultAction::CorruptPayload => {
                        self.done.push((req.user, Status::GUARD_CHECK));
                        return;
                    }
                    FaultAction::LinkOutage => {
                        self.done.push((req.user, Status::PATH_ERROR));
                        return;
                    }
                    // A hung kernel queue: the request sits in the block
                    // stage for the stall before normal processing.
                    FaultAction::Stall(d) | FaultAction::CqPressure(d) => stall = d,
                }
            }
        }
        let extra = match self.config {
            DmConfig::Mirror { .. } => self.cost.dmmirror_request,
            _ => 0,
        };
        self.block.push(
            Io {
                req,
                stage: Stage::Block,
                post_decrypt: false,
            },
            self.cost.block_layer + extra + stall,
            now,
        );
    }

    /// Cost of the DM target's single-threaded bookkeeping stage for one
    /// request, if the configured target has one.
    fn serial_cost(&self, nlb: u32) -> Option<Ns> {
        let bytes = nlb as usize * LBA_SIZE;
        match self.config {
            DmConfig::Crypt { .. } => Some(
                self.cost.dmcrypt_io_serial
                    + (bytes as f64 * self.cost.dmcrypt_serial_per_byte) as Ns,
            ),
            DmConfig::Mirror { .. } => Some(
                self.cost.dmmirror_io_serial
                    + (bytes as f64 * self.cost.dmmirror_serial_per_byte) as Ns,
            ),
            _ => None,
        }
    }

    fn offset(&self) -> u64 {
        match self.config {
            DmConfig::None => 0,
            DmConfig::Linear { offset }
            | DmConfig::Crypt { offset, .. }
            | DmConfig::Mirror { offset } => offset,
        }
    }

    fn alloc_bounce(&mut self, bytes: usize) -> Bounce {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        if let Some(b) = self.pool.get_mut(&pages).and_then(|v| v.pop()) {
            return b;
        }
        let base = self.host_mem.alloc(pages * PAGE_SIZE);
        let (prp1, prp2) = if pages == 1 {
            (base, 0)
        } else if pages == 2 {
            (base, base + PAGE_SIZE as u64)
        } else {
            let list = self.host_mem.alloc(PAGE_SIZE);
            for i in 1..pages {
                self.host_mem
                    .write_u64(list + ((i - 1) * 8) as u64, base + (i * PAGE_SIZE) as u64);
            }
            (base, list)
        };
        Bounce {
            base,
            prp1,
            prp2,
            pages,
        }
    }

    fn read_guest(&self, req: &DmRequest) -> Option<Vec<u8>> {
        let len = req.nlb as usize * LBA_SIZE;
        let segs = prp_segments(&self.guest_mem, req.prp1, req.prp2, len).ok()?;
        let mut out = Vec::with_capacity(len);
        for (gpa, l) in segs {
            out.extend(self.guest_mem.read_vec(gpa, l));
        }
        Some(out)
    }

    fn write_guest(&self, req: &DmRequest, data: &[u8]) {
        if let Ok(segs) = prp_segments(&self.guest_mem, req.prp1, req.prp2, data.len()) {
            let mut off = 0;
            for (gpa, l) in segs {
                self.guest_mem.write(gpa, &data[off..off + l]);
                off += l;
            }
        }
    }

    /// Forwards an I/O to device port(s); for crypt writes the data has
    /// already been encrypted into `bounce`; crypt reads get a bounce
    /// buffer here so the device DMA lands in host memory before
    /// decryption (dm-crypt's bounce-page behavior).
    fn forward_to_device(&mut self, io: Io, bounce: Option<Bounce>) {
        let bounce = if bounce.is_none() && io.post_decrypt && self.xts.is_some() {
            Some(self.alloc_bounce(io.req.nlb as usize * LBA_SIZE))
        } else {
            bounce
        };
        let phys = io.req.slba + self.offset();
        let legs: u8 = match (&self.config, io.req.write) {
            (DmConfig::Mirror { .. }, true) => 2,
            _ => 1,
        };
        let cid = self.alloc_cid();
        let (prp1, prp2) = bounce
            .as_ref()
            .map(|b| (b.prp1, b.prp2))
            .unwrap_or((io.req.prp1, io.req.prp2));
        let mut cmd = if io.req.write {
            SubmissionEntry::write(1, phys, io.req.nlb, prp1, prp2)
        } else {
            SubmissionEntry::read(1, phys, io.req.nlb, prp1, prp2)
        };
        cmd.cid = cid;
        self.in_flight.insert(
            cid,
            Track {
                req: io.req,
                legs,
                status: Status::SUCCESS,
                post_decrypt: io.post_decrypt,
                bounce,
            },
        );
        if legs == 2 {
            self.ports[0].sq.push(cmd).expect("primary port full");
            self.ports[1].sq.push(cmd).expect("secondary port full");
        } else {
            self.ports[0].sq.push(cmd).expect("device port full");
        }
    }

    fn alloc_cid(&mut self) -> u16 {
        // Linear scan from next_cid: in-flight counts are far below 64K.
        loop {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            if !self.in_flight.contains_key(&cid) {
                return cid;
            }
        }
    }

    /// Advances the pipeline; completed user requests accumulate
    /// internally (drain with [`KernelDm::take_done`]).
    pub fn poll(&mut self, now: Ns) {
        // Block layer output: DM targets with a single-threaded stage
        // (crypt's kcryptd_io/write bounce, dm-raid1's mirror thread) go
        // through `serial` first; everything else heads for the device.
        while let Some((io, t)) = self.block.pop_done_timed(now) {
            match self.serial_cost(io.req.nlb) {
                Some(cost) => self.serial.push(
                    Io {
                        stage: Stage::WriteSerial,
                        ..io
                    },
                    cost,
                    t,
                ),
                None => self.forward_to_device(io, None),
            }
        }
        // Serialized-stage output.
        while let Some((io, t)) = self.serial.pop_done_timed(now) {
            match (&self.config, io.req.write) {
                (DmConfig::Crypt { .. }, true) => {
                    // Writes: encrypt on a kcryptd worker, then submit.
                    let cost = self.cost.dmcrypt_request
                        + self.cost.xts_cost(io.req.nlb as usize * LBA_SIZE, false);
                    self.crypt.push(
                        Io {
                            stage: Stage::CryptWork,
                            ..io
                        },
                        cost,
                        t,
                    );
                }
                (DmConfig::Crypt { .. }, false) => {
                    // Reads: device first, decrypt after.
                    self.forward_to_device(
                        Io {
                            post_decrypt: true,
                            ..io
                        },
                        None,
                    );
                }
                _ => self.forward_to_device(io, None),
            }
        }
        // Crypt workers output.
        while let Some((io, _t)) = self.crypt.pop_done_timed(now) {
            match io.stage {
                Stage::CryptWork => {
                    // Encrypt guest data into a bounce buffer and submit.
                    let bounce = if self.xts.is_some() {
                        let bytes = io.req.nlb as usize * LBA_SIZE;
                        let bounce = self.alloc_bounce(bytes);
                        if let Some(mut data) = self.read_guest(&io.req) {
                            if let Some(xts) = &self.xts {
                                xts.encrypt_sectors(io.req.slba, &mut data);
                            }
                            self.host_mem.write(bounce.base, &data);
                        }
                        Some(bounce)
                    } else {
                        None
                    };
                    self.forward_to_device(io, bounce);
                }
                _ => {
                    // Post-read decrypt finished: complete to the caller.
                    self.done.push((io.req.user, Status::SUCCESS));
                }
            }
        }
        // Device completions.
        for p in 0..self.ports.len() {
            while let Some(cqe) = self.ports[p].cq.pop() {
                let Some(track) = self.in_flight.get_mut(&cqe.cid) else {
                    continue;
                };
                track.legs -= 1;
                if cqe.status().is_error() && !track.status.is_error() {
                    track.status = cqe.status();
                }
                if track.legs > 0 {
                    continue;
                }
                let track = self.in_flight.remove(&cqe.cid).expect("present");
                if track.post_decrypt && !track.status.is_error() {
                    // Decrypt the bounce data into the guest, charging a
                    // crypt worker for the XTS work.
                    if let (Some(xts), Some(b)) = (&self.xts, &track.bounce) {
                        let bytes = track.req.nlb as usize * LBA_SIZE;
                        let mut data = self.host_mem.read_vec(b.base, bytes);
                        xts.decrypt_sectors(track.req.slba, &mut data);
                        self.write_guest(&track.req, &data);
                    }
                    if let Some(b) = track.bounce {
                        self.pool.entry(b.pages).or_default().push(b);
                    }
                    let cost = self.cost.dmcrypt_request
                        + self.cost.xts_cost(track.req.nlb as usize * LBA_SIZE, false);
                    self.crypt.push(
                        Io {
                            req: track.req,
                            stage: Stage::Block,
                            post_decrypt: false,
                        },
                        cost,
                        now,
                    );
                } else {
                    if let Some(b) = track.bounce {
                        self.pool.entry(b.pages).or_default().push(b);
                    }
                    self.done.push((track.req.user, track.status));
                }
            }
        }
    }

    /// Drains completed `(user, status)` pairs into `out`.
    pub fn take_done(&mut self, out: &mut Vec<(u64, Status)>) {
        out.append(&mut self.done);
    }

    /// Earliest internally-scheduled event.
    pub fn next_event(&self) -> Option<Ns> {
        [
            self.block.next_event(),
            self.crypt.next_event(),
            self.serial.next_event(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Host CPU consumed by the stack.
    pub fn charged(&self) -> Ns {
        self.block.charged() + self.crypt.charged() + self.serial.charged() + self.charged_extra
    }

    /// Requests currently inside the pipeline or at the device.
    pub fn in_flight(&self) -> usize {
        self.block.in_flight()
            + self.crypt.in_flight()
            + self.serial.in_flight()
            + self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
    use nvmetro_nvme::{CqPair, SqPair};
    use nvmetro_sim::Actor;

    struct Rig {
        dm: KernelDm,
        ssd: SimSsd,
        remote: Option<SimSsd>,
        guest: Arc<GuestMemory>,
    }

    fn rig(config_for: impl FnOnce() -> DmConfig, mirror: bool) -> Rig {
        let cost = CostModel::default();
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 1 << 20,
                ..Default::default()
            },
        );
        let guest = Arc::new(GuestMemory::new(1 << 26));
        let mut ports = Vec::new();
        let config = config_for();

        // Build the stack with a placeholder host mem; then register ports.
        // Crypt writes carry bounce-buffer PRPs, so the port must resolve
        // against the stack's host memory; plain ports resolve guest PRPs.
        let needs_bounce = matches!(config, DmConfig::Crypt { key: Some(_), .. });

        let (sq_p, sq_c) = SqPair::new(256);
        let (cq_p, cq_c) = CqPair::new(256);
        ports.push((sq_p, cq_c));
        let mut remote = None;
        let mut remote_ports = Vec::new();
        if mirror {
            #[allow(unused_mut)]
            let mut r = SimSsd::new(
                "remote",
                SsdConfig {
                    capacity_lbas: 1 << 20,
                    transport: Some(nvmetro_device::Transport {
                        one_way: 10_000,
                        per_byte: 0.1,
                    }),
                    ..Default::default()
                },
            );
            let (rsq_p, rsq_c) = SqPair::new(256);
            let (rcq_p, rcq_c) = CqPair::new(256);
            ports.push((rsq_p, rcq_c));
            remote_ports.push((rsq_c, rcq_p));
            remote = Some(r.store()).map(|_| r);
        }
        let dm = KernelDm::new(cost, config, ports, guest.clone());
        let mem_for_port: Arc<GuestMemory> = if needs_bounce {
            dm.host_memory()
        } else {
            guest.clone()
        };
        ssd.add_queue(sq_c, cq_p, mem_for_port.clone(), CompletionMode::Interrupt);
        if let (Some(r), Some((rsq_c, rcq_p))) = (&mut remote, remote_ports.pop()) {
            r.add_queue(rsq_c, rcq_p, mem_for_port, CompletionMode::Interrupt);
        }
        Rig {
            dm,
            ssd,
            remote,
            guest,
        }
    }

    fn run(rig: &mut Rig, out: &mut Vec<(u64, Status)>, until_count: usize) {
        let mut now = 0;
        for _ in 0..100_000 {
            rig.dm.poll(now);
            rig.ssd.poll(now);
            if let Some(r) = &mut rig.remote {
                r.poll(now);
            }
            rig.dm.take_done(out);
            if out.len() >= until_count {
                return;
            }
            let next = [
                rig.dm.next_event(),
                rig.ssd.next_event(),
                rig.remote.as_ref().and_then(|r| r.next_event()),
            ]
            .into_iter()
            .flatten()
            .min();
            match next {
                Some(t) => now = t.max(now),
                None => now += 1_000,
            }
        }
        panic!(
            "pipeline stalled with {} of {} done",
            out.len(),
            until_count
        );
    }

    fn make_req(rig: &Rig, user: u64, write: bool, slba: u64, data: &[u8]) -> (DmRequest, u64) {
        let gpa = rig.guest.alloc(data.len());
        if write {
            rig.guest.write(gpa, data);
        }
        let (p1, p2) = nvmetro_mem::build_prps(&rig.guest, gpa, data.len());
        (
            DmRequest {
                user,
                write,
                slba,
                nlb: (data.len() / LBA_SIZE) as u32,
                prp1: p1,
                prp2: p2,
            },
            gpa,
        )
    }

    #[test]
    fn plain_block_write_read() {
        let mut r = rig(|| DmConfig::None, false);
        let data = vec![0x3Cu8; 1024];
        let (w, _) = make_req(&r, 1, true, 10, &data);
        r.dm.submit(w, 0);
        let mut out = Vec::new();
        run(&mut r, &mut out, 1);
        assert_eq!(out[0], (1, Status::SUCCESS));
        assert_eq!(r.ssd.store().read_vec(10, 2), data);

        let (rd, gpa) = make_req(&r, 2, false, 10, &vec![0u8; 1024]);
        r.dm.submit(rd, 0);
        out.clear();
        run(&mut r, &mut out, 1);
        assert_eq!(r.guest.read_vec(gpa, 1024), data);
    }

    #[test]
    fn linear_remaps_lbas() {
        let mut r = rig(|| DmConfig::Linear { offset: 7000 }, false);
        let data = vec![0x44u8; 512];
        let (w, _) = make_req(&r, 1, true, 3, &data);
        r.dm.submit(w, 0);
        let mut out = Vec::new();
        run(&mut r, &mut out, 1);
        assert_eq!(r.ssd.store().read_vec(7003, 1), data);
        assert!(r.ssd.store().read_vec(3, 1).iter().all(|&b| b == 0));
    }

    #[test]
    fn crypt_writes_ciphertext_and_reads_plaintext() {
        let key = vec![9u8; 64];
        let key2 = key.clone();
        let mut r = rig(
            move || DmConfig::Crypt {
                offset: 0,
                key: Some(key2),
            },
            false,
        );
        let plain = vec![0x21u8; 512];
        let (w, _) = make_req(&r, 1, true, 5, &plain);
        r.dm.submit(w, 0);
        let mut out = Vec::new();
        run(&mut r, &mut out, 1);
        assert_eq!(out[0].1, Status::SUCCESS);
        // On-disk bytes must be the XTS ciphertext, not plaintext.
        let on_disk = r.ssd.store().read_vec(5, 1);
        assert_ne!(on_disk, plain);
        let mut expect = plain.clone();
        Xts::new(&key).encrypt_sectors(5, &mut expect);
        assert_eq!(on_disk, expect, "dm-crypt-compatible ciphertext layout");

        // Read back decrypts in place.
        let (rd, gpa) = make_req(&r, 2, false, 5, &vec![0u8; 512]);
        r.dm.submit(rd, 0);
        out.clear();
        run(&mut r, &mut out, 1);
        assert_eq!(r.guest.read_vec(gpa, 512), plain);
    }

    #[test]
    fn mirror_duplicates_writes_and_reads_primary() {
        let mut r = rig(|| DmConfig::Mirror { offset: 0 }, true);
        let data = vec![0x66u8; 512];
        let (w, _) = make_req(&r, 1, true, 20, &data);
        r.dm.submit(w, 0);
        let mut out = Vec::new();
        run(&mut r, &mut out, 1);
        assert_eq!(out[0].1, Status::SUCCESS);
        assert_eq!(r.ssd.store().read_vec(20, 1), data);
        assert_eq!(
            r.remote.as_ref().unwrap().store().read_vec(20, 1),
            data,
            "secondary replica must match"
        );
        // Reads only touch the primary.
        let before = r.remote.as_ref().unwrap().ios_served();
        let (rd, _) = make_req(&r, 2, false, 20, &vec![0u8; 512]);
        r.dm.submit(rd, 0);
        out.clear();
        run(&mut r, &mut out, 1);
        assert_eq!(r.remote.as_ref().unwrap().ios_served(), before);
    }

    #[test]
    fn mirror_write_waits_for_slower_remote_leg() {
        let mut r = rig(|| DmConfig::Mirror { offset: 0 }, true);
        let (w, _) = make_req(&r, 1, true, 0, &vec![1u8; 512]);
        r.dm.submit(w, 0);
        let mut out = Vec::new();
        // Step manually to find completion time.
        let mut now = 0;
        while out.is_empty() {
            r.dm.poll(now);
            r.ssd.poll(now);
            r.remote.as_mut().unwrap().poll(now);
            // Device completions posted this step feed the DM pipeline.
            r.dm.poll(now);
            r.dm.take_done(&mut out);
            if out.is_empty() {
                now = [
                    r.dm.next_event(),
                    r.ssd.next_event(),
                    r.remote.as_ref().and_then(|x| x.next_event()),
                ]
                .into_iter()
                .flatten()
                .min()
                .expect("pending work");
            }
        }
        // Completion must be at least the remote RTT later than a purely
        // local write could finish.
        assert!(
            now >= 20_000,
            "mirror completion at {now} ignored the remote leg"
        );
    }

    #[test]
    fn crypt_charges_more_cpu_than_plain() {
        let mut plain = rig(|| DmConfig::None, false);
        let mut crypt = rig(
            || DmConfig::Crypt {
                offset: 0,
                key: None,
            },
            false,
        );
        for r in [&mut plain, &mut crypt] {
            let (w, _) = make_req(r, 1, true, 0, &vec![0u8; 4096]);
            r.dm.submit(w, 0);
            let mut out = Vec::new();
            run(r, &mut out, 1);
        }
        assert!(
            crypt.dm.charged() > plain.dm.charged() + 1_000,
            "crypt {} vs plain {}",
            crypt.dm.charged(),
            plain.dm.charged()
        );
    }

    #[test]
    fn fault_plan_fails_and_drops_requests_at_the_dm_site() {
        use nvmetro_faults::{FaultPlan, FaultRule, FaultSite};
        let mut r = rig(|| DmConfig::None, false);
        r.dm.set_faults(
            FaultPlan::new(0xD31)
                .rule(
                    FaultRule::new(FaultSite::KernelDm, FaultAction::MediaError { dnr: false })
                        .classes(CmdClass::Write.bit())
                        .max_hits(1),
                )
                .rule(
                    FaultRule::new(FaultSite::KernelDm, FaultAction::DropCompletion)
                        .classes(CmdClass::Read.bit())
                        .max_hits(1),
                )
                .injector(FaultSite::KernelDm),
        );
        // First write hits the media-error rule: immediate error, device
        // untouched.
        let (w, _) = make_req(&r, 1, true, 0, &vec![0x11u8; 512]);
        r.dm.submit(w, 0);
        let mut out = Vec::new();
        r.dm.take_done(&mut out);
        assert_eq!(out, vec![(1, Status::WRITE_FAULT)]);
        assert_eq!(r.dm.in_flight(), 0, "failed request never entered");
        // First read is swallowed: nothing completes, nothing in flight.
        let (rd, _) = make_req(&r, 2, false, 0, &vec![0u8; 512]);
        r.dm.submit(rd, 0);
        out.clear();
        r.dm.take_done(&mut out);
        assert!(out.is_empty());
        assert_eq!(r.dm.in_flight(), 0);
        assert_eq!(r.dm.faults_injected(), 2);
        // Both rules exhausted: the next write goes through normally.
        let data = vec![0x22u8; 512];
        let (w2, _) = make_req(&r, 3, true, 4, &data);
        r.dm.submit(w2, 0);
        out.clear();
        run(&mut r, &mut out, 1);
        assert_eq!(out, vec![(3, Status::SUCCESS)]);
        assert_eq!(r.ssd.store().read_vec(4, 1), data);
    }

    #[test]
    fn pipeline_tracks_in_flight() {
        let mut r = rig(|| DmConfig::None, false);
        assert_eq!(r.dm.in_flight(), 0);
        let (w, _) = make_req(&r, 1, true, 0, &vec![0u8; 512]);
        r.dm.submit(w, 0);
        assert!(r.dm.in_flight() > 0);
        let mut out = Vec::new();
        run(&mut r, &mut out, 1);
        assert_eq!(r.dm.in_flight(), 0);
    }
}
