//! Host-kernel storage substrate.
//!
//! The paper's baselines and NVMetro's *kernel path* both traverse Linux's
//! in-kernel storage stack: the block layer (bio allocation, merging,
//! submission) and, for the storage-function experiments, device-mapper
//! targets stacked on top of it (`dm-crypt` for encryption, `dm-mirror`
//! for replication — §V-C, §V-D). This crate rebuilds that stack as a
//! virtual-time pipeline:
//!
//! * [`KernelDm`] — a block-layer station feeding an optional DM target
//!   ([`DmConfig`]): `dm-linear` LBA remapping, `dm-crypt` with a kcryptd
//!   worker pool, real XTS-AES bounce-buffer encryption (ciphertext is
//!   byte-compatible with NVMetro's encryption UIF) and the single
//!   `dmcrypt_write` serialization thread, or `dm-mirror` duplicating
//!   writes to a secondary (remote) device;
//! * [`RouterKernelPath`] — adapts [`KernelDm`] to the router's
//!   [`nvmetro_core::router::KernelPath`] trait, i.e. NVMetro's blue
//!   kernel path.

mod dm;
mod path;

pub use dm::{DmConfig, DmRequest, KernelDm};
pub use path::RouterKernelPath;
