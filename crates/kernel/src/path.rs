//! Adapter: [`KernelDm`] as NVMetro's kernel path.

use crate::dm::{DmRequest, KernelDm};
use nvmetro_core::router::KernelPath;
use nvmetro_nvme::{NvmOpcode, Status, SubmissionEntry};
use nvmetro_sim::Ns;
use nvmetro_telemetry::{Metric, PathKind, Stage, TelemetryHandle};

/// Exposes a [`KernelDm`] stack as the router's kernel path ("compatible
/// with Linux's block layer features (e.g. device mapper), as well as
/// non-NVMe backends", §III-A).
pub struct RouterKernelPath {
    dm: KernelDm,
    out: Vec<(u64, Status)>,
    telemetry: TelemetryHandle,
}

impl RouterKernelPath {
    /// Wraps a DM stack.
    pub fn new(dm: KernelDm) -> Self {
        RouterKernelPath {
            dm,
            out: Vec::new(),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry worker handle (see `nvmetro-telemetry`). Like
    /// the device, the kernel stack sees only tags, so its events are
    /// tag-correlated (`VM_ANY`).
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }
}

impl KernelPath for RouterKernelPath {
    fn submit(&mut self, tag: u16, cmd: SubmissionEntry, now: Ns) {
        let write = match cmd.nvm_opcode() {
            Some(NvmOpcode::Write) => true,
            Some(NvmOpcode::Read) => false,
            _ => {
                // Only the Linux storage semantics traverse the kernel path
                // (§III-A); anything else is completed with an error.
                self.out.push((tag as u64, Status::INVALID_OPCODE));
                return;
            }
        };
        self.dm.submit(
            DmRequest {
                user: tag as u64,
                write,
                slba: cmd.slba(),
                nlb: cmd.nlb(),
                prp1: cmd.prp1,
                prp2: cmd.prp2,
            },
            now,
        );
    }

    fn poll(&mut self, now: Ns, out: &mut Vec<(u16, Status)>) {
        self.dm.poll(now);
        self.dm.take_done(&mut self.out);
        for (user, status) in self.out.drain(..) {
            self.telemetry.count(Metric::KernelIos);
            self.telemetry
                .tag_event(now, user as u16, Stage::KernelService, PathKind::Kernel);
            out.push((user as u16, status));
        }
    }

    fn next_event(&self) -> Option<Ns> {
        self.dm.next_event()
    }

    fn charged(&self) -> Ns {
        self.dm.charged()
    }
}
