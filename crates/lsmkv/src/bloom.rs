//! Bloom filters for SSTable point-lookup short-circuiting.

/// A classic Bloom filter with double hashing (Kirsch-Mitzenmacher).
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl BloomFilter {
    /// Sizes the filter for `expected` keys at ~1% false-positive rate
    /// (10 bits/key, 7 hash functions — RocksDB's default profile).
    pub fn new(expected: usize) -> Self {
        let num_bits = (expected.max(1) * 10).next_power_of_two() as u64;
        BloomFilter {
            bits: vec![0; (num_bits as usize).div_ceil(64)],
            num_bits,
            hashes: 7,
        }
    }

    fn index_pair(&self, key: &[u8]) -> (u64, u64) {
        (fnv1a(key, 0), fnv1a(key, 0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = self.index_pair(key);
        for i in 0..self.hashes {
            let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// True if the key *may* be present (never false-negative).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = self.index_pair(key);
        (0..self.hashes).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.num_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Serializes to bytes (u64 little-endian words after a small header).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() * 8);
        out.extend(self.num_bits.to_le_bytes());
        out.extend((self.hashes as u64).to_le_bytes());
        for w in &self.bits {
            out.extend(w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`BloomFilter::to_bytes`] output.
    pub fn from_bytes(data: &[u8]) -> Self {
        let num_bits = u64::from_le_bytes(data[0..8].try_into().unwrap());
        let hashes = u64::from_le_bytes(data[8..16].try_into().unwrap()) as u32;
        let bits = data[16..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        BloomFilter {
            bits,
            num_bits,
            hashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(&i.to_le_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(1000);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        let fp = (10_000..60_000u32)
            .filter(|i| f.may_contain(&i.to_le_bytes()))
            .count();
        let rate = fp as f64 / 50_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn serialization_round_trips() {
        let mut f = BloomFilter::new(100);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        let g = BloomFilter::from_bytes(&f.to_bytes());
        for i in 0..100u32 {
            assert!(g.may_contain(&i.to_le_bytes()));
        }
        assert!(!g.may_contain(b"definitely-not-inserted-key-xyz"));
    }

    #[test]
    fn empty_filter_contains_nothing_inserted() {
        let f = BloomFilter::new(10);
        assert!(!f.may_contain(b"anything"));
    }
}
