//! The LSM tree proper: memtable + WAL + L0/L1 tables + compaction.

use crate::memtable::Memtable;
use crate::sstable::SsTable;
use crate::storage::Storage;
use crate::wal::Wal;
use std::collections::{BTreeMap, HashMap};

/// Manifest block: persists table locations so the store can reopen.
/// Fixed 4 KiB at offset 0: magic, heap cursor, L1 base (0 = none),
/// L0 count + bases (newest last).
const MANIFEST_LEN: u64 = 4096;
const MANIFEST_MAGIC: u32 = 0x4C53_4D4B; // "LSMK"

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Memtable flush threshold in bytes.
    pub memtable_bytes: usize,
    /// L0 tables that trigger an L0+L1 merge compaction.
    pub l0_limit: usize,
    /// WAL region size in bytes.
    pub wal_bytes: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            memtable_bytes: 1 << 20,
            l0_limit: 4,
            wal_bytes: 8 << 20,
        }
    }
}

/// Operation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DbStats {
    /// Point lookups served.
    pub gets: u64,
    /// Updates (puts + deletes).
    pub puts: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Bytes written by flushes.
    pub bytes_flushed: u64,
    /// Bytes written by compactions.
    pub bytes_compacted: u64,
    /// SSTable probes skipped by bloom filters.
    pub bloom_skips: u64,
}

/// The key-value store.
pub struct LsmKv<S: Storage> {
    storage: S,
    cfg: DbConfig,
    wal: Wal,
    memtable: Memtable,
    /// Newest-last overlapping runs.
    l0: Vec<SsTable>,
    /// The single bottom-level sorted run.
    l1: Option<SsTable>,
    heap_next: u64,
    /// Reserved size of each live heap region, by base offset.
    heap_regions: HashMap<u64, u64>,
    /// Freed regions available for reuse: (reserved bytes, base).
    free_list: Vec<(u64, u64)>,
    stats: DbStats,
}

impl<S: Storage> LsmKv<S> {
    /// Creates a fresh store on `storage` (overwrites any prior state).
    pub fn create(storage: S, cfg: DbConfig) -> Self {
        let wal = Wal::new(MANIFEST_LEN, cfg.wal_bytes);
        let heap_next = MANIFEST_LEN + cfg.wal_bytes;
        let mut db = LsmKv {
            storage,
            cfg,
            wal,
            memtable: Memtable::new(),
            l0: Vec::new(),
            l1: None,
            heap_next,
            heap_regions: HashMap::new(),
            free_list: Vec::new(),
            stats: DbStats::default(),
        };
        db.write_manifest();
        db
    }

    /// Reopens a store: reads the manifest, opens tables, replays the WAL
    /// into a fresh memtable (crash recovery).
    pub fn open(storage: S, cfg: DbConfig) -> Self {
        let mut hdr = [0u8; 4096];
        storage.read_at(0, &mut hdr[..64]);
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        assert_eq!(magic, MANIFEST_MAGIC, "no lsmkv store on this storage");
        let heap_next = u64::from_le_bytes(hdr[4..12].try_into().unwrap());
        let l1_base = u64::from_le_bytes(hdr[12..20].try_into().unwrap());
        let l0_count = u32::from_le_bytes(hdr[20..24].try_into().unwrap()) as usize;
        let mut l0_bases = Vec::with_capacity(l0_count);
        let mut full = vec![0u8; 24 + l0_count * 8];
        storage.read_at(0, &mut full);
        for i in 0..l0_count {
            l0_bases.push(u64::from_le_bytes(
                full[24 + i * 8..32 + i * 8].try_into().unwrap(),
            ));
        }
        let l1 = (l1_base != 0).then(|| SsTable::open(&storage, l1_base));
        let l0 = l0_bases
            .iter()
            .map(|&b| SsTable::open(&storage, b))
            .collect();
        let mut wal = Wal::new(MANIFEST_LEN, cfg.wal_bytes);
        let mut memtable = Memtable::new();
        // Recover committed-but-unflushed updates.
        wal.recover(&storage);
        for rec in wal.replay(&storage) {
            match rec.value {
                Some(v) => memtable.put(&rec.key, &v),
                None => memtable.delete(&rec.key),
            }
        }
        LsmKv {
            storage,
            cfg,
            wal,
            memtable,
            l0,
            l1,
            heap_next,
            heap_regions: HashMap::new(),
            free_list: Vec::new(),
            stats: DbStats::default(),
        }
    }

    fn write_manifest(&mut self) {
        let mut m = Vec::with_capacity(64);
        m.extend(MANIFEST_MAGIC.to_le_bytes());
        m.extend(self.heap_next.to_le_bytes());
        m.extend(self.l1.as_ref().map_or(0u64, |t| t.base()).to_le_bytes());
        m.extend((self.l0.len() as u32).to_le_bytes());
        for t in &self.l0 {
            m.extend(t.base().to_le_bytes());
        }
        self.storage.write_at(0, &m);
        self.storage.sync();
    }

    /// Operation counters.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Inserts or replaces a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.stats.puts += 1;
        self.wal.append(&mut self.storage, key, Some(value));
        self.memtable.put(key, value);
        self.maybe_flush();
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: &[u8]) {
        self.stats.puts += 1;
        self.wal.append(&mut self.storage, key, None);
        self.memtable.delete(key);
        self.maybe_flush();
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.stats.gets += 1;
        if let Some(v) = self.memtable.get(key) {
            return v.map(|v| v.to_vec());
        }
        for t in self.l0.iter().rev() {
            if let Some(v) = t.get(&self.storage, key, &mut self.stats.bloom_skips) {
                return v;
            }
        }
        if let Some(t) = &self.l1 {
            if let Some(v) = t.get(&self.storage, key, &mut self.stats.bloom_skips) {
                return v;
            }
        }
        None
    }

    /// Range scan: up to `limit` live entries with key >= `start`
    /// (YCSB workload E).
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        // Merge all sources with newest-first precedence.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let fetch = limit * 2 + 16; // headroom for tombstone masking
        for (k, v) in self.memtable.range_from(start).take(fetch) {
            merged
                .entry(k.to_vec())
                .or_insert_with(|| v.map(|v| v.to_vec()));
        }
        for t in self.l0.iter().rev() {
            for (k, v) in t.iter_from(&self.storage, start).take(fetch) {
                merged.entry(k).or_insert(v);
            }
        }
        if let Some(t) = &self.l1 {
            for (k, v) in t.iter_from(&self.storage, start).take(fetch) {
                merged.entry(k).or_insert(v);
            }
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .take(limit)
            .collect()
    }

    /// Forces a memtable flush (and compaction if L0 is over limit).
    pub fn flush(&mut self) {
        if !self.memtable.is_empty() {
            self.flush_memtable();
        }
    }

    fn maybe_flush(&mut self) {
        if self.memtable.bytes() >= self.cfg.memtable_bytes {
            self.flush_memtable();
        }
    }

    fn alloc_heap(&mut self, bytes: u64) -> u64 {
        let reserved = bytes.div_ceil(4096) * 4096;
        // Best-fit reuse of freed table space before growing the heap.
        if let Some(i) = self
            .free_list
            .iter()
            .enumerate()
            .filter(|(_, (sz, _))| *sz >= reserved)
            .min_by_key(|(_, (sz, _))| *sz)
            .map(|(i, _)| i)
        {
            let (sz, base) = self.free_list.swap_remove(i);
            self.heap_regions.insert(base, sz);
            return base;
        }
        let base = self.heap_next;
        assert!(
            base + reserved <= self.storage.capacity(),
            "storage heap exhausted"
        );
        self.heap_next += reserved;
        self.heap_regions.insert(base, reserved);
        base
    }

    /// Returns a dropped table's reserved region to the free list,
    /// coalescing adjacent regions (so successive generations of a growing
    /// L1 can be recycled into one larger slot).
    fn free_heap(&mut self, base: u64) {
        if let Some(sz) = self.heap_regions.remove(&base) {
            self.free_list.push((sz, base));
            self.free_list.sort_unstable_by_key(|&(_, b)| b);
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.free_list.len());
            for &(sz, b) in self.free_list.iter() {
                match merged.last_mut() {
                    Some((psz, pb)) if *pb + *psz == b => *psz += sz,
                    _ => merged.push((sz, b)),
                }
            }
            // A top-of-heap free region shrinks the heap itself.
            if let Some(&(sz, b)) = merged.last() {
                if b + sz == self.heap_next {
                    self.heap_next = b;
                    merged.pop();
                }
            }
            self.free_list = merged;
        }
    }

    fn flush_memtable(&mut self) {
        let entries = self.memtable.drain_sorted();
        if entries.is_empty() {
            return;
        }
        let approx: u64 = entries
            .iter()
            .map(|(k, v)| 16 + k.len() as u64 + v.as_ref().map_or(0, |v| v.len() as u64))
            .sum::<u64>()
            * 2
            + (1 << 16);
        let base = self.alloc_heap(approx);
        let table = SsTable::write(&mut self.storage, base, &entries);
        self.stats.bytes_flushed += table.size_bytes();
        self.stats.flushes += 1;
        self.l0.push(table);
        self.wal.reset(&mut self.storage);
        if self.l0.len() > self.cfg.l0_limit {
            self.compact();
        }
        self.write_manifest();
    }

    /// Merges every L0 run with L1 into a fresh L1 (dropping tombstones,
    /// which is safe at the bottom level). The replaced tables' space is
    /// recycled for future flushes.
    fn compact(&mut self) {
        self.stats.compactions += 1;
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Newest first: L0 back-to-front, then L1.
        for t in self.l0.iter().rev() {
            for (k, v) in t.iter(&self.storage) {
                merged.entry(k).or_insert(v);
            }
        }
        if let Some(t) = &self.l1 {
            for (k, v) in t.iter(&self.storage) {
                merged.entry(k).or_insert(v);
            }
        }
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        let old_bases: Vec<u64> = self
            .l0
            .iter()
            .map(|t| t.base())
            .chain(self.l1.as_ref().map(|t| t.base()))
            .collect();
        self.l0.clear();
        for b in old_bases {
            self.free_heap(b);
        }
        if entries.is_empty() {
            self.l1 = None;
            return;
        }
        let approx: u64 = entries
            .iter()
            .map(|(k, v)| 16 + k.len() as u64 + v.as_ref().map_or(0, |v| v.len() as u64))
            .sum::<u64>()
            * 2
            + (1 << 16);
        let base = self.alloc_heap(approx);
        let table = SsTable::write(&mut self.storage, base, &entries);
        self.stats.bytes_compacted += table.size_bytes();
        self.l1 = Some(table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn small_db() -> LsmKv<MemStorage> {
        LsmKv::create(
            MemStorage::new(64 << 20),
            DbConfig {
                memtable_bytes: 1 << 12, // tiny: force flushes
                l0_limit: 3,
                wal_bytes: 1 << 20,
            },
        )
    }

    #[test]
    fn put_get_delete() {
        let mut db = small_db();
        db.put(b"hello", b"world");
        assert_eq!(db.get(b"hello"), Some(b"world".to_vec()));
        db.delete(b"hello");
        assert_eq!(db.get(b"hello"), None);
        assert_eq!(db.get(b"never"), None);
    }

    #[test]
    fn survives_flushes_and_compactions() {
        let mut db = small_db();
        for i in 0..2_000u32 {
            db.put(
                format!("user{:08}", i).as_bytes(),
                format!("record-{i}").as_bytes(),
            );
        }
        assert!(db.stats().flushes > 0, "flushes must have happened");
        assert!(db.stats().compactions > 0, "compactions must have happened");
        for i in (0..2_000u32).step_by(97) {
            assert_eq!(
                db.get(format!("user{:08}", i).as_bytes()),
                Some(format!("record-{i}").into_bytes()),
                "key {i} lost"
            );
        }
    }

    #[test]
    fn overwrites_keep_newest_value() {
        let mut db = small_db();
        for round in 0..5u32 {
            for i in 0..300u32 {
                db.put(
                    format!("k{:06}", i).as_bytes(),
                    format!("v{round}-{i}").as_bytes(),
                );
            }
        }
        for i in (0..300u32).step_by(13) {
            assert_eq!(
                db.get(format!("k{:06}", i).as_bytes()),
                Some(format!("v4-{i}").into_bytes())
            );
        }
    }

    #[test]
    fn deletes_mask_older_levels() {
        let mut db = small_db();
        for i in 0..500u32 {
            db.put(format!("k{:06}", i).as_bytes(), b"v");
        }
        db.flush();
        db.delete(b"k000123");
        db.flush(); // tombstone now in an L0 table above the data
        assert_eq!(db.get(b"k000123"), None);
        assert_eq!(db.get(b"k000124"), Some(b"v".to_vec()));
    }

    #[test]
    fn scan_returns_sorted_live_entries() {
        let mut db = small_db();
        for i in 0..200u32 {
            db.put(format!("k{:06}", i).as_bytes(), format!("{i}").as_bytes());
        }
        db.delete(b"k000011");
        let got = db.scan(b"k000010", 5);
        let keys: Vec<String> = got
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(
            keys,
            vec!["k000010", "k000012", "k000013", "k000014", "k000015"],
            "tombstoned k000011 must be masked"
        );
    }

    #[test]
    fn reopen_recovers_tables_and_wal() {
        let cfg = DbConfig {
            memtable_bytes: 1 << 12,
            l0_limit: 3,
            wal_bytes: 1 << 20,
        };
        let mut db = LsmKv::create(MemStorage::new(64 << 20), cfg.clone());
        for i in 0..1_000u32 {
            db.put(format!("k{:06}", i).as_bytes(), format!("{i}").as_bytes());
        }
        // These last writes live only in WAL + memtable.
        db.put(b"unflushed-1", b"alpha");
        db.put(b"unflushed-2", b"beta");
        let LsmKv { storage, .. } = db; // "crash": drop in-memory state
        let mut db2 = LsmKv::open(storage, cfg);
        assert_eq!(db2.get(b"unflushed-1"), Some(b"alpha".to_vec()));
        assert_eq!(db2.get(b"unflushed-2"), Some(b"beta".to_vec()));
        assert_eq!(db2.get(b"k000500"), Some(b"500".to_vec()));
    }

    #[test]
    fn bloom_filters_skip_absent_probes() {
        let mut db = small_db();
        for i in 0..1_000u32 {
            db.put(format!("k{:06}", i).as_bytes(), b"v");
        }
        db.flush();
        for i in 0..200u32 {
            db.get(format!("absent{:06}", i).as_bytes());
        }
        assert!(db.stats().bloom_skips > 0);
    }

    #[test]
    fn stats_count_operations() {
        let mut db = small_db();
        db.put(b"a", b"1");
        db.get(b"a");
        db.get(b"b");
        db.delete(b"a");
        let s = db.stats();
        assert_eq!(s.puts, 2);
        assert_eq!(s.gets, 2);
    }
}
