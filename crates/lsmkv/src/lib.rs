//! lsmkv — a log-structured merge key-value store.
//!
//! The paper's YCSB evaluation runs on RocksDB over ext4 (§V-A). This
//! crate is the reproduction's RocksDB stand-in: a real (small) LSM tree
//! with the structures that generate RocksDB's I/O pattern —
//!
//! * a write-ahead log ([`wal`]) appended before every update,
//! * an in-memory [`memtable`] flushed to sorted runs,
//! * immutable [`sstable`]s with sparse indexes and [`bloom`] filters,
//! * L0→L1 merge [compaction](db) producing background I/O bursts.
//!
//! Storage is abstracted behind [`Storage`], so the store runs over plain
//! memory, a file, or an NVMetro virtual disk (see the `kv_store` example).

mod bloom;
mod db;
mod memtable;
mod sstable;
mod storage;
mod wal;

pub use bloom::BloomFilter;
pub use db::{DbConfig, DbStats, LsmKv};
pub use memtable::Memtable;
pub use sstable::SsTable;
pub use storage::{MemStorage, Storage};
pub use wal::Wal;
