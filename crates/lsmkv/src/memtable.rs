//! The in-memory write buffer.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted in-memory table of the newest updates. `None` values are
/// tombstones (deletions that must mask older SSTable entries).
#[derive(Default)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.bytes += key.len() + value.len();
        self.map.insert(key.to_vec(), Some(value.to_vec()));
    }

    /// Records a deletion tombstone.
    pub fn delete(&mut self, key: &[u8]) {
        self.bytes += key.len();
        self.map.insert(key.to_vec(), None);
    }

    /// Looks a key up: `None` = not present here; `Some(None)` = deleted.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.map.get(key).map(|v| v.as_deref())
    }

    /// Approximate memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates entries in key order starting at `from`.
    pub fn range_from<'a>(
        &'a self,
        from: &[u8],
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> + 'a {
        self.map
            .range::<[u8], _>((Bound::Included(from), Bound::Unbounded))
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Drains all entries in key order (for flushing to an SSTable).
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        m.put(b"a", b"1");
        m.put(b"a", b"2");
        assert_eq!(m.get(b"a"), Some(Some(b"2".as_slice())));
        assert_eq!(m.get(b"b"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstones_are_visible() {
        let mut m = Memtable::new();
        m.put(b"k", b"v");
        m.delete(b"k");
        assert_eq!(m.get(b"k"), Some(None));
    }

    #[test]
    fn drain_yields_sorted_entries() {
        let mut m = Memtable::new();
        m.put(b"c", b"3");
        m.put(b"a", b"1");
        m.put(b"b", b"2");
        let drained = m.drain_sorted();
        let keys: Vec<&[u8]> = drained.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn range_from_starts_at_bound() {
        let mut m = Memtable::new();
        for k in ["a", "b", "c", "d"] {
            m.put(k.as_bytes(), b"v");
        }
        let got: Vec<&[u8]> = m.range_from(b"b").map(|(k, _)| k).collect();
        assert_eq!(got, vec![b"b".as_slice(), b"c", b"d"]);
    }

    #[test]
    fn byte_accounting_grows() {
        let mut m = Memtable::new();
        assert_eq!(m.bytes(), 0);
        m.put(b"key", b"value");
        assert_eq!(m.bytes(), 8);
    }
}
