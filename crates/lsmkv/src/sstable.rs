//! Immutable sorted string tables.
//!
//! Layout at a fixed storage offset (all little-endian):
//!
//! ```text
//! header:  magic u32 | count u32 | data_off u32 | index_off u32 |
//!          bloom_off u32 | total_len u32
//! data:    count x ( flag u8 | klen u32 | vlen u32 | key | value )
//! index:   n u32, then n x ( entry_off u32 | klen u32 | key )   (sparse)
//! bloom:   len u32 | serialized BloomFilter
//! ```
//!
//! The sparse index holds every 16th key; lookups binary-search it, then
//! scan at most 16 entries from storage — the same shape as RocksDB's
//! block index.

use crate::bloom::BloomFilter;
use crate::storage::Storage;

const MAGIC: u32 = 0x5354_424C; // "STBL"
const INDEX_EVERY: usize = 16;
const HEADER_LEN: usize = 24;

/// An opened SSTable: metadata in memory, entries read from storage.
pub struct SsTable {
    base: u64,
    count: u32,
    data_off: u32,
    index: Vec<(Vec<u8>, u32)>,
    bloom: BloomFilter,
    first_key: Vec<u8>,
    last_key: Vec<u8>,
    total_len: u32,
}

impl SsTable {
    /// Serializes sorted `entries` (key → value-or-tombstone) and writes
    /// the table at `base`; returns the opened table.
    pub fn write<S: Storage>(
        storage: &mut S,
        base: u64,
        entries: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> SsTable {
        assert!(!entries.is_empty(), "empty SSTable");
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly sorted"
        );
        let mut bloom = BloomFilter::new(entries.len());
        let mut data = Vec::new();
        let mut index: Vec<(Vec<u8>, u32)> = Vec::new();
        for (i, (k, v)) in entries.iter().enumerate() {
            if i % INDEX_EVERY == 0 {
                index.push((k.clone(), data.len() as u32));
            }
            bloom.insert(k);
            data.push(v.is_some() as u8);
            data.extend((k.len() as u32).to_le_bytes());
            data.extend((v.as_ref().map_or(0, |v| v.len()) as u32).to_le_bytes());
            data.extend(k.iter());
            if let Some(v) = v {
                data.extend(v.iter());
            }
        }
        let mut index_bytes = Vec::new();
        index_bytes.extend((index.len() as u32).to_le_bytes());
        for (k, off) in &index {
            index_bytes.extend(off.to_le_bytes());
            index_bytes.extend((k.len() as u32).to_le_bytes());
            index_bytes.extend(k.iter());
        }
        let bloom_bytes = bloom.to_bytes();
        let data_off = HEADER_LEN as u32;
        let index_off = data_off + data.len() as u32;
        let bloom_off = index_off + index_bytes.len() as u32;
        let total_len = bloom_off + 4 + bloom_bytes.len() as u32;
        let mut out = Vec::with_capacity(total_len as usize);
        out.extend(MAGIC.to_le_bytes());
        out.extend((entries.len() as u32).to_le_bytes());
        out.extend(data_off.to_le_bytes());
        out.extend(index_off.to_le_bytes());
        out.extend(bloom_off.to_le_bytes());
        out.extend(total_len.to_le_bytes());
        out.extend(data);
        out.extend(index_bytes);
        out.extend((bloom_bytes.len() as u32).to_le_bytes());
        out.extend(bloom_bytes);
        storage.write_at(base, &out);
        storage.sync();
        SsTable {
            base,
            count: entries.len() as u32,
            data_off,
            index,
            bloom,
            first_key: entries[0].0.clone(),
            last_key: entries[entries.len() - 1].0.clone(),
            total_len,
        }
    }

    /// Opens a table previously written at `base`.
    pub fn open<S: Storage>(storage: &S, base: u64) -> SsTable {
        let mut hdr = [0u8; HEADER_LEN];
        storage.read_at(base, &mut hdr);
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        assert_eq!(magic, MAGIC, "not an SSTable at {base:#x}");
        let count = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        let data_off = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
        let index_off = u32::from_le_bytes(hdr[12..16].try_into().unwrap());
        let bloom_off = u32::from_le_bytes(hdr[16..20].try_into().unwrap());
        let total_len = u32::from_le_bytes(hdr[20..24].try_into().unwrap());
        // Index.
        let mut ilen = [0u8; 4];
        storage.read_at(base + index_off as u64, &mut ilen);
        let n = u32::from_le_bytes(ilen) as usize;
        let mut raw = vec![0u8; (bloom_off - index_off - 4) as usize];
        storage.read_at(base + index_off as u64 + 4, &mut raw);
        let mut index = Vec::with_capacity(n);
        let mut p = 0usize;
        for _ in 0..n {
            let off = u32::from_le_bytes(raw[p..p + 4].try_into().unwrap());
            let klen = u32::from_le_bytes(raw[p + 4..p + 8].try_into().unwrap()) as usize;
            let key = raw[p + 8..p + 8 + klen].to_vec();
            index.push((key, off));
            p += 8 + klen;
        }
        // Bloom.
        let mut blen = [0u8; 4];
        storage.read_at(base + bloom_off as u64, &mut blen);
        let blen = u32::from_le_bytes(blen) as usize;
        let mut braw = vec![0u8; blen];
        storage.read_at(base + bloom_off as u64 + 4, &mut braw);
        let bloom = BloomFilter::from_bytes(&braw);
        let mut t = SsTable {
            base,
            count,
            data_off,
            index,
            bloom,
            first_key: Vec::new(),
            last_key: Vec::new(),
            total_len,
        };
        // First/last keys from the data (first entry + full scan of the
        // final index block).
        let all: Vec<_> = t.iter(storage).collect();
        t.first_key = all.first().map(|(k, _)| k.clone()).unwrap_or_default();
        t.last_key = all.last().map(|(k, _)| k.clone()).unwrap_or_default();
        t
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when the table holds no entries (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// On-storage footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_len as u64
    }

    /// Storage offset of the table.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Smallest key.
    pub fn first_key(&self) -> &[u8] {
        &self.first_key
    }

    /// Largest key.
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    fn read_entry<S: Storage>(&self, storage: &S, off: u32) -> ((Vec<u8>, Option<Vec<u8>>), u32) {
        let abs = self.base + self.data_off as u64 + off as u64;
        let mut hdr = [0u8; 9];
        storage.read_at(abs, &mut hdr);
        let flag = hdr[0];
        let klen = u32::from_le_bytes(hdr[1..5].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(hdr[5..9].try_into().unwrap()) as usize;
        let mut kv = vec![0u8; klen + vlen];
        storage.read_at(abs + 9, &mut kv);
        let key = kv[..klen].to_vec();
        let value = (flag == 1).then(|| kv[klen..].to_vec());
        ((key, value), off + 9 + (klen + vlen) as u32)
    }

    /// Point lookup. `None` = key not in this table; `Some(None)` =
    /// tombstone. `bloom_skipped` is incremented when the filter rejects
    /// the probe without any storage reads.
    pub fn get<S: Storage>(
        &self,
        storage: &S,
        key: &[u8],
        bloom_skipped: &mut u64,
    ) -> Option<Option<Vec<u8>>> {
        if !self.bloom.may_contain(key) {
            *bloom_skipped += 1;
            return None;
        }
        // Find the index block that could hold the key.
        let block = match self.index.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => i,
            Err(0) => return None, // before the first key
            Err(i) => i - 1,
        };
        let mut off = self.index[block].1;
        let mut remaining = INDEX_EVERY.min(self.count as usize - block * INDEX_EVERY);
        while remaining > 0 {
            let ((k, v), next) = self.read_entry(storage, off);
            match k.as_slice().cmp(key) {
                std::cmp::Ordering::Equal => return Some(v),
                std::cmp::Ordering::Greater => return None,
                std::cmp::Ordering::Less => {
                    off = next;
                    remaining -= 1;
                }
            }
        }
        None
    }

    /// Sequential iterator over all entries.
    pub fn iter<'a, S: Storage>(
        &'a self,
        storage: &'a S,
    ) -> impl Iterator<Item = (Vec<u8>, Option<Vec<u8>>)> + 'a {
        let mut off = 0u32;
        let mut remaining = self.count;
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let (entry, next) = self.read_entry(storage, off);
            off = next;
            remaining -= 1;
            Some(entry)
        })
    }

    /// Entries with key >= `from`, in order. Seeks through the sparse
    /// index, so a scan reads only the blocks it returns (not the whole
    /// table).
    pub fn iter_from<'a, S: Storage>(
        &'a self,
        storage: &'a S,
        from: &'a [u8],
    ) -> impl Iterator<Item = (Vec<u8>, Option<Vec<u8>>)> + 'a {
        // Find the index block whose first key is <= from.
        let block = match self.index.binary_search_by(|(k, _)| k.as_slice().cmp(from)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut off = self.index.get(block).map(|&(_, o)| o).unwrap_or(0);
        let mut remaining = self.count.saturating_sub((block * INDEX_EVERY) as u32);
        std::iter::from_fn(move || {
            while remaining > 0 {
                let (entry, next) = self.read_entry(storage, off);
                off = next;
                remaining -= 1;
                if entry.0.as_slice() >= from {
                    return Some(entry);
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn entries(n: usize) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let k = format!("key{:05}", i).into_bytes();
                let v = (i % 7 != 3).then(|| format!("value{i}").into_bytes());
                (k, v)
            })
            .collect()
    }

    #[test]
    fn write_then_get_every_key() {
        let mut s = MemStorage::new(1 << 20);
        let es = entries(100);
        let t = SsTable::write(&mut s, 0, &es);
        let mut skipped = 0;
        for (k, v) in &es {
            assert_eq!(t.get(&s, k, &mut skipped), Some(v.clone()), "key {k:?}");
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn missing_keys_return_none() {
        let mut s = MemStorage::new(1 << 20);
        let t = SsTable::write(&mut s, 0, &entries(50));
        let mut skipped = 0;
        assert_eq!(t.get(&s, b"zzz-not-there", &mut skipped), None);
        assert_eq!(t.get(&s, b"aaa-before-all", &mut skipped), None);
        assert_eq!(t.get(&s, b"key00010x", &mut skipped), None);
    }

    #[test]
    fn bloom_filter_short_circuits_probes() {
        let mut s = MemStorage::new(1 << 20);
        let t = SsTable::write(&mut s, 0, &entries(200));
        let mut skipped = 0;
        for i in 0..1000 {
            let k = format!("absent{i:06}").into_bytes();
            t.get(&s, &k, &mut skipped);
        }
        assert!(skipped > 900, "bloom skipped only {skipped}/1000");
    }

    #[test]
    fn open_reconstructs_index_and_bloom() {
        let mut s = MemStorage::new(1 << 20);
        let es = entries(64);
        let written = SsTable::write(&mut s, 4096, &es);
        let opened = SsTable::open(&s, 4096);
        assert_eq!(opened.len(), written.len());
        assert_eq!(opened.first_key(), b"key00000");
        assert_eq!(opened.last_key(), b"key00063");
        let mut skipped = 0;
        for (k, v) in &es {
            assert_eq!(opened.get(&s, k, &mut skipped), Some(v.clone()));
        }
    }

    #[test]
    fn iter_is_ordered_and_complete() {
        let mut s = MemStorage::new(1 << 20);
        let es = entries(77);
        let t = SsTable::write(&mut s, 0, &es);
        let got: Vec<_> = t.iter(&s).collect();
        assert_eq!(got, es);
    }

    #[test]
    fn iter_from_starts_mid_table() {
        let mut s = MemStorage::new(1 << 20);
        let t = SsTable::write(&mut s, 0, &entries(30));
        let got: Vec<_> = t.iter_from(&s, b"key00025").collect();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, b"key00025");
    }

    #[test]
    fn tombstones_round_trip() {
        let mut s = MemStorage::new(1 << 20);
        let es = vec![(b"a".to_vec(), Some(b"1".to_vec())), (b"b".to_vec(), None)];
        let t = SsTable::write(&mut s, 0, &es);
        let mut skipped = 0;
        assert_eq!(t.get(&s, b"b", &mut skipped), Some(None));
    }

    #[test]
    #[should_panic(expected = "not an SSTable")]
    fn open_garbage_panics() {
        let s = MemStorage::new(4096);
        let _ = SsTable::open(&s, 0);
    }
}
