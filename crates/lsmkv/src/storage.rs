//! Storage abstraction: a flat byte space with positioned reads/writes.

/// A random-access byte store (memory, file, or a virtual disk).
pub trait Storage: Send {
    /// Total capacity in bytes.
    fn capacity(&self) -> u64;
    /// Reads `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]);
    /// Writes `data` at `offset`.
    fn write_at(&mut self, offset: u64, data: &[u8]);
    /// Makes prior writes durable (WAL commits, table seals).
    fn sync(&mut self);
    /// Number of sync operations issued so far (diagnostics).
    fn syncs(&self) -> u64 {
        0
    }
}

/// In-memory storage for tests and fast local use.
pub struct MemStorage {
    data: Vec<u8>,
    syncs: u64,
}

impl MemStorage {
    /// Allocates `capacity` zeroed bytes.
    pub fn new(capacity: usize) -> Self {
        MemStorage {
            data: vec![0; capacity],
            syncs: 0,
        }
    }
}

impl Storage for MemStorage {
    fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) {
        let o = offset as usize;
        buf.copy_from_slice(&self.data[o..o + buf.len()]);
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        let o = offset as usize;
        self.data[o..o + data.len()].copy_from_slice(data);
    }

    fn sync(&mut self) {
        self.syncs += 1;
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips() {
        let mut s = MemStorage::new(1024);
        s.write_at(100, b"hello");
        let mut buf = [0u8; 5];
        s.read_at(100, &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(s.capacity(), 1024);
    }

    #[test]
    fn sync_counter_advances() {
        let mut s = MemStorage::new(16);
        assert_eq!(s.syncs(), 0);
        s.sync();
        s.sync();
        assert_eq!(s.syncs(), 2);
    }
}
