//! Write-ahead log.
//!
//! Every update is appended (and synced) to the WAL before touching the
//! memtable, so a crash can replay committed writes. This is the source of
//! the small sequential-append I/O YCSB's update-heavy workloads generate.

use crate::storage::Storage;

fn checksum(data: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// An append-only log living in a fixed storage region.
pub struct Wal {
    start: u64,
    capacity: u64,
    head: u64,
    records: u64,
}

/// A record recovered by [`Wal::replay`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The key.
    pub key: Vec<u8>,
    /// `None` encodes a deletion.
    pub value: Option<Vec<u8>>,
}

impl Wal {
    /// Creates a WAL over `[start, start+capacity)` of the storage.
    pub fn new(start: u64, capacity: u64) -> Self {
        Wal {
            start,
            capacity,
            head: 0,
            records: 0,
        }
    }

    /// Bytes currently used.
    pub fn used(&self) -> u64 {
        self.head
    }

    /// Records appended since the last reset.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record and syncs. Panics if the region is full (the DB
    /// flushes the memtable long before that).
    pub fn append<S: Storage>(&mut self, storage: &mut S, key: &[u8], value: Option<&[u8]>) {
        let mut payload = Vec::with_capacity(9 + key.len() + value.map_or(0, |v| v.len()));
        payload.push(value.is_some() as u8);
        payload.extend((key.len() as u32).to_le_bytes());
        payload.extend((value.map_or(0, |v| v.len()) as u32).to_le_bytes());
        payload.extend(key);
        if let Some(v) = value {
            payload.extend(v);
        }
        let total = 8 + payload.len() as u64;
        assert!(
            self.head + total <= self.capacity,
            "WAL region exhausted ({} + {} > {})",
            self.head,
            total,
            self.capacity
        );
        let mut rec = Vec::with_capacity(total as usize);
        rec.extend((payload.len() as u32).to_le_bytes());
        rec.extend(checksum(&payload).to_le_bytes());
        rec.extend(payload);
        storage.write_at(self.start + self.head, &rec);
        // Terminate the log so recovery never replays stale records left
        // over from before a reset.
        if self.head + total + 8 <= self.capacity {
            storage.write_at(self.start + self.head + total, &[0u8; 8]);
        }
        storage.sync();
        self.head += total;
        self.records += 1;
    }

    /// Replays all intact records from the start of the region.
    pub fn replay<S: Storage>(&self, storage: &S) -> Vec<WalRecord> {
        let mut out = Vec::new();
        let mut off = 0u64;
        while off + 8 <= self.head {
            let mut hdr = [0u8; 8];
            storage.read_at(self.start + off, &mut hdr);
            let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as u64;
            let sum = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
            if len == 0 || off + 8 + len > self.capacity {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            storage.read_at(self.start + off + 8, &mut payload);
            if checksum(&payload) != sum {
                break; // torn tail
            }
            let has_value = payload[0] == 1;
            let klen = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
            let vlen = u32::from_le_bytes(payload[5..9].try_into().unwrap()) as usize;
            let key = payload[9..9 + klen].to_vec();
            let value = has_value.then(|| payload[9 + klen..9 + klen + vlen].to_vec());
            out.push(WalRecord { key, value });
            off += 8 + len;
        }
        out
    }

    /// Rebuilds `head` by scanning the region for intact records — used
    /// when reopening a store after a crash (the in-memory cursor is gone).
    pub fn recover<S: Storage>(&mut self, storage: &S) {
        let mut off = 0u64;
        let mut records = 0u64;
        while off + 8 <= self.capacity {
            let mut hdr = [0u8; 8];
            storage.read_at(self.start + off, &mut hdr);
            let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as u64;
            let sum = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
            if len == 0 || off + 8 + len > self.capacity {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            storage.read_at(self.start + off + 8, &mut payload);
            if checksum(&payload) != sum {
                break;
            }
            off += 8 + len;
            records += 1;
        }
        self.head = off;
        self.records = records;
    }

    /// Truncates the log (after a successful memtable flush).
    pub fn reset<S: Storage>(&mut self, storage: &mut S) {
        storage.write_at(self.start, &[0u8; 8]);
        storage.sync();
        self.head = 0;
        self.records = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn append_and_replay() {
        let mut s = MemStorage::new(1 << 16);
        let mut wal = Wal::new(0, 1 << 16);
        wal.append(&mut s, b"k1", Some(b"v1"));
        wal.append(&mut s, b"k2", None);
        wal.append(&mut s, b"k3", Some(b"v3"));
        let recs = wal.replay(&s);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].key, b"k1");
        assert_eq!(recs[0].value.as_deref(), Some(b"v1".as_slice()));
        assert_eq!(recs[1].value, None, "tombstone survives replay");
        assert_eq!(wal.records(), 3);
    }

    #[test]
    fn every_append_syncs() {
        let mut s = MemStorage::new(1 << 12);
        let mut wal = Wal::new(0, 1 << 12);
        wal.append(&mut s, b"a", Some(b"b"));
        wal.append(&mut s, b"c", Some(b"d"));
        assert_eq!(s.syncs(), 2);
    }

    #[test]
    fn corrupt_tail_stops_replay() {
        let mut s = MemStorage::new(1 << 12);
        let mut wal = Wal::new(0, 1 << 12);
        wal.append(&mut s, b"good", Some(b"1"));
        let second_at = wal.used();
        wal.append(&mut s, b"bad", Some(b"2"));
        // Corrupt a payload byte of the second record.
        s.write_at(second_at + 10, &[0xFF]);
        let recs = wal.replay(&s);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].key, b"good");
    }

    #[test]
    fn reset_truncates() {
        let mut s = MemStorage::new(1 << 12);
        let mut wal = Wal::new(0, 1 << 12);
        wal.append(&mut s, b"x", Some(b"y"));
        wal.reset(&mut s);
        assert_eq!(wal.used(), 0);
        assert!(wal.replay(&s).is_empty());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflow_panics() {
        let mut s = MemStorage::new(64);
        let mut wal = Wal::new(0, 32);
        wal.append(&mut s, b"a-long-enough-key", Some(b"a-long-enough-value"));
    }
}
