//! Sparse guest-physical memory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Guest page size (x86-64, matching NVMe's memory page size default).
pub const PAGE_SIZE: usize = 4096;

const SHARDS: usize = 64;

/// A VM's guest-physical address space.
///
/// Pages are allocated lazily on first touch (zero-filled), so a "6 GB" VM
/// costs only what it actually uses. Access is sharded by page number: the
/// device model, router, and UIF threads can move data concurrently as long
/// as they target different pages — the same discipline real DMA follows.
pub struct GuestMemory {
    shards: Vec<Mutex<HashMap<u64, Box<[u8; PAGE_SIZE]>>>>,
    size: u64,
    /// Bump allocator cursor for [`GuestMemory::alloc`].
    next_alloc: AtomicU64,
}

impl GuestMemory {
    /// Creates an address space of `size` bytes (rounded up to a page).
    pub fn new(size: u64) -> Self {
        let size = size.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
        GuestMemory {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            size,
            next_alloc: AtomicU64::new(PAGE_SIZE as u64), // keep GPA 0 unmapped
        }
    }

    /// Total size of the address space in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Allocates a page-aligned guest buffer of `len` bytes and returns its
    /// guest-physical address. This stands in for the guest driver's DMA
    /// buffer allocation; it never reuses space.
    pub fn alloc(&self, len: usize) -> u64 {
        let len = (len.max(1)).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let gpa = self.next_alloc.fetch_add(len as u64, Ordering::Relaxed);
        assert!(
            gpa + len as u64 <= self.size,
            "guest memory exhausted: {gpa:#x} + {len:#x} > {:#x}",
            self.size
        );
        gpa
    }

    fn shard_for(&self, page: u64) -> &Mutex<HashMap<u64, Box<[u8; PAGE_SIZE]>>> {
        &self.shards[(page as usize) % SHARDS]
    }

    fn check_range(&self, gpa: u64, len: usize) {
        assert!(
            gpa.checked_add(len as u64)
                .is_some_and(|end| end <= self.size),
            "guest access out of bounds: {gpa:#x}+{len:#x} (size {:#x})",
            self.size
        );
    }

    /// Copies `data` into guest memory at `gpa` (may span pages).
    pub fn write(&self, gpa: u64, data: &[u8]) {
        self.check_range(gpa, data.len());
        let mut offset = 0usize;
        while offset < data.len() {
            let addr = gpa + offset as u64;
            let page = addr / PAGE_SIZE as u64;
            let in_page = (addr % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - in_page).min(data.len() - offset);
            let mut shard = self.shard_for(page).lock().unwrap();
            let p = shard
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[in_page..in_page + chunk].copy_from_slice(&data[offset..offset + chunk]);
            offset += chunk;
        }
    }

    /// Copies guest memory at `gpa` into `out` (may span pages); untouched
    /// pages read as zeroes.
    pub fn read(&self, gpa: u64, out: &mut [u8]) {
        self.check_range(gpa, out.len());
        let mut offset = 0usize;
        while offset < out.len() {
            let addr = gpa + offset as u64;
            let page = addr / PAGE_SIZE as u64;
            let in_page = (addr % PAGE_SIZE as u64) as usize;
            let chunk = (PAGE_SIZE - in_page).min(out.len() - offset);
            let shard = self.shard_for(page).lock().unwrap();
            match shard.get(&page) {
                Some(p) => {
                    out[offset..offset + chunk].copy_from_slice(&p[in_page..in_page + chunk])
                }
                None => out[offset..offset + chunk].fill(0),
            }
            offset += chunk;
        }
    }

    /// Reads `len` bytes at `gpa` into a fresh vector.
    pub fn read_vec(&self, gpa: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(gpa, &mut v);
        v
    }

    /// Applies `f` in place to `len` bytes at `gpa` — used by UIFs for
    /// in-place decryption of guest buffers without an extra copy.
    pub fn modify(&self, gpa: u64, len: usize, f: impl FnOnce(&mut [u8])) {
        let mut buf = self.read_vec(gpa, len);
        f(&mut buf);
        self.write(gpa, &buf);
    }

    /// Reads a little-endian u64 (for PRP list entries).
    pub fn read_u64(&self, gpa: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(gpa, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64 (for PRP list entries).
    pub fn write_u64(&self, gpa: u64, v: u64) {
        self.write(gpa, &v.to_le_bytes());
    }

    /// Number of pages currently materialized (for tests/diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazily_materializes_pages() {
        let m = GuestMemory::new(1 << 30);
        assert_eq!(m.resident_pages(), 0);
        m.write(0x10_000, &[1, 2, 3]);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn write_read_round_trip() {
        let m = GuestMemory::new(1 << 20);
        let data: Vec<u8> = (0..=255).collect();
        m.write(0x2000, &data);
        assert_eq!(m.read_vec(0x2000, 256), data);
    }

    #[test]
    fn unmapped_memory_reads_zero() {
        let m = GuestMemory::new(1 << 20);
        assert!(m.read_vec(0x3000, 64).iter().all(|&b| b == 0));
    }

    #[test]
    fn cross_page_access_is_seamless() {
        let m = GuestMemory::new(1 << 20);
        let data: Vec<u8> = (0..PAGE_SIZE + 100).map(|i| (i % 251) as u8).collect();
        let gpa = PAGE_SIZE as u64 - 50; // straddles two page boundaries
        m.write(gpa, &data);
        assert_eq!(m.read_vec(gpa, data.len()), data);
    }

    #[test]
    fn alloc_returns_page_aligned_disjoint_regions() {
        let m = GuestMemory::new(1 << 24);
        let a = m.alloc(100);
        let b = m.alloc(PAGE_SIZE + 1);
        let c = m.alloc(1);
        assert_eq!(a % PAGE_SIZE as u64, 0);
        assert_eq!(b % PAGE_SIZE as u64, 0);
        assert!(b >= a + PAGE_SIZE as u64);
        assert!(c >= b + 2 * PAGE_SIZE as u64);
        assert_ne!(a, 0, "GPA 0 must stay unmapped");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let m = GuestMemory::new(PAGE_SIZE as u64);
        m.write(PAGE_SIZE as u64 - 1, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_beyond_size_panics() {
        let m = GuestMemory::new(4 * PAGE_SIZE as u64);
        let _ = m.alloc(16 * PAGE_SIZE);
    }

    #[test]
    fn modify_applies_in_place() {
        let m = GuestMemory::new(1 << 20);
        m.write(0x4000, &[1u8; 16]);
        m.modify(0x4000, 16, |b| b.iter_mut().for_each(|x| *x += 1));
        assert_eq!(m.read_vec(0x4000, 16), vec![2u8; 16]);
    }

    #[test]
    fn u64_round_trip() {
        let m = GuestMemory::new(1 << 20);
        m.write_u64(0x5000, 0xDEAD_BEEF_1234_5678);
        assert_eq!(m.read_u64(0x5000), 0xDEAD_BEEF_1234_5678);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        use std::sync::Arc;
        let m = Arc::new(GuestMemory::new(1 << 24));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                let base = 0x100_000 * (t + 1);
                for i in 0..100u64 {
                    let gpa = base + i * 64;
                    m.write(gpa, &[t as u8; 64]);
                    assert_eq!(m.read_vec(gpa, 64), vec![t as u8; 64]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
