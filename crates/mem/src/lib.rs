//! Guest-physical memory substrate.
//!
//! NVMetro never copies I/O data between components: commands carry PRP
//! pointers into the VM's memory, and whichever component services a request
//! (the physical device via DMA, a UIF via its mapping of guest pages)
//! reads or writes the guest pages directly (§III-C). This crate provides
//! that memory object: a sparse, page-granular guest-physical address space
//! with PRP-list construction and walking per the NVMe specification.

mod guest;
mod prp;

pub use guest::{GuestMemory, PAGE_SIZE};
pub use prp::{build_prps, prp_segments, PrpError};
