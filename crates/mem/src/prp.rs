//! PRP (Physical Region Page) construction and walking, per the NVMe base
//! specification §4.1.1.
//!
//! * `PRP1` points at the first data page and may carry a page offset.
//! * If the transfer needs at most one more page, `PRP2` points directly at
//!   it (offset must be zero).
//! * Otherwise `PRP2` points at a *PRP list*: little-endian 8-byte page
//!   pointers. When a list fills a whole page and more entries remain, its
//!   last slot chains to the next list page.

use crate::guest::{GuestMemory, PAGE_SIZE};

/// Errors from walking a malformed PRP chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrpError {
    /// PRP1 was zero for a data-carrying command.
    NullPrp1,
    /// PRP2 was zero but the transfer needs it.
    NullPrp2,
    /// A list entry or PRP2 direct pointer had a nonzero page offset.
    MisalignedEntry,
}

impl std::fmt::Display for PrpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrpError::NullPrp1 => write!(f, "PRP1 is null"),
            PrpError::NullPrp2 => write!(f, "PRP2 is null but required"),
            PrpError::MisalignedEntry => write!(f, "PRP entry not page aligned"),
        }
    }
}

impl std::error::Error for PrpError {}

const ENTRIES_PER_LIST_PAGE: usize = PAGE_SIZE / 8;

/// Builds PRP pointers describing `len` bytes at contiguous guest address
/// `gpa`, allocating PRP list pages from `mem` when needed. Returns
/// `(prp1, prp2)` exactly as a guest NVMe driver would place them in a
/// submission entry.
pub fn build_prps(mem: &GuestMemory, gpa: u64, len: usize) -> (u64, u64) {
    assert!(len > 0, "cannot describe an empty transfer");
    let prp1 = gpa;
    let first_off = (gpa % PAGE_SIZE as u64) as usize;
    let first_chunk = (PAGE_SIZE - first_off).min(len);
    let remaining = len - first_chunk;
    if remaining == 0 {
        return (prp1, 0);
    }
    let first_page_after = gpa - first_off as u64 + PAGE_SIZE as u64;
    let extra_pages = remaining.div_ceil(PAGE_SIZE);
    if extra_pages == 1 {
        return (prp1, first_page_after);
    }
    // Build a (possibly chained) PRP list.
    let mut entries: Vec<u64> = (0..extra_pages)
        .map(|i| first_page_after + (i * PAGE_SIZE) as u64)
        .collect();
    let first_list = mem.alloc(PAGE_SIZE);
    let mut list_page = first_list;
    while !entries.is_empty() {
        let fits_whole = entries.len() <= ENTRIES_PER_LIST_PAGE;
        let take = if fits_whole {
            entries.len()
        } else {
            ENTRIES_PER_LIST_PAGE - 1 // last slot chains
        };
        for (i, e) in entries.drain(..take).enumerate() {
            mem.write_u64(list_page + (i * 8) as u64, e);
        }
        if !fits_whole || !entries.is_empty() {
            let next = mem.alloc(PAGE_SIZE);
            mem.write_u64(list_page + ((ENTRIES_PER_LIST_PAGE - 1) * 8) as u64, next);
            list_page = next;
        }
    }
    (prp1, first_list)
}

/// Walks PRP pointers into `(gpa, len)` segments covering `len` bytes.
/// This is what the device model's DMA engine and the UIF framework's
/// guest-page mapper both call.
pub fn prp_segments(
    mem: &GuestMemory,
    prp1: u64,
    prp2: u64,
    len: usize,
) -> Result<Vec<(u64, usize)>, PrpError> {
    if len == 0 {
        return Ok(Vec::new());
    }
    if prp1 == 0 {
        return Err(PrpError::NullPrp1);
    }
    let mut segs = Vec::new();
    let first_off = (prp1 % PAGE_SIZE as u64) as usize;
    let first_chunk = (PAGE_SIZE - first_off).min(len);
    segs.push((prp1, first_chunk));
    let mut remaining = len - first_chunk;
    if remaining == 0 {
        return Ok(segs);
    }
    if prp2 == 0 {
        return Err(PrpError::NullPrp2);
    }
    if remaining <= PAGE_SIZE {
        if !prp2.is_multiple_of(PAGE_SIZE as u64) {
            return Err(PrpError::MisalignedEntry);
        }
        segs.push((prp2, remaining));
        return Ok(segs);
    }
    // PRP list walk with chaining.
    let mut list_page = prp2;
    if !list_page.is_multiple_of(8) {
        return Err(PrpError::MisalignedEntry);
    }
    let mut idx = 0usize;
    while remaining > 0 {
        let entries_left = remaining.div_ceil(PAGE_SIZE);
        let at_chain_slot = idx == ENTRIES_PER_LIST_PAGE - 1 && entries_left > 1;
        let entry = mem.read_u64(list_page + (idx * 8) as u64);
        if at_chain_slot {
            // Last slot of a full page chains to the next list page.
            if !entry.is_multiple_of(PAGE_SIZE as u64) || entry == 0 {
                return Err(PrpError::MisalignedEntry);
            }
            list_page = entry;
            idx = 0;
            continue;
        }
        if !entry.is_multiple_of(PAGE_SIZE as u64) || entry == 0 {
            return Err(PrpError::MisalignedEntry);
        }
        let chunk = remaining.min(PAGE_SIZE);
        segs.push((entry, chunk));
        remaining -= chunk;
        idx += 1;
    }
    Ok(segs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> GuestMemory {
        GuestMemory::new(1 << 26)
    }

    fn total(segs: &[(u64, usize)]) -> usize {
        segs.iter().map(|(_, l)| l).sum()
    }

    #[test]
    fn single_page_uses_prp1_only() {
        let m = mem();
        let gpa = m.alloc(512);
        let (p1, p2) = build_prps(&m, gpa, 512);
        assert_eq!(p1, gpa);
        assert_eq!(p2, 0);
        let segs = prp_segments(&m, p1, p2, 512).unwrap();
        assert_eq!(segs, vec![(gpa, 512)]);
    }

    #[test]
    fn two_pages_use_direct_prp2() {
        let m = mem();
        let gpa = m.alloc(2 * PAGE_SIZE);
        let (p1, p2) = build_prps(&m, gpa, 2 * PAGE_SIZE);
        assert_eq!(p2, gpa + PAGE_SIZE as u64);
        let segs = prp_segments(&m, p1, p2, 2 * PAGE_SIZE).unwrap();
        assert_eq!(total(&segs), 2 * PAGE_SIZE);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn offset_first_page_shortens_first_segment() {
        let m = mem();
        let base = m.alloc(2 * PAGE_SIZE);
        let gpa = base + 512;
        let len = PAGE_SIZE; // spills 512 bytes into the next page
        let (p1, p2) = build_prps(&m, gpa, len);
        assert_eq!(p1, gpa);
        assert_eq!(p2, base + PAGE_SIZE as u64);
        let segs = prp_segments(&m, p1, p2, len).unwrap();
        assert_eq!(segs[0], (gpa, PAGE_SIZE - 512));
        assert_eq!(segs[1], (base + PAGE_SIZE as u64, 512));
    }

    #[test]
    fn large_transfer_builds_walkable_list() {
        let m = mem();
        let len = 128 * 1024; // the paper's largest block size: 32 pages
        let gpa = m.alloc(len);
        let (p1, p2) = build_prps(&m, gpa, len);
        assert_ne!(p2, 0);
        let segs = prp_segments(&m, p1, p2, len).unwrap();
        assert_eq!(total(&segs), len);
        assert_eq!(segs.len(), 32);
        // Segments must tile the buffer contiguously.
        let mut expect = gpa;
        for (a, l) in segs {
            assert_eq!(a, expect);
            expect = a + l as u64;
        }
    }

    #[test]
    fn chained_list_pages_walk_correctly() {
        let m = GuestMemory::new(1 << 30);
        // > 512 pages forces the PRP list to chain across list pages.
        let len = 600 * PAGE_SIZE;
        let gpa = m.alloc(len);
        let (p1, p2) = build_prps(&m, gpa, len);
        let segs = prp_segments(&m, p1, p2, len).unwrap();
        assert_eq!(total(&segs), len);
        assert_eq!(segs.len(), 600);
        let mut expect = gpa;
        for (a, l) in segs {
            assert_eq!(a, expect);
            expect = a + l as u64;
        }
    }

    #[test]
    fn null_prp1_is_rejected() {
        let m = mem();
        assert_eq!(prp_segments(&m, 0, 0, 512), Err(PrpError::NullPrp1));
    }

    #[test]
    fn missing_prp2_is_rejected() {
        let m = mem();
        let gpa = m.alloc(2 * PAGE_SIZE);
        assert_eq!(
            prp_segments(&m, gpa, 0, 2 * PAGE_SIZE),
            Err(PrpError::NullPrp2)
        );
    }

    #[test]
    fn misaligned_prp2_is_rejected() {
        let m = mem();
        let gpa = m.alloc(2 * PAGE_SIZE);
        assert_eq!(
            prp_segments(&m, gpa, gpa + PAGE_SIZE as u64 + 8, 2 * PAGE_SIZE),
            Err(PrpError::MisalignedEntry)
        );
    }

    #[test]
    fn data_round_trips_through_segments() {
        let m = mem();
        let len = 5 * PAGE_SIZE + 100;
        let gpa = m.alloc(len);
        let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        m.write(gpa, &data);
        let (p1, p2) = build_prps(&m, gpa, len);
        let segs = prp_segments(&m, p1, p2, len).unwrap();
        let mut out = Vec::new();
        for (a, l) in segs {
            out.extend(m.read_vec(a, l));
        }
        assert_eq!(out, data);
    }
}
