//! NVMe command (submission queue entry) layout and builders.

/// NVM command set opcodes (NVMe base spec §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NvmOpcode {
    /// Flush volatile write cache.
    Flush = 0x00,
    /// Write logical blocks.
    Write = 0x01,
    /// Read logical blocks.
    Read = 0x02,
    /// Write uncorrectable.
    WriteUncorrectable = 0x04,
    /// Compare logical blocks against host data.
    Compare = 0x05,
    /// Write zeroes without transferring data.
    WriteZeroes = 0x08,
    /// Dataset management (deallocate / TRIM).
    DatasetManagement = 0x09,
}

impl NvmOpcode {
    /// Decodes a wire opcode, if it is a known NVM command.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => NvmOpcode::Flush,
            0x01 => NvmOpcode::Write,
            0x02 => NvmOpcode::Read,
            0x04 => NvmOpcode::WriteUncorrectable,
            0x05 => NvmOpcode::Compare,
            0x08 => NvmOpcode::WriteZeroes,
            0x09 => NvmOpcode::DatasetManagement,
            _ => return None,
        })
    }

    /// True if this opcode transfers data from host to device.
    pub fn is_write(self) -> bool {
        matches!(self, NvmOpcode::Write | NvmOpcode::WriteUncorrectable)
    }

    /// True if this opcode transfers data from device to host.
    pub fn is_read(self) -> bool {
        matches!(self, NvmOpcode::Read | NvmOpcode::Compare)
    }
}

/// Admin command set opcodes (the subset the virtual controller serves).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AdminOpcode {
    /// Delete an I/O submission queue.
    DeleteSq = 0x00,
    /// Create an I/O submission queue.
    CreateSq = 0x01,
    /// Get log page.
    GetLogPage = 0x02,
    /// Delete an I/O completion queue.
    DeleteCq = 0x04,
    /// Create an I/O completion queue.
    CreateCq = 0x05,
    /// Identify controller / namespace.
    Identify = 0x06,
    /// Set features.
    SetFeatures = 0x09,
    /// Get features.
    GetFeatures = 0x0A,
}

impl AdminOpcode {
    /// Decodes a wire opcode, if it is a known admin command.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => AdminOpcode::DeleteSq,
            0x01 => AdminOpcode::CreateSq,
            0x02 => AdminOpcode::GetLogPage,
            0x04 => AdminOpcode::DeleteCq,
            0x05 => AdminOpcode::CreateCq,
            0x06 => AdminOpcode::Identify,
            0x09 => AdminOpcode::SetFeatures,
            0x0A => AdminOpcode::GetFeatures,
            _ => return None,
        })
    }
}

/// A 64-byte NVMe submission queue entry, laid out per the base spec.
///
/// This is the *only* object NVMetro moves between queues; scatter-gather
/// data stays in guest memory behind `prp1`/`prp2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
#[derive(Default)]
pub struct SubmissionEntry {
    /// Command opcode (CDW0 bits 7:0).
    pub opcode: u8,
    /// Fused-operation and PRP/SGL selection flags (CDW0 bits 15:8).
    pub flags: u8,
    /// Command identifier, unique within its submission queue.
    pub cid: u16,
    /// Namespace identifier.
    pub nsid: u32,
    /// Command dword 2 (command-set specific).
    pub cdw2: u32,
    /// Command dword 3 (command-set specific).
    pub cdw3: u32,
    /// Metadata pointer.
    pub mptr: u64,
    /// PRP entry 1: guest-physical address of the first data page.
    pub prp1: u64,
    /// PRP entry 2: second page or PRP-list pointer.
    pub prp2: u64,
    /// Command dword 10 (e.g. starting LBA low half).
    pub cdw10: u32,
    /// Command dword 11 (e.g. starting LBA high half).
    pub cdw11: u32,
    /// Command dword 12 (e.g. number of logical blocks, 0-based).
    pub cdw12: u32,
    /// Command dword 13.
    pub cdw13: u32,
    /// Command dword 14.
    pub cdw14: u32,
    /// Command dword 15.
    pub cdw15: u32,
}

const _: () = assert!(std::mem::size_of::<SubmissionEntry>() == 64);

impl SubmissionEntry {
    /// Builds a READ command for `nlb` logical blocks starting at `slba`.
    pub fn read(nsid: u32, slba: u64, nlb: u32, prp1: u64, prp2: u64) -> Self {
        Self::rw(NvmOpcode::Read, nsid, slba, nlb, prp1, prp2)
    }

    /// Builds a WRITE command for `nlb` logical blocks starting at `slba`.
    pub fn write(nsid: u32, slba: u64, nlb: u32, prp1: u64, prp2: u64) -> Self {
        Self::rw(NvmOpcode::Write, nsid, slba, nlb, prp1, prp2)
    }

    /// Builds a FLUSH command.
    pub fn flush(nsid: u32) -> Self {
        SubmissionEntry {
            opcode: NvmOpcode::Flush as u8,
            nsid,
            ..Default::default()
        }
    }

    fn rw(op: NvmOpcode, nsid: u32, slba: u64, nlb: u32, prp1: u64, prp2: u64) -> Self {
        assert!((1..=0x1_0000).contains(&nlb), "NLB must be 1..=65536");
        SubmissionEntry {
            opcode: op as u8,
            nsid,
            prp1,
            prp2,
            cdw10: slba as u32,
            cdw11: (slba >> 32) as u32,
            cdw12: nlb - 1, // NLB is 0-based on the wire
            ..Default::default()
        }
    }

    /// Starting LBA (CDW10/11).
    pub fn slba(&self) -> u64 {
        self.cdw10 as u64 | ((self.cdw11 as u64) << 32)
    }

    /// Rewrites the starting LBA — the direct-mediation operation
    /// classifiers use for LBA translation (§III-C).
    pub fn set_slba(&mut self, slba: u64) {
        self.cdw10 = slba as u32;
        self.cdw11 = (slba >> 32) as u32;
    }

    /// Number of logical blocks (1-based; CDW12 is 0-based on the wire).
    pub fn nlb(&self) -> u32 {
        (self.cdw12 & 0xFFFF) + 1
    }

    /// Data length in bytes at the standard LBA size.
    pub fn data_len(&self) -> usize {
        self.nlb() as usize * crate::LBA_SIZE
    }

    /// Decoded NVM opcode, if recognized.
    pub fn nvm_opcode(&self) -> Option<NvmOpcode> {
        NvmOpcode::from_u8(self.opcode)
    }

    /// True if this command transfers data (in either direction).
    pub fn has_data(&self) -> bool {
        self.nvm_opcode()
            .map(|o| o.is_read() || o.is_write())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_exactly_64_bytes() {
        assert_eq!(std::mem::size_of::<SubmissionEntry>(), 64);
    }

    #[test]
    fn read_builder_round_trips_fields() {
        let e = SubmissionEntry::read(1, 0x1_2345_6789, 8, 0x1000, 0);
        assert_eq!(e.opcode, 0x02);
        assert_eq!(e.nsid, 1);
        assert_eq!(e.slba(), 0x1_2345_6789);
        assert_eq!(e.nlb(), 8);
        assert_eq!(e.data_len(), 8 * 512);
        assert_eq!(e.nvm_opcode(), Some(NvmOpcode::Read));
        assert!(e.has_data());
    }

    #[test]
    fn nlb_is_zero_based_on_the_wire() {
        let e = SubmissionEntry::write(1, 0, 1, 0, 0);
        assert_eq!(e.cdw12, 0);
        assert_eq!(e.nlb(), 1);
    }

    #[test]
    fn set_slba_rewrites_both_dwords() {
        let mut e = SubmissionEntry::read(1, 0, 1, 0, 0);
        e.set_slba(0xDEAD_BEEF_CAFE);
        assert_eq!(e.slba(), 0xDEAD_BEEF_CAFE);
    }

    #[test]
    fn flush_has_no_data() {
        let e = SubmissionEntry::flush(3);
        assert_eq!(e.nvm_opcode(), Some(NvmOpcode::Flush));
        assert!(!e.has_data());
    }

    #[test]
    #[should_panic(expected = "NLB")]
    fn zero_block_command_is_rejected() {
        let _ = SubmissionEntry::read(1, 0, 0, 0, 0);
    }

    #[test]
    fn opcode_decode_rejects_unknown() {
        assert_eq!(NvmOpcode::from_u8(0x7f), None);
        assert_eq!(AdminOpcode::from_u8(0x7f), None);
    }

    #[test]
    fn direction_predicates() {
        assert!(NvmOpcode::Write.is_write());
        assert!(!NvmOpcode::Write.is_read());
        assert!(NvmOpcode::Read.is_read());
        assert!(NvmOpcode::Compare.is_read());
        assert!(!NvmOpcode::Flush.is_read());
    }

    #[test]
    fn admin_opcodes_round_trip() {
        for op in [
            AdminOpcode::DeleteSq,
            AdminOpcode::CreateSq,
            AdminOpcode::GetLogPage,
            AdminOpcode::DeleteCq,
            AdminOpcode::CreateCq,
            AdminOpcode::Identify,
            AdminOpcode::SetFeatures,
            AdminOpcode::GetFeatures,
        ] {
            assert_eq!(AdminOpcode::from_u8(op as u8), Some(op));
        }
    }
}
