//! NVMe protocol substrate.
//!
//! Implements the parts of the NVM Express specification that NVMetro's
//! queue shadowing depends on: 64-byte submission entries, 16-byte
//! completion entries with phase bits, status codes, the NVM and admin
//! opcode sets, and lock-free single-producer/single-consumer queue pairs
//! with doorbells — the VSQ/VCQ, HSQ/HCQ and NSQ/NCQ of the paper are all
//! instances of these rings.
//!
//! Only the 64-byte command block ever moves through a queue; data pages
//! stay in guest memory and are referenced by PRP pointers (§III-C).

mod cmd;
mod queue;
mod status;

pub use cmd::{AdminOpcode, NvmOpcode, SubmissionEntry};
pub use queue::{
    CachePadded, CqConsumer, CqPair, CqProducer, QueuePair, SqConsumer, SqPair, SqProducer,
};
pub use status::{CompletionEntry, Status, StatusCodeType};

/// Logical block size used throughout the reproduction (the paper's fio
/// runs use 512 B blocks as the smallest unit).
pub const LBA_SIZE: usize = 512;

/// Maximum queue entries supported per queue (the spec allows 64K).
pub const MAX_QUEUE_ENTRIES: usize = 65_536;
